#include "src/regex/regex.h"

#include <cassert>
#include <functional>

namespace fob {

// ---- AST -------------------------------------------------------------------

struct Regex::Node {
  enum class Type {
    kChar,     // literal byte
    kAny,      // .
    kClass,    // [...] or \d etc.
    kConcat,   // sequence
    kAlt,      // a|b|c
    kRepeat,   // child{min,max}; max == -1 means unbounded
    kGroup,    // (...) capturing, index
    kAnchorStart,
    kAnchorEnd,
  };

  Type type = Type::kChar;
  char ch = 0;
  std::bitset<256> klass;
  std::vector<std::shared_ptr<const Node>> children;
  int min = 0;
  int max = -1;
  int group_index = 0;
};

namespace {

using Node = Regex::Node;
using NodePtr = std::shared_ptr<const Node>;

class Parser {
 public:
  Parser(std::string_view pattern, std::string* error) : pattern_(pattern), error_(error) {}

  NodePtr Parse(int* capture_count) {
    group_count_ = 0;
    NodePtr node = ParseAlternation();
    if (node != nullptr && pos_ != pattern_.size()) {
      Fail("unexpected ')'");
      return nullptr;
    }
    *capture_count = group_count_;
    return node;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }

  void Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    failed_ = true;
  }

  NodePtr ParseAlternation() {
    std::vector<NodePtr> branches;
    branches.push_back(ParseConcat());
    while (!failed_ && !AtEnd() && Peek() == '|') {
      ++pos_;
      branches.push_back(ParseConcat());
    }
    if (failed_) {
      return nullptr;
    }
    if (branches.size() == 1) {
      return branches[0];
    }
    auto node = std::make_shared<Node>();
    node->type = Node::Type::kAlt;
    node->children = std::move(branches);
    return node;
  }

  NodePtr ParseConcat() {
    std::vector<NodePtr> parts;
    while (!failed_ && !AtEnd() && Peek() != '|' && Peek() != ')') {
      NodePtr part = ParseRepeat();
      if (part == nullptr) {
        return nullptr;
      }
      parts.push_back(std::move(part));
    }
    if (failed_) {
      return nullptr;
    }
    auto node = std::make_shared<Node>();
    node->type = Node::Type::kConcat;
    node->children = std::move(parts);
    return node;
  }

  NodePtr ParseRepeat() {
    NodePtr atom = ParseAtom();
    if (atom == nullptr) {
      return nullptr;
    }
    while (!AtEnd()) {
      char c = Peek();
      int min = 0;
      int max = -1;
      if (c == '*') {
        min = 0;
        max = -1;
      } else if (c == '+') {
        min = 1;
        max = -1;
      } else if (c == '?') {
        min = 0;
        max = 1;
      } else if (c == '{') {
        size_t save = pos_;
        if (!ParseBrace(&min, &max)) {
          pos_ = save;
          break;
        }
        auto node = std::make_shared<Node>();
        node->type = Node::Type::kRepeat;
        node->min = min;
        node->max = max;
        node->children.push_back(std::move(atom));
        atom = std::move(node);
        continue;
      } else {
        break;
      }
      ++pos_;
      if (atom->type == Node::Type::kAnchorStart || atom->type == Node::Type::kAnchorEnd) {
        Fail("quantifier on anchor");
        return nullptr;
      }
      auto node = std::make_shared<Node>();
      node->type = Node::Type::kRepeat;
      node->min = min;
      node->max = max;
      node->children.push_back(std::move(atom));
      atom = std::move(node);
    }
    return atom;
  }

  // Parses {m}, {m,}, {m,n}. Returns false (without reporting) if the brace
  // is not a valid quantifier — it is then treated as a literal '{'.
  bool ParseBrace(int* min, int* max) {
    assert(Peek() == '{');
    size_t p = pos_ + 1;
    int m = 0;
    bool any = false;
    while (p < pattern_.size() && pattern_[p] >= '0' && pattern_[p] <= '9') {
      m = m * 10 + (pattern_[p] - '0');
      ++p;
      any = true;
    }
    if (!any) {
      return false;
    }
    int n = m;
    if (p < pattern_.size() && pattern_[p] == ',') {
      ++p;
      if (p < pattern_.size() && pattern_[p] == '}') {
        n = -1;
      } else {
        n = 0;
        bool any2 = false;
        while (p < pattern_.size() && pattern_[p] >= '0' && pattern_[p] <= '9') {
          n = n * 10 + (pattern_[p] - '0');
          ++p;
          any2 = true;
        }
        if (!any2) {
          return false;
        }
      }
    }
    if (p >= pattern_.size() || pattern_[p] != '}') {
      return false;
    }
    if (n != -1 && n < m) {
      return false;
    }
    pos_ = p + 1;
    *min = m;
    *max = n;
    return true;
  }

  NodePtr ParseAtom() {
    if (AtEnd()) {
      Fail("dangling quantifier or empty atom");
      return nullptr;
    }
    char c = Peek();
    switch (c) {
      case '(': {
        ++pos_;
        if (group_count_ + 1 >= Regex::kMaxGroups) {
          Fail("too many groups");
          return nullptr;
        }
        int index = ++group_count_;
        NodePtr body = ParseAlternation();
        if (body == nullptr) {
          return nullptr;
        }
        if (AtEnd() || Peek() != ')') {
          Fail("missing ')'");
          return nullptr;
        }
        ++pos_;
        auto node = std::make_shared<Node>();
        node->type = Node::Type::kGroup;
        node->group_index = index;
        node->children.push_back(std::move(body));
        return node;
      }
      case '[':
        return ParseClass();
      case '.': {
        ++pos_;
        auto node = std::make_shared<Node>();
        node->type = Node::Type::kAny;
        return node;
      }
      case '^': {
        ++pos_;
        auto node = std::make_shared<Node>();
        node->type = Node::Type::kAnchorStart;
        return node;
      }
      case '$': {
        ++pos_;
        auto node = std::make_shared<Node>();
        node->type = Node::Type::kAnchorEnd;
        return node;
      }
      case '*':
      case '+':
      case '?':
        Fail("quantifier with nothing to repeat");
        return nullptr;
      case '\\':
        return ParseEscape();
      default: {
        ++pos_;
        auto node = std::make_shared<Node>();
        node->type = Node::Type::kChar;
        node->ch = c;
        return node;
      }
    }
  }

  static void AddClassShorthand(std::bitset<256>* klass, char c) {
    switch (c) {
      case 'd':
        for (int i = '0'; i <= '9'; ++i) {
          klass->set(static_cast<size_t>(i));
        }
        break;
      case 'w':
        for (int i = '0'; i <= '9'; ++i) {
          klass->set(static_cast<size_t>(i));
        }
        for (int i = 'a'; i <= 'z'; ++i) {
          klass->set(static_cast<size_t>(i));
        }
        for (int i = 'A'; i <= 'Z'; ++i) {
          klass->set(static_cast<size_t>(i));
        }
        klass->set('_');
        break;
      case 's':
        klass->set(' ');
        klass->set('\t');
        klass->set('\n');
        klass->set('\r');
        klass->set('\f');
        klass->set('\v');
        break;
      default:
        break;
    }
  }

  NodePtr ParseEscape() {
    assert(Peek() == '\\');
    ++pos_;
    if (AtEnd()) {
      Fail("trailing backslash");
      return nullptr;
    }
    char c = Peek();
    ++pos_;
    auto node = std::make_shared<Node>();
    switch (c) {
      case 'd':
      case 'w':
      case 's': {
        node->type = Node::Type::kClass;
        AddClassShorthand(&node->klass, c);
        return node;
      }
      case 'D':
      case 'W':
      case 'S': {
        node->type = Node::Type::kClass;
        std::bitset<256> inner;
        AddClassShorthand(&inner, static_cast<char>(c - 'A' + 'a'));
        node->klass = ~inner;
        return node;
      }
      case 'n':
        node->type = Node::Type::kChar;
        node->ch = '\n';
        return node;
      case 't':
        node->type = Node::Type::kChar;
        node->ch = '\t';
        return node;
      case 'r':
        node->type = Node::Type::kChar;
        node->ch = '\r';
        return node;
      default:
        node->type = Node::Type::kChar;
        node->ch = c;
        return node;
    }
  }

  NodePtr ParseClass() {
    assert(Peek() == '[');
    ++pos_;
    auto node = std::make_shared<Node>();
    node->type = Node::Type::kClass;
    bool negated = false;
    if (!AtEnd() && Peek() == '^') {
      negated = true;
      ++pos_;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) {
        Fail("missing ']'");
        return nullptr;
      }
      char c = Peek();
      if (c == ']' && !first) {
        ++pos_;
        break;
      }
      first = false;
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) {
          Fail("trailing backslash in class");
          return nullptr;
        }
        char esc = Peek();
        ++pos_;
        if (esc == 'd' || esc == 'w' || esc == 's') {
          AddClassShorthand(&node->klass, esc);
        } else if (esc == 'n') {
          node->klass.set('\n');
        } else if (esc == 't') {
          node->klass.set('\t');
        } else if (esc == 'r') {
          node->klass.set('\r');
        } else {
          node->klass.set(static_cast<uint8_t>(esc));
        }
        continue;
      }
      ++pos_;
      // Range?
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() && pattern_[pos_ + 1] != ']') {
        ++pos_;
        char hi = Peek();
        ++pos_;
        if (static_cast<uint8_t>(hi) < static_cast<uint8_t>(c)) {
          Fail("inverted range in class");
          return nullptr;
        }
        for (int v = static_cast<uint8_t>(c); v <= static_cast<uint8_t>(hi); ++v) {
          node->klass.set(static_cast<size_t>(v));
        }
      } else {
        node->klass.set(static_cast<uint8_t>(c));
      }
    }
    if (negated) {
      node->klass = ~node->klass;
    }
    return node;
  }

  std::string_view pattern_;
  std::string* error_;
  size_t pos_ = 0;
  int group_count_ = 0;
  bool failed_ = false;
};

// ---- Matcher ----------------------------------------------------------------

struct MatchState {
  std::string_view subject;
  std::vector<std::pair<int, int>>* groups;
};

// Continuation-passing backtracking matcher. Returns true if node matches at
// pos and the continuation succeeds for the position after the match.
bool MatchNode(const Node* node, MatchState& state, size_t pos,
               const std::function<bool(size_t)>& k) {
  switch (node->type) {
    case Node::Type::kChar:
      return pos < state.subject.size() && state.subject[pos] == node->ch && k(pos + 1);
    case Node::Type::kAny:
      return pos < state.subject.size() && k(pos + 1);
    case Node::Type::kClass:
      return pos < state.subject.size() &&
             node->klass.test(static_cast<uint8_t>(state.subject[pos])) && k(pos + 1);
    case Node::Type::kAnchorStart:
      return pos == 0 && k(pos);
    case Node::Type::kAnchorEnd:
      return pos == state.subject.size() && k(pos);
    case Node::Type::kConcat: {
      // Recursive chain over the children.
      std::function<bool(size_t, size_t)> chain = [&](size_t index, size_t p) -> bool {
        if (index == node->children.size()) {
          return k(p);
        }
        return MatchNode(node->children[index].get(), state, p,
                         [&, index](size_t next) { return chain(index + 1, next); });
      };
      return chain(0, pos);
    }
    case Node::Type::kAlt: {
      for (const auto& child : node->children) {
        if (MatchNode(child.get(), state, pos, k)) {
          return true;
        }
      }
      return false;
    }
    case Node::Type::kGroup: {
      int index = node->group_index;
      auto saved = (*state.groups)[static_cast<size_t>(index)];
      bool ok = MatchNode(node->children[0].get(), state, pos, [&](size_t end) {
        auto inner_saved = (*state.groups)[static_cast<size_t>(index)];
        (*state.groups)[static_cast<size_t>(index)] = {static_cast<int>(pos),
                                                       static_cast<int>(end)};
        if (k(end)) {
          return true;
        }
        (*state.groups)[static_cast<size_t>(index)] = inner_saved;
        return false;
      });
      if (!ok) {
        (*state.groups)[static_cast<size_t>(index)] = saved;
      }
      return ok;
    }
    case Node::Type::kRepeat: {
      const Node* child = node->children[0].get();
      // Greedy: try as many as possible, then backtrack.
      std::function<bool(size_t, int)> rep = [&](size_t p, int count) -> bool {
        if (node->max < 0 || count < node->max) {
          // Try one more (require progress to avoid infinite loops on
          // empty-width matches).
          if (MatchNode(child, state, p, [&](size_t next) {
                if (next == p && count + 1 >= node->min) {
                  return false;  // empty match adds nothing; stop extending
                }
                return rep(next, count + 1);
              })) {
            return true;
          }
        }
        return count >= node->min && k(p);
      };
      return rep(pos, 0);
    }
  }
  return false;
}

}  // namespace

std::optional<Regex> Regex::Compile(std::string_view pattern, std::string* error) {
  std::string local_error;
  Parser parser(pattern, error != nullptr ? error : &local_error);
  int captures = 0;
  NodePtr root = parser.Parse(&captures);
  if (root == nullptr) {
    return std::nullopt;
  }
  Regex regex;
  regex.pattern_ = std::string(pattern);
  regex.root_ = std::move(root);
  regex.capture_count_ = captures;
  regex.anchored_start_ = !pattern.empty() && pattern.front() == '^';
  return regex;
}

MatchResult Regex::Run(std::string_view subject, size_t start) const {
  MatchResult result;
  result.groups.assign(static_cast<size_t>(capture_count_) + 1, {-1, -1});
  MatchState state{subject, &result.groups};
  size_t match_end = 0;
  bool ok = MatchNode(root_.get(), state, start, [&](size_t end) {
    match_end = end;
    return true;
  });
  if (!ok) {
    return MatchResult{};
  }
  result.matched = true;
  result.groups[0] = {static_cast<int>(start), static_cast<int>(match_end)};
  return result;
}

MatchResult Regex::Match(std::string_view subject) const { return Run(subject, 0); }

MatchResult Regex::Search(std::string_view subject) const {
  size_t limit = anchored_start_ ? 0 : subject.size();
  for (size_t start = 0; start <= limit; ++start) {
    MatchResult result = Run(subject, start);
    if (result.matched) {
      return result;
    }
  }
  return MatchResult{};
}

}  // namespace fob
