#include "src/regex/rewrite.h"

namespace fob {

std::optional<RewriteRule> RewriteRule::Make(std::string_view pattern, std::string replacement,
                                             std::string* error) {
  std::optional<Regex> regex = Regex::Compile(pattern, error);
  if (!regex) {
    return std::nullopt;
  }
  return RewriteRule{std::move(*regex), std::move(replacement)};
}

std::string ExpandReplacement(std::string_view replacement, std::string_view subject,
                              const MatchResult& match) {
  std::string out;
  for (size_t i = 0; i < replacement.size(); ++i) {
    char c = replacement[i];
    if (c != '$' || i + 1 >= replacement.size()) {
      out.push_back(c);
      continue;
    }
    char next = replacement[i + 1];
    if (next == '$') {
      out.push_back('$');
      ++i;
      continue;
    }
    if (next >= '0' && next <= '9') {
      int index = next - '0';
      out.append(match.Group(subject, index));
      ++i;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::optional<std::string> ApplyRules(const std::vector<RewriteRule>& rules,
                                      std::string_view url) {
  for (const RewriteRule& rule : rules) {
    MatchResult match = rule.pattern.Search(url);
    if (match.matched) {
      return ExpandReplacement(rule.replacement, url, match);
    }
  }
  return std::nullopt;
}

}  // namespace fob
