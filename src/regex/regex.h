// Backtracking regular-expression engine with capture groups.
//
// This is the substrate for mini-Apache's mod_rewrite (§4.3): rewrite match
// patterns are POSIX-ish regexes whose parenthesized captures produce the
// offset pairs that overflow the 10-entry buffer in the vulnerable code.
//
// Supported syntax:
//   literals, '.', escapes (\d \D \w \W \s \S \. \\ ...), character classes
//   [a-z] [^...], quantifiers * + ? and {m}, {m,}, {m,n} (greedy, with
//   backtracking), groups (...) (capturing, up to kMaxGroups), alternation
//   |, anchors ^ $.
//
// Match() anchors at position 0; Search() finds the leftmost match. Group 0
// is the whole match; unmatched groups report offsets (-1,-1).

#ifndef SRC_REGEX_REGEX_H_
#define SRC_REGEX_REGEX_H_

#include <bitset>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fob {

struct MatchResult {
  bool matched = false;
  // groups[i] = {start, end} byte offsets into the subject; {-1,-1} if the
  // group did not participate. groups[0] is the whole match.
  std::vector<std::pair<int, int>> groups;

  int GroupCount() const { return static_cast<int>(groups.size()); }
  std::string_view Group(std::string_view subject, int i) const {
    if (i < 0 || i >= GroupCount() || groups[static_cast<size_t>(i)].first < 0) {
      return {};
    }
    auto [s, e] = groups[static_cast<size_t>(i)];
    return subject.substr(static_cast<size_t>(s), static_cast<size_t>(e - s));
  }
};

class Regex {
 public:
  static constexpr int kMaxGroups = 64;

  // AST node; defined in regex.cc. Public so the matcher implementation can
  // name it, but opaque to clients.
  struct Node;

  // Compiles pattern; returns nullopt and fills *error on bad syntax.
  static std::optional<Regex> Compile(std::string_view pattern, std::string* error = nullptr);

  Regex(Regex&&) = default;
  Regex& operator=(Regex&&) = default;

  // Anchored match at the start of subject (may end anywhere).
  MatchResult Match(std::string_view subject) const;
  // Leftmost match anywhere in subject.
  MatchResult Search(std::string_view subject) const;

  // Number of capturing groups, excluding group 0.
  int capture_count() const { return capture_count_; }
  const std::string& pattern() const { return pattern_; }

 private:
  Regex() = default;

  MatchResult Run(std::string_view subject, size_t start) const;

  std::string pattern_;
  std::shared_ptr<const Node> root_;  // shared: Regex is copy-cheap via move
  int capture_count_ = 0;
  bool anchored_start_ = false;
};

}  // namespace fob

#endif  // SRC_REGEX_REGEX_H_
