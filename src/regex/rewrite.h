// URL rewrite rules (mini mod_rewrite).
//
// A rule pairs a match pattern (regex with captures) and a replacement that
// may reference captured substrings as $0..$9 — a single digit each, which
// is why the paper's Apache never reads past the first ten offset pairs even
// when the vulnerable code wrote more (§4.3.2). ApplyRules is the host-side
// reference; the vulnerable offset-buffer version lives in src/apps/apache.h.

#ifndef SRC_REGEX_REWRITE_H_
#define SRC_REGEX_REWRITE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/regex/regex.h"

namespace fob {

struct RewriteRule {
  Regex pattern;
  std::string replacement;

  static std::optional<RewriteRule> Make(std::string_view pattern, std::string replacement,
                                         std::string* error = nullptr);
};

// Substitutes $0..$9 in replacement from the match result. Unmatched $n
// substitutes the empty string. "$$" escapes a literal '$'.
std::string ExpandReplacement(std::string_view replacement, std::string_view subject,
                              const MatchResult& match);

// Applies the first matching rule; nullopt if none match.
std::optional<std::string> ApplyRules(const std::vector<RewriteRule>& rules, std::string_view url);

}  // namespace fob

#endif  // SRC_REGEX_REWRITE_H_
