#include "src/harness/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace fob {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_line = [&] {
    os << '+';
    for (size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[i])) << cells[i] << " |";
    }
    os << '\n';
  };
  print_line();
  print_row(headers_);
  print_line();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_line();
}

std::string Table::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

std::string Table::Cell(double mean, double stddev_pct) {
  std::ostringstream os;
  os << Num(mean) << " +/- " << Num(stddev_pct, 2) << "%";
  return os.str();
}

std::string Table::Num(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace fob
