#include "src/harness/stats.h"

#include <sstream>

namespace fob {

TimingStats ComputeStats(const std::vector<double>& samples_ms) {
  TimingStats stats;
  stats.samples = samples_ms.size();
  if (samples_ms.empty()) {
    return stats;
  }
  double sum = 0;
  for (double s : samples_ms) {
    sum += s;
  }
  stats.mean_ms = sum / static_cast<double>(samples_ms.size());
  if (samples_ms.size() > 1 && stats.mean_ms > 0) {
    double var = 0;
    for (double s : samples_ms) {
      var += (s - stats.mean_ms) * (s - stats.mean_ms);
    }
    var /= static_cast<double>(samples_ms.size() - 1);
    stats.stddev_pct = 100.0 * std::sqrt(var) / stats.mean_ms;
  }
  return stats;
}

TimingStats MeasureMs(const std::function<void()>& fn, size_t reps) {
  std::vector<double> samples;
  samples.reserve(reps);
  // One warmup run keeps first-touch page allocation out of the samples.
  fn();
  for (size_t i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.ElapsedMs());
  }
  return ComputeStats(samples);
}

TimingStats MeasureMsWithCleanup(const std::function<void()>& fn,
                                 const std::function<void()>& cleanup, size_t reps) {
  std::vector<double> samples;
  samples.reserve(reps);
  fn();
  cleanup();
  for (size_t i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.ElapsedMs());
    cleanup();
  }
  return ComputeStats(samples);
}

PairStats MeasurePairMs(const std::function<void()>& fn_a, const std::function<void()>& fn_b,
                        size_t batch, size_t reps) {
  if (batch == 0) {
    batch = 1;
  }
  std::vector<double> samples_a;
  std::vector<double> samples_b;
  samples_a.reserve(reps);
  samples_b.reserve(reps);
  // Warm both sides before timing either.
  fn_a();
  fn_b();
  for (size_t i = 0; i < reps; ++i) {
    {
      Stopwatch watch;
      for (size_t j = 0; j < batch; ++j) {
        fn_a();
      }
      samples_a.push_back(watch.ElapsedMs() / static_cast<double>(batch));
    }
    {
      Stopwatch watch;
      for (size_t j = 0; j < batch; ++j) {
        fn_b();
      }
      samples_b.push_back(watch.ElapsedMs() / static_cast<double>(batch));
    }
  }
  return PairStats{ComputeStats(samples_a), ComputeStats(samples_b)};
}

PairStats MeasurePairMsWithCleanup(const std::function<void()>& fn_a,
                                   const std::function<void()>& cleanup_a,
                                   const std::function<void()>& fn_b,
                                   const std::function<void()>& cleanup_b, size_t reps) {
  std::vector<double> samples_a;
  std::vector<double> samples_b;
  fn_a();
  cleanup_a();
  fn_b();
  cleanup_b();
  for (size_t i = 0; i < reps; ++i) {
    {
      Stopwatch watch;
      fn_a();
      samples_a.push_back(watch.ElapsedMs());
    }
    cleanup_a();
    {
      Stopwatch watch;
      fn_b();
      samples_b.push_back(watch.ElapsedMs());
    }
    cleanup_b();
  }
  return PairStats{ComputeStats(samples_a), ComputeStats(samples_b)};
}

std::string TimingStats::ToString() const {
  std::ostringstream os;
  os.precision(3);
  os << mean_ms << " ms +/- ";
  os.precision(2);
  os << stddev_pct << "%";
  return os.str();
}

}  // namespace fob
