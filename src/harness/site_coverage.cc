#include "src/harness/site_coverage.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fob {

namespace {

// SITES_static.json is machine-generated with a fixed shape (fob_analyze
// pass 3), so the loader only needs two scans: every `"id": "0x..."` value
// and the `"unit_count"/"frame_count"` scalars. Not a general JSON parser
// on purpose — no third-party dependency, and a malformed file simply
// yields nullopt.

std::optional<uint64_t> ScanHexAfter(const std::string& text, size_t pos) {
  size_t open = text.find("\"0x", pos);
  if (open == std::string::npos) {
    return std::nullopt;
  }
  size_t close = text.find('"', open + 1);
  if (close == std::string::npos) {
    return std::nullopt;
  }
  const std::string hex = text.substr(open + 3, close - open - 3);
  if (hex.empty() || hex.size() > 16) {
    return std::nullopt;
  }
  return std::strtoull(hex.c_str(), nullptr, 16);
}

size_t ScanCountAfter(const std::string& text, const std::string& key) {
  size_t pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) {
    return 0;
  }
  pos = text.find(':', pos);
  if (pos == std::string::npos) {
    return 0;
  }
  return static_cast<size_t>(std::strtoull(text.c_str() + pos + 1, nullptr, 10));
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::optional<StaticSiteUniverse> LoadStaticSiteUniverse(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  StaticSiteUniverse universe;
  universe.units = ScanCountAfter(text, "unit_count");
  universe.frames = ScanCountAfter(text, "frame_count");
  size_t pos = 0;
  while (true) {
    size_t key = text.find("\"id\"", pos);
    if (key == std::string::npos) {
      break;
    }
    std::optional<uint64_t> id = ScanHexAfter(text, key + 4);
    if (!id.has_value()) {
      return std::nullopt;  // malformed entry: refuse a partial universe
    }
    universe.ids.insert(*id);
    pos = key + 4;
  }
  if (universe.ids.empty()) {
    return std::nullopt;
  }
  return universe;
}

std::string DefaultUniversePath() {
  if (const char* env = std::getenv("FOB_SITES_STATIC")) {
    if (std::ifstream(env)) {
      return env;
    }
    return "";
  }
  const std::string fallback = "SITES_static.json";
  return std::ifstream(fallback) ? fallback : "";
}

std::string SiteCoverage::Summary() const {
  std::ostringstream os;
  os << "site coverage: " << exercised << "/" << universe
     << " static sites exercised";
  if (universe > 0) {
    os << " (" << std::fixed;
    os.precision(2);
    os << 100.0 * static_cast<double>(exercised) / static_cast<double>(universe)
       << "%)";
  }
  if (!phantoms.empty()) {
    os << "; " << phantoms.size() << " PHANTOM site(s) outside the static universe";
  }
  return os.str();
}

SiteCoverage ComputeSiteCoverage(const std::vector<MemSiteStat>& exercised,
                                 const StaticSiteUniverse& universe) {
  SiteCoverage coverage;
  coverage.universe = universe.size();
  std::set<SiteId> seen;
  for (const MemSiteStat& stat : exercised) {
    if (!seen.insert(stat.site).second) {
      continue;
    }
    if (universe.Contains(stat.site)) {
      ++coverage.exercised;
    } else {
      coverage.phantoms.push_back(stat);
    }
  }
  return coverage;
}

std::string DynamicSitesJson(const std::vector<MemSiteStat>& exercised) {
  std::string out = "{\n \"schema\": 1,\n \"generated_by\": \"bench_sweep sites\",\n \"sites\": [";
  std::set<SiteId> seen;
  bool first = true;
  for (const MemSiteStat& stat : exercised) {
    if (!seen.insert(stat.site).second) {
      continue;
    }
    if (!first) {
      out += ",";
    }
    first = false;
    char id[32];
    std::snprintf(id, sizeof(id), "0x%016llx",
                  static_cast<unsigned long long>(stat.site));
    out += "\n  {\"id\": \"";
    out += id;
    out += "\", \"unit\": ";
    AppendJsonString(out, stat.unit_name);
    out += ", \"frame\": ";
    AppendJsonString(out, stat.function);
    out += ", \"kind\": \"";
    out += stat.is_write ? "write" : "read";
    out += "\"}";
  }
  out += "\n ]\n}\n";
  return out;
}

}  // namespace fob
