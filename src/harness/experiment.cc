#include "src/harness/experiment.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace fob {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kContinued:
      return "continued (acceptable)";
    case Outcome::kCrashed:
      return "crashed (segfault)";
    case Outcome::kTerminated:
      return "terminated (bounds error)";
    case Outcome::kHang:
      return "hang";
    case Outcome::kWrongOutput:
      return "continued (WRONG output)";
  }
  return "?";
}

Outcome ClassifyOutcome(const RunResult& result, bool output_acceptable) {
  switch (result.status) {
    case ExitStatus::kOk:
      return output_acceptable ? Outcome::kContinued : Outcome::kWrongOutput;
    case ExitStatus::kBoundsTerminated:
      return Outcome::kTerminated;
    case ExitStatus::kBudgetExhausted:
      return Outcome::kHang;
    case ExitStatus::kSegfault:
    case ExitStatus::kStackSmash:
    case ExitStatus::kHeapCorruption:
    case ExitStatus::kOtherFault:
      return Outcome::kCrashed;
  }
  return Outcome::kWrongOutput;
}

namespace {

constexpr uint64_t kHangBudget = 5'000'000;

AttackReport ReportFrom(const RunResult& result, bool output_acceptable, bool subsequent_ok,
                        const MemLog* log) {
  AttackReport report;
  report.outcome = ClassifyOutcome(result, output_acceptable);
  report.subsequent_requests_ok = result.ok() && subsequent_ok;
  report.possible_code_injection = result.possible_code_injection;
  report.detail = result.detail;
  if (log != nullptr) {
    report.memory_errors_logged = log->total_errors();
    for (const auto& [site, stat] : log->sites()) {
      report.error_sites.push_back(stat);
    }
    std::sort(report.error_sites.begin(), report.error_sites.end(),
              [](const MemSiteStat& a, const MemSiteStat& b) {
                if (a.count != b.count) {
                  return a.count > b.count;
                }
                return std::tie(a.unit_name, a.function, a.is_write) <
                       std::tie(b.unit_name, b.function, b.is_write);
              });
  }
  return report;
}

}  // namespace

AttackReport RunStreamExperiment(const ServerFactory& factory, const TrafficStream& stream) {
  std::unique_ptr<ServerApp> app;
  bool output_acceptable = true;
  bool subsequent_ok = true;
  RunResult result = RunAsProcess([&] {
    // Construction is server startup — for Pine and MC, already part of
    // the attack (the trigger is in the mailbox / config).
    app = factory();
    app->memory().set_access_budget(kHangBudget);
    std::vector<uint64_t> sessions;  // client ids with an open session
    for (const ServerRequest& request : stream.requests) {
      if (std::find(sessions.begin(), sessions.end(), request.client_id) == sessions.end()) {
        sessions.push_back(request.client_id);
        app->BeginSession(request.client_id);
      }
      ServerResponse response = app->Handle(request);
      if (request.tag == RequestTag::kAttack) {
        output_acceptable = output_acceptable && response.acceptable;
      } else if (request.tag == RequestTag::kLegit) {
        subsequent_ok = subsequent_ok && response.acceptable;
      }
    }
    for (uint64_t client : sessions) {
      app->EndSession(client);
    }
  });
  const MemLog* log = app != nullptr ? &app->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

AttackReport RunAttackExperiment(Server server, const PolicySpec& spec) {
  return RunStreamExperiment([&] { return MakeAttackServer(server, spec); },
                             MakeAttackStream(server));
}

FrontendReport RunFrontendExperiment(const ServerFactory& factory, const TrafficStream& stream,
                                     const Frontend::Options& options) {
  Frontend frontend(factory, options);
  std::vector<uint64_t> clients;  // distinct ids, first-seen order
  std::set<uint64_t> seen;
  for (const ServerRequest& request : stream.requests) {
    if (seen.insert(request.client_id).second) {
      clients.push_back(request.client_id);
    }
    frontend.Connect(request.client_id).ClientSend(request.Serialize());
  }
  for (uint64_t client : clients) {
    frontend.Connect(client).ClientClose();
  }
  frontend.Run();

  // Reassemble stream order from the per-client FIFOs.
  std::map<uint64_t, std::deque<std::string>> lines;
  for (uint64_t client : clients) {
    std::vector<std::string> received = frontend.Connect(client).ClientReceiveAll();
    lines[client] = std::deque<std::string>(received.begin(), received.end());
  }
  FrontendReport report;
  report.responses.reserve(stream.requests.size());
  for (const ServerRequest& request : stream.requests) {
    std::deque<std::string>& queue = lines[request.client_id];
    ServerResponse response;  // default-constructed if the channel ran dry
    if (!queue.empty()) {
      if (auto parsed = ServerResponse::Deserialize(queue.front())) {
        response = std::move(*parsed);
      }
      queue.pop_front();
    }
    report.responses.push_back(std::move(response));
  }
  report.stats = frontend.stats();
  report.restarts = frontend.restarts();
  report.merged_log = frontend.MergedLog();
  return report;
}

}  // namespace fob
