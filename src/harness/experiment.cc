#include "src/harness/experiment.h"

#include <algorithm>
#include <tuple>
#include <memory>

#include "src/apps/apache.h"
#include "src/apps/mc.h"
#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/harness/workloads.h"
#include "src/net/imap.h"

namespace fob {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kContinued:
      return "continued (acceptable)";
    case Outcome::kCrashed:
      return "crashed (segfault)";
    case Outcome::kTerminated:
      return "terminated (bounds error)";
    case Outcome::kHang:
      return "hang";
    case Outcome::kWrongOutput:
      return "continued (WRONG output)";
  }
  return "?";
}

const char* ServerName(Server server) {
  switch (server) {
    case Server::kPine:
      return "Pine";
    case Server::kApache:
      return "Apache";
    case Server::kSendmail:
      return "Sendmail";
    case Server::kMc:
      return "Midnight Commander";
    case Server::kMutt:
      return "Mutt";
  }
  return "?";
}

Outcome ClassifyOutcome(const RunResult& result, bool output_acceptable) {
  switch (result.status) {
    case ExitStatus::kOk:
      return output_acceptable ? Outcome::kContinued : Outcome::kWrongOutput;
    case ExitStatus::kBoundsTerminated:
      return Outcome::kTerminated;
    case ExitStatus::kBudgetExhausted:
      return Outcome::kHang;
    case ExitStatus::kSegfault:
    case ExitStatus::kStackSmash:
    case ExitStatus::kHeapCorruption:
    case ExitStatus::kOtherFault:
      return Outcome::kCrashed;
  }
  return Outcome::kWrongOutput;
}

namespace {

constexpr uint64_t kHangBudget = 5'000'000;

AttackReport ReportFrom(const RunResult& result, bool output_acceptable, bool subsequent_ok,
                        const MemLog* log) {
  AttackReport report;
  report.outcome = ClassifyOutcome(result, output_acceptable);
  report.subsequent_requests_ok = result.ok() && subsequent_ok;
  report.possible_code_injection = result.possible_code_injection;
  report.detail = result.detail;
  if (log != nullptr) {
    report.memory_errors_logged = log->total_errors();
    for (const auto& [site, stat] : log->sites()) {
      report.error_sites.push_back(stat);
    }
    std::sort(report.error_sites.begin(), report.error_sites.end(),
              [](const MemSiteStat& a, const MemSiteStat& b) {
                if (a.count != b.count) {
                  return a.count > b.count;
                }
                return std::tie(a.unit_name, a.function, a.is_write) <
                       std::tie(b.unit_name, b.function, b.is_write);
              });
  }
  return report;
}

AttackReport RunPine(const PolicySpec& spec) {
  std::unique_ptr<PineApp> pine;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    // The attack message is *in the mailbox*: startup itself is the attack.
    pine = std::make_unique<PineApp>(spec, MakePineMbox(6, /*include_attack=*/true));
    pine->memory().set_access_budget(kHangBudget);
    // Acceptability: the index came up with every message listed.
    output_acceptable = pine->IndexLines().size() == 7;
    // Subsequent requests: read a legitimate message, compose, move.
    auto read = pine->ReadMessage(0);
    auto compose = pine->Compose("friend0@example.org", "re: message 0", "thanks!\n");
    auto move = pine->MoveMessage(0, "saved");
    subsequent_ok = read.ok && compose.ok && move.ok && pine->FolderSize("saved") == 1;
  });
  const MemLog* log = pine != nullptr ? &pine->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

AttackReport RunApache(const PolicySpec& spec) {
  Vfs docroot = MakeApacheDocroot();
  std::unique_ptr<ApacheApp> apache;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    apache = std::make_unique<ApacheApp>(spec, &docroot, ApacheApp::DefaultConfigText());
    apache->memory().set_access_budget(kHangBudget);
    HttpResponse attack = apache->Handle(MakeHttpGet(MakeApacheAttackUrl()));
    // Acceptable: the attack request got a well-formed HTTP response (under
    // Failure Oblivious it is even byte-identical to the correct one — the
    // app tests check that stronger property; under Wrap the redirected
    // writes may degrade the attack request's own response to a 404, which
    // still leaves every legitimate user unaffected).
    output_acceptable = attack.status == 200 || attack.status == 404;
    HttpResponse legit = apache->Handle(MakeHttpGet("/index.html"));
    subsequent_ok = legit.status == 200 && legit.body.size() > 4000;
  });
  const MemLog* log = apache != nullptr ? &apache->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

AttackReport RunSendmail(const PolicySpec& spec) {
  std::unique_ptr<SendmailApp> sendmail;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    // Daemon init runs the first wakeup — already fatal for Bounds Check.
    sendmail = std::make_unique<SendmailApp>(spec);
    sendmail->memory().set_access_budget(kHangBudget);
    auto attack_responses = sendmail->HandleSession(MakeSendmailAttackSession());
    // Acceptable: the attack MAIL command was *rejected* (553), session
    // continued to QUIT.
    bool rejected = false;
    for (const std::string& response : attack_responses) {
      if (response.substr(0, 3) == "553") {
        rejected = true;
      }
    }
    output_acceptable = rejected && attack_responses.back().substr(0, 3) == "221";
    // Subsequent legitimate delivery must work.
    auto legit = sendmail->HandleSession(MakeSendmailSession("user@localhost", 64));
    subsequent_ok = sendmail->local_mailbox().size() == 1 &&
                    legit.back().substr(0, 3) == "221";
    sendmail->DaemonWakeup();  // the everyday error keeps happening
  });
  const MemLog* log = sendmail != nullptr ? &sendmail->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

AttackReport RunMc(const PolicySpec& spec) {
  std::unique_ptr<McApp> mc;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    // Config has the blank line (the everyday error): fatal for BoundsCheck
    // at startup, like the paper found.
    mc = std::make_unique<McApp>(spec, McApp::DefaultConfigText(/*with_blank_lines=*/true));
    mc->memory().set_access_budget(kHangBudget);
    auto listing = mc->BrowseTgz(MakeMcAttackTgz());
    // Acceptable: the browse returned a listing (symlinks shown dangling is
    // the anticipated case).
    output_acceptable = listing.ok && listing.rows.size() == 6;
    // Subsequent file management must work.
    MakeMcTree(mc->fs(), "/home/user/tree", 256 << 10);
    bool copied = mc->Copy("/home/user/tree", "/home/user/tree2");
    bool made = mc->MkDir("/home/user/newdir");
    bool moved = mc->Move("/home/user/tree2", "/home/user/tree3");
    bool deleted = mc->Delete("/home/user/tree3");
    subsequent_ok = copied && made && moved && deleted;
  });
  const MemLog* log = mc != nullptr ? &mc->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

AttackReport RunMutt(const PolicySpec& spec) {
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("a@b", "me@here", "hello", "body\n"),
                               MailMessage::Make("c@d", "me@here", "again", "more\n")});
  imap.AddFolderUtf8("archive", {});
  std::unique_ptr<MuttApp> mutt;
  bool output_acceptable = false;
  bool subsequent_ok = false;
  RunResult result = RunAsProcess([&] {
    mutt = std::make_unique<MuttApp>(spec, &imap);
    mutt->memory().set_access_budget(kHangBudget);
    // Mutt is configured to open the attack folder at startup (§4.6.4).
    auto open = mutt->OpenFolder(MakeMuttAttackFolderName());
    // Acceptable: the open *failed* with the server's "does not exist"
    // error, handled by Mutt's standard error logic.
    output_acceptable = !open.ok && open.error.find("does not exist") != std::string::npos;
    // Subsequent requests on legitimate folders.
    auto inbox = mutt->OpenFolder("INBOX");
    auto read = mutt->ReadMessage("INBOX", 1);
    auto move = mutt->MoveMessage("INBOX", 1, "archive");
    subsequent_ok = inbox.ok && read.ok && move.ok;
  });
  const MemLog* log = mutt != nullptr ? &mutt->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

}  // namespace

AttackReport RunAttackExperiment(Server server, const PolicySpec& spec) {
  switch (server) {
    case Server::kPine:
      return RunPine(spec);
    case Server::kApache:
      return RunApache(spec);
    case Server::kSendmail:
      return RunSendmail(spec);
    case Server::kMc:
      return RunMc(spec);
    case Server::kMutt:
      return RunMutt(spec);
  }
  return AttackReport{};
}

}  // namespace fob
