#include "src/harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace fob {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kContinued:
      return "continued (acceptable)";
    case Outcome::kCrashed:
      return "crashed (segfault)";
    case Outcome::kTerminated:
      return "terminated (bounds error)";
    case Outcome::kHang:
      return "hang";
    case Outcome::kWrongOutput:
      return "continued (WRONG output)";
  }
  return "?";
}

Outcome ClassifyOutcome(const RunResult& result, bool output_acceptable) {
  switch (result.status) {
    case ExitStatus::kOk:
      return output_acceptable ? Outcome::kContinued : Outcome::kWrongOutput;
    case ExitStatus::kBoundsTerminated:
      return Outcome::kTerminated;
    case ExitStatus::kBudgetExhausted:
      return Outcome::kHang;
    case ExitStatus::kSegfault:
    case ExitStatus::kStackSmash:
    case ExitStatus::kHeapCorruption:
    case ExitStatus::kOtherFault:
      return Outcome::kCrashed;
  }
  return Outcome::kWrongOutput;
}

namespace {

constexpr uint64_t kHangBudget = 5'000'000;

AttackReport ReportFrom(const RunResult& result, bool output_acceptable, bool subsequent_ok,
                        const MemLog* log) {
  AttackReport report;
  report.outcome = ClassifyOutcome(result, output_acceptable);
  report.subsequent_requests_ok = result.ok() && subsequent_ok;
  report.possible_code_injection = result.possible_code_injection;
  report.detail = result.detail;
  if (log != nullptr) {
    report.memory_errors_logged = log->total_errors();
    for (const auto& [site, stat] : log->sites()) {
      report.error_sites.push_back(stat);
    }
    std::sort(report.error_sites.begin(), report.error_sites.end(),
              [](const MemSiteStat& a, const MemSiteStat& b) {
                if (a.count != b.count) {
                  return a.count > b.count;
                }
                return std::tie(a.unit_name, a.function, a.is_write) <
                       std::tie(b.unit_name, b.function, b.is_write);
              });
  }
  return report;
}

}  // namespace

AttackReport RunStreamExperiment(const ServerFactory& factory, const TrafficStream& stream) {
  std::unique_ptr<ServerApp> app;
  bool output_acceptable = true;
  bool subsequent_ok = true;
  RunResult result = RunAsProcess([&] {
    // Construction is server startup — for Pine and MC, already part of
    // the attack (the trigger is in the mailbox / config).
    app = factory();
    app->memory().set_access_budget(kHangBudget);
    std::vector<uint64_t> sessions;  // client ids with an open session
    for (const ServerRequest& request : stream.requests) {
      if (std::find(sessions.begin(), sessions.end(), request.client_id) == sessions.end()) {
        sessions.push_back(request.client_id);
        app->BeginSession(request.client_id);
      }
      ServerResponse response = app->Handle(request);
      if (request.tag == RequestTag::kAttack) {
        output_acceptable = output_acceptable && response.acceptable;
      } else if (request.tag == RequestTag::kLegit) {
        subsequent_ok = subsequent_ok && response.acceptable;
      }
    }
    for (uint64_t client : sessions) {
      app->EndSession(client);
    }
  });
  const MemLog* log = app != nullptr ? &app->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

AttackReport RunAttackExperiment(Server server, const PolicySpec& spec) {
  return RunStreamExperiment([&] { return MakeAttackServer(server, spec); },
                             MakeAttackStream(server));
}

namespace {

// One full pass of a stream through a frontend: send every request (client
// ids offset into the caller's namespace), close, run to completion, and
// reassemble stream-ordered responses from the per-client FIFOs — well
// defined because responses on one channel arrive in that client's request
// order (sticky lane affinity). A request whose channel ran dry (its worker
// died serving it and re-serving was impossible) yields a default-
// constructed response. Returns the distinct offset client ids in
// first-seen order so callers can drain or disconnect them.
struct StreamServeResult {
  std::vector<ServerResponse> responses;  // indexed like stream.requests
  std::vector<uint64_t> clients;          // offset ids, first-seen order
};

StreamServeResult ServeStreamThroughFrontend(Frontend& frontend, const TrafficStream& stream,
                                             uint64_t client_offset) {
  StreamServeResult result;
  std::set<uint64_t> seen;
  for (const ServerRequest& request : stream.requests) {
    uint64_t client = client_offset + request.client_id;
    if (seen.insert(client).second) {
      result.clients.push_back(client);
    }
    frontend.Connect(client).ClientSend(request.Serialize());
  }
  for (uint64_t client : result.clients) {
    frontend.Connect(client).ClientClose();
  }
  frontend.Run();

  std::map<uint64_t, std::deque<std::string>> lines;
  for (uint64_t client : result.clients) {
    std::vector<std::string> received = frontend.Connect(client).ClientReceiveAll();
    lines[client] = std::deque<std::string>(received.begin(), received.end());
  }
  result.responses.reserve(stream.requests.size());
  for (const ServerRequest& request : stream.requests) {
    std::deque<std::string>& queue = lines[client_offset + request.client_id];
    ServerResponse response;  // default-constructed if the channel ran dry
    if (!queue.empty()) {
      if (auto parsed = ServerResponse::Deserialize(queue.front())) {
        response = std::move(*parsed);
      }
      queue.pop_front();
    }
    result.responses.push_back(std::move(response));
  }
  return result;
}

}  // namespace

FrontendReport RunFrontendExperiment(const ServerFactory& factory, const TrafficStream& stream,
                                     const Frontend::Options& options) {
  Frontend frontend(factory, options);
  FrontendReport report;
  report.responses = ServeStreamThroughFrontend(frontend, stream, /*client_offset=*/0).responses;
  report.stats = frontend.stats();
  report.restarts = frontend.restarts();
  report.merged_log = frontend.MergedLog();
  return report;
}

// ---- Online context-aware policy learning ----------------------------------

AdaptiveReport RunAdaptiveExperiment(Server server, const TrafficStream& stream,
                                     const AdaptiveExperimentOptions& options) {
  AdaptivePolicyController controller(options.controller);
  // Workers are constructed under the (continuing) prior and rebound to the
  // controller's current spec before each epoch; crash replacements are
  // rebound by the frontend's factory wrapper. Exploring a terminating arm
  // therefore cannot fault worker construction, even for servers whose
  // startup is part of the attack (Pine's mailbox, MC's config).
  Frontend frontend(
      MakeServerAppFactory(server, PolicySpec(options.controller.prior), options.setup),
      options.frontend);

  AdaptiveReport report;
  uint64_t restarts_before = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    auto epoch_start = std::chrono::steady_clock::now();
    AdaptiveEpochTrace entry;
    entry.epoch = epoch;
    entry.spec = controller.CurrentSpec();
    frontend.Rebind(entry.spec);

    // Distinct id namespace per epoch (channels half-close at end of
    // stream and cannot be reused); a stream's client ids stay well below
    // the stride. The epoch's clients are disconnected once drained, so
    // channel polling cost stays proportional to one epoch's client count.
    StreamServeResult served =
        ServeStreamThroughFrontend(frontend, stream, (epoch + 1) * (uint64_t{1} << 32));
    for (size_t i = 0; i < stream.requests.size(); ++i) {
      const ServerRequest& request = stream.requests[i];
      if (request.tag == RequestTag::kAttack) {
        entry.attack_acceptable = entry.attack_acceptable && served.responses[i].acceptable;
      } else if (request.tag == RequestTag::kLegit) {
        entry.legit_ok = entry.legit_ok && served.responses[i].acceptable;
      }
    }
    for (uint64_t client : served.clients) {
      frontend.Disconnect(client);
    }

    frontend.FeedSiteObservations(controller);
    EpochVerdict verdict;
    verdict.attack_acceptable = entry.attack_acceptable;
    verdict.legit_ok = entry.legit_ok;
    verdict.restarts = frontend.restarts() - restarts_before;
    restarts_before = frontend.restarts();
    entry.restarts = verdict.restarts;
    entry.errors = controller.EndEpoch(verdict);
    entry.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                              epoch_start)
                        .count();
    report.trace.push_back(std::move(entry));
  }

  report.sites = controller.sites();
  report.learned = controller.BestSpec();
  report.validation = RunStreamExperiment(
      MakeServerAppFactory(server, report.learned, options.setup), stream);
  return report;
}

std::string AdaptiveReport::ToTraceString() const {
  std::ostringstream os;
  os << "Adaptive policy learning: " << trace.size() << " epochs, " << sites.size()
     << " tracked sites\n";
  for (size_t i = 0; i < sites.size(); ++i) {
    os << "  site " << i << ": " << sites[i].Label() << " (" << sites[i].total_errors
       << " total errors" << (sites[i].crash_tainted ? ", terminate arms retired" : "") << ")\n";
  }
  for (const AdaptiveEpochTrace& entry : trace) {
    os << "epoch " << entry.epoch << ":";
    for (const AdaptiveSiteState& site : sites) {
      os << " " << PolicyName(entry.spec.Resolve(site.site));
    }
    os << " | errors " << entry.errors << ", restarts " << entry.restarts << ", "
       << (entry.attack_acceptable && entry.legit_ok ? "acceptable" : "NOT acceptable") << ", "
       << std::fixed << std::setprecision(1) << entry.wall_ms << " ms\n";
    os.unsetf(std::ios_base::floatfield);
  }
  os << "learned:";
  for (const AdaptiveSiteState& site : sites) {
    os << " " << PolicyName(learned.Resolve(site.site));
  }
  os << " | validation " << OutcomeName(validation.outcome) << ", "
     << validation.memory_errors_logged << " memory errors, subsequent requests "
     << (validation.subsequent_requests_ok ? "ok" : "FAILED") << "\n";
  return os.str();
}

}  // namespace fob
