#include "src/harness/experiment.h"

#include <algorithm>
#include <tuple>

namespace fob {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kContinued:
      return "continued (acceptable)";
    case Outcome::kCrashed:
      return "crashed (segfault)";
    case Outcome::kTerminated:
      return "terminated (bounds error)";
    case Outcome::kHang:
      return "hang";
    case Outcome::kWrongOutput:
      return "continued (WRONG output)";
  }
  return "?";
}

Outcome ClassifyOutcome(const RunResult& result, bool output_acceptable) {
  switch (result.status) {
    case ExitStatus::kOk:
      return output_acceptable ? Outcome::kContinued : Outcome::kWrongOutput;
    case ExitStatus::kBoundsTerminated:
      return Outcome::kTerminated;
    case ExitStatus::kBudgetExhausted:
      return Outcome::kHang;
    case ExitStatus::kSegfault:
    case ExitStatus::kStackSmash:
    case ExitStatus::kHeapCorruption:
    case ExitStatus::kOtherFault:
      return Outcome::kCrashed;
  }
  return Outcome::kWrongOutput;
}

namespace {

constexpr uint64_t kHangBudget = 5'000'000;

AttackReport ReportFrom(const RunResult& result, bool output_acceptable, bool subsequent_ok,
                        const MemLog* log) {
  AttackReport report;
  report.outcome = ClassifyOutcome(result, output_acceptable);
  report.subsequent_requests_ok = result.ok() && subsequent_ok;
  report.possible_code_injection = result.possible_code_injection;
  report.detail = result.detail;
  if (log != nullptr) {
    report.memory_errors_logged = log->total_errors();
    for (const auto& [site, stat] : log->sites()) {
      report.error_sites.push_back(stat);
    }
    std::sort(report.error_sites.begin(), report.error_sites.end(),
              [](const MemSiteStat& a, const MemSiteStat& b) {
                if (a.count != b.count) {
                  return a.count > b.count;
                }
                return std::tie(a.unit_name, a.function, a.is_write) <
                       std::tie(b.unit_name, b.function, b.is_write);
              });
  }
  return report;
}

}  // namespace

AttackReport RunStreamExperiment(const ServerFactory& factory, const TrafficStream& stream) {
  std::unique_ptr<ServerApp> app;
  bool output_acceptable = true;
  bool subsequent_ok = true;
  RunResult result = RunAsProcess([&] {
    // Construction is server startup — for Pine and MC, already part of
    // the attack (the trigger is in the mailbox / config).
    app = factory();
    app->memory().set_access_budget(kHangBudget);
    std::vector<uint64_t> sessions;  // client ids with an open session
    for (const ServerRequest& request : stream.requests) {
      if (std::find(sessions.begin(), sessions.end(), request.client_id) == sessions.end()) {
        sessions.push_back(request.client_id);
        app->BeginSession(request.client_id);
      }
      ServerResponse response = app->Handle(request);
      if (request.tag == RequestTag::kAttack) {
        output_acceptable = output_acceptable && response.acceptable;
      } else if (request.tag == RequestTag::kLegit) {
        subsequent_ok = subsequent_ok && response.acceptable;
      }
    }
    for (uint64_t client : sessions) {
      app->EndSession(client);
    }
  });
  const MemLog* log = app != nullptr ? &app->memory().log() : nullptr;
  return ReportFrom(result, output_acceptable, subsequent_ok, log);
}

AttackReport RunAttackExperiment(Server server, const PolicySpec& spec) {
  return RunStreamExperiment([&] { return MakeAttackServer(server, spec); },
                             MakeAttackStream(server));
}

}  // namespace fob
