#include "src/harness/workloads.h"

#include <sstream>
#include <utility>

#include "src/apps/apache.h"
#include "src/apps/mc.h"
#include "src/apps/server_adapters.h"
#include "src/archive/gzip.h"
#include "src/archive/tar.h"
#include "src/codec/base64.h"
#include "src/codec/utf7.h"
#include "src/codec/utf8.h"
#include "src/mail/mbox.h"

namespace fob {

size_t TrafficStream::CountTag(RequestTag tag) const {
  size_t count = 0;
  for (const ServerRequest& request : requests) {
    if (request.tag == tag) {
      ++count;
    }
  }
  return count;
}

ServerRequest MakeRequest(RequestTag tag, std::string op, std::string target,
                          std::string arg, std::string arg2) {
  ServerRequest request;
  request.tag = tag;
  request.op = std::move(op);
  request.target = std::move(target);
  request.arg = std::move(arg);
  request.arg2 = std::move(arg2);
  return request;
}

namespace {

// Shorthand keeps the stream definitions readable.
ServerRequest Req(RequestTag tag, std::string op, std::string target = "",
                  std::string arg = "", std::string arg2 = "") {
  return MakeRequest(tag, std::move(op), std::move(target), std::move(arg), std::move(arg2));
}

ServerRequest& Expect(ServerRequest& request, size_t value) {
  request.expect = std::to_string(value);
  return request;
}

// xorshift64: deterministic, seedable, good enough to shuffle op choices
// and client ids.
class StreamRng {
 public:
  explicit StreamRng(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  uint64_t Next(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

}  // namespace

TrafficStream MakeAttackStream(Server server) {
  TrafficStream stream;
  stream.server = server;
  auto add = [&stream](ServerRequest request) { stream.requests.push_back(std::move(request)); };
  switch (server) {
    case Server::kPine: {
      // The attack message is *in the mailbox*: startup itself is the
      // attack; the index must still come up with every message listed.
      ServerRequest index = Req(RequestTag::kAttack, "index");
      add(Expect(index, 7));
      add(Req(RequestTag::kLegit, "read", "0"));
      ServerRequest compose = Req(RequestTag::kLegit, "compose", "friend0@example.org",
                                  "re: message 0");
      compose.payload = "thanks!\n";
      add(compose);
      ServerRequest move = Req(RequestTag::kLegit, "move", "0", "saved");
      add(Expect(move, 1));
      break;
    }
    case Server::kApache: {
      add(Req(RequestTag::kAttack, "get", MakeApacheAttackUrl()));
      ServerRequest legit = Req(RequestTag::kLegit, "get", "/index.html");
      add(Expect(legit, 4000));
      break;
    }
    case Server::kSendmail: {
      ServerRequest attack = Req(RequestTag::kAttack, "session");
      attack.lines = MakeSendmailAttackSession();
      add(attack);
      ServerRequest legit = Req(RequestTag::kLegit, "session");
      legit.lines = MakeSendmailSession("user@localhost", 64);
      add(Expect(legit, 1));
      add(Req(RequestTag::kMaintenance, "wakeup"));  // the everyday error
      break;
    }
    case Server::kMc: {
      ServerRequest browse = Req(RequestTag::kAttack, "browse");
      browse.payload = MakeMcAttackTgz();
      add(Expect(browse, 6));
      add(Req(RequestTag::kMaintenance, "mktree", "/home/user/tree",
              std::to_string(256 << 10)));
      add(Req(RequestTag::kLegit, "copy", "/home/user/tree", "/home/user/tree2"));
      add(Req(RequestTag::kLegit, "mkdir", "/home/user/newdir"));
      add(Req(RequestTag::kLegit, "move", "/home/user/tree2", "/home/user/tree3"));
      add(Req(RequestTag::kLegit, "delete", "/home/user/tree3"));
      break;
    }
    case Server::kMutt: {
      // Mutt is configured to open the attack folder at startup (§4.6.4).
      add(Req(RequestTag::kAttack, "open", MakeMuttAttackFolderName()));
      add(Req(RequestTag::kLegit, "open", "INBOX"));
      add(Req(RequestTag::kLegit, "read", "INBOX", "1"));
      add(Req(RequestTag::kLegit, "move", "INBOX", "1", "archive"));
      break;
    }
    case Server::kArchive: {
      // The oversized recorded name overflows the header copy; the upload
      // itself (which never depended on the name) must still store all
      // three files, and the slot must stay fully usable afterwards.
      ServerRequest upload = Req(RequestTag::kAttack, "upload", "drop0");
      upload.payload = MakeArchiveAttackTgz();
      add(Expect(upload, 3));
      ServerRequest list = Req(RequestTag::kLegit, "list", "drop0");
      add(Expect(list, 3));
      ServerRequest benign = Req(RequestTag::kLegit, "upload", "drop1");
      benign.payload = MakeArchiveBenignTgz();
      add(Expect(benign, 2));
      add(Req(RequestTag::kLegit, "extract", "drop0", "pkg/readme.txt"));
      add(Req(RequestTag::kLegit, "drop", "drop1"));
      break;
    }
    case Server::kCodec: {
      // The decode bomb overflows the undersized output buffer; the
      // availability criterion is that the gateway answers this and every
      // later conversion (expect pins exact bytes only on the legit ops —
      // a truncated bomb reply is the absorbed-attack case, not a failure).
      ServerRequest bomb = Req(RequestTag::kAttack, "transcode", "u7to8", "utf7");
      bomb.payload = MakeCodecBombUtf7();
      add(bomb);
      ServerRequest legit = Req(RequestTag::kLegit, "transcode", "u7to8", "utf7");
      legit.payload = "Hello&AOk-!";
      legit.expect = *Utf7ToUtf8(legit.payload);
      add(legit);
      ServerRequest enc = Req(RequestTag::kLegit, "transcode", "b64enc", "b64");
      enc.payload = "failure oblivious";
      enc.expect = Base64Encode(enc.payload);
      add(enc);
      ServerRequest back = Req(RequestTag::kLegit, "transcode", "u8to7", "utf8");
      back.payload = MakeMuttBenignFolderName();
      back.expect = *Utf8ToUtf7(back.payload);
      add(back);
      break;
    }
  }
  return stream;
}

TrafficStream MakeMultiAttackStream(Server server) {
  TrafficStream stream;
  stream.server = server;
  auto add = [&stream](ServerRequest request) { stream.requests.push_back(std::move(request)); };
  switch (server) {
    case Server::kPine: {
      // Every move rebuilds the index with the attack message still in the
      // inbox, so each one re-runs the §4.2 overflow: three error bursts in
      // one session (startup + two moves).
      ServerRequest index = Req(RequestTag::kAttack, "index");
      add(Expect(index, 7));
      ServerRequest move1 = Req(RequestTag::kAttack, "move", "1", "saved");
      add(Expect(move1, 1));
      ServerRequest move2 = Req(RequestTag::kAttack, "move", "1", "saved");
      add(Expect(move2, 2));
      add(Req(RequestTag::kLegit, "read", "0"));
      ServerRequest compose = Req(RequestTag::kLegit, "compose", "friend0@example.org",
                                  "re: message 0");
      compose.payload = "thanks!\n";
      add(compose);
      break;
    }
    case Server::kApache: {
      for (int i = 0; i < 3; ++i) {
        add(Req(RequestTag::kAttack, "get", MakeApacheAttackUrl()));
      }
      ServerRequest small = Req(RequestTag::kLegit, "get", "/index.html");
      add(Expect(small, 4000));
      add(Req(RequestTag::kLegit, "get", "/files/big.bin"));
      break;
    }
    case Server::kSendmail: {
      // Four long attack sessions: ~6000 invalid stores at the prescan
      // site, enough to take a per-site kThreshold assignment over its
      // error budget — which a single §4 attack session never does. That
      // is the stream/assignment interaction the multi-attack sweep pins.
      for (int i = 0; i < 4; ++i) {
        ServerRequest attack = Req(RequestTag::kAttack, "session");
        attack.lines = MakeSendmailAttackSession(/*pairs=*/1500);
        add(attack);
        add(Req(RequestTag::kMaintenance, "wakeup"));
      }
      ServerRequest legit = Req(RequestTag::kLegit, "session");
      legit.lines = MakeSendmailSession("user@localhost", 64);
      add(Expect(legit, 1));
      break;
    }
    case Server::kMc: {
      for (int i = 0; i < 2; ++i) {
        ServerRequest browse = Req(RequestTag::kAttack, "browse");
        browse.payload = MakeMcAttackTgz();
        add(Expect(browse, 6));
      }
      add(Req(RequestTag::kMaintenance, "mktree", "/home/user/tree",
              std::to_string(128 << 10)));
      add(Req(RequestTag::kLegit, "copy", "/home/user/tree", "/home/user/tree2"));
      add(Req(RequestTag::kLegit, "delete", "/home/user/tree2"));
      break;
    }
    case Server::kMutt: {
      add(Req(RequestTag::kAttack, "open", MakeMuttAttackFolderName()));
      add(Req(RequestTag::kAttack, "open", MakeMuttAttackFolderName(/*blocks=*/40)));
      add(Req(RequestTag::kLegit, "open", "INBOX"));
      add(Req(RequestTag::kLegit, "read", "INBOX", "1"));
      break;
    }
    case Server::kArchive:
      return MakeMalformedArchiveStream();
    case Server::kCodec:
      return MakeCodecBombStream();
  }
  return stream;
}

TrafficStream MakeTrafficStream(Server server, const StreamOptions& options) {
  TrafficStream stream;
  stream.server = server;
  StreamRng rng(options.seed);
  std::string mc_pending_copy;  // generator state: a copy awaiting deletion
  bool mc_tree_made = false;
  std::string archive_pending_slot;  // generator state: a slot awaiting drop
  for (size_t round = 0; round < options.requests; ++round) {
    uint64_t client = options.clients == 0 ? 0 : rng.Next(options.clients);
    bool attack = options.attack_period > 0 &&
                  (round % options.attack_period) < options.attacks_per_period;
    RequestTag tag = attack ? RequestTag::kAttack : RequestTag::kLegit;
    ServerRequest request;
    switch (server) {
      case Server::kPine: {
        if (attack) {
          // The per-request form of the §4.2 trigger: quoting an attack
          // From field through the undersized index buffer.
          request = Req(tag, "quote", MakePineAttackFrom());
        } else if (rng.Next(3) == 0) {
          request = Req(tag, "compose", "peer@example.org", "ping");
          request.payload = "pong\n";
        } else {
          request = Req(tag, "read", std::to_string(rng.Next(5)));
        }
        break;
      }
      case Server::kApache: {
        request = Req(tag, "get", attack ? MakeApacheAttackUrl()
                                         : (rng.Next(3) == 0 ? "/files/big.bin"
                                                             : "/index.html"));
        break;
      }
      case Server::kSendmail: {
        // The daemon wakes up every round — the everyday error (§4.4.4).
        ServerRequest wakeup = Req(RequestTag::kMaintenance, "wakeup");
        wakeup.client_id = client;
        stream.requests.push_back(std::move(wakeup));
        request = Req(tag, "session");
        request.lines = attack ? MakeSendmailAttackSession()
                               : MakeSendmailSession("user@localhost",
                                                     64 + rng.Next(3) * 128);
        break;
      }
      case Server::kMc: {
        if (!mc_tree_made) {
          ServerRequest mktree = Req(RequestTag::kMaintenance, "mktree", "/home/files",
                                     std::to_string(256 << 10));
          mktree.client_id = client;
          stream.requests.push_back(std::move(mktree));
          mc_tree_made = true;
        }
        if (attack) {
          request = Req(tag, "browse");
          request.payload = MakeMcAttackTgz();
          request.expect = "6";
        } else if (mc_pending_copy.empty()) {
          mc_pending_copy = "/home/copy" + std::to_string(round);
          request = Req(tag, "copy", "/home/files", mc_pending_copy);
        } else {
          request = Req(tag, "delete", mc_pending_copy);
          mc_pending_copy.clear();
        }
        break;
      }
      case Server::kMutt: {
        if (attack) {
          request = Req(tag, "open", MakeMuttAttackFolderName());
        } else if (rng.Next(2) == 0) {
          request = Req(tag, "open", "INBOX");
        } else {
          request = Req(tag, "read", "INBOX", "1");
        }
        break;
      }
      case Server::kArchive: {
        if (attack) {
          request = Req(tag, "upload", "evil");
          request.payload = MakeArchiveAttackTgz();
          request.expect = "3";
        } else if (archive_pending_slot.empty()) {
          archive_pending_slot = "slot" + std::to_string(round);
          request = Req(tag, "upload", archive_pending_slot);
          request.payload = MakeArchiveBenignTgz();
          request.expect = "2";
        } else if (rng.Next(2) == 0) {
          request = Req(tag, "list", archive_pending_slot);
          request.expect = "2";
        } else {
          request = Req(tag, "drop", archive_pending_slot);
          archive_pending_slot.clear();
        }
        break;
      }
      case Server::kCodec: {
        if (attack) {
          // Sustained traffic judges continuing service, not byte equality,
          // so the bomb's expect stays empty (the §4-style criterion).
          request = Req(tag, "transcode", "u7to8", "utf7");
          request.payload = MakeCodecBombUtf7();
        } else if (rng.Next(3) == 0) {
          request = Req(tag, "transcode", "u7to8", "utf7");
          request.payload = "Hello&AOk-!";
          request.expect = *Utf7ToUtf8(request.payload);
        } else if (rng.Next(2) == 0) {
          request = Req(tag, "transcode", "b64enc", "b64");
          request.payload = "sustained traffic";
          request.expect = Base64Encode(request.payload);
        } else {
          request = Req(tag, "transcode", "b64dec", "b64");
          request.payload = Base64Encode("sustained traffic");
          request.expect = "sustained traffic";
        }
        break;
      }
    }
    request.client_id = client;
    stream.requests.push_back(std::move(request));
  }
  return stream;
}

std::unique_ptr<ServerApp> MakeServerApp(Server server, const PolicySpec& spec,
                                         const ServerSetup& setup) {
  switch (server) {
    case Server::kPine:
      return std::make_unique<PineServer>(
          spec, MakePineMbox(setup.pine_mbox_legit, setup.pine_mbox_attack,
                             setup.pine_body_bytes));
    case Server::kApache:
      return std::make_unique<ApacheServer>(
          spec, MakeApacheDocroot(), ApacheApp::DefaultConfigText(setup.apache_filler_rules));
    case Server::kSendmail:
      return std::make_unique<SendmailServer>(spec);
    case Server::kMc:
      return std::make_unique<McServer>(
          spec, McApp::DefaultConfigText(setup.mc_config_blank_lines), setup.mc_sequence);
    case Server::kMutt: {
      std::vector<std::pair<std::string, std::vector<MailMessage>>> folders;
      if (setup.mutt_inbox_messages == 2) {
        // The exact §4.6 INBOX pair, so the attack experiment's pager
        // renders byte-identical content to the legacy direct-call setup.
        folders.emplace_back(
            "INBOX", std::vector<MailMessage>{
                         MailMessage::Make("a@b", "me@here", "hello", "body\n"),
                         MailMessage::Make("c@d", "me@here", "again", "more\n")});
      } else {
        std::vector<MailMessage> inbox;
        inbox.reserve(setup.mutt_inbox_messages);
        for (size_t i = 0; i < setup.mutt_inbox_messages; ++i) {
          inbox.push_back(MailMessage::Make("peer@example.org", "me@here", "m", "b\n"));
        }
        folders.emplace_back("INBOX", std::move(inbox));
      }
      folders.emplace_back("archive", std::vector<MailMessage>{});
      return std::make_unique<MuttServer>(spec, std::move(folders));
    }
    case Server::kArchive:
      return std::make_unique<ArchiveServer>(spec);
    case Server::kCodec:
      return std::make_unique<CodecServer>(spec);
  }
  return nullptr;
}

std::function<std::unique_ptr<ServerApp>()> MakeServerAppFactory(Server server,
                                                                 const PolicySpec& spec,
                                                                 const ServerSetup& setup) {
  return [server, spec, setup] { return MakeServerApp(server, spec, setup); };
}

std::unique_ptr<ServerApp> MakeAttackServer(Server server, const PolicySpec& spec) {
  return MakeServerApp(server, spec, ServerSetup{});
}

// ---- Pine ----------------------------------------------------------------

std::string MakePineAttackFrom(size_t quotable) {
  // "attacker" <\\\\\\...@evil.example> — plenty of characters Pine quotes.
  std::string from = "\"attacker\" <";
  from.append(quotable, '\\');
  from += "@evil.example>";
  return from;
}

std::string MakePineMbox(size_t legit, bool include_attack, size_t body_bytes) {
  std::vector<MailMessage> messages;
  messages.reserve(legit + 1);
  for (size_t i = 0; i < legit; ++i) {
    std::string body = "Hello number " + std::to_string(i) + "\n";
    while (body.size() < body_bytes) {
      body += "lorem ipsum dolor sit amet, consectetur adipiscing elit\n";
    }
    messages.push_back(MailMessage::Make("friend" + std::to_string(i) + "@example.org",
                                         "user@local", "message " + std::to_string(i),
                                         std::move(body)));
  }
  if (include_attack) {
    MailMessage attack = MailMessage::Make(MakePineAttackFrom(), "user@local",
                                           "you have won", "click here\n");
    messages.insert(messages.begin() + static_cast<ptrdiff_t>(messages.size() / 2), attack);
  }
  return SerializeMbox(messages);
}

// ---- Apache ---------------------------------------------------------------

std::string MakeApacheAttackUrl() {
  // Twelve '-'-separated segments: matches the 12-capture rule, so the
  // vulnerable copy writes 12 offset pairs into the 10-pair buffer.
  return "/captures/a-b-c-d-e-f-g-h-i-j-k-l";
}

Vfs MakeApacheDocroot(size_t small_bytes, size_t large_bytes) {
  Vfs docroot;
  std::string small_page = "<html><head><title>research project</title></head><body>";
  while (small_page.size() + 32 < small_bytes) {
    small_page += "<p>publications and software</p>";
  }
  small_page += "</body></html>";
  docroot.WriteFile("/index.html", small_page, true);
  std::string big(large_bytes, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('A' + (i % 61));
  }
  docroot.WriteFile("/files/big.bin", big, true);
  docroot.WriteFile("/docs/flexc.html", "<html><body>docs</body></html>", true);
  docroot.WriteFile("/rewritten/a/b/c", "capture target page", true);
  return docroot;
}

HttpRequest MakeHttpGet(const std::string& path) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.version = "HTTP/1.0";
  request.headers.emplace_back("Host", "www.flexc.csail.mit.edu");
  return request;
}

// ---- Sendmail ---------------------------------------------------------------

std::vector<std::string> MakeSendmailAttackSession(size_t pairs) {
  // The attack address needs the prescan port's mechanics; keep the string
  // construction local to avoid a dependency cycle with apps/.
  std::string address(63, 'a');
  for (size_t i = 0; i < pairs; ++i) {
    address += "\\\\\xff";
  }
  return {
      "HELO attacker.example",
      "MAIL FROM:<" + address + ">",
      "QUIT",
  };
}

std::vector<std::string> MakeSendmailSession(const std::string& rcpt, size_t body_bytes) {
  std::vector<std::string> lines = {
      "HELO client.example",
      "MAIL FROM:<sender@client.example>",
      "RCPT TO:<" + rcpt + ">",
      "DATA",
  };
  std::string body_line(72, 'm');
  size_t written = 0;
  while (written < body_bytes) {
    size_t take = std::min(body_line.size(), body_bytes - written);
    lines.push_back(body_line.substr(0, take));
    written += take;
  }
  if (body_bytes == 0) {
    lines.push_back("hi");
  }
  lines.push_back(".");
  lines.push_back("QUIT");
  return lines;
}

// ---- Midnight Commander ------------------------------------------------------

std::string MakeMcAttackTgz() {
  // Several symlinks with long multi-component absolute targets: their
  // component names accumulate in the 64-byte link buffer and overflow it
  // by the second/third link.
  std::vector<TarEntry> entries;
  entries.push_back(TarEntry::Directory("pkg/"));
  entries.push_back(TarEntry::File("pkg/readme.txt", "malicious archive\n"));
  for (int i = 0; i < 4; ++i) {
    std::string target = "/opt/verylongcomponentname" + std::to_string(i) +
                         "/anotherlongcomponent/finaltarget" + std::to_string(i);
    entries.push_back(TarEntry::Symlink("pkg/link" + std::to_string(i), target));
  }
  return GzipStore(WriteTar(entries));
}

std::string MakeMcBenignTgz() {
  std::vector<TarEntry> entries;
  entries.push_back(TarEntry::Directory("pkg/"));
  entries.push_back(TarEntry::File("pkg/a.txt", "file a\n"));
  entries.push_back(TarEntry::File("pkg/b.txt", "file b\n"));
  entries.push_back(TarEntry::Symlink("pkg/s", "/usr/doc"));  // short: boring path
  return GzipStore(WriteTar(entries));
}

uint64_t MakeMcTree(Vfs& fs, const std::string& root, uint64_t bytes) {
  return PopulateTree(fs, root, bytes);
}

// ---- Mutt ---------------------------------------------------------------------

std::string MakeMuttAttackFolderName(size_t blocks) {
  // Alternating control characters and ASCII: each control char costs
  // '&' + 3 base64 chars + '-' = 5 output bytes for 1 input byte, ratio 3x
  // — well past the 2x Mutt allocated (§4.6.1).
  std::string name = "mail/";
  for (size_t i = 0; i < blocks; ++i) {
    name += '\x01';
    name += 'a';
  }
  return name;
}

std::string MakeMuttBenignFolderName() {
  // "archive/<CJK><CJK>" — expansion stays under 2x because the wide chars
  // share one shift sequence.
  return "archive/" + Utf8Encode(0x65e5) + Utf8Encode(0x672c) + Utf8Encode(0x8a9e);
}

// ---- Archive Inbox ---------------------------------------------------------

std::string MakeArchiveAttackTgz(size_t name_chars) {
  std::vector<TarEntry> entries;
  entries.push_back(TarEntry::Directory("pkg/"));
  entries.push_back(TarEntry::File("pkg/readme.txt", "uploaded archive\n"));
  entries.push_back(TarEntry::File("pkg/data.bin", std::string(256, 'd')));
  entries.push_back(TarEntry::File("pkg/notes/today.txt", "remember the milk\n"));
  // A deeply nested recorded path — the kind of original name a desktop
  // archiver happily embeds, and longer than the inbox's name work area.
  std::string name;
  while (name.size() < name_chars) {
    name += "home-backup-final-v2/";
  }
  name.resize(name_chars);
  return GzipStoreWithName(WriteTar(entries), name);
}

std::string MakeArchiveBenignTgz() {
  std::vector<TarEntry> entries;
  entries.push_back(TarEntry::Directory("pkg/"));
  entries.push_back(TarEntry::File("pkg/a.txt", "file a\n"));
  entries.push_back(TarEntry::File("pkg/b.txt", "file b\n"));
  return GzipStoreWithName(WriteTar(entries), "pkg.tar");
}

TrafficStream MakeMalformedArchiveStream() {
  TrafficStream stream;
  stream.server = Server::kArchive;
  auto add = [&stream](ServerRequest request) { stream.requests.push_back(std::move(request)); };
  // Two overflow depths at the FNAME site (count-based per-site assignments
  // see different error volumes), then two containers the decompressor
  // rejects — whose headers the vulnerable copy has already parsed by then.
  ServerRequest deep = Req(RequestTag::kAttack, "upload", "inboxA");
  deep.payload = MakeArchiveAttackTgz(/*name_chars=*/64);
  add(Expect(deep, 3));
  ServerRequest deeper = Req(RequestTag::kAttack, "upload", "inboxA");
  deeper.payload = MakeArchiveAttackTgz(/*name_chars=*/96);
  add(Expect(deeper, 3));
  ServerRequest truncated = Req(RequestTag::kAttack, "upload", "inboxB");
  truncated.payload = MakeArchiveAttackTgz().substr(0, 20);
  add(truncated);
  ServerRequest corrupt = Req(RequestTag::kAttack, "upload", "inboxB");
  corrupt.payload = MakeArchiveAttackTgz();
  corrupt.payload[corrupt.payload.size() - 5] ^= 0x20;  // stomp the CRC trailer
  add(corrupt);
  ServerRequest benign = Req(RequestTag::kLegit, "upload", "inboxC");
  benign.payload = MakeArchiveBenignTgz();
  add(Expect(benign, 2));
  ServerRequest list = Req(RequestTag::kLegit, "list", "inboxA");
  add(Expect(list, 3));
  add(Req(RequestTag::kLegit, "extract", "inboxC", "pkg/a.txt"));
  add(Req(RequestTag::kLegit, "drop", "inboxC"));
  return stream;
}

// ---- Codec Gateway ---------------------------------------------------------

std::string MakeCodecBombUtf8(size_t units) {
  static constexpr uint32_t kCjk[] = {0x65e5, 0x672c, 0x8a9e};
  std::string out;
  out.reserve(units * 3);
  for (size_t i = 0; i < units; ++i) {
    out += Utf8Encode(kCjk[i % 3]);
  }
  return out;
}

std::string MakeCodecBombUtf7(size_t units) {
  // The reference encoder is exact, so the bomb and its expected decode are
  // the same value seen through the two codecs.
  return *Utf8ToUtf7(MakeCodecBombUtf8(units));
}

TrafficStream MakeCodecBombStream() {
  TrafficStream stream;
  stream.server = Server::kCodec;
  auto add = [&stream](ServerRequest request) { stream.requests.push_back(std::move(request)); };
  // Integrity-checking clients: each bomb's expect pins the reference
  // output byte for byte, so truncated (Failure Oblivious) and garbled
  // (Wrap) replies are unacceptable — only Boundless passes at this site.
  for (size_t units : {size_t{60}, size_t{40}}) {
    ServerRequest bomb = Req(RequestTag::kAttack, "transcode", "u7to8", "utf7");
    bomb.payload = MakeCodecBombUtf7(units);
    bomb.expect = MakeCodecBombUtf8(units);
    add(bomb);
  }
  ServerRequest legit = Req(RequestTag::kLegit, "transcode", "u7to8", "utf7");
  legit.payload = "Hello&AOk-!";
  legit.expect = *Utf7ToUtf8(legit.payload);
  add(legit);
  ServerRequest enc = Req(RequestTag::kLegit, "transcode", "b64enc", "b64");
  enc.payload = "failure oblivious";
  enc.expect = Base64Encode(enc.payload);
  add(enc);
  ServerRequest back = Req(RequestTag::kLegit, "transcode", "u8to7", "utf8");
  back.payload = MakeMuttBenignFolderName();
  back.expect = *Utf8ToUtf7(back.payload);
  add(back);
  return stream;
}

}  // namespace fob
