#include "src/harness/workloads.h"

#include <sstream>

#include "src/archive/gzip.h"
#include "src/archive/tar.h"
#include "src/codec/utf8.h"
#include "src/mail/mbox.h"

namespace fob {

// ---- Pine ----------------------------------------------------------------

std::string MakePineAttackFrom(size_t quotable) {
  // "attacker" <\\\\\\...@evil.example> — plenty of characters Pine quotes.
  std::string from = "\"attacker\" <";
  from.append(quotable, '\\');
  from += "@evil.example>";
  return from;
}

std::string MakePineMbox(size_t legit, bool include_attack, size_t body_bytes) {
  std::vector<MailMessage> messages;
  messages.reserve(legit + 1);
  for (size_t i = 0; i < legit; ++i) {
    std::string body = "Hello number " + std::to_string(i) + "\n";
    while (body.size() < body_bytes) {
      body += "lorem ipsum dolor sit amet, consectetur adipiscing elit\n";
    }
    messages.push_back(MailMessage::Make("friend" + std::to_string(i) + "@example.org",
                                         "user@local", "message " + std::to_string(i),
                                         std::move(body)));
  }
  if (include_attack) {
    MailMessage attack = MailMessage::Make(MakePineAttackFrom(), "user@local",
                                           "you have won", "click here\n");
    messages.insert(messages.begin() + static_cast<ptrdiff_t>(messages.size() / 2), attack);
  }
  return SerializeMbox(messages);
}

// ---- Apache ---------------------------------------------------------------

std::string MakeApacheAttackUrl() {
  // Twelve '-'-separated segments: matches the 12-capture rule, so the
  // vulnerable copy writes 12 offset pairs into the 10-pair buffer.
  return "/captures/a-b-c-d-e-f-g-h-i-j-k-l";
}

Vfs MakeApacheDocroot(size_t small_bytes, size_t large_bytes) {
  Vfs docroot;
  std::string small_page = "<html><head><title>research project</title></head><body>";
  while (small_page.size() + 32 < small_bytes) {
    small_page += "<p>publications and software</p>";
  }
  small_page += "</body></html>";
  docroot.WriteFile("/index.html", small_page, true);
  std::string big(large_bytes, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('A' + (i % 61));
  }
  docroot.WriteFile("/files/big.bin", big, true);
  docroot.WriteFile("/docs/flexc.html", "<html><body>docs</body></html>", true);
  docroot.WriteFile("/rewritten/a/b/c", "capture target page", true);
  return docroot;
}

HttpRequest MakeHttpGet(const std::string& path) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.version = "HTTP/1.0";
  request.headers.emplace_back("Host", "www.flexc.csail.mit.edu");
  return request;
}

// ---- Sendmail ---------------------------------------------------------------

std::vector<std::string> MakeSendmailAttackSession(size_t pairs) {
  // The attack address needs the prescan port's mechanics; keep the string
  // construction local to avoid a dependency cycle with apps/.
  std::string address(63, 'a');
  for (size_t i = 0; i < pairs; ++i) {
    address += "\\\\\xff";
  }
  return {
      "HELO attacker.example",
      "MAIL FROM:<" + address + ">",
      "QUIT",
  };
}

std::vector<std::string> MakeSendmailSession(const std::string& rcpt, size_t body_bytes) {
  std::vector<std::string> lines = {
      "HELO client.example",
      "MAIL FROM:<sender@client.example>",
      "RCPT TO:<" + rcpt + ">",
      "DATA",
  };
  std::string body_line(72, 'm');
  size_t written = 0;
  while (written < body_bytes) {
    size_t take = std::min(body_line.size(), body_bytes - written);
    lines.push_back(body_line.substr(0, take));
    written += take;
  }
  if (body_bytes == 0) {
    lines.push_back("hi");
  }
  lines.push_back(".");
  lines.push_back("QUIT");
  return lines;
}

// ---- Midnight Commander ------------------------------------------------------

std::string MakeMcAttackTgz() {
  // Several symlinks with long multi-component absolute targets: their
  // component names accumulate in the 64-byte link buffer and overflow it
  // by the second/third link.
  std::vector<TarEntry> entries;
  entries.push_back(TarEntry::Directory("pkg/"));
  entries.push_back(TarEntry::File("pkg/readme.txt", "malicious archive\n"));
  for (int i = 0; i < 4; ++i) {
    std::string target = "/opt/verylongcomponentname" + std::to_string(i) +
                         "/anotherlongcomponent/finaltarget" + std::to_string(i);
    entries.push_back(TarEntry::Symlink("pkg/link" + std::to_string(i), target));
  }
  return GzipStore(WriteTar(entries));
}

std::string MakeMcBenignTgz() {
  std::vector<TarEntry> entries;
  entries.push_back(TarEntry::Directory("pkg/"));
  entries.push_back(TarEntry::File("pkg/a.txt", "file a\n"));
  entries.push_back(TarEntry::File("pkg/b.txt", "file b\n"));
  entries.push_back(TarEntry::Symlink("pkg/s", "/usr/doc"));  // short: boring path
  return GzipStore(WriteTar(entries));
}

uint64_t MakeMcTree(Vfs& fs, const std::string& root, uint64_t bytes) {
  fs.MkDir(root, true);
  uint64_t written = 0;
  size_t file_index = 0;
  std::string chunk(64 << 10, 'd');
  while (written < bytes) {
    std::string dir = root + "/d" + std::to_string(file_index / 16);
    size_t take = static_cast<size_t>(std::min<uint64_t>(chunk.size(), bytes - written));
    fs.WriteFile(dir + "/f" + std::to_string(file_index) + ".dat", chunk.substr(0, take), true);
    written += take;
    ++file_index;
  }
  return written;
}

// ---- Mutt ---------------------------------------------------------------------

std::string MakeMuttAttackFolderName(size_t blocks) {
  // Alternating control characters and ASCII: each control char costs
  // '&' + 3 base64 chars + '-' = 5 output bytes for 1 input byte, ratio 3x
  // — well past the 2x Mutt allocated (§4.6.1).
  std::string name = "mail/";
  for (size_t i = 0; i < blocks; ++i) {
    name += '\x01';
    name += 'a';
  }
  return name;
}

std::string MakeMuttBenignFolderName() {
  // "archive/<CJK><CJK>" — expansion stays under 2x because the wide chars
  // share one shift sequence.
  return "archive/" + Utf8Encode(0x65e5) + Utf8Encode(0x672c) + Utf8Encode(0x8a9e);
}

}  // namespace fob
