#include "src/harness/sweep.h"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <sstream>

#include "src/harness/table.h"

namespace fob {

bool SweepEntry::mixed() const {
  for (size_t i = 1; i < assignment.size(); ++i) {
    if (assignment[i] != assignment[0]) {
      return true;
    }
  }
  return false;
}

size_t SweepResult::acceptable_count() const {
  size_t count = 0;
  for (const SweepEntry& entry : entries) {
    if (entry.acceptable()) {
      ++count;
    }
  }
  return count;
}

namespace {

// candidates^sites, saturating at SIZE_MAX so huge spaces never overflow.
size_t SaturatingSpaceSize(size_t site_count, size_t candidate_count) {
  if (candidate_count == 0 || site_count == 0) {
    return 0;
  }
  size_t space = 1;
  for (size_t i = 0; i < site_count; ++i) {
    if (space > SIZE_MAX / candidate_count) {
      return SIZE_MAX;
    }
    space *= candidate_count;
  }
  return space;
}

}  // namespace

std::vector<std::vector<AccessPolicy>> EnumerateAssignments(
    size_t site_count, const std::vector<AccessPolicy>& candidates, size_t max_combinations) {
  std::vector<std::vector<AccessPolicy>> assignments;
  if (candidates.empty() || site_count == 0) {
    return assignments;
  }
  size_t count = std::min(SaturatingSpaceSize(site_count, candidates.size()), max_combinations);
  assignments.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    std::vector<AccessPolicy> assignment(site_count);
    size_t digits = k;
    for (size_t i = 0; i < site_count; ++i) {
      assignment[i] = candidates[digits % candidates.size()];
      digits /= candidates.size();
    }
    assignments.push_back(std::move(assignment));
  }
  return assignments;
}

namespace {

// Rank for sorting: acceptable first, then by outcome quality, then fewer
// errors, then the enumeration order (stable sort keeps it deterministic).
int OutcomeRank(Outcome outcome) {
  switch (outcome) {
    case Outcome::kContinued:
      return 0;
    case Outcome::kWrongOutput:
      return 1;
    case Outcome::kTerminated:
      return 2;
    case Outcome::kHang:
      return 3;
    case Outcome::kCrashed:
      return 4;
  }
  return 5;
}

}  // namespace

SweepResult RunPolicySweep(Server server, const SweepOptions& options) {
  SweepResult result;
  result.server = server;
  result.options = options;
  if (result.options.stream.requests.empty()) {
    result.options.stream = MakeAttackStream(server);
  }
  const TrafficStream& stream = result.options.stream;
  auto classify = [&](const PolicySpec& spec) {
    return RunStreamExperiment([&] { return MakeAttackServer(server, spec); }, stream);
  };

  // 1. Baseline run discovers the error sites.
  result.baseline_report = classify(options.baseline);
  result.sites = result.baseline_report.error_sites;
  if (result.sites.size() > options.max_sites) {
    result.sites.resize(options.max_sites);
  }

  // 2-3. Enumerate and classify.
  size_t space = SaturatingSpaceSize(result.sites.size(), options.candidates.size());
  std::vector<std::vector<AccessPolicy>> assignments =
      EnumerateAssignments(result.sites.size(), options.candidates, options.max_combinations);
  result.combinations_skipped = space > assignments.size() ? space - assignments.size() : 0;

  for (std::vector<AccessPolicy>& assignment : assignments) {
    PolicySpec spec(options.fallback);
    for (size_t i = 0; i < assignment.size(); ++i) {
      spec.Set(result.sites[i].site, assignment[i]);
    }
    SweepEntry entry;
    entry.assignment = std::move(assignment);
    entry.report = classify(spec);
    result.entries.push_back(std::move(entry));
  }

  // 4. Rank.
  std::stable_sort(result.entries.begin(), result.entries.end(),
                   [](const SweepEntry& a, const SweepEntry& b) {
                     if (a.acceptable() != b.acceptable()) {
                       return a.acceptable();
                     }
                     int ra = OutcomeRank(a.report.outcome);
                     int rb = OutcomeRank(b.report.outcome);
                     if (ra != rb) {
                       return ra < rb;
                     }
                     return a.report.memory_errors_logged < b.report.memory_errors_logged;
                   });
  return result;
}

std::string SweepResult::ToTableString() const {
  std::ostringstream os;
  os << "Search-space sweep: " << ServerName(server) << " ("
     << options.stream.requests.size() << " requests, "
     << options.stream.CountTag(RequestTag::kAttack) << " attack-tagged)\n";
  os << "baseline " << PolicyName(options.baseline) << ": "
     << OutcomeName(baseline_report.outcome) << ", "
     << baseline_report.memory_errors_logged << " memory errors, "
     << baseline_report.error_sites.size() << " distinct error sites\n";
  for (size_t i = 0; i < sites.size(); ++i) {
    os << "  site " << i << ": " << sites[i].Label() << " (" << sites[i].count
       << " baseline errors)\n";
  }
  if (sites.empty()) {
    os << "  (no error sites observed; nothing to sweep)\n";
    return os.str();
  }

  std::vector<std::string> headers = {"#"};
  for (size_t i = 0; i < sites.size(); ++i) {
    headers.push_back("site " + std::to_string(i));
  }
  headers.insert(headers.end(), {"outcome", "subsequent ok", "errors", "acceptable"});
  Table table(std::move(headers));
  size_t rank = 1;
  for (const SweepEntry& entry : entries) {
    std::vector<std::string> row = {std::to_string(rank++)};
    for (AccessPolicy policy : entry.assignment) {
      row.push_back(PolicyName(policy));
    }
    row.push_back(OutcomeName(entry.report.outcome));
    row.push_back(entry.report.subsequent_requests_ok ? "yes" : "no");
    row.push_back(std::to_string(entry.report.memory_errors_logged));
    row.push_back(entry.acceptable() ? "ACCEPTABLE" : "-");
    table.AddRow(std::move(row));
  }
  os << table.ToString();
  os << acceptable_count() << "/" << entries.size()
     << " assignments acceptable (continued + subsequent requests OK)";
  if (combinations_skipped > 0) {
    os << "; " << combinations_skipped << " combinations beyond the bound not run";
  }
  os << "\n";
  return os.str();
}

}  // namespace fob
