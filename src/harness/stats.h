// Timing helpers: request-processing-time measurement in the paper's style
// (mean ± relative standard deviation over >= 20 runs).

#ifndef SRC_HARNESS_STATS_H_
#define SRC_HARNESS_STATS_H_

#include <chrono>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

namespace fob {

struct TimingStats {
  double mean_ms = 0;
  double stddev_pct = 0;  // relative standard deviation, like "± 7.1%"
  size_t samples = 0;

  std::string ToString() const;  // e.g. "1.98 ms ± 1.5%"
};

TimingStats ComputeStats(const std::vector<double>& samples_ms);

// Runs fn `reps` times (>= the paper's "at least twenty"), timing each run.
TimingStats MeasureMs(const std::function<void()>& fn, size_t reps = 20);

// Like MeasureMs but runs an untimed cleanup between repetitions (undo a
// copy, replenish a mailbox, ...).
TimingStats MeasureMsWithCleanup(const std::function<void()>& fn,
                                 const std::function<void()>& cleanup, size_t reps = 20);

// A/B comparison without ordering bias: samples alternate between the two
// functions (warming both first), and each sample batches `batch` calls so
// microsecond-scale requests stay above timer noise. Reported times are
// per call.
struct PairStats {
  TimingStats a;
  TimingStats b;
};
PairStats MeasurePairMs(const std::function<void()>& fn_a, const std::function<void()>& fn_b,
                        size_t batch = 1, size_t reps = 20);

// Interleaved A/B with untimed per-sample cleanup (for operations that must
// be undone, like a directory copy).
PairStats MeasurePairMsWithCleanup(const std::function<void()>& fn_a,
                                   const std::function<void()>& cleanup_a,
                                   const std::function<void()>& fn_b,
                                   const std::function<void()>& cleanup_b, size_t reps = 20);

// One-shot wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fob

#endif  // SRC_HARNESS_STATS_H_
