// Workload generators: the attack inputs from §4, and TrafficStreams — the
// uniform request sequences every harness drives servers with.
//
// A TrafficStream is a deterministic, seedable sequence of tagged
// ServerRequests (attack / legitimate / maintenance, per client id) that
// any server consumes through the ServerApp session API: the same stream
// machinery produces the §4 single-attack workloads (MakeAttackStream, the
// exact op sequence the paper's outcome matrix classifies), multi-attack
// streams that hit several error sites in one run (MakeMultiAttackStream,
// the Durieux-style interaction case), and sustained mixed traffic for the
// stability and throughput experiments (MakeTrafficStream).
//
// MakeServerApp is the matching construction side: it builds the ServerApp
// adapter for one server — which is also exactly the work a WorkerPool
// restart re-runs.

#ifndef SRC_HARNESS_WORKLOADS_H_
#define SRC_HARNESS_WORKLOADS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/server_app.h"
#include "src/mail/message.h"
#include "src/net/http.h"
#include "src/runtime/manufactured.h"
#include "src/runtime/policy_spec.h"
#include "src/vfs/vfs.h"

namespace fob {

// ---- Traffic streams ----------------------------------------------------

struct TrafficStream {
  Server server = Server::kApache;
  std::vector<ServerRequest> requests;

  size_t CountTag(RequestTag tag) const;
};

// Builds one tagged request — the shared constructor for benches, examples
// and tests that compose their own streams (lines/payload/expect are set on
// the returned value when an op needs them).
ServerRequest MakeRequest(RequestTag tag, std::string op, std::string target = "",
                          std::string arg = "", std::string arg2 = "");

// The §4 attack workload as a stream: the documented attack input followed
// by the legitimate requests the paper's availability criterion checks —
// the exact op sequence RunAttackExperiment classifies.
TrafficStream MakeAttackStream(Server server);

// A stream that reaches the server's error sites several times / in
// combination within one run. Per-site policy assignments interact with
// stream composition (count-based policies like kThreshold most visibly),
// which is what the multi-attack sweep explores.
TrafficStream MakeMultiAttackStream(Server server);

// Sustained mixed traffic: `requests` rounds interleaved across `clients`
// client ids, with every round r satisfying (r % attack_period) <
// attacks_per_period attack-tagged (attack_period == 0 disables attacks).
// Deterministic from `seed`: the same options always yield the same
// stream, byte for byte.
struct StreamOptions {
  size_t requests = 100;
  size_t clients = 1;
  size_t attack_period = 0;
  size_t attacks_per_period = 1;
  uint64_t seed = 1;
};
TrafficStream MakeTrafficStream(Server server, const StreamOptions& options = {});

// ---- Server construction -------------------------------------------------

// What MakeServerApp builds each server with. The defaults are the §4
// attack configurations (startup is part of the attack where the paper says
// so: Pine's trigger sits in the mailbox, MC's blank config line fires at
// parse time). Serving setups override them (benign mailbox, clean config)
// so workers under crashing policies can at least start.
struct ServerSetup {
  size_t pine_mbox_legit = 6;
  bool pine_mbox_attack = true;
  size_t pine_body_bytes = 48;
  int apache_filler_rules = 40;
  bool mc_config_blank_lines = true;
  SequenceKind mc_sequence = SequenceKind::kPaper;
  // 2 reproduces the exact §4.6 INBOX pair; other values fill generically.
  size_t mutt_inbox_messages = 2;
};

std::unique_ptr<ServerApp> MakeServerApp(Server server, const PolicySpec& spec,
                                         const ServerSetup& setup = {});

// The reusable construction recipe for pool layers: what a WorkerPool runs
// to build one worker's adapter + shard, and re-runs on the crashing lane's
// own thread to replace it. Captures its configuration by value, so it is
// safe to invoke concurrently — the contract parallel dispatch relies on
// (src/net/README.md).
std::function<std::unique_ptr<ServerApp>()> MakeServerAppFactory(
    Server server, const PolicySpec& spec, const ServerSetup& setup = {});

// The §4 attack configuration — what RunAttackExperiment and the sweep
// construct per run.
std::unique_ptr<ServerApp> MakeAttackServer(Server server, const PolicySpec& spec);

// ---- Pine -------------------------------------------------------------

// A From field with enough quotable characters that Pine's miscalculated
// buffer overflows by ~quoted/2 bytes (§4.2.1).
std::string MakePineAttackFrom(size_t quotable = 64);
// An mbox with `legit` ordinary messages and, optionally, one attack
// message (the paper's trigger sits in the mailbox at load time).
// body_bytes sizes each message body.
std::string MakePineMbox(size_t legit, bool include_attack, size_t body_bytes = 48);

// ---- Apache ------------------------------------------------------------

// A URL matching the >10-capture rewrite rule (§4.3.1).
std::string MakeApacheAttackUrl();
// Builds the docroot with the two pages Figure 3 measures: /index.html
// (small_bytes) and /files/big.bin (large_bytes).
Vfs MakeApacheDocroot(size_t small_bytes = 5 * 1024, size_t large_bytes = 830 * 1024);
HttpRequest MakeHttpGet(const std::string& path);

// ---- Sendmail ------------------------------------------------------------
// (MakeSendmailAttackAddress lives in src/apps/sendmail.h next to the
//  prescan port whose mechanics it mirrors.)

// A full attack SMTP session (HELO/MAIL-with-attack-address/QUIT).
std::vector<std::string> MakeSendmailAttackSession(size_t pairs = 32);
// A legitimate delivery session with a body of `body_bytes` bytes.
std::vector<std::string> MakeSendmailSession(const std::string& rcpt, size_t body_bytes);

// ---- Midnight Commander ---------------------------------------------------

// A .tgz whose absolute-target symlinks accumulate more than the link
// buffer holds (§4.5.1).
std::string MakeMcAttackTgz();
// A benign .tgz with files and resolvable-shaped symlinks.
std::string MakeMcBenignTgz();
// Populates `fs` with a directory tree of roughly `bytes` at `root` (the
// 31 MB tree Figure 5 copies). Returns the actual byte count. Thin alias
// for PopulateTree (src/vfs/vfs.h), kept for the benches' vocabulary.
uint64_t MakeMcTree(Vfs& fs, const std::string& root, uint64_t bytes);

// ---- Mutt ------------------------------------------------------------------

// A folder name whose UTF-8 -> UTF-7 conversion expands by more than 2x
// (§4.6.1); `blocks` scales the overflow size.
std::string MakeMuttAttackFolderName(size_t blocks = 24);
// A benign non-ASCII folder name (expansion < 2x).
std::string MakeMuttBenignFolderName();

// ---- Archive Inbox ---------------------------------------------------------

// A .tgz whose gzip header records a `name_chars`-long original name (FNAME
// field) — longer than ArchiveInboxApp::kNameBufSize, so the header copy
// overflows. The tar payload itself is honest: three regular files.
std::string MakeArchiveAttackTgz(size_t name_chars = 96);
// A benign .tgz: short recorded name, two files.
std::string MakeArchiveBenignTgz();
// Malformed-container traffic (the archive inbox's multi-attack stream):
// two oversized-FNAME uploads plus a truncated and a CRC-corrupted archive
// that must be rejected through the standard "Cannot open archive" path —
// the gzip-1.2.4 parse order means the vulnerable name copy runs even for
// archives the decompressor goes on to reject.
TrafficStream MakeMalformedArchiveStream();

// ---- Codec Gateway ---------------------------------------------------------

// CJK-dense UTF-8 (`units` three-byte codepoints) and its modified-UTF-7
// encoding — the decode bomb: the UTF-7 form is *shorter* than the UTF-8 it
// decodes to (8 base64 chars carry 9 output bytes), so the gateway's
// "decoding never expands" u7len+1 buffer comes up ~12% short.
std::string MakeCodecBombUtf8(size_t units = 60);
std::string MakeCodecBombUtf7(size_t units = 60);
// Integrity-checked transcode traffic (the codec gateway's multi-attack
// stream): decode bombs whose `expect` pins the reference output byte for
// byte. Only Boundless reproduces it through the undersized buffer — the
// assignment shape no §4 server's acceptability criterion demands.
TrafficStream MakeCodecBombStream();

}  // namespace fob

#endif  // SRC_HARNESS_WORKLOADS_H_
