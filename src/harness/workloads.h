// Workload generators: the attack inputs from §4 and legitimate request
// streams for the performance/stability experiments.

#ifndef SRC_HARNESS_WORKLOADS_H_
#define SRC_HARNESS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mail/message.h"
#include "src/net/http.h"
#include "src/vfs/vfs.h"

namespace fob {

// ---- Pine -------------------------------------------------------------

// A From field with enough quotable characters that Pine's miscalculated
// buffer overflows by ~quoted/2 bytes (§4.2.1).
std::string MakePineAttackFrom(size_t quotable = 64);
// An mbox with `legit` ordinary messages and, optionally, one attack
// message (the paper's trigger sits in the mailbox at load time).
// body_bytes sizes each message body.
std::string MakePineMbox(size_t legit, bool include_attack, size_t body_bytes = 48);

// ---- Apache ------------------------------------------------------------

// A URL matching the >10-capture rewrite rule (§4.3.1).
std::string MakeApacheAttackUrl();
// Builds the docroot with the two pages Figure 3 measures: /index.html
// (small_bytes) and /files/big.bin (large_bytes).
Vfs MakeApacheDocroot(size_t small_bytes = 5 * 1024, size_t large_bytes = 830 * 1024);
HttpRequest MakeHttpGet(const std::string& path);

// ---- Sendmail ------------------------------------------------------------
// (MakeSendmailAttackAddress lives in src/apps/sendmail.h next to the
//  prescan port whose mechanics it mirrors.)

// A full attack SMTP session (HELO/MAIL-with-attack-address/QUIT).
std::vector<std::string> MakeSendmailAttackSession(size_t pairs = 32);
// A legitimate delivery session with a body of `body_bytes` bytes.
std::vector<std::string> MakeSendmailSession(const std::string& rcpt, size_t body_bytes);

// ---- Midnight Commander ---------------------------------------------------

// A .tgz whose absolute-target symlinks accumulate more than the link
// buffer holds (§4.5.1).
std::string MakeMcAttackTgz();
// A benign .tgz with files and resolvable-shaped symlinks.
std::string MakeMcBenignTgz();
// Populates `fs` with a directory tree of roughly `bytes` at `root` (the
// 31 MB tree Figure 5 copies). Returns the actual byte count.
uint64_t MakeMcTree(Vfs& fs, const std::string& root, uint64_t bytes);

// ---- Mutt ------------------------------------------------------------------

// A folder name whose UTF-8 -> UTF-7 conversion expands by more than 2x
// (§4.6.1); `blocks` scales the overflow size.
std::string MakeMuttAttackFolderName(size_t blocks = 24);
// A benign non-ASCII folder name (expansion < 2x).
std::string MakeMuttBenignFolderName();

}  // namespace fob

#endif  // SRC_HARNESS_WORKLOADS_H_
