// Coverage against the static site universe.
//
// fob_analyze pass 3 (tools/fob_analyze/site_universe.py) enumerates every
// statically constructible SiteId into SITES_static.json. This helper loads
// that universe and scores a run's *exercised* sites against it, giving the
// Durieux-style sweep and the adaptive learner an honest denominator: the
// "exhaustive" search explores the sites a workload exhibits, and the
// coverage line says what fraction of the statically possible error sites
// that is.
//
// A site observed dynamically but absent from the universe is a *phantom*:
// either the extractor missed a name source or the run crossed a site the
// static model cannot construct. Phantoms falsify the superset claim, so
// they are surfaced (and fail the CI analyze job via
// fob_analyze --check-dynamic on the dumped sites).

#ifndef SRC_HARNESS_SITE_COVERAGE_H_
#define SRC_HARNESS_SITE_COVERAGE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/runtime/memlog.h"
#include "src/runtime/policy_spec.h"

namespace fob {

struct StaticSiteUniverse {
  std::set<SiteId> ids;
  // Counts from the universe file's metadata, for the summary line.
  size_t units = 0;
  size_t frames = 0;

  bool Contains(SiteId id) const { return ids.count(id) != 0; }
  size_t size() const { return ids.size(); }
};

// Loads SITES_static.json (ids are "0x..." hex strings — 64-bit SiteIds do
// not survive a JSON double round-trip as numbers). Returns nullopt when
// the file is missing or unparseable; the caller decides how loud to be.
std::optional<StaticSiteUniverse> LoadStaticSiteUniverse(const std::string& path);

// The default universe location: $FOB_SITES_STATIC, or SITES_static.json
// in the current directory. Empty when neither resolves to a readable file.
std::string DefaultUniversePath();

struct SiteCoverage {
  size_t exercised = 0;        // distinct exercised sites found in the universe
  size_t universe = 0;         // static universe size (the denominator)
  std::vector<MemSiteStat> phantoms;  // exercised but NOT in the universe

  // One line, e.g. "site coverage: 7/2112 static sites exercised (0.33%)".
  std::string Summary() const;
};

// Scores exercised sites (deduplicated by SiteId) against the universe.
SiteCoverage ComputeSiteCoverage(const std::vector<MemSiteStat>& exercised,
                                 const StaticSiteUniverse& universe);

// Serializes exercised sites as the dynamic-dump JSON that
// `fob_analyze --check-dynamic` consumes (schema mirrors SITES_static.json).
std::string DynamicSitesJson(const std::vector<MemSiteStat>& exercised);

}  // namespace fob

#endif  // SRC_HARNESS_SITE_COVERAGE_H_
