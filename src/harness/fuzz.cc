#include "src/harness/fuzz.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/harness/workloads.h"
#include "src/net/frontend.h"

namespace fob {

namespace {

// SplitMix64 — the same generator and zero-seed discipline as the adaptive
// controller, so "seeded like the rest of the harness" means exactly that.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Next(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

std::string SiteHex(SiteId id) {
  std::ostringstream os;
  os << "0x" << std::hex << id;
  return os.str();
}

// The string fields a mutation may touch, in a fixed order (lines and the
// protocol identity — tag, op, client — stay put: mutants must still parse
// and route, truncation is tag-preserving by construction).
constexpr size_t kMutableFields = 4;

std::string* MutableField(ServerRequest& request, size_t index) {
  switch (index) {
    case 0:
      return &request.target;
    case 1:
      return &request.arg;
    case 2:
      return &request.arg2;
    default:
      return &request.payload;
  }
}

// Applies one mutation, choosing field and operator from the rng. Fields
// grow to at most kStretchCap so a runaway stretch cannot swamp a run.
constexpr size_t kStretchCap = 4096;

void MutateOnce(ServerRequest& request, const std::vector<ServerRequest>& pool,
                SplitMix64& rng) {
  size_t field_index = rng.Next(kMutableFields);
  std::string* field = MutableField(request, field_index);
  switch (rng.Next(4)) {
    case 0: {  // byte flip
      if (field->empty()) {
        field->push_back(static_cast<char>('A' + rng.Next(26)));
        break;
      }
      size_t at = rng.Next(field->size());
      (*field)[at] = static_cast<char>((*field)[at] ^ static_cast<char>(1 + rng.Next(255)));
      break;
    }
    case 1: {  // length stretch
      if (field->empty()) {
        field->assign(8 + rng.Next(57), static_cast<char>('a' + rng.Next(26)));
        break;
      }
      size_t times = 2 + rng.Next(15);
      std::string stretched;
      while (stretched.size() < kStretchCap && times-- > 0) {
        stretched += *field;
      }
      if (stretched.size() > kStretchCap) {
        stretched.resize(kStretchCap);
      }
      *field = std::move(stretched);
      break;
    }
    case 2: {  // field splice from another pool request
      const ServerRequest& donor = pool[rng.Next(pool.size())];
      ServerRequest copy = donor;  // MutableField needs a mutable donor view
      *field = *MutableField(copy, rng.Next(kMutableFields));
      break;
    }
    default: {  // truncation to a prefix
      if (!field->empty()) {
        field->resize(rng.Next(field->size()));
      }
      break;
    }
  }
}

// Does `request` still trigger every site in `required`?
bool TriggersAll(Server server, const ServerRequest& request, const FuzzOptions& options,
                 const std::set<SiteId>& required, size_t& executed) {
  ++executed;
  std::vector<MemSiteStat> sites =
      ExecuteRequestForSites(server, request, options.policy, options.access_budget);
  std::set<SiteId> seen;
  for (const MemSiteStat& stat : sites) {
    seen.insert(stat.site);
  }
  for (SiteId id : required) {
    if (seen.count(id) == 0) {
      return false;
    }
  }
  return true;
}

// Deterministic per-field shrink: drop each mutable field entirely if the
// finding survives, else halve its prefix while it still triggers. The
// result is monotone — the minimized request triggers the full new-site set
// (tests/test_fuzz.cc pins this).
ServerRequest Minimize(Server server, ServerRequest request, const FuzzOptions& options,
                       const std::set<SiteId>& required, size_t& executed) {
  for (size_t field_index = 0; field_index < kMutableFields; ++field_index) {
    std::string original = *MutableField(request, field_index);
    if (original.empty()) {
      continue;
    }
    ServerRequest trial = request;
    MutableField(trial, field_index)->clear();
    if (TriggersAll(server, trial, options, required, executed)) {
      request = std::move(trial);
      continue;
    }
    while (MutableField(request, field_index)->size() > 1) {
      trial = request;
      std::string* field = MutableField(trial, field_index);
      field->resize(field->size() / 2);
      if (!TriggersAll(server, trial, options, required, executed)) {
        break;
      }
      request = std::move(trial);
    }
  }
  return request;
}

void AppendStreamSites(Server server, const TrafficStream& stream, const FuzzOptions& options,
                       std::set<SiteId>& sites) {
  Frontend::Options frontend_options;
  frontend_options.workers = 1;
  frontend_options.worker_access_budget = options.access_budget;
  Frontend frontend(MakeServerAppFactory(server, options.policy), frontend_options);
  LineChannel& channel = frontend.Connect(0);
  for (const ServerRequest& request : stream.requests) {
    channel.ClientSend(request.Serialize());
  }
  channel.ClientClose();
  frontend.Run();
  MemLog log = frontend.MergedLog();
  for (const auto& [id, stat] : log.sites()) {
    sites.insert(id);
  }
}

}  // namespace

std::vector<MemSiteStat> ExecuteRequestForSites(Server server, const ServerRequest& request,
                                                AccessPolicy policy, uint64_t access_budget) {
  Frontend::Options options;
  options.workers = 1;
  options.worker_access_budget = access_budget;
  Frontend frontend(MakeServerAppFactory(server, policy), options);
  LineChannel& channel = frontend.Connect(request.client_id);
  channel.ClientSend(request.Serialize());
  channel.ClientClose();
  frontend.Run();
  MemLog log = frontend.MergedLog();
  std::vector<MemSiteStat> sites;
  sites.reserve(log.sites().size());
  for (const auto& [id, stat] : log.sites()) {
    sites.push_back(stat);
  }
  std::sort(sites.begin(), sites.end(), [](const MemSiteStat& a, const MemSiteStat& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.Label() < b.Label();
  });
  return sites;
}

FuzzResult RunFuzzer(Server server, const FuzzOptions& options) {
  FuzzResult result;
  result.server = server;
  result.options = options;
  std::ostringstream log;

  // Baseline: everything the §4-style workloads already exercise. A site
  // has to escape *both* streams to count as a discovery.
  TrafficStream attack = MakeAttackStream(server);
  TrafficStream multi = MakeMultiAttackStream(server);
  AppendStreamSites(server, attack, options, result.baseline_sites);
  AppendStreamSites(server, multi, options, result.baseline_sites);
  log << "fuzz " << ServerShortName(server) << ": seed " << options.seed << ", baseline "
      << result.baseline_sites.size() << " sites\n";

  // The seed pool: the baseline streams' requests, grown by each minimized
  // finding (discoveries compound).
  std::vector<ServerRequest> pool = attack.requests;
  pool.insert(pool.end(), multi.requests.begin(), multi.requests.end());

  std::set<SiteId> known = result.baseline_sites;
  SplitMix64 rng(options.seed);
  for (size_t iteration = 0;
       iteration < options.iterations && result.findings.size() < options.max_findings;
       ++iteration) {
    ServerRequest mutant = pool[rng.Next(pool.size())];
    mutant.expect.clear();  // mutants carry no integrity expectation
    size_t mutations = 1 + rng.Next(options.max_mutations);
    for (size_t m = 0; m < mutations; ++m) {
      MutateOnce(mutant, pool, rng);
    }
    ++result.executed;
    std::vector<MemSiteStat> sites =
        ExecuteRequestForSites(server, mutant, options.policy, options.access_budget);
    std::vector<MemSiteStat> fresh;
    for (const MemSiteStat& stat : sites) {
      if (known.count(stat.site) == 0) {
        fresh.push_back(stat);
      }
    }
    if (fresh.empty()) {
      continue;
    }
    std::set<SiteId> required;
    for (const MemSiteStat& stat : fresh) {
      required.insert(stat.site);
      known.insert(stat.site);
    }
    FuzzFinding finding;
    finding.generation = iteration;
    finding.request = Minimize(server, std::move(mutant), options, required, result.executed);
    finding.new_sites = std::move(fresh);
    log << "  iter " << iteration << ": " << finding.new_sites.size() << " new site(s)\n";
    for (const MemSiteStat& stat : finding.new_sites) {
      log << "    " << stat.Label() << " (" << SiteHex(stat.site) << ")\n";
    }
    pool.push_back(finding.request);
    result.findings.push_back(std::move(finding));
  }
  log << "  " << result.findings.size() << " finding(s), " << result.executed
      << " executions\n";
  result.log = log.str();
  return result;
}

// ---- Corpus wire format ----------------------------------------------------

std::string FormatManifestLine(const CorpusCase& c) {
  std::ostringstream os;
  os << c.file << '\t' << c.seed << '\t' << c.generation << '\t';
  for (size_t i = 0; i < c.sites.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << SiteHex(c.sites[i]);
  }
  return os.str();
}

std::optional<CorpusCase> ParseManifestLine(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  if (fields.size() != 4 || fields[0].empty()) {
    return std::nullopt;
  }
  CorpusCase parsed;
  parsed.file = fields[0];
  {
    const std::string& s = fields[1];
    char* end = nullptr;
    parsed.seed = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end == nullptr || *end != '\0') {
      return std::nullopt;
    }
  }
  {
    const std::string& s = fields[2];
    char* end = nullptr;
    parsed.generation = static_cast<size_t>(std::strtoull(s.c_str(), &end, 10));
    if (s.empty() || end == nullptr || *end != '\0') {
      return std::nullopt;
    }
  }
  const std::string& sites = fields[3];
  size_t pos = 0;
  while (pos <= sites.size()) {
    size_t comma = sites.find(',', pos);
    std::string token =
        comma == std::string::npos ? sites.substr(pos) : sites.substr(pos, comma - pos);
    if (token.size() <= 2 || token[0] != '0' || (token[1] != 'x' && token[1] != 'X')) {
      return std::nullopt;
    }
    char* end = nullptr;
    SiteId id = std::strtoull(token.c_str() + 2, &end, 16);
    if (end == nullptr || *end != '\0' || id == kInvalidSite) {
      return std::nullopt;
    }
    parsed.sites.push_back(id);
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (parsed.sites.empty()) {
    return std::nullopt;
  }
  return parsed;
}

}  // namespace fob
