// Seeded mutation fuzzer + replayable attack corpus.
//
// The §4 workloads exercise each server's *documented* error sites — the
// attacks the paper describes. The fuzzer asks what else is reachable: it
// mutates those attack requests (byte flips, length stretches, field
// splices, tag-preserving truncations) and drives each mutant through the
// same Frontend path every harness uses. Any input whose merged MemLog
// reveals an error SiteId outside the baseline-exercised set is a
// *finding*: it gets minimized (deterministically, preserving the full
// discovered-site set) and archived as a one-line wire-serialized case
// under tests/corpus/<server>/, with a manifest recording the seed,
// generation and discovered sites — so CI can replay every case forever
// and fail the moment a site goes silently dead.
//
// Everything here is deterministic: one SplitMix64 generator (the adaptive
// controller's seeding discipline), deterministic workload builders,
// deterministic execution. Same seed ⇒ identical corpus, byte for byte —
// tests/test_fuzz.cc pins it. This module is pure compute; all file I/O
// (corpus writing, discovery logs) lives in bench/fuzz_run.cc.

#ifndef SRC_HARNESS_FUZZ_H_
#define SRC_HARNESS_FUZZ_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/apps/server_app.h"
#include "src/runtime/memlog.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"

namespace fob {

struct FuzzOptions {
  uint64_t seed = 1;
  // Mutated inputs to try (minimization probes are extra executions).
  size_t iterations = 200;
  // Stop after this many findings (each finding = >=1 new site).
  size_t max_findings = 8;
  // The observation policy: a continuing policy so one run surveys every
  // site the input reaches instead of stopping at the first.
  AccessPolicy policy = AccessPolicy::kFailureOblivious;
  // Hang guard per execution (a mutant that spins exhausts it and reads as
  // a crash, not a stuck fuzzer).
  uint64_t access_budget = 2'000'000;
  // Mutations stacked per iteration: 1..max_mutations.
  size_t max_mutations = 3;
};

struct FuzzFinding {
  // The minimized input: still triggers every site in new_sites.
  ServerRequest request;
  // Sites this input exercises that the baseline workloads do not,
  // most errors first.
  std::vector<MemSiteStat> new_sites;
  // Iteration index that produced the original (pre-minimization) input.
  size_t generation = 0;
};

struct FuzzResult {
  Server server = Server::kApache;
  FuzzOptions options;
  // Every site the server's §4 attack stream + multi-attack stream
  // exercise under options.policy — the novelty baseline.
  std::set<SiteId> baseline_sites;
  std::vector<FuzzFinding> findings;
  // Total executions (mutants + minimization probes).
  size_t executed = 0;
  // Human-readable discovery log (what fuzz_run prints / CI uploads).
  std::string log;
};

// The fuzzing loop: baseline, mutate, execute, minimize, archive.
FuzzResult RunFuzzer(Server server, const FuzzOptions& options = {});

// Executes one request through a single-worker Frontend (the same path
// every harness uses) and returns the distinct error sites logged.
std::vector<MemSiteStat> ExecuteRequestForSites(Server server, const ServerRequest& request,
                                                AccessPolicy policy, uint64_t access_budget);

// ---- Corpus wire format ----------------------------------------------------
//
// A corpus case is one file holding the request's Serialize() line; the
// per-server MANIFEST.tsv holds one line per case:
//
//   <file>\t<seed>\t<generation>\t<0xsite,0xsite,...>
//
// ('#' lines are comments.) SiteIds are hex — 64-bit ids are not safe
// through tools that round-trip numbers as doubles.

struct CorpusCase {
  std::string file;       // case file name, relative to the manifest
  uint64_t seed = 0;      // fuzzer seed that discovered it
  size_t generation = 0;  // iteration index within that run
  std::vector<SiteId> sites;  // sites the case must still trigger on replay
  // Filled by the replayer from `file`, not by ParseManifestLine.
  ServerRequest request;
};

std::string FormatManifestLine(const CorpusCase& c);
// nullopt on malformed input (wrong field count, unparseable numbers,
// empty site list) — hardened like the tools/ checkers; never throws.
std::optional<CorpusCase> ParseManifestLine(const std::string& line);

}  // namespace fob

#endif  // SRC_HARNESS_FUZZ_H_
