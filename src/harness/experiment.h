// Experiment runner: the Security & Resilience matrix and outcome
// classification shared by tests and benches.

#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/runtime/memlog.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"
#include "src/runtime/process.h"

namespace fob {

// What happened when a server processed the attack input.
enum class Outcome {
  kContinued,        // executed through; acceptable output (the FO story)
  kCrashed,          // segfault / stack smash / heap corruption (Standard)
  kTerminated,       // checker terminated the program (Bounds Check)
  kHang,             // access budget exhausted (nontermination)
  kWrongOutput,      // continued but produced unacceptable output
};

const char* OutcomeName(Outcome outcome);

// Classifies a RunResult plus an output-acceptability verdict.
Outcome ClassifyOutcome(const RunResult& result, bool output_acceptable);

// The five servers of §4.
enum class Server { kPine, kApache, kSendmail, kMc, kMutt };
const char* ServerName(Server server);
inline constexpr Server kAllServers[] = {Server::kPine, Server::kApache, Server::kSendmail,
                                         Server::kMc, Server::kMutt};

struct AttackReport {
  Outcome outcome = Outcome::kWrongOutput;
  // Did the server keep serving *subsequent legitimate requests* correctly
  // after the attack? (The paper's availability criterion.)
  bool subsequent_requests_ok = false;
  bool possible_code_injection = false;
  uint64_t memory_errors_logged = 0;
  std::string detail;
  // Distinct error sites observed during the run, most errors first (ties
  // broken by site label for determinism). A baseline run's sites are the
  // axes the search-space sweep (src/harness/sweep.h) enumerates over.
  std::vector<MemSiteStat> error_sites;
};

// Runs server × policy spec on its §4 attack workload followed by
// legitimate requests, with an access budget so nontermination classifies
// as kHang. A bare AccessPolicy converts to the uniform spec, reproducing
// the paper's whole-program configurations; a spec with per-site overrides
// runs one point of the search space.
AttackReport RunAttackExperiment(Server server, const PolicySpec& spec);

}  // namespace fob

#endif  // SRC_HARNESS_EXPERIMENT_H_
