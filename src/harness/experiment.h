// Experiment runner: the Security & Resilience matrix and outcome
// classification shared by tests and benches.
//
// Since the ServerApp redesign there is exactly one execution engine:
// RunStreamExperiment drives any server through any TrafficStream and
// classifies what happened. RunAttackExperiment is the §4 configuration of
// it — the server's attack stream against its attack-configured factory —
// and reproduces the paper's outcome matrix byte-identically to the old
// per-server glue (tests/test_server_app.cc pins the equivalence).

#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/server_app.h"
#include "src/harness/workloads.h"
#include "src/net/frontend.h"
#include "src/runtime/memlog.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"
#include "src/runtime/process.h"

namespace fob {

// What happened when a server processed the attack input.
enum class Outcome {
  kContinued,        // executed through; acceptable output (the FO story)
  kCrashed,          // segfault / stack smash / heap corruption (Standard)
  kTerminated,       // checker terminated the program (Bounds Check)
  kHang,             // access budget exhausted (nontermination)
  kWrongOutput,      // continued but produced unacceptable output
};

const char* OutcomeName(Outcome outcome);

// Classifies a RunResult plus an output-acceptability verdict.
Outcome ClassifyOutcome(const RunResult& result, bool output_acceptable);

struct AttackReport {
  Outcome outcome = Outcome::kWrongOutput;
  // Did the server keep serving *subsequent legitimate requests* correctly
  // after the attack? (The paper's availability criterion.)
  bool subsequent_requests_ok = false;
  bool possible_code_injection = false;
  uint64_t memory_errors_logged = 0;
  std::string detail;
  // Distinct error sites observed during the run, most errors first (ties
  // broken by site label for determinism). A baseline run's sites are the
  // axes the search-space sweep (src/harness/sweep.h) enumerates over.
  std::vector<MemSiteStat> error_sites;
};

// Builds one server instance per run; a restartable unit of server
// construction (also what a WorkerPool factory is).
using ServerFactory = std::function<std::unique_ptr<ServerApp>()>;

// The engine: constructs the server (startup may itself be the attack),
// arms the hang budget, drives every request of the stream through the
// session API, and classifies. Attack-tagged responses fold into the
// output-acceptability verdict, legit-tagged ones into the
// subsequent-requests verdict; maintenance requests count toward neither.
AttackReport RunStreamExperiment(const ServerFactory& factory, const TrafficStream& stream);

// Runs server × policy spec on its §4 attack stream. A bare AccessPolicy
// converts to the uniform spec, reproducing the paper's whole-program
// configurations; a spec with per-site overrides runs one point of the
// search space.
AttackReport RunAttackExperiment(Server server, const PolicySpec& spec);

// What a parallel Frontend run produced, merged deterministically.
//
// `responses` is indexed like `stream.requests` (the i-th entry answers the
// i-th request), reassembled from the per-client channels — well defined
// because responses on one channel arrive in that client's request order
// (sticky lane affinity). `merged_log` folds the per-worker shard logs in
// ascending shard-id order. Both are identical for identical (stream,
// factory) inputs regardless of worker count or thread interleaving when
// per-request handling is shard-history independent — the concurrency
// determinism property tests/test_shard.cc pins.
struct FrontendReport {
  std::vector<ServerResponse> responses;
  Frontend::Stats stats;
  uint64_t restarts = 0;
  MemLog merged_log;
};

// Drives `stream` through a Frontend (factory per worker shard, options as
// given), runs it to completion, and merges the outcome.
FrontendReport RunFrontendExperiment(const ServerFactory& factory, const TrafficStream& stream,
                                     const Frontend::Options& options);

}  // namespace fob

#endif  // SRC_HARNESS_EXPERIMENT_H_
