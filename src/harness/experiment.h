// Experiment runner: the Security & Resilience matrix and outcome
// classification shared by tests and benches.
//
// Since the ServerApp redesign there is exactly one execution engine:
// RunStreamExperiment drives any server through any TrafficStream and
// classifies what happened. RunAttackExperiment is the §4 configuration of
// it — the server's attack stream against its attack-configured factory —
// and reproduces the paper's outcome matrix byte-identically to the old
// per-server glue (tests/test_server_app.cc pins the equivalence).

#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/server_app.h"
#include "src/harness/workloads.h"
#include "src/net/frontend.h"
#include "src/runtime/adaptive.h"
#include "src/runtime/memlog.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"
#include "src/runtime/process.h"

namespace fob {

// What happened when a server processed the attack input.
enum class Outcome {
  kContinued,        // executed through; acceptable output (the FO story)
  kCrashed,          // segfault / stack smash / heap corruption (Standard)
  kTerminated,       // checker terminated the program (Bounds Check)
  kHang,             // access budget exhausted (nontermination)
  kWrongOutput,      // continued but produced unacceptable output
};

const char* OutcomeName(Outcome outcome);

// Classifies a RunResult plus an output-acceptability verdict.
Outcome ClassifyOutcome(const RunResult& result, bool output_acceptable);

struct AttackReport {
  Outcome outcome = Outcome::kWrongOutput;
  // Did the server keep serving *subsequent legitimate requests* correctly
  // after the attack? (The paper's availability criterion.)
  bool subsequent_requests_ok = false;
  bool possible_code_injection = false;
  uint64_t memory_errors_logged = 0;
  std::string detail;
  // Distinct error sites observed during the run, most errors first (ties
  // broken by site label for determinism). A baseline run's sites are the
  // axes the search-space sweep (src/harness/sweep.h) enumerates over.
  std::vector<MemSiteStat> error_sites;
};

// Builds one server instance per run; a restartable unit of server
// construction (also what a WorkerPool factory is).
using ServerFactory = std::function<std::unique_ptr<ServerApp>()>;

// The engine: constructs the server (startup may itself be the attack),
// arms the hang budget, drives every request of the stream through the
// session API, and classifies. Attack-tagged responses fold into the
// output-acceptability verdict, legit-tagged ones into the
// subsequent-requests verdict; maintenance requests count toward neither.
AttackReport RunStreamExperiment(const ServerFactory& factory, const TrafficStream& stream);

// Runs server × policy spec on its §4 attack stream. A bare AccessPolicy
// converts to the uniform spec, reproducing the paper's whole-program
// configurations; a spec with per-site overrides runs one point of the
// search space.
AttackReport RunAttackExperiment(Server server, const PolicySpec& spec);

// What a parallel Frontend run produced, merged deterministically.
//
// `responses` is indexed like `stream.requests` (the i-th entry answers the
// i-th request), reassembled from the per-client channels — well defined
// because responses on one channel arrive in that client's request order
// (sticky lane affinity). `merged_log` folds the per-worker shard logs in
// ascending shard-id order. Both are identical for identical (stream,
// factory) inputs regardless of worker count or thread interleaving when
// per-request handling is shard-history independent — the concurrency
// determinism property tests/test_shard.cc pins.
struct FrontendReport {
  std::vector<ServerResponse> responses;
  Frontend::Stats stats;
  uint64_t restarts = 0;
  MemLog merged_log;
};

// Drives `stream` through a Frontend (factory per worker shard, options as
// given), runs it to completion, and merges the outcome.
FrontendReport RunFrontendExperiment(const ServerFactory& factory, const TrafficStream& stream,
                                     const Frontend::Options& options);

// ---- Online context-aware policy learning --------------------------------
//
// The epoch loop around AdaptivePolicyController (src/runtime/adaptive.h):
// one long-lived Frontend serves `stream` once per epoch; between epochs
// the controller's CurrentSpec is pushed into the live worker shards
// (Frontend::Rebind — logs, heaps and handler state survive the respec),
// and after each epoch the Frontend feeds the merged per-shard site
// aggregates back (ascending shard-id order) together with the §4
// acceptability verdicts and the pool's restart delta. The run is
// deterministic: same stream + seed + worker count ⇒ identical trace and
// identical learned assignment.
//
// Epoch verdicts are measured on the *live* shards — deliberately: an
// online learner observes the deployment it is steering, so damage a bad
// arm did in an earlier epoch (a corrupted daemon structure, a shifted
// manufactured-value phase) legitimately colors later epochs' verdicts,
// exactly as it would color a real server's. The learned assignment is
// therefore re-validated with a fresh single-process run
// (AdaptiveReport::validation), which is the clean-room number comparable
// to a SweepEntry's report.

struct AdaptiveExperimentOptions {
  // Epochs to learn for. The default covers one full arm pass for a couple
  // of sites under the default candidate set, plus slack to settle.
  size_t epochs = 24;
  AdaptivePolicyController::Options controller;
  // worker_access_budget doubles as the per-epoch hang detector: a worker
  // that spins (e.g. a value-seeking loop under kZeroManufacture) exhausts
  // it, crashes, restarts — and the controller observes the restart.
  // Stealing stays off: adaptive learning observes *per-shard* logs, and
  // some workloads (Pine/Sendmail/MC) read manufactured values whose phase
  // depends on shard history — rebalancing batches across shards would
  // change which shard accumulates which history and perturb the pinned
  // learning trajectories for no throughput gain at these sizes.
  Frontend::Options frontend{.workers = 2,
                             .batch = 8,
                             .worker_access_budget = 5'000'000,
                             .steal = false};
  // The §4 attack configuration by default, matching RunAttackExperiment
  // and the sweep, so adaptive outcomes compare apples-to-apples.
  ServerSetup setup;
};

// One epoch of the convergence trace.
struct AdaptiveEpochTrace {
  size_t epoch = 0;
  // The spec that served this epoch (prior fallback + per-site overrides).
  PolicySpec spec;
  // Errors observed at tracked sites this epoch, summed across shards.
  uint64_t errors = 0;
  uint64_t restarts = 0;
  bool attack_acceptable = true;
  bool legit_ok = true;
  // Wall-clock time this epoch took to serve (rebind through EndEpoch), so
  // the ADAPTIVE_*.txt artifacts show where learning time goes. Excluded
  // from determinism comparisons — only the trace string carries it.
  double wall_ms = 0;
};

struct AdaptiveReport {
  std::vector<AdaptiveEpochTrace> trace;
  // Final per-site bandit state, ordered as sites were discovered.
  std::vector<AdaptiveSiteState> sites;
  // The learned assignment (controller BestSpec) ...
  PolicySpec learned;
  // ... validated with a fresh single-process run of the same stream, so
  // the outcome is directly comparable to a SweepEntry's report.
  AttackReport validation;

  // The human-readable convergence trace (one line per epoch + the learned
  // assignment) — what CI uploads next to the sweep tables.
  std::string ToTraceString() const;
};

AdaptiveReport RunAdaptiveExperiment(Server server, const TrafficStream& stream,
                                     const AdaptiveExperimentOptions& options = {});

}  // namespace fob

#endif  // SRC_HARNESS_EXPERIMENT_H_
