// ASCII table printer for the paper-style figures the benches emit.

#ifndef SRC_HARNESS_TABLE_H_
#define SRC_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace fob {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;
  std::string ToString() const;

  // Formats like the paper: "0.287 +/- 7.1%".
  static std::string Cell(double mean, double stddev_pct);
  static std::string Num(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fob

#endif  // SRC_HARNESS_TABLE_H_
