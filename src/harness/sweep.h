// Search-space sweep over per-site continuation policies.
//
// Durieux et al. ("Exhaustive Exploration of the Failure-oblivious Computing
// Search Space") showed that the interesting object is not one policy but
// the space of per-error-site policy assignments: for a given workload, some
// assignments yield correct continuation and some do not, and enumerating
// them is cheap because real workloads exhibit few distinct error sites.
//
// RunPolicySweep drives that exploration over one server's TrafficStream —
// by default the §4 single-attack workload, or any caller-supplied stream
// (multi-attack streams in particular: assignments interact with stream
// composition, most visibly for count-based policies like kThreshold,
// whose per-site error budget a long stream exhausts where a single attack
// never would):
//
//   1. Baseline: run the stream under a uniform baseline policy and harvest
//      the distinct error sites from the memory-error log (MemLog::sites()).
//   2. Enumerate: walk every assignment of candidate policies to the top
//      sites (mixed-radix order, site 0 as the least-significant digit —
//      deterministic and resumable), bounded by max_combinations.
//   3. Classify: run each assignment as a PolicySpec through
//      RunStreamExperiment and classify with the existing Outcome machinery.
//   4. Rank: acceptable continuations (kContinued + subsequent requests OK)
//      first; render the ranked table via harness/table.

#ifndef SRC_HARNESS_SWEEP_H_
#define SRC_HARNESS_SWEEP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"

namespace fob {

struct SweepOptions {
  // Uniform policy for the site-discovery run. Must be a continuing policy,
  // or the run stops at the first error site and observes nothing else.
  AccessPolicy baseline = AccessPolicy::kFailureOblivious;
  // Policy for error sites outside the enumerated set (and for sites the
  // attack reaches that the baseline did not).
  AccessPolicy fallback = AccessPolicy::kFailureOblivious;
  // Per-site alternatives; the search space is candidates^sites.
  std::vector<AccessPolicy> candidates{kSweepCandidates.begin(), kSweepCandidates.end()};
  // Sites are capped (most baseline errors first) before enumeration.
  size_t max_sites = 3;
  // Hard bound on experiment runs; assignments beyond it are counted as
  // skipped, never silently dropped.
  size_t max_combinations = 256;
  // The workload to sweep over. Empty (no requests) means the server's §4
  // single-attack stream; MakeMultiAttackStream(server) explores the
  // stream/assignment interactions.
  TrafficStream stream;
};

struct SweepEntry {
  // Policy per observed site, parallel to SweepResult::sites.
  std::vector<AccessPolicy> assignment;
  AttackReport report;

  // Durieux's acceptance criterion: the attack request was survived with
  // acceptable output AND subsequent legitimate requests still succeed.
  bool acceptable() const {
    return report.outcome == Outcome::kContinued && report.subsequent_requests_ok;
  }
  bool mixed() const;  // at least two distinct policies among the sites
};

struct SweepResult {
  Server server = Server::kApache;
  SweepOptions options;
  AttackReport baseline_report;
  // The enumerated axes: distinct baseline error sites, most errors first.
  std::vector<MemSiteStat> sites;
  // Ranked: acceptable assignments first, then by outcome, then by fewer
  // logged errors.
  std::vector<SweepEntry> entries;
  size_t combinations_skipped = 0;

  size_t acceptable_count() const;
  // The paper-style ranked ASCII table (harness/table).
  std::string ToTableString() const;
};

// The deterministic enumeration order used by RunPolicySweep, exposed for
// tests and for resuming a bounded sweep: assignment k maps site i to
// candidates[(k / candidates.size()^i) % candidates.size()], for k in
// [0, min(candidates^sites, max_combinations)).
std::vector<std::vector<AccessPolicy>> EnumerateAssignments(
    size_t site_count, const std::vector<AccessPolicy>& candidates, size_t max_combinations);

SweepResult RunPolicySweep(Server server, const SweepOptions& options = {});

}  // namespace fob

#endif  // SRC_HARNESS_SWEEP_H_
