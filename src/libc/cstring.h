// Checked libc string/memory routines.
//
// These are the <string.h> functions the paper's servers call, re-expressed
// over checked pointers: every byte they touch goes through fob::Memory, so
// each one inherits the semantics of the active policy. That is the point:
// `strcat` through a failure-oblivious Memory silently truncates at the end
// of the destination unit; through a bounds-check Memory it terminates the
// program; through a standard Memory it smashes whatever lies beyond.
//
// Loops that scan for a terminator (StrLen, StrChr, StrCpy, ...) are exactly
// the loops §3 worries about: under the failure-oblivious policy their exit
// condition may be satisfied only by a manufactured value. The Memory access
// budget is the backstop that turns a nonterminating scan into a detectable
// hang for the experiments.

#ifndef SRC_LIBC_CSTRING_H_
#define SRC_LIBC_CSTRING_H_

#include <cstddef>

#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"

namespace fob {

// Length of the NUL-terminated string at s.
size_t StrLen(Memory& m, Ptr s);

// Copies src (including NUL) to dst; returns dst.
Ptr StrCpy(Memory& m, Ptr dst, Ptr src);

// Copies at most n bytes; pads with NULs like the real strncpy; returns dst.
Ptr StrNCpy(Memory& m, Ptr dst, Ptr src, size_t n);

// Appends src to the NUL-terminated string at dst; returns dst.
Ptr StrCat(Memory& m, Ptr dst, Ptr src);

// Appends at most n bytes of src plus a NUL; returns dst.
Ptr StrNCat(Memory& m, Ptr dst, Ptr src, size_t n);

// Standard three-way comparisons.
int StrCmp(Memory& m, Ptr a, Ptr b);
int StrNCmp(Memory& m, Ptr a, Ptr b, size_t n);
int MemCmp(Memory& m, Ptr a, Ptr b, size_t n);

// First occurrence of c (which may be '\0') in s; null Ptr if absent.
Ptr StrChr(Memory& m, Ptr s, char c);
// Last occurrence of c in s; null Ptr if absent.
Ptr StrRChr(Memory& m, Ptr s, char c);

// Byte-block operations.
void MemCpy(Memory& m, Ptr dst, Ptr src, size_t n);
void MemMove(Memory& m, Ptr dst, Ptr src, size_t n);
void MemSet(Memory& m, Ptr dst, uint8_t value, size_t n);

// strdup: Malloc + StrCpy.
Ptr StrDup(Memory& m, Ptr s, const char* name = "strdup");

}  // namespace fob

#endif  // SRC_LIBC_CSTRING_H_
