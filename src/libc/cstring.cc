#include "src/libc/cstring.h"

#include <algorithm>
#include <string>
#include <vector>

namespace fob {

size_t StrLen(Memory& m, Ptr s) {
  size_t n = 0;
  while (m.ReadU8(s + static_cast<int64_t>(n)) != 0) {
    ++n;
  }
  return n;
}

Ptr StrCpy(Memory& m, Ptr dst, Ptr src) {
  int64_t i = 0;
  for (;; ++i) {
    uint8_t c = m.ReadU8(src + i);
    m.WriteU8(dst + i, c);
    if (c == 0) {
      break;
    }
  }
  return dst;
}

Ptr StrNCpy(Memory& m, Ptr dst, Ptr src, size_t n) {
  size_t i = 0;
  for (; i < n; ++i) {
    uint8_t c = m.ReadU8(src + static_cast<int64_t>(i));
    m.WriteU8(dst + static_cast<int64_t>(i), c);
    if (c == 0) {
      ++i;
      break;
    }
  }
  for (; i < n; ++i) {
    m.WriteU8(dst + static_cast<int64_t>(i), 0);
  }
  return dst;
}

Ptr StrCat(Memory& m, Ptr dst, Ptr src) {
  int64_t offset = static_cast<int64_t>(StrLen(m, dst));
  int64_t i = 0;
  for (;; ++i) {
    uint8_t c = m.ReadU8(src + i);
    m.WriteU8(dst + offset + i, c);
    if (c == 0) {
      break;
    }
  }
  return dst;
}

Ptr StrNCat(Memory& m, Ptr dst, Ptr src, size_t n) {
  int64_t offset = static_cast<int64_t>(StrLen(m, dst));
  size_t i = 0;
  for (; i < n; ++i) {
    uint8_t c = m.ReadU8(src + static_cast<int64_t>(i));
    if (c == 0) {
      break;
    }
    m.WriteU8(dst + offset + static_cast<int64_t>(i), c);
  }
  m.WriteU8(dst + offset + static_cast<int64_t>(i), 0);
  return dst;
}

int StrCmp(Memory& m, Ptr a, Ptr b) {
  for (int64_t i = 0;; ++i) {
    uint8_t ca = m.ReadU8(a + i);
    uint8_t cb = m.ReadU8(b + i);
    if (ca != cb) {
      return ca < cb ? -1 : 1;
    }
    if (ca == 0) {
      return 0;
    }
  }
}

int StrNCmp(Memory& m, Ptr a, Ptr b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t ca = m.ReadU8(a + static_cast<int64_t>(i));
    uint8_t cb = m.ReadU8(b + static_cast<int64_t>(i));
    if (ca != cb) {
      return ca < cb ? -1 : 1;
    }
    if (ca == 0) {
      return 0;
    }
  }
  return 0;
}

int MemCmp(Memory& m, Ptr a, Ptr b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t ca = m.ReadU8(a + static_cast<int64_t>(i));
    uint8_t cb = m.ReadU8(b + static_cast<int64_t>(i));
    if (ca != cb) {
      return ca < cb ? -1 : 1;
    }
  }
  return 0;
}

Ptr StrChr(Memory& m, Ptr s, char c) {
  for (int64_t i = 0;; ++i) {
    uint8_t v = m.ReadU8(s + i);
    if (v == static_cast<uint8_t>(c)) {
      return s + i;
    }
    if (v == 0) {
      return kNullPtr;
    }
  }
}

Ptr StrRChr(Memory& m, Ptr s, char c) {
  Ptr found = kNullPtr;
  for (int64_t i = 0;; ++i) {
    uint8_t v = m.ReadU8(s + i);
    if (v == static_cast<uint8_t>(c)) {
      found = s + i;
    }
    if (v == 0) {
      return found;
    }
  }
}

void MemCpy(Memory& m, Ptr dst, Ptr src, size_t n) {
  // Chunked transfers keep the number of checked accesses proportional to
  // n/chunk rather than n, like a compiler that checks the whole access
  // range once. memcpy with overlapping ranges is undefined; this copies
  // forward like most implementations.
  constexpr size_t kChunk = 4096;
  std::vector<uint8_t> buffer(std::min(n, kChunk));
  size_t done = 0;
  while (done < n) {
    size_t step = std::min(n - done, kChunk);
    m.Read(src + static_cast<int64_t>(done), buffer.data(), step);
    m.Write(dst + static_cast<int64_t>(done), buffer.data(), step);
    done += step;
  }
}

void MemMove(Memory& m, Ptr dst, Ptr src, size_t n) {
  // Buffer the whole source first so overlap is safe.
  std::vector<uint8_t> buffer(n);
  if (n > 0) {
    m.Read(src, buffer.data(), n);
    m.Write(dst, buffer.data(), n);
  }
}

void MemSet(Memory& m, Ptr dst, uint8_t value, size_t n) {
  constexpr size_t kChunk = 4096;
  std::vector<uint8_t> buffer(std::min(n, kChunk), value);
  size_t done = 0;
  while (done < n) {
    size_t step = std::min(n - done, kChunk);
    m.Write(dst + static_cast<int64_t>(done), buffer.data(), step);
    done += step;
  }
}

Ptr StrDup(Memory& m, Ptr s, const char* name) {
  size_t n = StrLen(m, s);
  Ptr copy = m.Malloc(n + 1, name);
  if (copy.IsNull()) {
    return copy;
  }
  for (size_t i = 0; i <= n; ++i) {
    m.WriteU8(copy + static_cast<int64_t>(i), m.ReadU8(s + static_cast<int64_t>(i)));
  }
  return copy;
}

}  // namespace fob
