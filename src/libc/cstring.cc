#include "src/libc/cstring.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/runtime/access_cursor.h"

namespace fob {

// Every scanning loop here walks through an AccessCursor: the first byte
// resolves the operand's data unit, the rest of the run skips the per-access
// object-table search. Semantics are unchanged — an out-of-bounds byte falls
// back to the full per-byte policy path, so strcat through a
// failure-oblivious Memory still silently truncates, through a bounds-check
// Memory still terminates, through a standard Memory still smashes what lies
// beyond.

size_t StrLen(Memory& m, Ptr s) {
  AccessCursor cursor(m);
  size_t n = 0;
  while (cursor.ReadU8(s + static_cast<int64_t>(n)) != 0) {
    ++n;
  }
  return n;
}

Ptr StrCpy(Memory& m, Ptr dst, Ptr src) {
  AccessCursor in(m);
  AccessCursor out(m);
  int64_t i = 0;
  for (;; ++i) {
    uint8_t c = in.ReadU8(src + i);
    out.WriteU8(dst + i, c);
    if (c == 0) {
      break;
    }
  }
  return dst;
}

Ptr StrNCpy(Memory& m, Ptr dst, Ptr src, size_t n) {
  AccessCursor in(m);
  AccessCursor out(m);
  size_t i = 0;
  for (; i < n; ++i) {
    uint8_t c = in.ReadU8(src + static_cast<int64_t>(i));
    out.WriteU8(dst + static_cast<int64_t>(i), c);
    if (c == 0) {
      ++i;
      break;
    }
  }
  for (; i < n; ++i) {
    out.WriteU8(dst + static_cast<int64_t>(i), 0);
  }
  return dst;
}

Ptr StrCat(Memory& m, Ptr dst, Ptr src) {
  AccessCursor in(m);
  AccessCursor out(m);
  int64_t offset = static_cast<int64_t>(StrLen(m, dst));
  int64_t i = 0;
  for (;; ++i) {
    uint8_t c = in.ReadU8(src + i);
    out.WriteU8(dst + offset + i, c);
    if (c == 0) {
      break;
    }
  }
  return dst;
}

Ptr StrNCat(Memory& m, Ptr dst, Ptr src, size_t n) {
  AccessCursor in(m);
  AccessCursor out(m);
  int64_t offset = static_cast<int64_t>(StrLen(m, dst));
  size_t i = 0;
  for (; i < n; ++i) {
    uint8_t c = in.ReadU8(src + static_cast<int64_t>(i));
    if (c == 0) {
      break;
    }
    out.WriteU8(dst + offset + static_cast<int64_t>(i), c);
  }
  out.WriteU8(dst + offset + static_cast<int64_t>(i), 0);
  return dst;
}

int StrCmp(Memory& m, Ptr a, Ptr b) {
  AccessCursor ca(m);
  AccessCursor cb(m);
  for (int64_t i = 0;; ++i) {
    uint8_t va = ca.ReadU8(a + i);
    uint8_t vb = cb.ReadU8(b + i);
    if (va != vb) {
      return va < vb ? -1 : 1;
    }
    if (va == 0) {
      return 0;
    }
  }
}

int StrNCmp(Memory& m, Ptr a, Ptr b, size_t n) {
  AccessCursor ca(m);
  AccessCursor cb(m);
  for (size_t i = 0; i < n; ++i) {
    uint8_t va = ca.ReadU8(a + static_cast<int64_t>(i));
    uint8_t vb = cb.ReadU8(b + static_cast<int64_t>(i));
    if (va != vb) {
      return va < vb ? -1 : 1;
    }
    if (va == 0) {
      return 0;
    }
  }
  return 0;
}

int MemCmp(Memory& m, Ptr a, Ptr b, size_t n) {
  AccessCursor ca(m);
  AccessCursor cb(m);
  for (size_t i = 0; i < n; ++i) {
    uint8_t va = ca.ReadU8(a + static_cast<int64_t>(i));
    uint8_t vb = cb.ReadU8(b + static_cast<int64_t>(i));
    if (va != vb) {
      return va < vb ? -1 : 1;
    }
  }
  return 0;
}

Ptr StrChr(Memory& m, Ptr s, char c) {
  AccessCursor cursor(m);
  for (int64_t i = 0;; ++i) {
    uint8_t v = cursor.ReadU8(s + i);
    if (v == static_cast<uint8_t>(c)) {
      return s + i;
    }
    if (v == 0) {
      return kNullPtr;
    }
  }
}

Ptr StrRChr(Memory& m, Ptr s, char c) {
  AccessCursor cursor(m);
  Ptr found = kNullPtr;
  for (int64_t i = 0;; ++i) {
    uint8_t v = cursor.ReadU8(s + i);
    if (v == static_cast<uint8_t>(c)) {
      found = s + i;
    }
    if (v == 0) {
      return found;
    }
  }
}

void MemCpy(Memory& m, Ptr dst, Ptr src, size_t n) {
  // Chunked transfers keep the number of checked accesses proportional to
  // n/chunk rather than n, like a compiler that checks the whole access
  // range once. memcpy with overlapping ranges is undefined; this copies
  // forward like most implementations.
  constexpr size_t kChunk = 4096;
  std::vector<uint8_t> buffer(std::min(n, kChunk));
  size_t done = 0;
  while (done < n) {
    size_t step = std::min(n - done, kChunk);
    m.Read(src + static_cast<int64_t>(done), buffer.data(), step);
    m.Write(dst + static_cast<int64_t>(done), buffer.data(), step);
    done += step;
  }
}

void MemMove(Memory& m, Ptr dst, Ptr src, size_t n) {
  // Buffer the whole source first so overlap is safe.
  std::vector<uint8_t> buffer(n);
  if (n > 0) {
    m.Read(src, buffer.data(), n);
    m.Write(dst, buffer.data(), n);
  }
}

void MemSet(Memory& m, Ptr dst, uint8_t value, size_t n) {
  constexpr size_t kChunk = 4096;
  std::vector<uint8_t> buffer(std::min(n, kChunk), value);
  size_t done = 0;
  while (done < n) {
    size_t step = std::min(n - done, kChunk);
    m.Write(dst + static_cast<int64_t>(done), buffer.data(), step);
    done += step;
  }
}

Ptr StrDup(Memory& m, Ptr s, const char* name) {
  size_t n = StrLen(m, s);
  Ptr copy = m.Malloc(n + 1, name);
  if (copy.IsNull()) {
    return copy;
  }
  AccessCursor in(m);
  AccessCursor out(m);
  for (size_t i = 0; i <= n; ++i) {
    out.WriteU8(copy + static_cast<int64_t>(i), in.ReadU8(s + static_cast<int64_t>(i)));
  }
  return copy;
}

}  // namespace fob
