// Span fast path over checked memory.
//
// An AccessCursor caches the resolved data unit of the last access — its
// identity, bounds, and the object table's retire epoch at resolution time.
// Sequential accesses that stay inside that unit skip the per-access
// Jones-Kelly table search and run as raw copies; anything else (unit
// change, out-of-bounds byte, retired unit, an active access budget) falls
// back to the full per-byte classify-and-continue path in fob::Memory —
// where the shard's page-granular unit map (src/softmem/page_map.h) gets
// the first look, so even the cursor's fallback bytes usually resolve in
// O(1) before any interval search runs.
//
// This is the runtime analogue of the paper's compiler hoisting bounds
// checks out of loops: the observable semantics are bit-identical to the
// byte-at-a-time loop — every cursor operation charges the access budget per
// byte, produces the same per-byte error-log records (same access indices),
// and consumes the manufactured-value sequence identically — only the cost
// of the checks is amortized. tests/test_property_span.cc pins this
// equivalence down for all five policies.
//
// A cursor borrows its Memory; it holds no resources and may be discarded
// freely. Cached state can never go stale undetected: units never move or
// resize, unit ids are never reused, and the cursor revalidates against
// ObjectTable::retire_epoch() before every fast access.

#ifndef SRC_RUNTIME_ACCESS_CURSOR_H_
#define SRC_RUNTIME_ACCESS_CURSOR_H_

#include <cstddef>
#include <cstdint>

#include "src/runtime/memory.h"

namespace fob {

class AccessCursor {
 public:
  explicit AccessCursor(Memory& memory);

  // Each call is observably identical to the same-shaped ReadU8/WriteU8
  // loop on the underlying Memory.
  uint8_t ReadU8(Ptr p);
  void WriteU8(Ptr p, uint8_t v);
  void Read(Ptr p, void* dst, size_t n);
  void Write(Ptr p, const void* src, size_t n);

  // Drops the cached resolution. Never required for correctness (the retire
  // epoch catches staleness); useful to re-warm deliberately in tests.
  void Invalidate();

 private:
  // Length of the prefix of [p, p+n) that the cache proves in bounds, after
  // attempting to (re)resolve p's referent. 0 means take the slow path.
  size_t FastRun(Ptr p, size_t n);
  bool Resolve(Ptr p);

  Memory& memory_;
  bool checked_;  // policy runs the Jones-Kelly check (not Standard)
  UnitId unit_ = kInvalidUnit;
  Addr base_ = 0;
  Addr end_ = 0;
  uint64_t epoch_ = 0;
  bool valid_ = false;
};

}  // namespace fob

#endif  // SRC_RUNTIME_ACCESS_CURSOR_H_
