// Per-site policy selection: SiteId + PolicySpec.
//
// The paper applies one continuation policy to the whole program, but the
// follow-up literature treats the policy as a *per-error-site* choice:
// Durieux et al. ("Exhaustive Exploration of the Failure-oblivious Computing
// Search Space") enumerate policy combinations over the error sites a
// workload exhibits, and Rigger et al. ("Context-aware Failure-oblivious
// Computing") pick the continuation per access context.
//
// A *site* is the stable identity of an access context: the name of the data
// unit the pointer was derived from (the allocation/local/global name), the
// innermost simulated stack frame, and whether the access is a read or a
// write. Allocation names and frame functions are deterministic in this
// runtime, so SiteId is reproducible across runs of the same workload — a
// baseline run's error log names exactly the sites a sweep can then assign
// policies to.
//
// A PolicySpec maps SiteId -> AccessPolicy with a fallback for unlisted
// sites. It is implicitly constructible from a bare AccessPolicy, so every
// pre-existing "one policy per Memory" call site reads as a uniform spec.
// The runtime-side resolver that turns the chosen AccessPolicy into a live
// PolicyHandler is PolicyTable (src/runtime/policy_table.h).

#ifndef SRC_RUNTIME_POLICY_SPEC_H_
#define SRC_RUNTIME_POLICY_SPEC_H_

#include <cstdint>
#include <map>
#include <string_view>

#include "src/runtime/policy.h"

namespace fob {

enum class AccessKind : uint8_t { kRead, kWrite };

const char* AccessKindName(AccessKind kind);

// Stable 64-bit site identity (FNV-1a over unit name, frame function and
// access kind). kInvalidSite is never produced by MakeSiteId.
using SiteId = uint64_t;
inline constexpr SiteId kInvalidSite = 0;

SiteId MakeSiteId(std::string_view unit_name, std::string_view function, AccessKind kind);

class PolicySpec {
 public:
  // Implicit on purpose: a bare AccessPolicy *is* the uniform spec, which
  // keeps the legacy single-policy constructors and call sites source
  // compatible.
  PolicySpec(AccessPolicy uniform = AccessPolicy::kFailureOblivious)  // NOLINT
      : fallback_(uniform) {}

  static PolicySpec Uniform(AccessPolicy policy) { return PolicySpec(policy); }

  // Assigns a policy to one site; returns *this for chaining.
  PolicySpec& Set(SiteId site, AccessPolicy policy) {
    overrides_[site] = policy;
    return *this;
  }

  AccessPolicy Resolve(SiteId site) const {
    auto it = overrides_.find(site);
    return it != overrides_.end() ? it->second : fallback_;
  }

  AccessPolicy fallback() const { return fallback_; }

  // True when no per-site overrides exist. Uniform specs take the exact
  // single-handler fast path in Memory (bit-identical to the pre-PolicySpec
  // runtime); any override — even one that maps to the fallback policy —
  // routes accesses through the per-site dispatch path.
  bool uniform() const { return overrides_.empty(); }

  const std::map<SiteId, AccessPolicy>& overrides() const { return overrides_; }

 private:
  AccessPolicy fallback_;
  std::map<SiteId, AccessPolicy> overrides_;
};

}  // namespace fob

#endif  // SRC_RUNTIME_POLICY_SPEC_H_
