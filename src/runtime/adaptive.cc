#include "src/runtime/adaptive.h"

#include <algorithm>
#include <climits>

namespace fob {

std::string AdaptiveSiteState::Label() const {
  return std::string(is_write ? "write " : "read ") + unit_name + " @ " + function;
}

bool PolicyTerminates(AccessPolicy policy) {
  switch (policy) {
    case AccessPolicy::kStandard:
    case AccessPolicy::kBoundsCheck:
    case AccessPolicy::kThreshold:
      return true;
    case AccessPolicy::kFailureOblivious:
    case AccessPolicy::kBoundless:
    case AccessPolicy::kWrap:
    case AccessPolicy::kZeroManufacture:
      return false;
  }
  return false;
}

std::vector<AccessPolicy> DefaultAdaptiveCandidates() {
  return std::vector<AccessPolicy>(kAllPolicies.begin(), kAllPolicies.end());
}

AdaptivePolicyController::AdaptivePolicyController() : AdaptivePolicyController(Options()) {}

AdaptivePolicyController::AdaptivePolicyController(const Options& options)
    : options_(options), rng_state_(options.seed == 0 ? 0x9e3779b97f4a7c15ull : options.seed) {
  if (options_.candidates.empty()) {
    options_.candidates = std::vector<AccessPolicy>(1, options_.prior);
  }
}

// SplitMix64: deterministic, seedable, and consulted in a fixed order —
// the entire learning trajectory is a pure function of (observations, seed).
uint64_t AdaptivePolicyController::NextRandom() {
  rng_state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

PolicySpec AdaptivePolicyController::CurrentSpec() const {
  PolicySpec spec(options_.prior);
  for (const AdaptiveSiteState& site : sites_) {
    spec.Set(site.site, site.current);
  }
  return spec;
}

PolicySpec AdaptivePolicyController::BestSpec() const {
  PolicySpec spec(options_.prior);
  for (const AdaptiveSiteState& site : sites_) {
    spec.Set(site.site, BestArmOf(site));
  }
  return spec;
}

size_t AdaptivePolicyController::ArmIndex(size_t site_index, AccessPolicy policy) const {
  const std::vector<AdaptiveArm>& arms = sites_[site_index].arms;
  for (size_t i = 0; i < arms.size(); ++i) {
    if (arms[i].policy == policy) {
      return i;
    }
  }
  return SIZE_MAX;
}

AccessPolicy AdaptivePolicyController::BestArmOf(const AdaptiveSiteState& site) const {
  const AdaptiveArm* best = nullptr;
  for (const AdaptiveArm& arm : site.arms) {
    if (arm.disabled || arm.pulls == 0) {
      continue;
    }
    // On a mean tie, a continuing arm beats a terminate-capable one: a site
    // whose errors never recurred after epoch 0 (a construction-time site,
    // say) scores every later arm 0, and "best" must not resolve to
    // kStandard/kBoundsCheck on zero information — the validation run would
    // execute the construction under an arm the live epochs never actually
    // exercised there. Remaining ties keep the earlier candidate.
    if (best == nullptr || arm.mean_reward() > best->mean_reward() ||
        (arm.mean_reward() == best->mean_reward() && PolicyTerminates(best->policy) &&
         !PolicyTerminates(arm.policy))) {
      best = &arm;
    }
  }
  return best == nullptr ? options_.prior : best->policy;
}

void AdaptivePolicyController::ObserveShardLog(uint32_t shard_id, const MemLog& log,
                                               uint64_t incarnation) {
  // A new incarnation means the worker was replaced and this log started
  // from zero: drop the dead worker's baselines so the fresh counts are
  // read in full, not differenced against a ghost. (Errors the dead worker
  // logged after its last observation are gone with it — the controller
  // only sees what the serving layer still holds at epoch end.)
  uint64_t& known = shard_incarnation_[shard_id];
  if (incarnation != known) {
    known = incarnation;
    auto it = last_counts_.lower_bound({shard_id, 0});
    while (it != last_counts_.end() && it->first.first == shard_id) {
      it = last_counts_.erase(it);
    }
  }
  for (const auto& [site_id, stat] : log.sites()) {
    uint64_t& last = last_counts_[{shard_id, site_id}];
    // Fallback for callers that do not track incarnations: a count below
    // the last observation still means the shard was replaced.
    uint64_t delta = stat.count >= last ? stat.count - last : stat.count;
    last = stat.count;

    auto it = site_index_.find(site_id);
    if (it == site_index_.end()) {
      if (sites_.size() >= options_.max_sites) {
        continue;  // beyond the tracking cap; fallback policy governs it
      }
      AdaptiveSiteState site;
      site.site = site_id;
      site.unit_name = stat.unit_name;
      site.function = stat.function;
      site.is_write = stat.is_write;
      site.current = options_.prior;
      site.arms.reserve(options_.candidates.size());
      for (AccessPolicy candidate : options_.candidates) {
        AdaptiveArm arm;
        arm.policy = candidate;
        site.arms.push_back(arm);
      }
      it = site_index_.emplace(site_id, sites_.size()).first;
      new_this_epoch_.push_back(sites_.size());
      sites_.push_back(std::move(site));
    }
    AdaptiveSiteState& site = sites_[it->second];
    site.epoch_errors += delta;
    site.total_errors += delta;
  }
}

uint64_t AdaptivePolicyController::EndEpoch(const EpochVerdict& verdict) {
  const bool acceptable = verdict.attack_acceptable && verdict.legit_ok;
  const bool lost_worker = verdict.restarts > 0;

  // The arms whose choice was this epoch's experiment: the focus site plus
  // any site first observed this epoch (it ran the prior). Epoch 0 has no
  // focus, so every site is new and every prior arm is rewarded — the
  // baseline observation that seeds the bandit.
  std::vector<size_t> updated = new_this_epoch_;
  if (focus_ != SIZE_MAX &&
      std::find(updated.begin(), updated.end(), focus_) == updated.end()) {
    updated.push_back(focus_);
  }

  uint64_t epoch_errors = 0;
  for (const AdaptiveSiteState& site : sites_) {
    epoch_errors += site.epoch_errors;
  }

  // Crash attribution. When the epoch lost a worker, the culprits are the
  // sites currently holding terminate-capable arms — *wherever* they sit:
  // a non-focus site's standing kThreshold arm can cross its persistent
  // error budget (the counter survives Rebind) in an epoch where some
  // other site was the experiment, and it, not the innocent focus arm,
  // must absorb the penalty and lose its terminate arms. Only when no site
  // holds a terminate-capable arm (a hang-budget exhaustion under a
  // continuing policy) does the blame fall on the epoch's experiment.
  std::vector<size_t> culprits;
  if (lost_worker) {
    for (size_t i = 0; i < sites_.size(); ++i) {
      if (PolicyTerminates(sites_[i].current)) {
        culprits.push_back(i);
      }
    }
    if (culprits.empty()) {
      if (focus_ != SIZE_MAX) {
        culprits.push_back(focus_);
      } else {
        culprits = updated;  // baseline epoch: the prior everywhere
      }
    }
  }
  auto is_culprit = [&culprits](size_t index) {
    return std::find(culprits.begin(), culprits.end(), index) != culprits.end();
  };

  for (size_t index : updated) {
    AdaptiveSiteState& site = sites_[index];
    double reward = -options_.error_weight * static_cast<double>(site.epoch_errors);
    // The unacceptable penalty belongs to the epoch's *experiment* — the
    // focus deviation, or the prior on the baseline epoch — unless a
    // worker loss explains the failed responses, in which case it follows
    // the crash culprits. A site merely first observed during a focus
    // epoch chose nothing and is charged nothing beyond its own errors.
    const bool experimented = index == focus_ || focus_ == SIZE_MAX;
    if (!acceptable && (lost_worker ? is_culprit(index) : experimented)) {
      reward -= options_.unacceptable_penalty;
    }
    if (lost_worker && is_culprit(index)) {
      reward -= options_.crash_penalty;
    }
    size_t arm_index = ArmIndex(index, site.current);
    if (arm_index != SIZE_MAX) {
      AdaptiveArm& arm = site.arms[arm_index];
      arm.total_reward += reward;
      ++arm.pulls;
    }
  }

  // Culprits outside the updated set absorb the crash as a forced penalty
  // pull of their standing arm, and the safety rail retires every
  // terminate-capable arm at any culprit site that held one.
  for (size_t index : culprits) {
    AdaptiveSiteState& site = sites_[index];
    if (std::find(updated.begin(), updated.end(), index) == updated.end()) {
      size_t arm_index = ArmIndex(index, site.current);
      if (arm_index != SIZE_MAX) {
        AdaptiveArm& arm = site.arms[arm_index];
        arm.total_reward -=
            options_.crash_penalty + (acceptable ? 0.0 : options_.unacceptable_penalty);
        ++arm.pulls;
      }
    }
    if (PolicyTerminates(site.current)) {
      site.crash_tainted = true;
      for (AdaptiveArm& arm : site.arms) {
        if (PolicyTerminates(arm.policy)) {
          arm.disabled = true;
        }
      }
    }
  }

  for (AdaptiveSiteState& site : sites_) {
    site.epoch_errors = 0;
  }
  new_this_epoch_.clear();
  ++epochs_completed_;

  // Select the next epoch's assignment: one focus site deviates, everyone
  // else exploits its best observed arm.
  if (!sites_.empty()) {
    focus_ = focus_ == SIZE_MAX ? 0 : (focus_ + 1) % sites_.size();
    for (size_t i = 0; i < sites_.size(); ++i) {
      AdaptiveSiteState& site = sites_[i];
      if (i != focus_) {
        site.current = BestArmOf(site);
        continue;
      }
      // Focus: cover untried enabled arms first (candidate order), then
      // epsilon-greedy among the enabled arms.
      size_t untried = SIZE_MAX;
      std::vector<size_t> enabled;
      for (size_t a = 0; a < site.arms.size(); ++a) {
        if (site.arms[a].disabled) {
          continue;
        }
        enabled.push_back(a);
        if (untried == SIZE_MAX && site.arms[a].pulls == 0) {
          untried = a;
        }
      }
      if (enabled.empty()) {
        site.current = options_.prior;
      } else if (untried != SIZE_MAX) {
        site.current = site.arms[untried].policy;
      } else if (static_cast<double>(NextRandom() >> 11) * 0x1.0p-53 < options_.epsilon) {
        site.current = site.arms[enabled[NextRandom() % enabled.size()]].policy;
      } else {
        site.current = BestArmOf(site);
      }
    }
  }
  return epoch_errors;
}

}  // namespace fob
