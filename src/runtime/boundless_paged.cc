#include "src/runtime/boundless_paged.h"

#include <cstring>

namespace fob {

namespace {

// The shared zero page: what every all-zero-content page's reads resolve
// against until a nonzero store copies-on-write. constexpr, so it lives in
// a read-only section — the deduplication target is immutable shared data,
// not writable cross-shard state (tools/fob_analyze pass 2 enforces this at
// the object level).
constexpr std::array<uint8_t, PagedBoundlessStore::kPageBytes> kSharedZeroPage{};

}  // namespace

const uint8_t* PagedBoundlessStore::Page::data() const {
  return owned != nullptr ? owned.get() : kSharedZeroPage.data();
}

PagedBoundlessStore::PagedBoundlessStore(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      capacity_pages_(capacity_bytes == 0
                          ? 0
                          : (capacity_bytes + kPageBytes - 1) / kPageBytes) {}

PagedBoundlessStore::Page& PagedBoundlessStore::Materialize(PageKey key) {
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    return it->second;
  }
  auto cit = compressed_.find(key);
  Page& page = pages_[key];
  if (cit != compressed_.end()) {
    // Rematerialize a compressed spray page: fully present, one value.
    page.owned = std::make_unique<uint8_t[]>(kPageBytes);
    std::memset(page.owned.get(), cit->second, kPageBytes);
    page.present.fill(~0ull);
    page.present_count = kPageBytes;
    compressed_.erase(cit);
  } else {
    // Fresh pages start zero-deduplicated: no 256 B backing until the first
    // nonzero store.
    ++zero_pages_live_;
    unit_pages_[key.unit].insert(key.index);
  }
  if (capacity_pages_ != 0) {
    clock_.push_back(key);
    page.clock_pos = --clock_.end();
  }
  return page;
}

void PagedBoundlessStore::CopyOnWrite(Page& page) {
  // Every byte stored so far is zero, so the owned copy starts zero-filled.
  page.owned = std::make_unique<uint8_t[]>(kPageBytes);
  std::memset(page.owned.get(), 0, kPageBytes);
  --zero_pages_live_;
}

void PagedBoundlessStore::RemoveClockEntry(Page& page) {
  if (capacity_pages_ == 0) {
    return;
  }
  if (hand_ == page.clock_pos) {
    hand_ = clock_.erase(page.clock_pos);
  } else {
    clock_.erase(page.clock_pos);
  }
}

void PagedBoundlessStore::MaybeEvict() {
  if (capacity_pages_ == 0) {
    return;
  }
  while (pages_.size() > capacity_pages_ && !clock_.empty()) {
    if (hand_ == clock_.end()) {
      hand_ = clock_.begin();
    }
    PageKey key = *hand_;
    Page& page = pages_.at(key);
    if (page.referenced) {
      // Second chance: clear and move on. A full sweep clears every bit, so
      // the loop terminates at the first page not touched since.
      page.referenced = false;
      ++hand_;
      continue;
    }
    hand_ = clock_.erase(hand_);
    // Write-once attack spray stores one value over whole ranges; such a
    // page compresses to a single byte instead of losing its contents.
    bool uniform = page.present_count == kPageBytes;
    if (uniform && page.owned != nullptr) {
      const uint8_t* data = page.owned.get();
      for (size_t i = 1; i < kPageBytes; ++i) {
        if (data[i] != data[0]) {
          uniform = false;
          break;
        }
      }
    }
    if (uniform) {
      compressed_[key] = page.data()[0];
    } else {
      stored_bytes_ -= page.present_count;
      ++pages_evicted_;
      auto uit = unit_pages_.find(key.unit);
      if (uit != unit_pages_.end()) {
        uit->second.erase(key.index);
        if (uit->second.empty()) {
          unit_pages_.erase(uit);
        }
      }
    }
    if (page.owned == nullptr) {
      --zero_pages_live_;
    }
    pages_.erase(key);
  }
}

void PagedBoundlessStore::StoreByte(UnitId unit, int64_t offset, uint8_t value) {
  Page& page = Materialize(KeyOf(unit, offset));
  size_t byte = static_cast<size_t>(offset & kByteMask);
  if (page.MarkPresent(byte)) {
    ++bytes_materialized_;
    ++stored_bytes_;
  }
  page.referenced = true;
  if (page.owned == nullptr) {
    if (value == 0) {
      ++zero_dedup_hits_;
      MaybeEvict();
      return;
    }
    CopyOnWrite(page);
  }
  page.owned[byte] = value;
  MaybeEvict();
}

void PagedBoundlessStore::StoreSpan(UnitId unit, int64_t offset, const uint8_t* src,
                                    size_t n) {
  size_t i = 0;
  while (i < n) {
    int64_t off = offset + static_cast<int64_t>(i);
    size_t byte = static_cast<size_t>(off & kByteMask);
    size_t run = n - i < kPageBytes - byte ? n - i : kPageBytes - byte;
    Page& page = Materialize(KeyOf(unit, off));
    page.referenced = true;
    size_t j = 0;
    // Byte-loop-identical zero dedup: leading zeros land in the shared zero
    // page; the first nonzero byte breaks the sharing.
    if (page.owned == nullptr) {
      for (; j < run && src[i + j] == 0; ++j) {
        if (page.MarkPresent(byte + j)) {
          ++bytes_materialized_;
          ++stored_bytes_;
        }
        ++zero_dedup_hits_;
      }
      if (j < run) {
        CopyOnWrite(page);
      }
    }
    if (page.owned != nullptr) {
      for (; j < run; ++j) {
        if (page.MarkPresent(byte + j)) {
          ++bytes_materialized_;
          ++stored_bytes_;
        }
      }
      std::memcpy(page.owned.get() + byte, src + i, run);
    }
    MaybeEvict();
    i += run;
  }
}

std::optional<uint8_t> PagedBoundlessStore::LoadByte(UnitId unit, int64_t offset) {
  PageKey key = KeyOf(unit, offset);
  size_t byte = static_cast<size_t>(offset & kByteMask);
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    Page& page = it->second;
    if (!page.Present(byte)) {
      return std::nullopt;
    }
    page.referenced = true;
    return page.data()[byte];
  }
  auto cit = compressed_.find(key);
  if (cit != compressed_.end()) {
    return cit->second;
  }
  return std::nullopt;
}

size_t PagedBoundlessStore::LoadSpan(UnitId unit, int64_t offset, size_t n, uint8_t* dst,
                                     uint8_t* present) {
  size_t found = 0;
  size_t i = 0;
  while (i < n) {
    int64_t off = offset + static_cast<int64_t>(i);
    size_t byte = static_cast<size_t>(off & kByteMask);
    size_t run = n - i < kPageBytes - byte ? n - i : kPageBytes - byte;
    PageKey key = KeyOf(unit, off);
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      Page& page = it->second;
      page.referenced = true;
      const uint8_t* data = page.data();
      for (size_t j = 0; j < run; ++j) {
        if (page.Present(byte + j)) {
          dst[i + j] = data[byte + j];
          present[i + j] = 1;
          ++found;
        } else {
          present[i + j] = 0;
        }
      }
    } else if (auto cit = compressed_.find(key); cit != compressed_.end()) {
      std::memset(dst + i, cit->second, run);
      std::memset(present + i, 1, run);
      found += run;
    } else {
      std::memset(present + i, 0, run);
    }
    i += run;
  }
  return found;
}

void PagedBoundlessStore::DropUnit(UnitId unit) {
  auto uit = unit_pages_.find(unit);
  if (uit == unit_pages_.end()) {
    return;
  }
  for (int64_t index : uit->second) {
    PageKey key{unit, index};
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      stored_bytes_ -= it->second.present_count;
      if (it->second.owned == nullptr) {
        --zero_pages_live_;
      }
      RemoveClockEntry(it->second);
      pages_.erase(it);
      continue;
    }
    auto cit = compressed_.find(key);
    if (cit != compressed_.end()) {
      stored_bytes_ -= kPageBytes;
      compressed_.erase(cit);
    }
  }
  unit_pages_.erase(uit);
}

void PagedBoundlessStore::Clear() {
  pages_.clear();
  compressed_.clear();
  unit_pages_.clear();
  clock_.clear();
  hand_ = clock_.end();
  stored_bytes_ = 0;
  zero_pages_live_ = 0;
  bytes_materialized_ = 0;
  pages_evicted_ = 0;
  zero_dedup_hits_ = 0;
}

BoundlessStoreStats PagedBoundlessStore::stats() const {
  BoundlessStoreStats stats;
  stats.pages_live = pages_.size();
  stats.zero_pages_live = zero_pages_live_;
  stats.compressed_pages = compressed_.size();
  stats.bytes_materialized = bytes_materialized_;
  stats.pages_evicted = pages_evicted_;
  stats.zero_dedup_hits = zero_dedup_hits_;
  return stats;
}

}  // namespace fob
