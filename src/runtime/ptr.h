// Checked pointers.
//
// A Ptr is the value a safe-C compiler would manipulate for a C pointer: the
// raw address plus the identity of the data unit the pointer was derived
// from (the "intended referent" in Jones-Kelly terminology). Arithmetic
// never faults and never loses the referent — CRED's key enhancement — so
// idioms like `p < end` with a temporarily out-of-bounds p behave exactly
// like the unchecked program (§4.1). Only dereferences, which go through
// fob::Memory, are checked.
//
// Comparison operators compare addresses only, matching raw pointer
// comparison semantics.

#ifndef SRC_RUNTIME_PTR_H_
#define SRC_RUNTIME_PTR_H_

#include <compare>
#include <cstdint>

#include "src/softmem/address_space.h"
#include "src/softmem/object_table.h"

namespace fob {

struct Ptr {
  Addr addr = 0;
  UnitId unit = kInvalidUnit;

  constexpr Ptr() = default;
  constexpr Ptr(Addr a, UnitId u) : addr(a), unit(u) {}

  constexpr bool IsNull() const { return addr == 0; }
  constexpr explicit operator bool() const { return addr != 0; }

  // Pointer +/- integer keeps the referent.
  constexpr Ptr operator+(int64_t n) const { return Ptr(addr + static_cast<uint64_t>(n), unit); }
  constexpr Ptr operator-(int64_t n) const { return Ptr(addr - static_cast<uint64_t>(n), unit); }
  Ptr& operator+=(int64_t n) {
    addr += static_cast<uint64_t>(n);
    return *this;
  }
  Ptr& operator-=(int64_t n) {
    addr -= static_cast<uint64_t>(n);
    return *this;
  }
  Ptr& operator++() {
    ++addr;
    return *this;
  }
  Ptr operator++(int) {
    Ptr old = *this;
    ++addr;
    return old;
  }
  Ptr& operator--() {
    --addr;
    return *this;
  }

  // Pointer difference (p - q), as in `p - buf` size computations.
  constexpr int64_t operator-(const Ptr& other) const {
    return static_cast<int64_t>(addr - other.addr);
  }

  friend constexpr bool operator==(const Ptr& a, const Ptr& b) { return a.addr == b.addr; }
  friend constexpr std::strong_ordering operator<=>(const Ptr& a, const Ptr& b) {
    return a.addr <=> b.addr;
  }
};

inline constexpr Ptr kNullPtr{};

}  // namespace fob

#endif  // SRC_RUNTIME_PTR_H_
