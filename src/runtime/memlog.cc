#include "src/runtime/memlog.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace fob {

std::string MemErrorRecord::ToString() const {
  std::ostringstream os;
  os << "memory error: invalid " << (is_write ? "write" : "read") << " of " << size << " byte"
     << (size == 1 ? "" : "s") << " at 0x" << std::hex << addr << std::dec << " ["
     << PointerStatusName(status) << "]";
  if (!unit_name.empty()) {
    os << " referent '" << unit_name << "'";
  }
  if (!function.empty()) {
    os << " in " << function;
  }
  os << " (access #" << access_index << ")";
  return os.str();
}

std::string MemSiteStat::Label() const {
  std::ostringstream os;
  os << (is_write ? "write " : "read ") << (unit_name.empty() ? "<wild>" : unit_name);
  if (!function.empty()) {
    os << " @ " << function;
  }
  return os.str();
}

void MemLog::Record(MemErrorRecord record) {
  ++total_;
  if (record.is_write) {
    ++write_errors_;
  } else {
    ++read_errors_;
  }
  if (!record.unit_name.empty()) {
    ++by_unit_[record.unit_name];
  }
  if (record.site != kInvalidSite) {
    MemSiteStat& stat = sites_[record.site];
    if (stat.count == 0) {
      stat.site = record.site;
      stat.unit_name = record.unit_name;
      stat.function = record.function;
      stat.is_write = record.is_write;
    }
    ++stat.count;
  }
  if (echo_ != nullptr) {
    *echo_ << record.ToString() << "\n";
  }
  recent_.push_back(std::move(record));
  if (recent_.size() > capacity_) {
    recent_.pop_front();
    ++dropped_;
  }
}

void MemLog::Merge(const MemLog& other) {
  total_ += other.total_;
  read_errors_ += other.read_errors_;
  write_errors_ += other.write_errors_;
  dropped_ += other.dropped_;
  translation_hits_ += other.translation_hits_;
  translation_misses_ += other.translation_misses_;
  AddBoundlessStats(other.boundless_);
  AddSchedulerStats(other.shed_requests_, other.stolen_batches_, other.peak_lane_depth_);
  for (const auto& [name, count] : other.by_unit_) {
    by_unit_[name] += count;
  }
  for (const auto& [site, stat] : other.sites_) {
    MemSiteStat& mine = sites_[site];
    if (mine.count == 0) {
      mine.site = stat.site;
      mine.unit_name = stat.unit_name;
      mine.function = stat.function;
      mine.is_write = stat.is_write;
    }
    mine.count += stat.count;
  }
  for (const MemErrorRecord& record : other.recent_) {
    recent_.push_back(record);
    if (recent_.size() > capacity_) {
      recent_.pop_front();
      ++dropped_;
    }
  }
}

std::string MemLog::Summary() const {
  std::ostringstream os;
  os << "memory-error log: " << total_ << " total (" << write_errors_ << " writes, "
     << read_errors_ << " reads)\n";
  if (translation_hits_ + translation_misses_ > 0) {
    os << "  page-map fast path: " << translation_hits_ << " hits, " << translation_misses_
       << " misses\n";
  }
  if (boundless_.any()) {
    os << "  boundless store: " << boundless_.pages_live << " pages live ("
       << boundless_.zero_pages_live << " zero-dedup, " << boundless_.compressed_pages
       << " compressed), " << boundless_.bytes_materialized << " bytes materialized, "
       << boundless_.pages_evicted << " pages evicted, " << boundless_.zero_dedup_hits
       << " zero-dedup hits\n";
  }
  if (shed_requests_ + stolen_batches_ + peak_lane_depth_ > 0) {
    os << "  scheduler: " << shed_requests_ << " requests shed, " << stolen_batches_
       << " batches stolen, peak lane depth " << peak_lane_depth_ << "\n";
  }
  if (dropped_ > 0) {
    os << "  detail ring capped at " << capacity_ << ": " << dropped_
       << " older records evicted (aggregates exact)\n";
  }
  // Sort units by error count, descending.
  std::vector<std::pair<std::string, uint64_t>> units(by_unit_.begin(), by_unit_.end());
  std::sort(units.begin(), units.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [name, count] : units) {
    os << "  " << count << "x  " << name << "\n";
  }
  return os.str();
}

void MemLog::Clear() {
  recent_.clear();
  total_ = read_errors_ = write_errors_ = dropped_ = 0;
  translation_hits_ = translation_misses_ = 0;
  boundless_ = BoundlessStoreStats{};
  shed_requests_ = stolen_batches_ = peak_lane_depth_ = 0;
  by_unit_.clear();
  sites_.clear();
}

}  // namespace fob
