#include "src/runtime/boundless_flat.h"

#include <algorithm>
#include <vector>

namespace fob {

void FlatBoundlessStore::StoreByte(UnitId unit, int64_t offset, uint8_t value) {
  Key key{unit, offset};
  auto [it, inserted] = bytes_.insert_or_assign(key, value);
  (void)it;
  if (!inserted || capacity_ == 0) {
    return;
  }
  order_.push_back(key);
  while (bytes_.size() > capacity_ && !order_.empty()) {
    // FIFO eviction; entries already dropped via DropUnit are skipped.
    Key victim = order_.front();
    order_.pop_front();
    if (bytes_.erase(victim) > 0) {
      ++evictions_;
    }
  }
}

std::optional<uint8_t> FlatBoundlessStore::LoadByte(UnitId unit, int64_t offset) const {
  auto it = bytes_.find(Key{unit, offset});
  if (it == bytes_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void FlatBoundlessStore::DropUnit(UnitId unit) {
  std::vector<Key> doomed;
  for (const auto& [key, value] : bytes_) {
    (void)value;
    if (key.unit == unit) {
      doomed.push_back(key);
    }
  }
  for (const Key& key : doomed) {
    bytes_.erase(key);
  }
  // Reclaim the dropped keys' FIFO entries too. Leaving them queued is how
  // the store historically grew without bound: a bounded-capacity store
  // under unit churn never reached the eviction sweep (the byte map stayed
  // small), so every churned unit's keys accumulated in the deque forever.
  if (capacity_ != 0 && !doomed.empty()) {
    order_.erase(std::remove_if(order_.begin(), order_.end(),
                                [unit](const Key& key) { return key.unit == unit; }),
                 order_.end());
  }
}

}  // namespace fob
