#include "src/runtime/handlers/threshold.h"

#include <sstream>

namespace fob {

void ThresholdHandler::ChargeError() {
  if (errors_continued_ >= config().error_threshold) {
    std::ostringstream os;
    os << "error threshold exceeded: " << errors_continued_
       << " invalid accesses already continued";
    throw Fault::BoundsViolation(os.str());
  }
  ++errors_continued_;
}

void ThresholdHandler::OnInvalidRead(Ptr p, void* dst, size_t n,
                                     const Memory::CheckResult& check) {
  (void)p;
  (void)check;
  ChargeError();
  ManufactureRead(dst, n);
}

void ThresholdHandler::OnInvalidWrite(Ptr p, const void* src, size_t n,
                                      const Memory::CheckResult& check) {
  (void)p;
  (void)src;
  (void)n;
  (void)check;
  ChargeError();
}

}  // namespace fob
