#include "src/runtime/handlers/standard.h"

namespace fob {

void StandardHandler::Read(Ptr p, void* dst, size_t n) {
  if (!space().Read(p.addr, dst, n)) {
    throw Fault::Segfault(p.addr);
  }
}

void StandardHandler::Write(Ptr p, const void* src, size_t n) {
  // A failed write may have landed a mapped prefix, matching the
  // byte-at-a-time behaviour of a real fault.
  if (!space().Write(p.addr, src, n)) {
    throw Fault::Segfault(p.addr);
  }
}

void StandardHandler::ContinueInvalidRead(Ptr p, void* dst, size_t n,
                                          const Memory::CheckResult& check) {
  (void)check;
  Read(p, dst, n);
}

void StandardHandler::ContinueInvalidWrite(Ptr p, const void* src, size_t n,
                                           const Memory::CheckResult& check) {
  (void)check;
  Write(p, src, n);
}

}  // namespace fob
