// The paper's policy (§1.1, §3): discard invalid writes, manufacture values
// for invalid reads, continue executing.

#ifndef SRC_RUNTIME_HANDLERS_FAILURE_OBLIVIOUS_H_
#define SRC_RUNTIME_HANDLERS_FAILURE_OBLIVIOUS_H_

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

class FailureObliviousHandler : public CheckedPolicyHandler {
 public:
  using CheckedPolicyHandler::CheckedPolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kFailureOblivious; }

 protected:
  void OnInvalidRead(Ptr p, void* dst, size_t n,
                     const Memory::CheckResult& check) override;
  void OnInvalidWrite(Ptr p, const void* src, size_t n,
                      const Memory::CheckResult& check) override;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_FAILURE_OBLIVIOUS_H_
