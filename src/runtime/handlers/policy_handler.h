// Per-policy continuation strategies.
//
// Each AccessPolicy's behaviour — both how an access is checked and what
// happens when the check fails — is one PolicyHandler implementation,
// constructed per Memory (via its PolicyTable handler bank). Under a uniform
// PolicySpec, Memory::Read/Write charge the access budget and delegate the
// whole access to the fallback handler, so the hot path pays one virtual
// dispatch instead of a per-access switch over the configuration. Under a
// mixed spec, the runtime core performs the classification itself and calls
// ContinueInvalidRead/Write on the handler the access's SiteId resolves to —
// the context-aware dispatch of Rigger et al. and the per-site assignments
// of Durieux et al.'s search-space sweep. A new failure-oblivious variant is
// a new subclass plus a factory case, with no change to the runtime core.
//
// See README.md in this directory for how to add a policy.

#ifndef SRC_RUNTIME_HANDLERS_POLICY_HANDLER_H_
#define SRC_RUNTIME_HANDLERS_POLICY_HANDLER_H_

#include <cstddef>
#include <memory>

#include "src/runtime/memory.h"

namespace fob {

class PolicyHandler {
 public:
  explicit PolicyHandler(Memory& memory) : mem_(memory) {}
  virtual ~PolicyHandler() = default;

  virtual AccessPolicy policy() const = 0;

  // One whole n-byte access: classification plus continuation. Called from
  // Memory::Read/Write (uniform specs) after the access budget has been
  // charged.
  virtual void Read(Ptr p, void* dst, size_t n) = 0;
  virtual void Write(Ptr p, const void* src, size_t n) = 0;

  // Continuation-only entry points for the per-site dispatch path: the
  // runtime core has already classified the access as invalid and written
  // the error-log record; the handler only decides how execution continues.
  virtual void ContinueInvalidRead(Ptr p, void* dst, size_t n,
                                   const Memory::CheckResult& check) = 0;
  virtual void ContinueInvalidWrite(Ptr p, const void* src, size_t n,
                                    const Memory::CheckResult& check) = 0;

  // True when this policy runs the Jones-Kelly check on every access
  // (everything but Standard). The span fast path only caches unit bounds
  // for checked policies.
  virtual bool checked() const { return true; }

  // True when an invalid free/realloc is a logged no-op rather than fatal
  // (the continuing policies: failure-oblivious, boundless, wrap, and the
  // search-space variants).
  virtual bool continues_on_error() const { return true; }

  // Called by Memory::Realloc under a continuing policy after the block
  // grew, before the old unit's out-of-bounds state is dropped. Boundless
  // materializes previously captured out-of-bounds bytes here.
  virtual void OnReallocGrow(UnitId old_unit, Addr fresh, size_t old_size,
                             size_t new_size);

  // Batched continuation for a maximal run of out-of-bounds-above bytes
  // through one live referent (Memory::TryOobRunRead/Write). A policy that
  // returns true from BatchesOobRuns promises OobRunRead/Write are
  // observably identical to its per-byte ContinueInvalid* loop over the run
  // — same bytes delivered, same manufactured-sequence consumption — given
  // the caller has already charged the budget and logged one record per
  // byte. Policies without a batched form keep the default and the caller
  // falls back to the per-byte path.
  virtual bool BatchesOobRuns() const { return false; }
  virtual void OobRunRead(Ptr p, void* dst, size_t n, const Memory::CheckResult& check);
  virtual void OobRunWrite(Ptr p, const void* src, size_t n,
                           const Memory::CheckResult& check);

 protected:
  // Memory grants friendship to the base class only; subclasses reach the
  // shard bundle through these.
  AddressSpace& space() { return mem_.shard_->space; }
  const ObjectTable& table() const { return mem_.shard_->table; }
  BoundlessStore& boundless() { return mem_.shard_->boundless; }
  ValueSequence& sequence() { return mem_.shard_->sequence; }
  const Memory::Config& config() const { return mem_.shard_->config; }
  Memory::CheckResult Check(Ptr p, size_t n) const { return mem_.CheckAccess(p, n); }
  void LogError(bool is_write, Ptr p, size_t n, const Memory::CheckResult& check) {
    mem_.LogError(is_write, p, n, check);
  }

  // Fills dst with the policy's manufactured-value sequence (§3): one
  // sequence value for accesses up to 8 bytes, per-byte values beyond.
  void ManufactureRead(void* dst, size_t n);

  Memory& mem_;
};

// Shared checking code for every policy that classifies accesses: raw access
// when in bounds, otherwise log one record and delegate the continuation.
class CheckedPolicyHandler : public PolicyHandler {
 public:
  using PolicyHandler::PolicyHandler;

  void Read(Ptr p, void* dst, size_t n) final;
  void Write(Ptr p, const void* src, size_t n) final;

  void ContinueInvalidRead(Ptr p, void* dst, size_t n,
                           const Memory::CheckResult& check) final {
    OnInvalidRead(p, dst, n, check);
  }
  void ContinueInvalidWrite(Ptr p, const void* src, size_t n,
                            const Memory::CheckResult& check) final {
    OnInvalidWrite(p, src, n, check);
  }

 protected:
  virtual void OnInvalidRead(Ptr p, void* dst, size_t n,
                             const Memory::CheckResult& check) = 0;
  virtual void OnInvalidWrite(Ptr p, const void* src, size_t n,
                              const Memory::CheckResult& check) = 0;
};

// The one place that maps AccessPolicy to its handler implementation.
std::unique_ptr<PolicyHandler> MakePolicyHandler(AccessPolicy policy, Memory& memory);

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_POLICY_HANDLER_H_
