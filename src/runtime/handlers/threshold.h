// Search-space variant: continue failure-obliviously until
// Memory::Config::error_threshold invalid accesses have been continued,
// then terminate like Bounds Check. Bounds the damage an error-looping site
// can do (and the log noise it generates) while preserving availability
// through bounded error bursts — one of the policy axes Durieux et al.'s
// exhaustive exploration sweeps over.

#ifndef SRC_RUNTIME_HANDLERS_THRESHOLD_H_
#define SRC_RUNTIME_HANDLERS_THRESHOLD_H_

#include <cstdint>

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

class ThresholdHandler : public CheckedPolicyHandler {
 public:
  using CheckedPolicyHandler::CheckedPolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kThreshold; }

  uint64_t errors_continued() const { return errors_continued_; }

 protected:
  void OnInvalidRead(Ptr p, void* dst, size_t n,
                     const Memory::CheckResult& check) override;
  void OnInvalidWrite(Ptr p, const void* src, size_t n,
                      const Memory::CheckResult& check) override;

 private:
  // Charges one continuation against the budget; the continuation that
  // would exceed it terminates the program instead (the error is already in
  // the log, like Bounds Check's terminating error).
  void ChargeError();

  uint64_t errors_continued_ = 0;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_THRESHOLD_H_
