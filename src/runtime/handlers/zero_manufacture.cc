#include "src/runtime/handlers/zero_manufacture.h"

#include <cstring>

namespace fob {

void ZeroManufactureHandler::OnInvalidRead(Ptr p, void* dst, size_t n,
                                           const Memory::CheckResult& check) {
  (void)p;
  (void)check;
  std::memset(dst, 0, n);
}

void ZeroManufactureHandler::OnInvalidWrite(Ptr p, const void* src, size_t n,
                                            const Memory::CheckResult& check) {
  // Discard.
  (void)p;
  (void)src;
  (void)n;
  (void)check;
}

}  // namespace fob
