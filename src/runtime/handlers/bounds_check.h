// CRED safe-C compilation: terminate at the first memory error.

#ifndef SRC_RUNTIME_HANDLERS_BOUNDS_CHECK_H_
#define SRC_RUNTIME_HANDLERS_BOUNDS_CHECK_H_

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

class BoundsCheckHandler : public CheckedPolicyHandler {
 public:
  using CheckedPolicyHandler::CheckedPolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kBoundsCheck; }
  bool continues_on_error() const override { return false; }

 protected:
  void OnInvalidRead(Ptr p, void* dst, size_t n,
                     const Memory::CheckResult& check) override;
  void OnInvalidWrite(Ptr p, const void* src, size_t n,
                      const Memory::CheckResult& check) override;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_BOUNDS_CHECK_H_
