// Plain C compilation: no checks, no continuation.

#ifndef SRC_RUNTIME_HANDLERS_STANDARD_H_
#define SRC_RUNTIME_HANDLERS_STANDARD_H_

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

// The access lands wherever the address points: out-of-bounds bytes
// physically corrupt whatever they hit, unmapped addresses are a simulated
// SIGSEGV. Skips the object-table search entirely, so the measured gap
// between this handler and the checked ones reproduces the cost profile of
// inserting dynamic checks.
class StandardHandler : public PolicyHandler {
 public:
  using PolicyHandler::PolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kStandard; }
  bool checked() const override { return false; }
  bool continues_on_error() const override { return false; }

  void Read(Ptr p, void* dst, size_t n) override;
  void Write(Ptr p, const void* src, size_t n) override;

  // Per-site dispatch: Standard at an error site means the raw access is
  // performed unchecked (and unlogged) — the whole access IS the
  // continuation.
  void ContinueInvalidRead(Ptr p, void* dst, size_t n,
                           const Memory::CheckResult& check) override;
  void ContinueInvalidWrite(Ptr p, const void* src, size_t n,
                            const Memory::CheckResult& check) override;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_STANDARD_H_
