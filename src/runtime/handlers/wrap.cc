#include "src/runtime/handlers/wrap.h"

#include <cassert>

namespace fob {

namespace {
Addr WrapTarget(const DataUnit& unit, Addr addr) {
  int64_t offset = static_cast<int64_t>(addr - unit.base);
  int64_t size = static_cast<int64_t>(unit.size);
  int64_t wrapped = ((offset % size) + size) % size;
  return unit.base + static_cast<uint64_t>(wrapped);
}
}  // namespace

void WrapHandler::OnInvalidWrite(Ptr p, const void* src, size_t n,
                                 const Memory::CheckResult& check) {
  if (check.unit == nullptr || !check.unit->live || check.unit->size == 0) {
    return;
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  for (size_t i = 0; i < n; ++i) {
    bool ok = space().Write(WrapTarget(*check.unit, p.addr + i), &bytes[i], 1);
    assert(ok);
    (void)ok;
  }
}

void WrapHandler::OnInvalidRead(Ptr p, void* dst, size_t n,
                                const Memory::CheckResult& check) {
  if (check.unit == nullptr || !check.unit->live || check.unit->size == 0) {
    ManufactureRead(dst, n);
    return;
  }
  uint8_t* out = static_cast<uint8_t*>(dst);
  for (size_t i = 0; i < n; ++i) {
    bool ok = space().Read(WrapTarget(*check.unit, p.addr + i), &out[i], 1);
    assert(ok);
    (void)ok;
  }
}

}  // namespace fob
