#include "src/runtime/handlers/boundless.h"

#include <cassert>

namespace fob {

void BoundlessHandler::OnInvalidWrite(Ptr p, const void* src, size_t n,
                                      const Memory::CheckResult& check) {
  if (check.unit == nullptr || !check.unit->live) {
    return;  // wild/dangling writes are discarded
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  for (size_t i = 0; i < n; ++i) {
    int64_t offset =
        static_cast<int64_t>(p.addr + i) - static_cast<int64_t>(check.unit->base);
    // In-bounds bytes of a straddling access still land in the unit.
    if (offset >= 0 && static_cast<uint64_t>(offset) < check.unit->size) {
      bool ok = space().Write(p.addr + i, &bytes[i], 1);
      assert(ok);
      (void)ok;
    } else {
      boundless().StoreByte(check.unit->id, offset, bytes[i]);
    }
  }
}

void BoundlessHandler::OnInvalidRead(Ptr p, void* dst, size_t n,
                                     const Memory::CheckResult& check) {
  if (check.unit == nullptr || !check.unit->live) {
    ManufactureRead(dst, n);
    return;
  }
  // Return stored bytes where the program previously wrote out of bounds;
  // manufacture the rest. If nothing is stored this degenerates to exactly
  // the failure-oblivious manufactured value.
  uint8_t* out = static_cast<uint8_t*>(dst);
  bool any_stored = false;
  for (size_t i = 0; i < n; ++i) {
    int64_t offset =
        static_cast<int64_t>(p.addr + i) - static_cast<int64_t>(check.unit->base);
    if (offset >= 0 && static_cast<uint64_t>(offset) < check.unit->size) {
      bool ok = space().Read(p.addr + i, &out[i], 1);
      assert(ok);
      (void)ok;
      any_stored = true;
    } else if (auto stored = boundless().LoadByte(check.unit->id, offset)) {
      out[i] = *stored;
      any_stored = true;
    } else {
      out[i] = 0xa5;  // placeholder, replaced below if nothing stored
    }
  }
  if (!any_stored) {
    ManufactureRead(dst, n);
    return;
  }
  // Fill any placeholder bytes from the sequence.
  for (size_t i = 0; i < n; ++i) {
    int64_t offset =
        static_cast<int64_t>(p.addr + i) - static_cast<int64_t>(check.unit->base);
    bool covered = (offset >= 0 && static_cast<uint64_t>(offset) < check.unit->size) ||
                   boundless().LoadByte(check.unit->id, offset).has_value();
    if (!covered) {
      out[i] = sequence().NextByte();
    }
  }
}

void BoundlessHandler::OnReallocGrow(UnitId old_unit, Addr fresh, size_t old_size,
                                     size_t new_size) {
  for (size_t offset = old_size; offset < new_size; ++offset) {
    if (auto stored = boundless().LoadByte(old_unit, static_cast<int64_t>(offset))) {
      bool ok = space().Write(fresh + offset, &*stored, 1);
      assert(ok);
      (void)ok;
    }
  }
}

}  // namespace fob
