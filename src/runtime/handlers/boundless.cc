#include "src/runtime/handlers/boundless.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

namespace fob {

namespace {

// An invalid access [p, p+n) against its live referent splits into three
// contiguous index segments: [0, below) maps below the unit's base,
// [below, below + inside) lands inside the unit (the straddle case), and
// [below + inside, n) maps past its end. Either out-of-bounds segment may be
// empty; `first_offset` is the signed unit-relative offset of byte 0.
struct AccessSegments {
  int64_t first_offset = 0;
  size_t below = 0;
  size_t inside = 0;
  size_t above = 0;
};

AccessSegments SplitAccess(Addr addr, size_t n, const DataUnit& unit) {
  AccessSegments seg;
  seg.first_offset = static_cast<int64_t>(addr) - static_cast<int64_t>(unit.base);
  if (seg.first_offset < 0) {
    seg.below = std::min<size_t>(n, static_cast<size_t>(-seg.first_offset));
  }
  int64_t inside_end = std::min<int64_t>(static_cast<int64_t>(n),
                                         static_cast<int64_t>(unit.size) - seg.first_offset);
  if (inside_end > static_cast<int64_t>(seg.below)) {
    seg.inside = static_cast<size_t>(inside_end) - seg.below;
  }
  seg.above = n - seg.below - seg.inside;
  return seg;
}

}  // namespace

void BoundlessHandler::OnInvalidWrite(Ptr p, const void* src, size_t n,
                                      const Memory::CheckResult& check) {
  if (check.unit == nullptr || !check.unit->live) {
    return;  // wild/dangling writes are discarded
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  AccessSegments seg = SplitAccess(p.addr, n, *check.unit);
  if (seg.below > 0) {
    boundless().StoreSpan(check.unit->id, seg.first_offset, bytes, seg.below);
  }
  if (seg.inside > 0) {
    // In-bounds bytes of a straddling access still land in the unit.
    bool ok = space().Write(p.addr + seg.below, bytes + seg.below, seg.inside);
    assert(ok);
    (void)ok;
  }
  if (seg.above > 0) {
    size_t start = seg.below + seg.inside;
    boundless().StoreSpan(check.unit->id, seg.first_offset + static_cast<int64_t>(start),
                          bytes + start, seg.above);
  }
}

void BoundlessHandler::OnInvalidRead(Ptr p, void* dst, size_t n,
                                     const Memory::CheckResult& check) {
  if (check.unit == nullptr || !check.unit->live) {
    ManufactureRead(dst, n);
    return;
  }
  // Return stored bytes where the program previously wrote out of bounds;
  // manufacture the rest. If nothing is stored (and no byte lands inside
  // the unit) this degenerates to exactly the failure-oblivious
  // manufactured value.
  uint8_t* out = static_cast<uint8_t*>(dst);
  uint8_t inline_present[64];
  std::unique_ptr<uint8_t[]> heap_present;
  uint8_t* present = inline_present;
  if (n > sizeof(inline_present)) {
    heap_present = std::make_unique<uint8_t[]>(n);
    present = heap_present.get();
  }
  AccessSegments seg = SplitAccess(p.addr, n, *check.unit);
  bool any_stored = seg.inside > 0;
  if (seg.below > 0) {
    any_stored |=
        boundless().LoadSpan(check.unit->id, seg.first_offset, seg.below, out, present) > 0;
  }
  if (seg.inside > 0) {
    bool ok = space().Read(p.addr + seg.below, out + seg.below, seg.inside);
    assert(ok);
    (void)ok;
    std::memset(present + seg.below, 1, seg.inside);
  }
  if (seg.above > 0) {
    size_t start = seg.below + seg.inside;
    any_stored |= boundless().LoadSpan(check.unit->id,
                                       seg.first_offset + static_cast<int64_t>(start),
                                       seg.above, out + start, present + start) > 0;
  }
  if (!any_stored) {
    ManufactureRead(dst, n);
    return;
  }
  // Fill the gaps from the sequence, in ascending address order.
  for (size_t i = 0; i < n; ++i) {
    if (!present[i]) {
      out[i] = sequence().NextByte();
    }
  }
}

void BoundlessHandler::OobRunRead(Ptr p, void* dst, size_t n,
                                  const Memory::CheckResult& check) {
  // Contract: every byte of [p, p+n) is out-of-bounds-above its live
  // referent, and the caller already logged/charged per byte. Per-byte
  // semantics: a stored byte reads back and consumes nothing; an unstored
  // byte manufactures one sequence value (ManufactureRead of one byte ==
  // NextByte).
  assert(check.unit != nullptr && check.unit->live);
  uint8_t* out = static_cast<uint8_t*>(dst);
  uint8_t inline_present[64];
  std::unique_ptr<uint8_t[]> heap_present;
  uint8_t* present = inline_present;
  if (n > sizeof(inline_present)) {
    heap_present = std::make_unique<uint8_t[]>(n);
    present = heap_present.get();
  }
  int64_t offset = static_cast<int64_t>(p.addr) - static_cast<int64_t>(check.unit->base);
  boundless().LoadSpan(check.unit->id, offset, n, out, present);
  for (size_t i = 0; i < n; ++i) {
    if (!present[i]) {
      out[i] = sequence().NextByte();
    }
  }
}

void BoundlessHandler::OobRunWrite(Ptr p, const void* src, size_t n,
                                   const Memory::CheckResult& check) {
  assert(check.unit != nullptr && check.unit->live);
  int64_t offset = static_cast<int64_t>(p.addr) - static_cast<int64_t>(check.unit->base);
  boundless().StoreSpan(check.unit->id, offset, static_cast<const uint8_t*>(src), n);
}

void BoundlessHandler::OnReallocGrow(UnitId old_unit, Addr fresh, size_t old_size,
                                     size_t new_size) {
  uint8_t data[PagedBoundlessStore::kPageBytes];
  uint8_t present[PagedBoundlessStore::kPageBytes];
  for (size_t offset = old_size; offset < new_size; offset += sizeof(data)) {
    size_t chunk = std::min(sizeof(data), new_size - offset);
    if (boundless().LoadSpan(old_unit, static_cast<int64_t>(offset), chunk, data, present) ==
        0) {
      continue;
    }
    size_t i = 0;
    while (i < chunk) {
      if (!present[i]) {
        ++i;
        continue;
      }
      size_t j = i;
      while (j < chunk && present[j]) {
        ++j;
      }
      bool ok = space().Write(fresh + offset + i, data + i, j - i);
      assert(ok);
      (void)ok;
      i = j;
    }
  }
}

}  // namespace fob
