// Wrap (§5.1): redirect out-of-bounds accesses back into the accessed data
// unit at the offset modulo the unit size.

#ifndef SRC_RUNTIME_HANDLERS_WRAP_H_
#define SRC_RUNTIME_HANDLERS_WRAP_H_

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

class WrapHandler : public CheckedPolicyHandler {
 public:
  using CheckedPolicyHandler::CheckedPolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kWrap; }

 protected:
  void OnInvalidRead(Ptr p, void* dst, size_t n,
                     const Memory::CheckResult& check) override;
  void OnInvalidWrite(Ptr p, const void* src, size_t n,
                      const Memory::CheckResult& check) override;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_WRAP_H_
