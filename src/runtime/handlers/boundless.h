// Boundless memory blocks (§5.1): out-of-bounds writes are stored in a hash
// table keyed by (data unit, offset); the corresponding out-of-bounds reads
// return the stored values.

#ifndef SRC_RUNTIME_HANDLERS_BOUNDLESS_H_
#define SRC_RUNTIME_HANDLERS_BOUNDLESS_H_

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

class BoundlessHandler : public CheckedPolicyHandler {
 public:
  using CheckedPolicyHandler::CheckedPolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kBoundless; }

  // Growing a block materializes the bytes the program wrote past the old
  // end — they are part of the block's logical contents (this is what lets
  // Mutt's `safe_realloc(buf, p - buf)` recover the full converted string).
  void OnReallocGrow(UnitId old_unit, Addr fresh, size_t old_size,
                     size_t new_size) override;

 protected:
  void OnInvalidRead(Ptr p, void* dst, size_t n,
                     const Memory::CheckResult& check) override;
  void OnInvalidWrite(Ptr p, const void* src, size_t n,
                      const Memory::CheckResult& check) override;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_BOUNDLESS_H_
