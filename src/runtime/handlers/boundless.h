// Boundless memory blocks (§5.1): out-of-bounds writes are stored in the
// shard's paged store keyed by (data unit, offset); the corresponding
// out-of-bounds reads return the stored values.
//
// The continuations are span-batched: an n-byte invalid access splits into
// at most three contiguous segments (below the unit, inside it, above it)
// and each out-of-bounds segment goes through StoreSpan/LoadSpan — one page
// resolution per up-to-256-byte run instead of one hash lookup per byte —
// while staying observably identical to the historical per-byte loop. The
// handler also implements the OOB-run batch contract (BatchesOobRuns), which
// is what lets AccessCursor hand a whole out-of-bounds-above tail of a span
// to one call; see Memory::TryOobRunRead/Write.

#ifndef SRC_RUNTIME_HANDLERS_BOUNDLESS_H_
#define SRC_RUNTIME_HANDLERS_BOUNDLESS_H_

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

class BoundlessHandler : public CheckedPolicyHandler {
 public:
  using CheckedPolicyHandler::CheckedPolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kBoundless; }

  // Growing a block materializes the bytes the program wrote past the old
  // end — they are part of the block's logical contents (this is what lets
  // Mutt's `safe_realloc(buf, p - buf)` recover the full converted string).
  void OnReallocGrow(UnitId old_unit, Addr fresh, size_t old_size,
                     size_t new_size) override;

  bool BatchesOobRuns() const override { return true; }
  void OobRunRead(Ptr p, void* dst, size_t n, const Memory::CheckResult& check) override;
  void OobRunWrite(Ptr p, const void* src, size_t n,
                   const Memory::CheckResult& check) override;

 protected:
  void OnInvalidRead(Ptr p, void* dst, size_t n,
                     const Memory::CheckResult& check) override;
  void OnInvalidWrite(Ptr p, const void* src, size_t n,
                      const Memory::CheckResult& check) override;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_BOUNDLESS_H_
