#include "src/runtime/handlers/bounds_check.h"

#include <sstream>

namespace fob {

namespace {
[[noreturn]] void Terminate(const char* what, size_t n, const Memory::CheckResult& check) {
  std::ostringstream os;
  os << "illegal " << what << " of " << n << " bytes, referent "
     << (check.unit != nullptr ? check.unit->name : "<unknown>");
  throw Fault::BoundsViolation(os.str());
}
}  // namespace

void BoundsCheckHandler::OnInvalidRead(Ptr p, void* dst, size_t n,
                                       const Memory::CheckResult& check) {
  (void)p;
  (void)dst;
  Terminate("read", n, check);
}

void BoundsCheckHandler::OnInvalidWrite(Ptr p, const void* src, size_t n,
                                        const Memory::CheckResult& check) {
  (void)p;
  (void)src;
  Terminate("write", n, check);
}

}  // namespace fob
