#include "src/runtime/handlers/policy_handler.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/runtime/handlers/boundless.h"
#include "src/runtime/handlers/bounds_check.h"
#include "src/runtime/handlers/failure_oblivious.h"
#include "src/runtime/handlers/standard.h"
#include "src/runtime/handlers/threshold.h"
#include "src/runtime/handlers/wrap.h"
#include "src/runtime/handlers/zero_manufacture.h"

namespace fob {

void PolicyHandler::OnReallocGrow(UnitId old_unit, Addr fresh, size_t old_size,
                                  size_t new_size) {
  (void)old_unit;
  (void)fresh;
  (void)old_size;
  (void)new_size;
}

void PolicyHandler::OobRunRead(Ptr p, void* dst, size_t n, const Memory::CheckResult& check) {
  (void)p;
  (void)dst;
  (void)n;
  (void)check;
  assert(false && "policy declared BatchesOobRuns() without overriding OobRunRead");
}

void PolicyHandler::OobRunWrite(Ptr p, const void* src, size_t n,
                                const Memory::CheckResult& check) {
  (void)p;
  (void)src;
  (void)n;
  (void)check;
  assert(false && "policy declared BatchesOobRuns() without overriding OobRunWrite");
}

void PolicyHandler::ManufactureRead(void* dst, size_t n) {
  uint8_t* out = static_cast<uint8_t*>(dst);
  if (n <= 8) {
    uint64_t value = sequence().Next();
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(value >> (8 * i));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = sequence().NextByte();
  }
}

void CheckedPolicyHandler::Read(Ptr p, void* dst, size_t n) {
  Memory::CheckResult check = Check(p, n);
  if (check.in_bounds) {
    bool ok = space().Read(p.addr, dst, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return;
  }
  LogError(/*is_write=*/false, p, n, check);
  OnInvalidRead(p, dst, n, check);
}

void CheckedPolicyHandler::Write(Ptr p, const void* src, size_t n) {
  Memory::CheckResult check = Check(p, n);
  if (check.in_bounds) {
    bool ok = space().Write(p.addr, src, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return;
  }
  LogError(/*is_write=*/true, p, n, check);
  OnInvalidWrite(p, src, n, check);
}

std::unique_ptr<PolicyHandler> MakePolicyHandler(AccessPolicy policy, Memory& memory) {
  switch (policy) {
    case AccessPolicy::kStandard:
      return std::make_unique<StandardHandler>(memory);
    case AccessPolicy::kBoundsCheck:
      return std::make_unique<BoundsCheckHandler>(memory);
    case AccessPolicy::kFailureOblivious:
      return std::make_unique<FailureObliviousHandler>(memory);
    case AccessPolicy::kBoundless:
      return std::make_unique<BoundlessHandler>(memory);
    case AccessPolicy::kWrap:
      return std::make_unique<WrapHandler>(memory);
    case AccessPolicy::kZeroManufacture:
      return std::make_unique<ZeroManufactureHandler>(memory);
    case AccessPolicy::kThreshold:
      return std::make_unique<ThresholdHandler>(memory);
  }
  // A policy with no registered handler is a substrate bug (a new enum value
  // whose factory case was forgotten); failing loudly beats silently running
  // the wrong continuation semantics through an experiment sweep.
  std::fprintf(stderr, "MakePolicyHandler: unregistered AccessPolicy %d\n",
               static_cast<int>(policy));
  std::abort();
}

}  // namespace fob
