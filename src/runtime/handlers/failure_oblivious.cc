#include "src/runtime/handlers/failure_oblivious.h"

namespace fob {

void FailureObliviousHandler::OnInvalidRead(Ptr p, void* dst, size_t n,
                                            const Memory::CheckResult& check) {
  (void)p;
  (void)check;
  ManufactureRead(dst, n);
}

void FailureObliviousHandler::OnInvalidWrite(Ptr p, const void* src, size_t n,
                                             const Memory::CheckResult& check) {
  // Discard.
  (void)p;
  (void)src;
  (void)n;
  (void)check;
}

}  // namespace fob
