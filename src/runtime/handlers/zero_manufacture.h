// Search-space variant: discard invalid writes, manufacture *zero* for
// every invalid read. The conservative end of the manufactured-value
// spectrum in Durieux et al.'s sweep — no value sequence is consumed, so a
// value-seeking loop scanning for a nonzero byte never terminates on
// manufactured data (the harness's access budget classifies that as a
// hang).

#ifndef SRC_RUNTIME_HANDLERS_ZERO_MANUFACTURE_H_
#define SRC_RUNTIME_HANDLERS_ZERO_MANUFACTURE_H_

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

class ZeroManufactureHandler : public CheckedPolicyHandler {
 public:
  using CheckedPolicyHandler::CheckedPolicyHandler;

  AccessPolicy policy() const override { return AccessPolicy::kZeroManufacture; }

 protected:
  void OnInvalidRead(Ptr p, void* dst, size_t n,
                     const Memory::CheckResult& check) override;
  void OnInvalidWrite(Ptr p, const void* src, size_t n,
                      const Memory::CheckResult& check) override;
};

}  // namespace fob

#endif  // SRC_RUNTIME_HANDLERS_ZERO_MANUFACTURE_H_
