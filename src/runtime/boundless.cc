#include "src/runtime/boundless.h"

#include <vector>

namespace fob {

void BoundlessStore::StoreByte(UnitId unit, int64_t offset, uint8_t value) {
  Key key{unit, offset};
  auto [it, inserted] = bytes_.insert_or_assign(key, value);
  (void)it;
  if (!inserted || capacity_ == 0) {
    return;
  }
  order_.push_back(key);
  while (bytes_.size() > capacity_ && !order_.empty()) {
    // FIFO eviction; entries already dropped via DropUnit are skipped.
    Key victim = order_.front();
    order_.pop_front();
    if (bytes_.erase(victim) > 0) {
      ++evictions_;
    }
  }
}

std::optional<uint8_t> BoundlessStore::LoadByte(UnitId unit, int64_t offset) const {
  auto it = bytes_.find(Key{unit, offset});
  if (it == bytes_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void BoundlessStore::DropUnit(UnitId unit) {
  std::vector<Key> doomed;
  for (const auto& [key, value] : bytes_) {
    (void)value;
    if (key.unit == unit) {
      doomed.push_back(key);
    }
  }
  for (const Key& key : doomed) {
    bytes_.erase(key);
  }
}

}  // namespace fob
