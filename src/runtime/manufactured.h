// Manufactured values for invalid reads (§3).
//
// "In principle, any sequence of manufactured values should work. In
//  practice, these values are sometimes used to determine loop conditions.
//  [...] We therefore generate a sequence that iterates through all small
//  integers, increasing the chance that [...] the computation will hit upon
//  a value that will exit the loop. Because zero and one are usually the
//  most commonly loaded values in computer programs, the sequence is
//  designed to return these values more frequently than other, less common,
//  values."
//
// The sequence produced here is 0, 1, 2, 0, 1, 3, 0, 1, 4, ... : zero and
// one each appear with frequency 1/3, and the third slot cycles through all
// remaining byte values (2..255) before wrapping, so any byte-valued loop
// exit test (Midnight Commander's search for '/') is satisfied within at
// most 3*254 manufactured reads.
//
// ZeroSequence and RandomSequence are ablation baselines for
// bench_manufacture: a zero-only sequence hangs Midnight Commander exactly
// as §3 describes.

#ifndef SRC_RUNTIME_MANUFACTURED_H_
#define SRC_RUNTIME_MANUFACTURED_H_

#include <cstdint>

namespace fob {

enum class SequenceKind {
  kPaper,   // 0,1,2, 0,1,3, ... (the paper's design)
  kZeros,   // always 0 (naive baseline; can hang value-dependent loops)
  kRandom,  // deterministic xorshift stream (no 0/1 bias)
};

const char* SequenceKindName(SequenceKind kind);

class ValueSequence {
 public:
  explicit ValueSequence(SequenceKind kind = SequenceKind::kPaper) : kind_(kind) {}

  // Next manufactured value. Reads narrower than 8 bytes truncate it.
  uint64_t Next();

  // Next manufactured value truncated to one byte; used to fill individual
  // unstored bytes in the Boundless policy.
  uint8_t NextByte() { return static_cast<uint8_t>(Next()); }

  void Reset();
  SequenceKind kind() const { return kind_; }
  uint64_t values_produced() const { return produced_; }

 private:
  SequenceKind kind_;
  uint32_t phase_ = 0;
  uint32_t small_ = 2;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  uint64_t produced_ = 0;
};

}  // namespace fob

#endif  // SRC_RUNTIME_MANUFACTURED_H_
