// Paged boundless memory blocks (§5.1, citing Rinard et al., ACSAC 2004).
//
// "instead of discarding invalid writes, the generated code stores the
//  values in a hash table indexed under the data unit identifier and offset.
//  Corresponding invalid reads return the appropriate stored values. This
//  variant eliminates size calculation errors — if the program logic is
//  otherwise acceptable, the program will execute acceptably."
//
// The flat realization of that sentence (src/runtime/boundless_flat.h) pays
// one hash-table entry per out-of-bounds byte and an O(total-stored-bytes)
// scan per retired unit, so an attack spraying writes across a huge address
// range thrashes the store — the unbounded-growth hazard bounded OOB
// storage exists to prevent. This store keeps the same observable
// semantics (byte-for-byte, pinned by tests/test_boundless_paged.cc) but
// organizes OOB state as sparse fixed-size pages:
//
//   * a page (kPageBytes, 256 B) materializes on the first OOB touch of its
//     (unit, page-index) slot; memory is proportional to touched pages, not
//     touched bytes or the sprayed address range;
//   * every page carries a presence bitmap, so loads distinguish bytes the
//     program actually stored from bytes that must fall back to the
//     policy's manufactured-value sequence;
//   * pages whose stored bytes are all zero share one read-only zero page
//     (no 256 B allocation) and copy-on-write materialize on the first
//     nonzero store;
//   * DropUnit walks a per-unit page index — O(pages of that unit), not
//     O(store size) — so unit churn cannot thrash the store;
//   * a bounded-capacity mode (the ACSAC cap, page-granular) evicts whole
//     cold pages under a clock policy instead of individual FIFO bytes;
//     a cold page that is fully present with a single repeated value (the
//     signature of write-once attack spray) is compressed to one byte
//     instead of discarded, so its reads keep returning the stored value;
//   * StoreSpan/LoadSpan resolve each touched page once per up-to-256-byte
//     run, which is what lets the handler's span-batched OOB path
//     (src/runtime/handlers/boundless.cc) stop paying per-byte lookups.
//
// Offsets are signed: writes below the base of a unit are as storable as
// writes past its end. Page indices are the floor division of the offset,
// so offset -1 lands in page -1, byte 255.
//
// Accounting (BoundlessStoreStats) is per shard and flows through MemLog
// merges in ascending shard-id order, like the page-map translation
// counters; bench_boundless pins the spray-scaling claims against the flat
// baseline.

#ifndef SRC_RUNTIME_BOUNDLESS_PAGED_H_
#define SRC_RUNTIME_BOUNDLESS_PAGED_H_

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/softmem/object_table.h"

namespace fob {

// Per-store accounting, folded into merged MemLogs (MemLog::AddBoundlessStats)
// so a parallel run's operator-facing Summary carries the whole pool's OOB
// storage profile. Gauges (pages_live, zero_pages_live, compressed_pages)
// and cumulative counters (the rest) both sum across shards.
struct BoundlessStoreStats {
  uint64_t pages_live = 0;          // materialized pages currently held
  uint64_t zero_pages_live = 0;     // of those, still sharing the zero page
  uint64_t compressed_pages = 0;    // evicted-to-one-byte spray pages
  uint64_t bytes_materialized = 0;  // cumulative distinct OOB bytes stored
  uint64_t pages_evicted = 0;       // pages discarded by capacity pressure
  uint64_t zero_dedup_hits = 0;     // zero stores absorbed by the zero page

  bool any() const {
    return pages_live != 0 || zero_pages_live != 0 || compressed_pages != 0 ||
           bytes_materialized != 0 || pages_evicted != 0 || zero_dedup_hits != 0;
  }
};

class PagedBoundlessStore {
 public:
  static constexpr size_t kPageBytes = 256;
  static constexpr int64_t kPageShift = 8;
  static constexpr int64_t kByteMask = static_cast<int64_t>(kPageBytes) - 1;

  // capacity is in stored out-of-bounds *bytes* for compatibility with the
  // flat store's knob (ShardConfig::boundless_capacity); it is rounded up
  // to whole pages (minimum one page when nonzero). 0 = unbounded.
  explicit PagedBoundlessStore(size_t capacity_bytes = 0);

  void StoreByte(UnitId unit, int64_t offset, uint8_t value);
  // Equivalent to the StoreByte loop over [offset, offset+n), but each
  // touched page is resolved once per run instead of once per byte.
  void StoreSpan(UnitId unit, int64_t offset, const uint8_t* src, size_t n);

  // Loads touch the clock's reference bit, so they are non-const.
  std::optional<uint8_t> LoadByte(UnitId unit, int64_t offset);
  // For i in [0, n): present[i] = 1 and dst[i] = the stored byte when
  // (unit, offset+i) is stored, else present[i] = 0 (dst[i] untouched).
  // Returns the number of present bytes.
  size_t LoadSpan(UnitId unit, int64_t offset, size_t n, uint8_t* dst, uint8_t* present);

  // Drops all out-of-bounds state recorded for a unit (called when the unit
  // is retired so a recycled address cannot see a predecessor's overflow).
  // Cost is O(pages of this unit) via the per-unit page index.
  void DropUnit(UnitId unit);

  void Clear();

  // Stored out-of-bounds bytes currently retrievable (present bytes of live
  // pages plus the full extent of compressed pages).
  size_t stored_bytes() const { return stored_bytes_; }
  size_t capacity() const { return capacity_bytes_; }
  size_t capacity_pages() const { return capacity_pages_; }
  size_t pages_live() const { return pages_.size(); }
  uint64_t evictions() const { return pages_evicted_; }
  BoundlessStoreStats stats() const;

 private:
  struct PageKey {
    UnitId unit;
    int64_t index;
    bool operator==(const PageKey& other) const {
      return unit == other.unit && index == other.index;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.unit) << 32) ^ static_cast<uint64_t>(k.index);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  struct Page {
    // Null while the page is zero-deduplicated: all stored bytes are zero
    // and reads resolve against the shared read-only zero page.
    std::unique_ptr<uint8_t[]> owned;
    std::array<uint64_t, kPageBytes / 64> present{};
    uint16_t present_count = 0;
    bool referenced = true;  // clock reference bit
    std::list<PageKey>::iterator clock_pos;  // valid only in bounded mode

    const uint8_t* data() const;
    bool Present(size_t byte) const {
      return (present[byte / 64] >> (byte % 64)) & 1u;
    }
    // Returns true if the bit was newly set.
    bool MarkPresent(size_t byte) {
      uint64_t bit = 1ull << (byte % 64);
      if (present[byte / 64] & bit) {
        return false;
      }
      present[byte / 64] |= bit;
      ++present_count;
      return true;
    }
  };

  static PageKey KeyOf(UnitId unit, int64_t offset) {
    return PageKey{unit, offset >> kPageShift};
  }

  // The page for key, materializing (or decompressing) it if needed. The
  // returned reference stays valid across rehashes; callers must run
  // MaybeEvict() after finishing their mutation.
  Page& Materialize(PageKey key);
  // Breaks the zero-page sharing: gives the page owned, zero-filled backing.
  void CopyOnWrite(Page& page);
  void MaybeEvict();
  void RemoveClockEntry(Page& page);

  size_t capacity_bytes_;
  size_t capacity_pages_;
  size_t stored_bytes_ = 0;
  uint64_t zero_pages_live_ = 0;
  uint64_t bytes_materialized_ = 0;
  uint64_t pages_evicted_ = 0;
  uint64_t zero_dedup_hits_ = 0;
  std::unordered_map<PageKey, Page, PageKeyHash> pages_;
  // Cold spray pages compressed at eviction time: fully present, one
  // repeated value. One byte of payload each; loads keep working.
  std::unordered_map<PageKey, uint8_t, PageKeyHash> compressed_;
  // Per-unit page index (live + compressed): what makes DropUnit
  // O(pages-of-unit).
  std::unordered_map<UnitId, std::unordered_set<int64_t>> unit_pages_;
  // Clock ring over live pages; maintained only in bounded mode. DropUnit
  // and eviction unlink entries eagerly (each page holds its list
  // position), so the ring cannot accumulate ghost entries under churn the
  // way the flat store's FIFO deque did.
  std::list<PageKey> clock_;
  std::list<PageKey>::iterator hand_ = clock_.end();
};

}  // namespace fob

#endif  // SRC_RUNTIME_BOUNDLESS_PAGED_H_
