#include "src/runtime/shard.h"

#include "src/runtime/policy_table.h"

namespace fob {

Shard::Shard(Memory& owner, const ShardConfig& cfg)
    : config(cfg),
      policy_table(std::make_unique<PolicyTable>(owner, cfg.policy)),
      sequence(cfg.sequence),
      log(cfg.log_capacity),
      boundless(cfg.boundless_capacity) {
  space.AttachPageMap(&page_map);
  table.AttachPageMap(&page_map);
  heap = std::make_unique<Heap>(space, table, kHeapBase, config.heap_bytes);
  stack = std::make_unique<Stack>(space, table, kStackLow, config.stack_bytes);
  space.Map(kGlobalBase, config.global_bytes);
  global_cursor = kGlobalBase;
  global_end = kGlobalBase + config.global_bytes;
}

Shard::~Shard() = default;

}  // namespace fob
