#include "src/runtime/process.h"

namespace fob {

const char* ExitStatusName(ExitStatus status) {
  switch (status) {
    case ExitStatus::kOk:
      return "ok";
    case ExitStatus::kSegfault:
      return "segfault";
    case ExitStatus::kBoundsTerminated:
      return "terminated (bounds check)";
    case ExitStatus::kStackSmash:
      return "stack smash";
    case ExitStatus::kHeapCorruption:
      return "heap corruption";
    case ExitStatus::kBudgetExhausted:
      return "hang (budget exhausted)";
    case ExitStatus::kOtherFault:
      return "fault";
  }
  return "?";
}

ExitStatus ExitStatusFromFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSegfault:
      return ExitStatus::kSegfault;
    case FaultKind::kBoundsViolation:
      return ExitStatus::kBoundsTerminated;
    case FaultKind::kStackSmash:
      return ExitStatus::kStackSmash;
    case FaultKind::kHeapCorruption:
    case FaultKind::kDoubleFree:
    case FaultKind::kInvalidFree:
      return ExitStatus::kHeapCorruption;
    case FaultKind::kBudgetExhausted:
      return ExitStatus::kBudgetExhausted;
    case FaultKind::kStackOverflow:
      return ExitStatus::kSegfault;
  }
  return ExitStatus::kOtherFault;
}

RunResult RunAsProcess(const std::function<void()>& body) {
  RunResult result;
  try {
    body();
  } catch (const Fault& fault) {
    result.status = ExitStatusFromFault(fault.kind());
    result.detail = fault.what();
    result.possible_code_injection = fault.possible_code_injection();
  }
  return result;
}

}  // namespace fob
