// fob::Memory — the failure-oblivious runtime.
//
// Memory is what the code emitted by a failure-oblivious compiler would link
// against: the access-mediation façade over one fob::Shard — the
// self-contained simulated process image (address space, heap, call stack,
// globals, Jones-Kelly object table, error log, policy table; see
// src/runtime/shard.h). Memory mediates every load and store according to
// the shard's PolicySpec:
//
//   * checking code: classify the access against the pointer's intended
//     referent (src/softmem/oob_registry.h);
//   * fast path: before any policy machinery runs, the access is offered to
//     the shard's page-granular unit map (src/softmem/page_map.h) — a valid
//     access through the sole live unit on its page resolves in O(1) with no
//     interval search, and behaves identically under every policy, so the
//     fast path is taken unconditionally. Misses fall through to the full
//     pipeline byte-identically. Access resolution is therefore three tiers:
//     page-map fast path → object-table interval search → policy resolution
//     (see src/runtime/handlers/README.md);
//   * continuation code: for invalid accesses, do what the resolved policy
//     says — crash (kStandard, by actually performing/faulting the raw
//     access), terminate (kBoundsCheck), discard-writes/manufacture-reads
//     (kFailureOblivious, §3), store-and-return out-of-bounds bytes
//     (kBoundless, §5.1), wrap offsets back into the unit (kWrap, §5.1),
//     manufacture zeros only (kZeroManufacture), or continue until an error
//     budget is spent (kThreshold).
//
// Policy selection is per *site* (src/runtime/policy_spec.h): the PolicySpec
// in Config maps SiteId -> AccessPolicy with a default fallback, resolved
// through the shard's PolicyTable (src/runtime/policy_table.h) to
// PolicyHandler strategies (src/runtime/handlers/). A uniform spec — the
// common case, and what the legacy Memory(AccessPolicy) constructor builds —
// binds one handler at construction so the hot access path stays a single
// virtual dispatch, exactly as before per-site resolution existed. A mixed
// spec routes only *invalid* accesses through site resolution: in-bounds
// accesses are policy-independent, so the per-site machinery costs nothing
// until the checking code actually fails.
//
// The Standard policy skips the object-table search entirely and touches the
// page map only, so the measured gap between Standard and the checked
// policies reproduces the cost profile of inserting dynamic checks.
//
// Every Memory owns exactly one Shard and shares nothing mutable with any
// other Memory, so concurrent workers each holding their own Memory may run
// on real threads with no synchronization (src/net/frontend.h).
//
// "Programs" written against this runtime allocate with Malloc/Frame::Local,
// address memory through fob::Ptr, and access it through Read*/Write*.

#ifndef SRC_RUNTIME_MEMORY_H_
#define SRC_RUNTIME_MEMORY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/runtime/memlog.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"
#include "src/runtime/ptr.h"
#include "src/runtime/shard.h"
#include "src/softmem/fault.h"

namespace fob {

class AccessCursor;
class PolicyHandler;

class Memory {
 public:
  // The shard bundle's configuration; kept under the historical name so
  // `Memory::Config` call sites read unchanged.
  using Config = ShardConfig;

  // Thin compatibility constructor: a uniform spec over one policy.
  explicit Memory(AccessPolicy policy);
  explicit Memory(const PolicySpec& spec);
  explicit Memory(const Config& config);
  ~Memory();
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  // The fallback (whole-program) policy; per-site overrides live in spec().
  AccessPolicy policy() const { return shard_->config.policy.fallback(); }
  const PolicySpec& spec() const { return shard_->config.policy; }

  // Re-specs the live shard's policy resolution at an epoch boundary: the
  // MemLog keeps its aggregates, the handler bank keeps its state (a
  // Threshold counter survives), the heap/object table are untouched — only
  // SiteId -> AccessPolicy resolution changes, effective from the next
  // access. Must not be called while another thread is accessing this
  // Memory (the Frontend rebinds between pumps, when no lane threads run).
  void Rebind(const PolicySpec& spec);

  // What the checking code learned about one access: whether it may proceed,
  // how the pointer relates to its intended referent, and the referent
  // itself. Produced by CheckAccess, consumed by the PolicyHandler
  // continuation implementations (src/runtime/handlers/).
  struct CheckResult {
    bool in_bounds = false;
    PointerStatus status = PointerStatus::kWild;
    const DataUnit* unit = nullptr;  // intended referent (may be dead)
  };

  // ---- Allocation -------------------------------------------------------

  // malloc/free/realloc over the simulated heap. Free/Realloc of a bad
  // pointer follow the policy resolved for the block's site: Standard and
  // BoundsCheck fault, the continuing policies log and ignore.
  Ptr Malloc(size_t size, std::string name = "alloc");
  void Free(Ptr p);
  Ptr Realloc(Ptr p, size_t new_size);

  // Globals live forever (bump allocated, zero initialized).
  Ptr AllocGlobal(size_t size, std::string name = "global");

  // ---- Simulated call stack ---------------------------------------------

  // RAII frame: construction is function entry, destruction is return (with
  // the canary check — unless C++ is already unwinding a Fault, in which
  // case the simulated process is crashing and no return happens).
  class Frame {
   public:
    Frame(Memory& memory, std::string function);
    // noexcept(false): returning from a function whose canary was smashed
    // IS the crash (Fault{kStackSmash}), and it happens exactly here. The
    // destructor only rethrows when no other exception is in flight.
    ~Frame() noexcept(false);
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;
    // Allocates an (uninitialized) local buffer in this frame.
    Ptr Local(size_t size, std::string name = "local");

   private:
    Memory& memory_;
    int exceptions_at_entry_;
  };

  // ---- Checked access ----------------------------------------------------

  // One n-byte access: a single budget charge and a single classification;
  // an invalid access produces one log record covering all n bytes.
  void Read(Ptr p, void* dst, size_t n);
  void Write(Ptr p, const void* src, size_t n);

  // Span access: observably identical to the ReadU8/WriteU8 loop over
  // [p, p+n) — per-byte budget charges, per-byte error records and per-byte
  // continuation for out-of-bounds bytes — but in-bounds runs within one
  // data unit are executed as a single block copy with the object-table
  // search hoisted out (the runtime analogue of the paper's compiler
  // hoisting checks out of loops). For sequential clients that keep state
  // across calls, construct an AccessCursor instead.
  void ReadSpan(Ptr p, void* dst, size_t n);
  void WriteSpan(Ptr p, const void* src, size_t n);

  uint8_t ReadU8(Ptr p);
  int8_t ReadI8(Ptr p) { return static_cast<int8_t>(ReadU8(p)); }
  uint16_t ReadU16(Ptr p);
  uint32_t ReadU32(Ptr p);
  int32_t ReadI32(Ptr p) { return static_cast<int32_t>(ReadU32(p)); }
  uint64_t ReadU64(Ptr p);
  void WriteU8(Ptr p, uint8_t v);
  void WriteI8(Ptr p, int8_t v) { WriteU8(p, static_cast<uint8_t>(v)); }
  void WriteU16(Ptr p, uint16_t v);
  void WriteU32(Ptr p, uint32_t v);
  void WriteI32(Ptr p, int32_t v) { WriteU32(p, static_cast<uint32_t>(v)); }
  void WriteU64(Ptr p, uint64_t v);

  // ---- Host bridging (all via checked accesses) --------------------------

  // Heap-allocates a NUL-terminated copy of s.
  Ptr NewCString(std::string_view s, std::string name = "cstring");
  // Heap-allocates a copy of exactly bytes.size() bytes.
  Ptr NewBytes(std::string_view bytes, std::string name = "bytes");
  // Reads bytes until NUL (checked reads, so manufactured values can
  // terminate it); stops at limit as a harness safety net.
  std::string ReadCString(Ptr p, size_t limit = 1 << 16);
  std::string ReadBytesAsString(Ptr p, size_t n);
  // Span-path staging: reads n bytes with ReadSpan semantics (per-byte
  // policy continuation, amortized checks) into a host string. The shared
  // entry point for parsers that stage simulated buffers out (codec, mbox,
  // http).
  std::string ReadSpanAsString(Ptr p, size_t n);
  void WriteBytes(Ptr p, std::string_view bytes);

  // ---- Introspection ------------------------------------------------------

  // The shard handle: this Memory's whole simulated universe. Everything
  // below is a view into it.
  Shard& shard() { return *shard_; }
  const Shard& shard() const { return *shard_; }
  // Stable worker identity for merged-log ordering; stamped by the pool.
  uint32_t shard_id() const { return shard_->config.shard_id; }
  void set_shard_id(uint32_t id) { shard_->config.shard_id = id; }

  MemLog& log() { return shard_->log; }
  const MemLog& log() const { return shard_->log; }
  uint64_t access_count() const { return shard_->accesses; }
  // Page-map fast-path resolution counters (see Shard::translation_hits).
  uint64_t translation_hits() const { return shard_->translation_hits; }
  uint64_t translation_misses() const { return shard_->translation_misses; }
  void set_access_budget(uint64_t budget) { shard_->config.access_budget = budget; }
  PointerStatus Classify(Ptr p, size_t n = 1) const;

  AddressSpace& space() { return shard_->space; }
  const ObjectTable& objects() const { return shard_->table; }
  Heap& heap() { return *shard_->heap; }
  Stack& stack() { return *shard_->stack; }
  ValueSequence& sequence() { return shard_->sequence; }
  const OobRegistry& oob() const { return shard_->oob; }
  const BoundlessStore& boundless() const { return shard_->boundless; }

  // The site id the *next* invalid access through p would resolve to, given
  // the current stack frame. What the sweep and the tests use to name sites
  // without replaying a whole workload.
  SiteId SiteForAccess(Ptr p, AccessKind kind) const;

  // Region layout, re-exported from the shard (tests rely on the ordering
  // globals < heap < stack).
  static constexpr Addr kGlobalBase = Shard::kGlobalBase;
  static constexpr Addr kHeapBase = Shard::kHeapBase;
  static constexpr Addr kStackLow = Shard::kStackLow;

 private:
  friend class PolicyHandler;
  friend class AccessCursor;

  void BumpAccess();
  // Tier 1: resolve the access through the shard's page map alone. Returns
  // true (access performed) only when the full checking code would have
  // classified it kInBounds — a live sole-owner page whose owner is p's
  // intended referent and whose extent contains [addr, addr+n) — which is
  // policy-independent, so hits bypass dispatch for every policy including
  // Standard. A false return performed nothing and consumed nothing; the
  // caller falls into the interval-search tiers byte-identically.
  bool TryFastRead(Ptr p, void* dst, size_t n);
  bool TryFastWrite(Ptr p, const void* src, size_t n);
  // Batched handling of a whole run of out-of-bounds-above bytes through one
  // live referent (the span clients' OOB tail: AccessCursor's slow branch).
  // Returns n if the run was handled — observably identical to the per-byte
  // loop: per-byte budget charges, translation misses, one single-byte error
  // record per byte, and the policy's batched continuation — or 0 (nothing
  // performed, nothing consumed) when the access is not such a run, the
  // budget is armed, or the resolved policy has no batched form; the caller
  // falls back to the per-byte path byte-identically.
  size_t TryOobRunRead(Ptr p, void* dst, size_t n);
  size_t TryOobRunWrite(Ptr p, const void* src, size_t n);
  CheckResult CheckAccess(Ptr p, size_t n) const;
  // Records one invalid access. `site` is the access's already-derived
  // SiteId when the caller resolved it (the mixed-spec dispatch path, which
  // must log exactly the site it resolved the handler for); kInvalidSite
  // means derive it here.
  void LogError(bool is_write, Ptr p, size_t n, const CheckResult& check,
                SiteId site = kInvalidSite);
  SiteId SiteOf(const CheckResult& check, AccessKind kind) const;

  // The mixed-spec access path: classification in the core, continuation
  // via the site-resolved handler.
  void SiteDispatchRead(Ptr p, void* dst, size_t n);
  void SiteDispatchWrite(Ptr p, const void* src, size_t n);
  // The handler governing free/realloc of p under a mixed spec; fills
  // `check` with the classification it resolved the site from, so error
  // paths can log without a second table search.
  PolicyHandler& ResolveAllocHandler(Ptr p, std::optional<CheckResult>& check);

  std::unique_ptr<Shard> shard_;
  PolicyHandler* handler_ = nullptr;  // fallback handler, owned by the shard's table
  bool uniform_ = true;
};

}  // namespace fob

#endif  // SRC_RUNTIME_MEMORY_H_
