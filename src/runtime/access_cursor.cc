#include "src/runtime/access_cursor.h"

#include <cassert>

#include "src/runtime/handlers/policy_handler.h"

namespace fob {

AccessCursor::AccessCursor(Memory& memory)
    // Mixed policy specs always run the checking code — only the
    // continuation is per-site — so the cursor may cache unit bounds exactly
    // as it does for any uniform checked policy.
    : memory_(memory),
      checked_(memory.uniform_ ? memory.handler_->checked() : true) {}

void AccessCursor::Invalidate() {
  valid_ = false;
  unit_ = kInvalidUnit;
}

bool AccessCursor::Resolve(Ptr p) {
  valid_ = false;
  const DataUnit* unit = memory_.shard_->table.Lookup(p.unit);
  if (unit == nullptr || !unit->live || unit->size == 0) {
    return false;
  }
  unit_ = unit->id;
  base_ = unit->base;
  end_ = unit->base + unit->size;
  epoch_ = memory_.shard_->table.retire_epoch();
  valid_ = true;
  return true;
}

size_t AccessCursor::FastRun(Ptr p, size_t n) {
  if (!valid_ || p.unit != unit_ || epoch_ != memory_.shard_->table.retire_epoch()) {
    if (!Resolve(p)) {
      return 0;
    }
  }
  if (p.addr < base_ || p.addr >= end_) {
    return 0;
  }
  size_t room = static_cast<size_t>(end_ - p.addr);
  return n < room ? n : room;
}

uint8_t AccessCursor::ReadU8(Ptr p) {
  if (checked_ && memory_.shard_->config.access_budget == 0 && FastRun(p, 1) == 1) {
    ++memory_.shard_->accesses;
    uint8_t v = 0;
    bool ok = memory_.shard_->space.Read(p.addr, &v, 1);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return v;
  }
  return memory_.ReadU8(p);
}

void AccessCursor::WriteU8(Ptr p, uint8_t v) {
  if (checked_ && memory_.shard_->config.access_budget == 0 && FastRun(p, 1) == 1) {
    ++memory_.shard_->accesses;
    bool ok = memory_.shard_->space.Write(p.addr, &v, 1);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return;
  }
  memory_.WriteU8(p, v);
}

void AccessCursor::Read(Ptr p, void* dst, size_t n) {
  uint8_t* out = static_cast<uint8_t*>(dst);
  if (memory_.shard_->config.access_budget != 0) {
    // Budgeted runs are the harness's hang detector; take the exact per-byte
    // path so the budget trips at precisely the same access it always did.
    for (size_t i = 0; i < n; ++i) {
      out[i] = memory_.ReadU8(p + static_cast<int64_t>(i));
    }
    return;
  }
  if (!checked_) {
    if (n == 0) {
      return;
    }
    // Standard: no checks to hoist; do the raw block copy, falling back to
    // the per-byte path to reproduce the exact faulting byte on unmapped
    // memory.
    if (memory_.shard_->space.Read(p.addr, out, n)) {
      memory_.shard_->accesses += n;
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      out[i] = memory_.ReadU8(p + static_cast<int64_t>(i));
    }
    return;
  }
  size_t i = 0;
  while (i < n) {
    Ptr q = p + static_cast<int64_t>(i);
    size_t run = FastRun(q, n - i);
    if (run > 0) {
      memory_.shard_->accesses += run;
      bool ok = memory_.shard_->space.Read(q.addr, out + i, run);
      assert(ok && "in-bounds unit memory must be mapped");
      (void)ok;
      i += run;
    } else {
      // An out-of-bounds-above tail is status-constant; hand the whole run
      // to the policy's batched continuation when it has one (boundless:
      // one page resolution per 256 bytes instead of per-byte lookups).
      size_t batched = memory_.TryOobRunRead(q, out + i, n - i);
      if (batched != 0) {
        i += batched;
        continue;
      }
      out[i] = memory_.ReadU8(q);
      ++i;
    }
  }
}

void AccessCursor::Write(Ptr p, const void* src, size_t n) {
  const uint8_t* in = static_cast<const uint8_t*>(src);
  if (memory_.shard_->config.access_budget != 0) {
    for (size_t i = 0; i < n; ++i) {
      memory_.WriteU8(p + static_cast<int64_t>(i), in[i]);
    }
    return;
  }
  if (!checked_) {
    if (n == 0) {
      return;
    }
    // The byte loop writes the mapped prefix before faulting; so does the
    // raw block write, so only the fault address needs the per-byte replay.
    if (memory_.shard_->space.Write(p.addr, in, n)) {
      memory_.shard_->accesses += n;
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      memory_.WriteU8(p + static_cast<int64_t>(i), in[i]);
    }
    return;
  }
  size_t i = 0;
  while (i < n) {
    Ptr q = p + static_cast<int64_t>(i);
    size_t run = FastRun(q, n - i);
    if (run > 0) {
      memory_.shard_->accesses += run;
      bool ok = memory_.shard_->space.Write(q.addr, in + i, run);
      assert(ok && "in-bounds unit memory must be mapped");
      (void)ok;
      i += run;
    } else {
      size_t batched = memory_.TryOobRunWrite(q, in + i, n - i);
      if (batched != 0) {
        i += batched;
        continue;
      }
      memory_.WriteU8(q, in[i]);
      ++i;
    }
  }
}

}  // namespace fob
