#include "src/runtime/memory.h"

#include <cassert>
#include <cstring>
#include <exception>

#include "src/runtime/access_cursor.h"
#include "src/runtime/handlers/policy_handler.h"
#include "src/runtime/policy_table.h"

namespace fob {

namespace {
Memory::Config ConfigFromSpec(const PolicySpec& spec) {
  Memory::Config config;
  config.policy = spec;
  return config;
}
}  // namespace

Memory::Memory(AccessPolicy policy) : Memory(PolicySpec(policy)) {}

Memory::Memory(const PolicySpec& spec) : Memory(ConfigFromSpec(spec)) {}

Memory::Memory(const Config& config) : shard_(std::make_unique<Shard>(*this, config)) {
  handler_ = &shard_->policy_table->fallback_handler();
  uniform_ = shard_->policy_table->uniform();
}

Memory::~Memory() = default;

void Memory::Rebind(const PolicySpec& spec) {
  shard_->config.policy = spec;
  shard_->policy_table->Rebind(spec);
  handler_ = &shard_->policy_table->fallback_handler();
  uniform_ = shard_->policy_table->uniform();
}

// ---- Allocation -----------------------------------------------------------

Ptr Memory::Malloc(size_t size, std::string name) {
  Addr payload = shard_->heap->Malloc(size, std::move(name));
  if (payload == 0) {
    return kNullPtr;
  }
  return Ptr(payload, shard_->heap->BlockUnit(payload));
}

PolicyHandler& Memory::ResolveAllocHandler(Ptr p, std::optional<CheckResult>& check) {
  check = CheckAccess(p, 1);
  // Free/realloc errors are logged as writes, so the site resolves with the
  // write kind — one policy governs everything that mutates a block.
  return shard_->policy_table->ResolveSite(SiteOf(*check, AccessKind::kWrite));
}

void Memory::Free(Ptr p) {
  if (p.IsNull()) {
    return;  // free(NULL) is a no-op in every libc
  }
  Heap& heap = *shard_->heap;
  std::optional<CheckResult> check;
  PolicyHandler& handler = uniform_ ? *handler_ : ResolveAllocHandler(p, check);
  if (!handler.continues_on_error()) {
    // Both non-continuing configurations die here: Standard with the
    // allocator's own abort, BoundsCheck with its terminate-on-error
    // behaviour.
    heap.Free(p.addr);
    return;
  }
  // Continuing policies treat an invalid free like an invalid write: log it
  // and discard the operation.
  if (heap.BlockSize(p.addr) == 0) {
    if (!check.has_value()) {
      check = CheckAccess(p, 1);
    }
    LogError(/*is_write=*/true, p, 0, *check);
    return;
  }
  shard_->boundless.DropUnit(heap.BlockUnit(p.addr));
  heap.Free(p.addr);
}

Ptr Memory::Realloc(Ptr p, size_t new_size) {
  if (p.IsNull()) {
    return Malloc(new_size, "realloc");
  }
  Heap& heap = *shard_->heap;
  std::optional<CheckResult> check;
  PolicyHandler& handler = uniform_ ? *handler_ : ResolveAllocHandler(p, check);
  if (!handler.continues_on_error()) {
    Addr fresh = heap.Realloc(p.addr, new_size);
    return fresh == 0 ? kNullPtr : Ptr(fresh, heap.BlockUnit(fresh));
  }
  size_t old_size = heap.BlockSize(p.addr);
  if (old_size == 0) {
    if (!check.has_value()) {
      check = CheckAccess(p, 1);
    }
    LogError(/*is_write=*/true, p, 0, *check);
    return p;  // leave the program with its pointer; best effort
  }
  UnitId old_unit = heap.BlockUnit(p.addr);
  Addr fresh = heap.Realloc(p.addr, new_size);
  if (fresh == 0) {
    return kNullPtr;
  }
  if (new_size > old_size) {
    handler.OnReallocGrow(old_unit, fresh, old_size, new_size);
  }
  shard_->boundless.DropUnit(old_unit);
  return Ptr(fresh, heap.BlockUnit(fresh));
}

Ptr Memory::AllocGlobal(size_t size, std::string name) {
  if (size == 0) {
    size = 1;
  }
  size_t reserved = (size + 15) & ~static_cast<size_t>(15);
  if (shard_->global_cursor + reserved > shard_->global_end) {
    return kNullPtr;
  }
  Addr base = shard_->global_cursor;
  shard_->global_cursor += reserved;
  UnitId unit = shard_->table.Register(base, size, UnitKind::kGlobal, std::move(name));
  return Ptr(base, unit);
}

// ---- Frames ----------------------------------------------------------------

Memory::Frame::Frame(Memory& memory, std::string function)
    : memory_(memory), exceptions_at_entry_(std::uncaught_exceptions()) {
  memory_.shard_->stack->PushFrame(std::move(function));
}

Memory::Frame::~Frame() noexcept(false) {
  if (std::uncaught_exceptions() > exceptions_at_entry_) {
    // The simulated process is crashing through this frame; it never
    // returns, so the canary is not consulted.
    memory_.shard_->stack->PopFrameUnchecked();
    return;
  }
  memory_.shard_->stack->PopFrame();
}

Ptr Memory::Frame::Local(size_t size, std::string name) {
  Addr base = memory_.shard_->stack->AllocLocal(size, std::move(name));
  const DataUnit* unit = memory_.shard_->table.LookupByAddress(base);
  assert(unit != nullptr);
  return Ptr(base, unit->id);
}

// ---- Checked access ---------------------------------------------------------

void Memory::BumpAccess() {
  ++shard_->accesses;
  if (shard_->config.access_budget != 0 && shard_->accesses > shard_->config.access_budget) {
    throw Fault::BudgetExhausted(shard_->config.access_budget);
  }
}

bool Memory::TryFastRead(Ptr p, void* dst, size_t n) {
  if (n == 0 || p.unit == kInvalidUnit) {
    return false;  // degenerate accesses keep their historical path
  }
  const PageMap::Entry* entry = shard_->page_map.Find(p.addr);
  if (entry == nullptr || entry->data == nullptr || entry->owner != p.unit) {
    ++shard_->translation_misses;
    return false;
  }
  // The owner invariant guarantees the unit is live; Lookup is a vector
  // index, not a search.
  const DataUnit* unit = shard_->table.Lookup(p.unit);
  if (!unit->Contains(p.addr, n)) {
    ++shard_->translation_misses;
    return false;
  }
  ++shard_->translation_hits;
  size_t offset = static_cast<size_t>(p.addr - PageBaseOf(p.addr));
  if (offset + n <= kPageSize) {
    std::memcpy(dst, entry->data + offset, n);
  } else {
    // Straddles into the next page of the same unit; the multi-entry TLB
    // absorbs the extra page translation.
    bool ok = shard_->space.Read(p.addr, dst, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
  }
  return true;
}

bool Memory::TryFastWrite(Ptr p, const void* src, size_t n) {
  if (n == 0 || p.unit == kInvalidUnit) {
    return false;
  }
  const PageMap::Entry* entry = shard_->page_map.Find(p.addr);
  if (entry == nullptr || entry->data == nullptr || entry->owner != p.unit) {
    ++shard_->translation_misses;
    return false;
  }
  const DataUnit* unit = shard_->table.Lookup(p.unit);
  if (!unit->Contains(p.addr, n)) {
    ++shard_->translation_misses;
    return false;
  }
  ++shard_->translation_hits;
  size_t offset = static_cast<size_t>(p.addr - PageBaseOf(p.addr));
  if (offset + n <= kPageSize) {
    std::memcpy(entry->data + offset, src, n);
  } else {
    bool ok = shard_->space.Write(p.addr, src, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
  }
  return true;
}

Memory::CheckResult Memory::CheckAccess(Ptr p, size_t n) const {
  CheckResult result;
  // The table search is what a Jones-Kelly/CRED checker executes per access;
  // performing it here (even though the referent id already hangs off the
  // pointer) keeps the checked policies' cost model honest.
  const ObjectTable& table = shard_->table;
  const DataUnit* containing = table.LookupByAddress(p.addr);
  result.unit = table.Lookup(p.unit);
  result.status = OobRegistry::Classify(table, p.unit, p.addr, n);
  result.in_bounds = result.status == PointerStatus::kInBounds;
  (void)containing;
  return result;
}

SiteId Memory::SiteOf(const CheckResult& check, AccessKind kind) const {
  return MakeSiteId(check.unit != nullptr ? std::string_view(check.unit->name) : std::string_view(),
                    shard_->stack->current_function(), kind);
}

SiteId Memory::SiteForAccess(Ptr p, AccessKind kind) const {
  return SiteOf(CheckAccess(p, 1), kind);
}

void Memory::LogError(bool is_write, Ptr p, size_t n, const CheckResult& check, SiteId site) {
  shard_->oob.Note(check.status);
  MemErrorRecord record;
  record.is_write = is_write;
  record.addr = p.addr;
  record.size = n;
  record.unit = p.unit;
  record.unit_name = check.unit != nullptr ? check.unit->name : "";
  record.status = check.status;
  record.function = shard_->stack->current_function();
  record.access_index = shard_->accesses;
  record.site = site != kInvalidSite
                    ? site
                    : MakeSiteId(record.unit_name, record.function,
                                 is_write ? AccessKind::kWrite : AccessKind::kRead);
  shard_->log.Record(std::move(record));
}

void Memory::SiteDispatchRead(Ptr p, void* dst, size_t n) {
  CheckResult check = CheckAccess(p, n);
  if (check.in_bounds) {
    bool ok = shard_->space.Read(p.addr, dst, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return;
  }
  SiteId site = SiteOf(check, AccessKind::kRead);
  PolicyHandler& handler = shard_->policy_table->ResolveSite(site);
  // Unchecked (Standard) sites get no error record — the raw access landing
  // or segfaulting IS the continuation; see StandardHandler::Continue*.
  if (handler.checked()) {
    LogError(/*is_write=*/false, p, n, check, site);
  }
  handler.ContinueInvalidRead(p, dst, n, check);
}

void Memory::SiteDispatchWrite(Ptr p, const void* src, size_t n) {
  CheckResult check = CheckAccess(p, n);
  if (check.in_bounds) {
    bool ok = shard_->space.Write(p.addr, src, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return;
  }
  SiteId site = SiteOf(check, AccessKind::kWrite);
  PolicyHandler& handler = shard_->policy_table->ResolveSite(site);
  if (handler.checked()) {
    LogError(/*is_write=*/true, p, n, check, site);
  }
  handler.ContinueInvalidWrite(p, src, n, check);
}

size_t Memory::TryOobRunRead(Ptr p, void* dst, size_t n) {
  if (n == 0 || shard_->config.access_budget != 0) {
    return 0;
  }
  CheckResult check = CheckAccess(p, 1);
  // kOobAbove through a live referent is status-constant for every later
  // byte of the run (addresses only grow), which is what makes one
  // classification stand for all n per-byte classifications.
  if (check.status != PointerStatus::kOobAbove) {
    return 0;
  }
  SiteId site = kInvalidSite;
  PolicyHandler* handler = handler_;
  if (!uniform_) {
    site = SiteOf(check, AccessKind::kRead);
    handler = &shard_->policy_table->ResolveSite(site);
  }
  if (!handler->checked() || !handler->BatchesOobRuns()) {
    return 0;
  }
  for (size_t i = 0; i < n; ++i) {
    BumpAccess();
    ++shard_->translation_misses;
    LogError(/*is_write=*/false, p + static_cast<int64_t>(i), 1, check, site);
  }
  handler->OobRunRead(p, dst, n, check);
  return n;
}

size_t Memory::TryOobRunWrite(Ptr p, const void* src, size_t n) {
  if (n == 0 || shard_->config.access_budget != 0) {
    return 0;
  }
  CheckResult check = CheckAccess(p, 1);
  if (check.status != PointerStatus::kOobAbove) {
    return 0;
  }
  SiteId site = kInvalidSite;
  PolicyHandler* handler = handler_;
  if (!uniform_) {
    site = SiteOf(check, AccessKind::kWrite);
    handler = &shard_->policy_table->ResolveSite(site);
  }
  if (!handler->checked() || !handler->BatchesOobRuns()) {
    return 0;
  }
  for (size_t i = 0; i < n; ++i) {
    BumpAccess();
    ++shard_->translation_misses;
    LogError(/*is_write=*/true, p + static_cast<int64_t>(i), 1, check, site);
  }
  handler->OobRunWrite(p, src, n, check);
  return n;
}

void Memory::Write(Ptr p, const void* src, size_t n) {
  BumpAccess();
  if (TryFastWrite(p, src, n)) {
    return;
  }
  if (uniform_) {
    handler_->Write(p, src, n);
    return;
  }
  SiteDispatchWrite(p, src, n);
}

void Memory::Read(Ptr p, void* dst, size_t n) {
  BumpAccess();
  if (TryFastRead(p, dst, n)) {
    return;
  }
  if (uniform_) {
    handler_->Read(p, dst, n);
    return;
  }
  SiteDispatchRead(p, dst, n);
}

void Memory::ReadSpan(Ptr p, void* dst, size_t n) {
  AccessCursor cursor(*this);
  cursor.Read(p, dst, n);
}

void Memory::WriteSpan(Ptr p, const void* src, size_t n) {
  AccessCursor cursor(*this);
  cursor.Write(p, src, n);
}

uint8_t Memory::ReadU8(Ptr p) {
  uint8_t v = 0;
  Read(p, &v, 1);
  return v;
}

uint16_t Memory::ReadU16(Ptr p) {
  uint16_t v = 0;
  Read(p, &v, 2);
  return v;
}

uint32_t Memory::ReadU32(Ptr p) {
  uint32_t v = 0;
  Read(p, &v, 4);
  return v;
}

uint64_t Memory::ReadU64(Ptr p) {
  uint64_t v = 0;
  Read(p, &v, 8);
  return v;
}

void Memory::WriteU8(Ptr p, uint8_t v) { Write(p, &v, 1); }
void Memory::WriteU16(Ptr p, uint16_t v) { Write(p, &v, 2); }
void Memory::WriteU32(Ptr p, uint32_t v) { Write(p, &v, 4); }
void Memory::WriteU64(Ptr p, uint64_t v) { Write(p, &v, 8); }

// ---- Host bridging -----------------------------------------------------------

Ptr Memory::NewCString(std::string_view s, std::string name) {
  Ptr p = Malloc(s.size() + 1, std::move(name));
  if (p.IsNull()) {
    return p;
  }
  if (!s.empty()) {
    Write(p, s.data(), s.size());
  }
  WriteU8(p + static_cast<int64_t>(s.size()), 0);
  return p;
}

Ptr Memory::NewBytes(std::string_view bytes, std::string name) {
  Ptr p = Malloc(bytes.size(), std::move(name));
  if (p.IsNull() || bytes.empty()) {
    return p;
  }
  Write(p, bytes.data(), bytes.size());
  return p;
}

std::string Memory::ReadCString(Ptr p, size_t limit) {
  std::string out;
  AccessCursor cursor(*this);
  for (size_t i = 0; i < limit; ++i) {
    uint8_t c = cursor.ReadU8(p + static_cast<int64_t>(i));
    if (c == 0) {
      break;
    }
    out.push_back(static_cast<char>(c));
  }
  return out;
}

std::string Memory::ReadBytesAsString(Ptr p, size_t n) {
  std::string out(n, '\0');
  if (n > 0) {
    Read(p, out.data(), n);
  }
  return out;
}

std::string Memory::ReadSpanAsString(Ptr p, size_t n) {
  std::string out(n, '\0');
  if (n > 0) {
    ReadSpan(p, out.data(), n);
  }
  return out;
}

void Memory::WriteBytes(Ptr p, std::string_view bytes) {
  if (!bytes.empty()) {
    Write(p, bytes.data(), bytes.size());
  }
}

PointerStatus Memory::Classify(Ptr p, size_t n) const {
  return OobRegistry::Classify(shard_->table, p.unit, p.addr, n);
}

}  // namespace fob
