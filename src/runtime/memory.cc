#include "src/runtime/memory.h"

#include <cassert>
#include <cstring>
#include <exception>
#include <sstream>

namespace fob {

Memory::Memory(AccessPolicy policy) : Memory(Config{.policy = policy}) {}

Memory::Memory(const Config& config)
    : config_(config),
      sequence_(config.sequence),
      log_(config.log_capacity),
      boundless_(config.boundless_capacity) {
  heap_ = std::make_unique<Heap>(space_, table_, kHeapBase, config_.heap_bytes);
  stack_ = std::make_unique<Stack>(space_, table_, kStackLow, config_.stack_bytes);
  space_.Map(kGlobalBase, config_.global_bytes);
  global_cursor_ = kGlobalBase;
  global_end_ = kGlobalBase + config_.global_bytes;
}

// ---- Allocation -----------------------------------------------------------

Ptr Memory::Malloc(size_t size, std::string name) {
  Addr payload = heap_->Malloc(size, std::move(name));
  if (payload == 0) {
    return kNullPtr;
  }
  return Ptr(payload, heap_->BlockUnit(payload));
}

void Memory::Free(Ptr p) {
  if (p.IsNull()) {
    return;  // free(NULL) is a no-op in every libc
  }
  switch (config_.policy) {
    case AccessPolicy::kStandard:
    case AccessPolicy::kBoundsCheck:
      // Both configurations die here: Standard with the allocator's own
      // abort, BoundsCheck with its terminate-on-error behaviour.
      heap_->Free(p.addr);
      return;
    case AccessPolicy::kFailureOblivious:
    case AccessPolicy::kBoundless:
    case AccessPolicy::kWrap:
      // Continuing policies treat an invalid free like an invalid write:
      // log it and discard the operation.
      if (heap_->BlockSize(p.addr) == 0) {
        CheckResult check = CheckAccess(p, 1);
        LogError(/*is_write=*/true, p, 0, check);
        return;
      }
      boundless_.DropUnit(heap_->BlockUnit(p.addr));
      heap_->Free(p.addr);
      return;
  }
}

Ptr Memory::Realloc(Ptr p, size_t new_size) {
  if (p.IsNull()) {
    return Malloc(new_size, "realloc");
  }
  switch (config_.policy) {
    case AccessPolicy::kStandard:
    case AccessPolicy::kBoundsCheck: {
      Addr fresh = heap_->Realloc(p.addr, new_size);
      return fresh == 0 ? kNullPtr : Ptr(fresh, heap_->BlockUnit(fresh));
    }
    case AccessPolicy::kFailureOblivious:
    case AccessPolicy::kBoundless:
    case AccessPolicy::kWrap: {
      size_t old_size = heap_->BlockSize(p.addr);
      if (old_size == 0) {
        CheckResult check = CheckAccess(p, 1);
        LogError(/*is_write=*/true, p, 0, check);
        return p;  // leave the program with its pointer; best effort
      }
      UnitId old_unit = heap_->BlockUnit(p.addr);
      Addr fresh = heap_->Realloc(p.addr, new_size);
      if (fresh == 0) {
        return kNullPtr;
      }
      if (config_.policy == AccessPolicy::kBoundless && new_size > old_size) {
        // Boundless semantics: bytes the program wrote past the old end are
        // part of the block's logical contents; growing the block
        // materializes them (this is what lets Mutt's
        // `safe_realloc(buf, p - buf)` recover the full converted string).
        for (size_t offset = old_size; offset < new_size; ++offset) {
          if (auto stored = boundless_.LoadByte(old_unit, static_cast<int64_t>(offset))) {
            bool ok = space_.Write(fresh + offset, &*stored, 1);
            assert(ok);
            (void)ok;
          }
        }
      }
      boundless_.DropUnit(old_unit);
      return Ptr(fresh, heap_->BlockUnit(fresh));
    }
  }
  return kNullPtr;
}

Ptr Memory::AllocGlobal(size_t size, std::string name) {
  if (size == 0) {
    size = 1;
  }
  size_t reserved = (size + 15) & ~static_cast<size_t>(15);
  if (global_cursor_ + reserved > global_end_) {
    return kNullPtr;
  }
  Addr base = global_cursor_;
  global_cursor_ += reserved;
  UnitId unit = table_.Register(base, size, UnitKind::kGlobal, std::move(name));
  return Ptr(base, unit);
}

// ---- Frames ----------------------------------------------------------------

Memory::Frame::Frame(Memory& memory, std::string function)
    : memory_(memory), exceptions_at_entry_(std::uncaught_exceptions()) {
  memory_.stack_->PushFrame(std::move(function));
}

Memory::Frame::~Frame() noexcept(false) {
  if (std::uncaught_exceptions() > exceptions_at_entry_) {
    // The simulated process is crashing through this frame; it never
    // returns, so the canary is not consulted.
    memory_.stack_->PopFrameUnchecked();
    return;
  }
  memory_.stack_->PopFrame();
}

Ptr Memory::Frame::Local(size_t size, std::string name) {
  Addr base = memory_.stack_->AllocLocal(size, std::move(name));
  const DataUnit* unit = memory_.table_.LookupByAddress(base);
  assert(unit != nullptr);
  return Ptr(base, unit->id);
}

// ---- Checked access ---------------------------------------------------------

void Memory::BumpAccess() {
  ++accesses_;
  if (config_.access_budget != 0 && accesses_ > config_.access_budget) {
    throw Fault::BudgetExhausted(config_.access_budget);
  }
}

Memory::CheckResult Memory::CheckAccess(Ptr p, size_t n) const {
  CheckResult result;
  // The table search is what a Jones-Kelly/CRED checker executes per access;
  // performing it here (even though the referent id already hangs off the
  // pointer) keeps the checked policies' cost model honest.
  const DataUnit* containing = table_.LookupByAddress(p.addr);
  result.unit = table_.Lookup(p.unit);
  result.status = OobRegistry::Classify(table_, p.unit, p.addr, n);
  result.in_bounds = result.status == PointerStatus::kInBounds;
  (void)containing;
  return result;
}

void Memory::LogError(bool is_write, Ptr p, size_t n, const CheckResult& check) {
  oob_.Note(check.status);
  MemErrorRecord record;
  record.is_write = is_write;
  record.addr = p.addr;
  record.size = n;
  record.unit = p.unit;
  record.unit_name = check.unit != nullptr ? check.unit->name : "";
  record.status = check.status;
  record.function = stack_->current_function();
  record.access_index = accesses_;
  log_.Record(std::move(record));
}

void Memory::ManufactureRead(void* dst, size_t n) {
  uint8_t* out = static_cast<uint8_t*>(dst);
  if (n <= 8) {
    uint64_t value = sequence_.Next();
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(value >> (8 * i));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = sequence_.NextByte();
  }
}

void Memory::WrapWrite(const DataUnit& unit, Ptr p, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    int64_t offset = static_cast<int64_t>(p.addr + i - unit.base);
    int64_t size = static_cast<int64_t>(unit.size);
    int64_t wrapped = ((offset % size) + size) % size;
    bool ok = space_.Write(unit.base + static_cast<uint64_t>(wrapped), &src[i], 1);
    assert(ok);
    (void)ok;
  }
}

void Memory::WrapRead(const DataUnit& unit, Ptr p, uint8_t* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    int64_t offset = static_cast<int64_t>(p.addr + i - unit.base);
    int64_t size = static_cast<int64_t>(unit.size);
    int64_t wrapped = ((offset % size) + size) % size;
    bool ok = space_.Read(unit.base + static_cast<uint64_t>(wrapped), &dst[i], 1);
    assert(ok);
    (void)ok;
  }
}

void Memory::Write(Ptr p, const void* src, size_t n) {
  BumpAccess();
  if (config_.policy == AccessPolicy::kStandard) {
    // No checks: the write lands wherever the address points. Unmapped
    // memory is a segmentation violation.
    if (!space_.Write(p.addr, src, n)) {
      throw Fault::Segfault(p.addr);
    }
    return;
  }
  CheckResult check = CheckAccess(p, n);
  if (check.in_bounds) {
    bool ok = space_.Write(p.addr, src, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return;
  }
  LogError(/*is_write=*/true, p, n, check);
  switch (config_.policy) {
    case AccessPolicy::kBoundsCheck: {
      std::ostringstream os;
      os << "illegal write of " << n << " bytes, referent "
         << (check.unit != nullptr ? check.unit->name : "<unknown>");
      throw Fault::BoundsViolation(os.str());
    }
    case AccessPolicy::kFailureOblivious:
      return;  // discard
    case AccessPolicy::kBoundless: {
      if (check.unit != nullptr && check.unit->live) {
        const uint8_t* bytes = static_cast<const uint8_t*>(src);
        for (size_t i = 0; i < n; ++i) {
          int64_t offset = static_cast<int64_t>(p.addr + i) - static_cast<int64_t>(check.unit->base);
          // In-bounds bytes of a straddling access still land in the unit.
          if (offset >= 0 && static_cast<uint64_t>(offset) < check.unit->size) {
            bool ok = space_.Write(p.addr + i, &bytes[i], 1);
            assert(ok);
            (void)ok;
          } else {
            boundless_.StoreByte(check.unit->id, offset, bytes[i]);
          }
        }
      }
      return;  // wild/dangling writes are discarded
    }
    case AccessPolicy::kWrap:
      if (check.unit != nullptr && check.unit->live && check.unit->size > 0) {
        WrapWrite(*check.unit, p, static_cast<const uint8_t*>(src), n);
      }
      return;
    case AccessPolicy::kStandard:
      break;  // unreachable
  }
}

void Memory::Read(Ptr p, void* dst, size_t n) {
  BumpAccess();
  if (config_.policy == AccessPolicy::kStandard) {
    if (!space_.Read(p.addr, dst, n)) {
      throw Fault::Segfault(p.addr);
    }
    return;
  }
  CheckResult check = CheckAccess(p, n);
  if (check.in_bounds) {
    bool ok = space_.Read(p.addr, dst, n);
    assert(ok && "in-bounds unit memory must be mapped");
    (void)ok;
    return;
  }
  LogError(/*is_write=*/false, p, n, check);
  switch (config_.policy) {
    case AccessPolicy::kBoundsCheck: {
      std::ostringstream os;
      os << "illegal read of " << n << " bytes, referent "
         << (check.unit != nullptr ? check.unit->name : "<unknown>");
      throw Fault::BoundsViolation(os.str());
    }
    case AccessPolicy::kFailureOblivious:
      ManufactureRead(dst, n);
      return;
    case AccessPolicy::kBoundless: {
      if (check.unit == nullptr || !check.unit->live) {
        ManufactureRead(dst, n);
        return;
      }
      // Return stored bytes where the program previously wrote out of
      // bounds; manufacture the rest. If nothing is stored this degenerates
      // to exactly the failure-oblivious manufactured value.
      uint8_t* out = static_cast<uint8_t*>(dst);
      bool any_stored = false;
      for (size_t i = 0; i < n; ++i) {
        int64_t offset = static_cast<int64_t>(p.addr + i) - static_cast<int64_t>(check.unit->base);
        if (offset >= 0 && static_cast<uint64_t>(offset) < check.unit->size) {
          bool ok = space_.Read(p.addr + i, &out[i], 1);
          assert(ok);
          (void)ok;
          any_stored = true;
        } else if (auto stored = boundless_.LoadByte(check.unit->id, offset)) {
          out[i] = *stored;
          any_stored = true;
        } else {
          out[i] = 0xa5;  // placeholder, replaced below if nothing stored
        }
      }
      if (!any_stored) {
        ManufactureRead(dst, n);
        return;
      }
      // Fill any placeholder bytes from the sequence.
      for (size_t i = 0; i < n; ++i) {
        int64_t offset = static_cast<int64_t>(p.addr + i) - static_cast<int64_t>(check.unit->base);
        bool covered = (offset >= 0 && static_cast<uint64_t>(offset) < check.unit->size) ||
                       boundless_.LoadByte(check.unit->id, offset).has_value();
        if (!covered) {
          out[i] = sequence_.NextByte();
        }
      }
      return;
    }
    case AccessPolicy::kWrap:
      if (check.unit != nullptr && check.unit->live && check.unit->size > 0) {
        WrapRead(*check.unit, p, static_cast<uint8_t*>(dst), n);
      } else {
        ManufactureRead(dst, n);
      }
      return;
    case AccessPolicy::kStandard:
      break;  // unreachable
  }
}

uint8_t Memory::ReadU8(Ptr p) {
  uint8_t v = 0;
  Read(p, &v, 1);
  return v;
}

uint16_t Memory::ReadU16(Ptr p) {
  uint16_t v = 0;
  Read(p, &v, 2);
  return v;
}

uint32_t Memory::ReadU32(Ptr p) {
  uint32_t v = 0;
  Read(p, &v, 4);
  return v;
}

uint64_t Memory::ReadU64(Ptr p) {
  uint64_t v = 0;
  Read(p, &v, 8);
  return v;
}

void Memory::WriteU8(Ptr p, uint8_t v) { Write(p, &v, 1); }
void Memory::WriteU16(Ptr p, uint16_t v) { Write(p, &v, 2); }
void Memory::WriteU32(Ptr p, uint32_t v) { Write(p, &v, 4); }
void Memory::WriteU64(Ptr p, uint64_t v) { Write(p, &v, 8); }

// ---- Host bridging -----------------------------------------------------------

Ptr Memory::NewCString(std::string_view s, std::string name) {
  Ptr p = Malloc(s.size() + 1, std::move(name));
  if (p.IsNull()) {
    return p;
  }
  if (!s.empty()) {
    Write(p, s.data(), s.size());
  }
  WriteU8(p + static_cast<int64_t>(s.size()), 0);
  return p;
}

Ptr Memory::NewBytes(std::string_view bytes, std::string name) {
  Ptr p = Malloc(bytes.size(), std::move(name));
  if (p.IsNull() || bytes.empty()) {
    return p;
  }
  Write(p, bytes.data(), bytes.size());
  return p;
}

std::string Memory::ReadCString(Ptr p, size_t limit) {
  std::string out;
  for (size_t i = 0; i < limit; ++i) {
    uint8_t c = ReadU8(p + static_cast<int64_t>(i));
    if (c == 0) {
      break;
    }
    out.push_back(static_cast<char>(c));
  }
  return out;
}

std::string Memory::ReadBytesAsString(Ptr p, size_t n) {
  std::string out(n, '\0');
  if (n > 0) {
    Read(p, out.data(), n);
  }
  return out;
}

void Memory::WriteBytes(Ptr p, std::string_view bytes) {
  if (!bytes.empty()) {
    Write(p, bytes.data(), bytes.size());
  }
}

PointerStatus Memory::Classify(Ptr p, size_t n) const {
  return OobRegistry::Classify(table_, p.unit, p.addr, n);
}

}  // namespace fob
