// Boundless memory blocks (§5.1, citing Rinard et al., ACSAC 2004).
//
// The store behind the kBoundless policy is the paged realization
// (src/runtime/boundless_paged.h): sparse on-demand pages with presence
// bitmaps, zero-page dedup, per-unit drop index, and page-granular clock
// eviction. The original flat byte-map lives on as FlatBoundlessStore
// (src/runtime/boundless_flat.h), the semantic reference baseline for
// equivalence tests and benchmarks.

#ifndef SRC_RUNTIME_BOUNDLESS_H_
#define SRC_RUNTIME_BOUNDLESS_H_

#include "src/runtime/boundless_paged.h"

namespace fob {

using BoundlessStore = PagedBoundlessStore;

}  // namespace fob

#endif  // SRC_RUNTIME_BOUNDLESS_H_
