// Boundless memory blocks (§5.1, citing Rinard et al., ACSAC 2004).
//
// "instead of discarding invalid writes, the generated code stores the
//  values in a hash table indexed under the data unit identifier and offset.
//  Corresponding invalid reads return the appropriate stored values. This
//  variant eliminates size calculation errors — if the program logic is
//  otherwise acceptable, the program will execute acceptably."
//
// Offsets are signed: writes below the base of a unit are as storable as
// writes past its end.

#ifndef SRC_RUNTIME_BOUNDLESS_H_
#define SRC_RUNTIME_BOUNDLESS_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "src/softmem/object_table.h"

namespace fob {

class BoundlessStore {
 public:
  // capacity bounds the number of stored out-of-bounds bytes (0 =
  // unbounded). The ACSAC variant caps its hash table so an attacker
  // cannot grow it without limit; at capacity, the oldest stored byte is
  // evicted (its reads then fall back to manufactured values).
  explicit BoundlessStore(size_t capacity = 0) : capacity_(capacity) {}

  void StoreByte(UnitId unit, int64_t offset, uint8_t value);
  std::optional<uint8_t> LoadByte(UnitId unit, int64_t offset) const;

  size_t stored_bytes() const { return bytes_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }
  // Drops all out-of-bounds bytes recorded for a unit; called when the unit
  // is retired so a recycled UnitId cannot see a predecessor's overflow.
  void DropUnit(UnitId unit);

 private:
  struct Key {
    UnitId unit;
    int64_t offset;
    bool operator==(const Key& other) const {
      return unit == other.unit && offset == other.offset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (static_cast<uint64_t>(k.unit) << 32) ^ static_cast<uint64_t>(k.offset);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  size_t capacity_;
  uint64_t evictions_ = 0;
  std::unordered_map<Key, uint8_t, KeyHash> bytes_;
  // Insertion order for FIFO eviction when capacity is bounded.
  std::deque<Key> order_;
};

}  // namespace fob

#endif  // SRC_RUNTIME_BOUNDLESS_H_
