#include "src/runtime/manufactured.h"

namespace fob {

const char* SequenceKindName(SequenceKind kind) {
  switch (kind) {
    case SequenceKind::kPaper:
      return "paper (0,1,k)";
    case SequenceKind::kZeros:
      return "zeros";
    case SequenceKind::kRandom:
      return "random";
  }
  return "?";
}

uint64_t ValueSequence::Next() {
  ++produced_;
  switch (kind_) {
    case SequenceKind::kZeros:
      return 0;
    case SequenceKind::kRandom: {
      // xorshift64*: deterministic, full-range values.
      rng_state_ ^= rng_state_ >> 12;
      rng_state_ ^= rng_state_ << 25;
      rng_state_ ^= rng_state_ >> 27;
      return rng_state_ * 2685821657736338717ull;
    }
    case SequenceKind::kPaper:
      break;
  }
  uint64_t value;
  switch (phase_) {
    case 0:
      value = 0;
      break;
    case 1:
      value = 1;
      break;
    default:
      value = small_;
      ++small_;
      if (small_ > 255) {
        small_ = 2;
      }
      break;
  }
  phase_ = (phase_ + 1) % 3;
  return value;
}

void ValueSequence::Reset() {
  phase_ = 0;
  small_ = 2;
  rng_state_ = 0x9e3779b97f4a7c15ull;
  produced_ = 0;
}

}  // namespace fob
