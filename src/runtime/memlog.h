// Memory-error log (§3).
//
// "To help make the errors more apparent, our compiler can optionally
//  augment the generated code to produce a log containing information about
//  the program's attempts to commit memory errors."
//
// The log keeps bounded per-error records (a ring of the most recent
// `capacity` records — Memory::Config::log_capacity — with an overflow
// counter for evictions, so multi-attack streams that commit thousands of
// errors cannot grow a worker's log without bound) plus exact aggregate
// counters, and can echo entries to a stream as they happen. The stability
// experiments read the counters; the examples echo the stream.
//
// Per-shard logs merge deterministically: MemLog::Merge folds another log's
// aggregates and ring into this one, and callers (Frontend::MergedLog, the
// harness's RunFrontendExperiment) merge in ascending shard-id order, so
// the merged view of a parallel run is identical no matter how the worker
// threads interleaved.

#ifndef SRC_RUNTIME_MEMLOG_H_
#define SRC_RUNTIME_MEMLOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>

#include "src/runtime/boundless_paged.h"
#include "src/runtime/policy_spec.h"
#include "src/softmem/address_space.h"
#include "src/softmem/object_table.h"
#include "src/softmem/oob_registry.h"

namespace fob {

struct MemErrorRecord {
  bool is_write = false;
  Addr addr = 0;
  size_t size = 0;
  UnitId unit = kInvalidUnit;
  std::string unit_name;
  PointerStatus status = PointerStatus::kInBounds;
  std::string function;  // innermost simulated stack frame
  uint64_t access_index = 0;
  // Stable error-site identity: MakeSiteId(unit_name, function, kind).
  SiteId site = kInvalidSite;

  std::string ToString() const;
};

// Per-site error statistics. Unlike the bounded `recent()` ring, the site
// index is unbounded (distinct sites are few even when errors are many), so
// a baseline run's full error-site set survives for the search-space sweep
// to enumerate over.
struct MemSiteStat {
  SiteId site = kInvalidSite;
  std::string unit_name;
  std::string function;
  bool is_write = false;
  uint64_t count = 0;

  // Human-readable site label, e.g. "write capture_offsets @ try_rewrite".
  std::string Label() const;
};

class MemLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit MemLog(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  void Record(MemErrorRecord record);

  uint64_t total_errors() const { return total_; }
  uint64_t read_errors() const { return read_errors_; }
  uint64_t write_errors() const { return write_errors_; }
  // Errors per data-unit name, e.g. "prescan::buf" -> 37.
  const std::map<std::string, uint64_t>& errors_by_unit() const { return by_unit_; }
  // Errors per site id (exact: one entry per distinct site, never evicted,
  // so aggregation survives the ring bound; see MemSiteStat).
  const std::map<SiteId, MemSiteStat>& sites() const { return sites_; }
  const std::deque<MemErrorRecord>& recent() const { return recent_; }
  // Records evicted from the bounded ring (recorded-but-no-longer-stored);
  // total_errors() == recent().size() + dropped() for an unmerged log.
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

  // Page-map fast-path resolution stats (Shard::translation_hits/_misses),
  // folded in at merge points so a merged log carries the whole pool's
  // translation profile alongside its error profile.
  void AddTranslationStats(uint64_t hits, uint64_t misses) {
    translation_hits_ += hits;
    translation_misses_ += misses;
  }
  uint64_t translation_hits() const { return translation_hits_; }
  uint64_t translation_misses() const { return translation_misses_; }

  // Boundless-store accounting (PagedBoundlessStore::stats()), folded in at
  // the same merge points as the translation counters. Gauges and cumulative
  // counters alike sum across shards, so a merged log's Summary shows the
  // pool-wide OOB storage profile.
  void AddBoundlessStats(const BoundlessStoreStats& stats) {
    boundless_.pages_live += stats.pages_live;
    boundless_.zero_pages_live += stats.zero_pages_live;
    boundless_.compressed_pages += stats.compressed_pages;
    boundless_.bytes_materialized += stats.bytes_materialized;
    boundless_.pages_evicted += stats.pages_evicted;
    boundless_.zero_dedup_hits += stats.zero_dedup_hits;
  }
  const BoundlessStoreStats& boundless_stats() const { return boundless_; }

  // Frontend scheduler accounting (Frontend::Stats), folded in at the same
  // merge points: requests shed at the overload watermark, whole batches
  // reassigned by the steal plan, and the high-water per-lane queue depth.
  // Shed/stolen counters sum; peak depth takes the max, so a merged log
  // reports the worst backlog any lane saw anywhere in the pool.
  void AddSchedulerStats(uint64_t shed, uint64_t stolen_batches, uint64_t peak_lane_depth) {
    shed_requests_ += shed;
    stolen_batches_ += stolen_batches;
    if (peak_lane_depth > peak_lane_depth_) {
      peak_lane_depth_ = peak_lane_depth;
    }
  }
  uint64_t shed_requests() const { return shed_requests_; }
  uint64_t stolen_batches() const { return stolen_batches_; }
  uint64_t peak_lane_depth() const { return peak_lane_depth_; }

  // Folds another shard's log into this one: aggregate counters and per-site
  // stats sum exactly; the other ring's records append in their original
  // order (evicting, and counting, the oldest beyond capacity). Merging
  // shards in ascending shard-id order is the repo's canonical deterministic
  // merge rule (see src/net/README.md).
  void Merge(const MemLog& other);

  // When set, every record is also printed to the stream as it happens.
  void set_echo(std::ostream* stream) { echo_ = stream; }

  // Administrator-facing digest: totals plus the per-buffer histogram,
  // worst offenders first. This is what the paper imagines an operator
  // reading to "detect and respond appropriately to the presence of such
  // errors" (§3).
  std::string Summary() const;

  void Clear();

 private:
  size_t capacity_;
  std::deque<MemErrorRecord> recent_;
  uint64_t total_ = 0;
  uint64_t read_errors_ = 0;
  uint64_t write_errors_ = 0;
  uint64_t dropped_ = 0;
  uint64_t translation_hits_ = 0;
  uint64_t translation_misses_ = 0;
  BoundlessStoreStats boundless_;
  uint64_t shed_requests_ = 0;
  uint64_t stolen_batches_ = 0;
  uint64_t peak_lane_depth_ = 0;
  std::map<std::string, uint64_t> by_unit_;
  std::map<SiteId, MemSiteStat> sites_;
  std::ostream* echo_ = nullptr;
};

}  // namespace fob

#endif  // SRC_RUNTIME_MEMLOG_H_
