// PolicyTable: the runtime-side resolver from SiteId to PolicyHandler.
//
// One PolicyTable is owned by each fob::Memory. It holds the PolicySpec the
// Memory was configured with plus a lazily-constructed bank of handler
// instances, one per AccessPolicy actually used. Resolution is two steps:
// spec (SiteId -> AccessPolicy, with the fallback for unlisted sites), then
// bank (AccessPolicy -> the Memory's handler instance for that policy).
//
// Handlers are per-Memory singletons, so stateful policies (Threshold's
// error counter, Boundless' store interactions) accumulate across all sites
// that resolve to the same policy — matching what a whole-program
// compilation of that policy would do.

#ifndef SRC_RUNTIME_POLICY_TABLE_H_
#define SRC_RUNTIME_POLICY_TABLE_H_

#include <array>
#include <memory>

#include "src/runtime/handlers/policy_handler.h"
#include "src/runtime/policy_spec.h"

namespace fob {

class PolicyTable {
 public:
  PolicyTable(Memory& memory, const PolicySpec& spec) : memory_(memory), spec_(spec) {}
  PolicyTable(const PolicyTable&) = delete;
  PolicyTable& operator=(const PolicyTable&) = delete;

  const PolicySpec& spec() const { return spec_; }
  bool uniform() const { return spec_.uniform(); }

  // Replaces the SiteId -> AccessPolicy mapping of a *live* table, effective
  // from the next resolution. The handler bank is kept: stateful policies
  // (Threshold's error counter, Boundless' store) carry their accumulated
  // state across the respec, exactly as a whole-program recompilation would
  // not reset a running process. This is the epoch-boundary hook the
  // adaptive controller (src/runtime/adaptive.h) uses to promote/demote
  // sites without discarding the shard. Callers going through Memory must
  // use Memory::Rebind, which also refreshes the façade's fast-path caches.
  void Rebind(const PolicySpec& spec) { spec_ = spec; }

  // The handler accesses use when the site has no override (and the only
  // handler a uniform table ever consults).
  PolicyHandler& fallback_handler() { return HandlerFor(spec_.fallback()); }

  // SiteId -> handler, with the default fallback.
  PolicyHandler& ResolveSite(SiteId site) { return HandlerFor(spec_.Resolve(site)); }

  // AccessPolicy -> this Memory's handler instance (lazily constructed).
  PolicyHandler& HandlerFor(AccessPolicy policy) {
    std::unique_ptr<PolicyHandler>& slot = bank_[PolicyIndex(policy)];
    if (slot == nullptr) {
      slot = MakePolicyHandler(policy, memory_);
    }
    return *slot;
  }

 private:
  Memory& memory_;
  PolicySpec spec_;
  std::array<std::unique_ptr<PolicyHandler>, kPolicyCount> bank_;
};

}  // namespace fob

#endif  // SRC_RUNTIME_POLICY_TABLE_H_
