// fob::Shard — one worker's entire simulated universe.
//
// A Shard is the self-contained bundle of simulated-process state the
// failure-oblivious runtime mutates: address space, heap, call stack,
// globals region, Jones-Kelly object table, out-of-bounds registry,
// manufactured-value sequence, boundless store, memory-error log, and the
// per-site policy table. Nothing in this bundle is shared between shards —
// two Memories never touch the same shard — which is what makes worker
// dispatch on real threads safe: N workers own N shards, and the only
// cross-thread state in the whole serving stack is the pool's result slots
// and its atomic restart counter (src/net/frontend.h).
//
// Memory (src/runtime/memory.h) is the access-mediation façade over exactly
// one Shard: it owns the shard handle, charges the access budget, runs the
// checking code, and routes continuations through the shard's policy table.
// Handlers and the span fast path reach the same bundle through
// Memory::shard().
//
// Shards carry a stable id (ShardConfig::shard_id, stamped by the worker
// pool with the worker index). Per-shard MemLogs are merged in ascending
// shard-id order (MemLog::Merge), so experiment and sweep outcomes are
// reproducible no matter how dispatch interleaved on the wall clock.

#ifndef SRC_RUNTIME_SHARD_H_
#define SRC_RUNTIME_SHARD_H_

#include <cstdint>
#include <memory>

#include "src/runtime/boundless.h"
#include "src/runtime/manufactured.h"
#include "src/runtime/memlog.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"
#include "src/softmem/address_space.h"
#include "src/softmem/heap.h"
#include "src/softmem/object_table.h"
#include "src/softmem/oob_registry.h"
#include "src/softmem/page_map.h"
#include "src/softmem/stack.h"

namespace fob {

class Memory;
class PolicyTable;

// How one shard's simulated process is configured. (This is what used to be
// Memory::Config; Memory keeps that name as an alias, so `Memory::Config`
// call sites read unchanged.)
struct ShardConfig {
  // Which continuation runs where: a uniform spec (assignable from a bare
  // AccessPolicy) reproduces the paper's whole-program policies; a spec
  // with per-site overrides enables the Durieux-style search-space sweep.
  PolicySpec policy = AccessPolicy::kFailureOblivious;
  SequenceKind sequence = SequenceKind::kPaper;
  size_t heap_bytes = 16 << 20;
  size_t global_bytes = 1 << 20;
  size_t stack_bytes = 1 << 20;
  size_t log_capacity = MemLog::kDefaultCapacity;
  // 0 = unlimited. When nonzero, the access that exceeds the budget throws
  // Fault{kBudgetExhausted}; the harness uses this to detect hangs.
  uint64_t access_budget = 0;
  // Cap on the Boundless policy's stored out-of-bounds bytes (0 =
  // unbounded); bounds attacker-driven memory growth per the ACSAC
  // variant. The paged store rounds this up to whole 256-byte pages
  // (minimum one page when nonzero) and evicts at page granularity under a
  // clock policy; see src/runtime/boundless_paged.h.
  size_t boundless_capacity = 0;
  // How many invalid accesses the Threshold policy continues through
  // before terminating the program.
  uint64_t error_threshold = 4096;
  // Stable identity of this shard among its worker pool's shards; the merge
  // order for per-shard MemLogs. Stamped by the pool (worker index), 0 for
  // standalone Memories.
  uint32_t shard_id = 0;
};

class Shard {
 public:
  // Region layout (fixed; tests rely on the ordering globals < heap < stack).
  static constexpr Addr kGlobalBase = 0x0000000000100000ull;
  static constexpr Addr kHeapBase = 0x0000000010000000ull;
  static constexpr Addr kStackLow = 0x00007fffff000000ull;

  // `owner` is the Memory this shard backs: the policy table's handlers are
  // constructed against it. The constructor only stores the reference.
  Shard(Memory& owner, const ShardConfig& config);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  uint32_t id() const { return config.shard_id; }

  ShardConfig config;
  std::unique_ptr<PolicyTable> policy_table;
  // The O(1) address→unit translation layer. Declared before the space and
  // table so it outlives both; the constructor attaches it to each before
  // any region is mapped or unit registered, so every Map/Unmap and
  // Register/Retire in this bundle's lifetime flows through it and the map
  // can never skew from the state it summarizes.
  PageMap page_map;
  AddressSpace space;
  ObjectTable table;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<Stack> stack;
  Addr global_cursor = 0;
  Addr global_end = 0;
  ValueSequence sequence;
  MemLog log;
  OobRegistry oob;
  BoundlessStore boundless;
  uint64_t accesses = 0;
  // Fast-path resolution counters: a hit is a checked access that resolved
  // through the page map alone (no interval search); a miss fell into
  // ObjectTable::LookupByAddress. Deterministic for a given stream + seed +
  // worker count (tests/test_shard.cc); surfaced through MemLog merges and
  // BENCH_check_cost.json.
  uint64_t translation_hits = 0;
  uint64_t translation_misses = 0;
};

}  // namespace fob

#endif  // SRC_RUNTIME_SHARD_H_
