// The original flat boundless store: one hash-table entry per stored
// out-of-bounds byte, FIFO byte eviction when bounded.
//
// Superseded as the store behind the kBoundless policy by
// PagedBoundlessStore (src/runtime/boundless_paged.h), which materializes
// fixed-size sparse pages on first OOB touch instead of paying per-byte
// entries. The flat store is kept as the semantic reference: the randomized
// equivalence property in tests/test_boundless_paged.cc replays seeded
// store/load/drop sequences against both and demands byte-for-byte
// agreement, and bench_boundless pins the paged store's speedup against
// this baseline on the dense-overflow / sparse-spray / churn axes.
//
// Offsets are signed: writes below the base of a unit are as storable as
// writes past its end.

#ifndef SRC_RUNTIME_BOUNDLESS_FLAT_H_
#define SRC_RUNTIME_BOUNDLESS_FLAT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "src/softmem/object_table.h"

namespace fob {

class FlatBoundlessStore {
 public:
  // capacity bounds the number of stored out-of-bounds bytes (0 =
  // unbounded). The ACSAC variant caps its hash table so an attacker
  // cannot grow it without limit; at capacity, the oldest stored byte is
  // evicted (its reads then fall back to manufactured values).
  explicit FlatBoundlessStore(size_t capacity = 0) : capacity_(capacity) {}

  void StoreByte(UnitId unit, int64_t offset, uint8_t value);
  std::optional<uint8_t> LoadByte(UnitId unit, int64_t offset) const;

  size_t stored_bytes() const { return bytes_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }
  // FIFO bookkeeping entries currently queued for eviction. Bounded runs
  // keep this within stored_bytes() + the not-yet-reclaimed drops of the
  // current sweep; the regression test in tests/test_boundless_paged.cc
  // pins that DropUnit cannot grow it without bound under unit churn.
  size_t eviction_queue_size() const { return order_.size(); }
  // Drops all out-of-bounds bytes recorded for a unit; called when the unit
  // is retired so a recycled address cannot see a predecessor's overflow.
  void DropUnit(UnitId unit);

 private:
  struct Key {
    UnitId unit;
    int64_t offset;
    bool operator==(const Key& other) const {
      return unit == other.unit && offset == other.offset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (static_cast<uint64_t>(k.unit) << 32) ^ static_cast<uint64_t>(k.offset);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  size_t capacity_;
  uint64_t evictions_ = 0;
  std::unordered_map<Key, uint8_t, KeyHash> bytes_;
  // Insertion order for FIFO eviction when capacity is bounded.
  std::deque<Key> order_;
};

}  // namespace fob

#endif  // SRC_RUNTIME_BOUNDLESS_FLAT_H_
