// AdaptivePolicyController: online, context-aware per-site policy learning.
//
// The search-space sweep (src/harness/sweep.h) finds good per-site policy
// assignments *offline*, by exhaustively enumerating the mixed-radix space
// Durieux et al. describe and replaying the workload once per assignment.
// Rigger et al.'s "Context-aware Failure-oblivious Computing" follow-up asks
// for the online version: start serving under a safe prior, observe what
// each continuation policy actually does at each error site, and promote or
// demote sites between epochs — no oracle replay, just the signals a live
// deployment has.
//
// This controller is that learner, structured as a per-site bandit:
//
//   * every error site (SiteId) the serving stack observes becomes a set of
//     *arms*, one per candidate AccessPolicy;
//   * between epochs the controller assembles a PolicySpec (prior fallback +
//     one override per tracked site) that a live shard adopts via
//     Memory::Rebind / Frontend::Rebind — the shard keeps its heap, its
//     MemLog aggregates and its handler-bank state, only resolution changes;
//   * during an epoch the serving layers feed observations back:
//     - per-shard MemLog site aggregates, fed by the Frontend in ascending
//       shard-id order (the same deterministic merge rule as MemLog::Merge),
//       so all lanes learn from each other's errors;
//     - the epoch verdict — §4 acceptability of attack and legit responses
//       (from ServerResponse::acceptable) and WorkerPool restarts (crash /
//       termination / hang-budget signals);
//   * EndEpoch turns the observation into a reward for the arms that ran
//     and epsilon-greedily re-selects each site's policy for the next epoch.
//
// Exploration is *focused*: each epoch at most one site (round robin over
// the tracked sites) deviates from its best-known arm — first covering its
// untried arms in candidate order, then epsilon-greedy — while every other
// site holds its best observed arm. One deviation per epoch keeps credit
// assignment clean (the epoch reward updates exactly the arms whose choice
// was this epoch's experiment) and keeps the run deterministic: the RNG is
// a seeded SplitMix64 consulted in a fixed order, so the same stream + seed
// + worker count always learns the identical assignment — the property
// tests/test_adaptive.cc pins.
//
// Safety rail: once a site's assigned arm has crashed/terminated a shard
// (any epoch with worker restarts while the site held a non-continuing
// policy), the terminate-capable arms (kStandard, kBoundsCheck, kThreshold)
// are permanently disabled for that site — an online learner must not keep
// probing arms that take down workers.

#ifndef SRC_RUNTIME_ADAPTIVE_H_
#define SRC_RUNTIME_ADAPTIVE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/memlog.h"
#include "src/runtime/policy.h"
#include "src/runtime/policy_spec.h"

namespace fob {

// One candidate policy's running statistics at one site.
struct AdaptiveArm {
  AccessPolicy policy = AccessPolicy::kFailureOblivious;
  double total_reward = 0.0;
  uint64_t pulls = 0;
  // Permanently excluded from selection (crash safety rail).
  bool disabled = false;

  double mean_reward() const { return pulls == 0 ? 0.0 : total_reward / static_cast<double>(pulls); }
};

// Everything the controller knows about one error site.
struct AdaptiveSiteState {
  SiteId site = kInvalidSite;
  std::string unit_name;
  std::string function;
  bool is_write = false;
  // The policy assigned for the epoch in flight.
  AccessPolicy current = AccessPolicy::kFailureOblivious;
  // Parallel to Options::candidates.
  std::vector<AdaptiveArm> arms;
  // Errors observed at this site during the current epoch (summed across
  // shards, reset by EndEpoch) and over the whole run.
  uint64_t epoch_errors = 0;
  uint64_t total_errors = 0;
  // An epoch with restarts ran while this site held a non-continuing arm.
  bool crash_tainted = false;

  std::string Label() const;
};

// What one epoch looked like from the serving layer, beyond the per-site
// error aggregates (which arrive separately via ObserveShardLog).
struct EpochVerdict {
  // Every attack-tagged response carried acceptable == true (§4 "the attack
  // was absorbed").
  bool attack_acceptable = true;
  // Every legit-tagged response carried acceptable == true (§4 "subsequent
  // legitimate requests still succeed").
  bool legit_ok = true;
  // Worker replacements during the epoch: crashes, bounds terminations and
  // hang-budget exhaustions all surface here.
  uint64_t restarts = 0;
};

// Every policy, as a vector — the default arm set. Out of line so the
// constexpr array never inlines into vector construction (GCC 12's
// -Warray-bounds/-Wrestrict analyzers walk impossible aliasing paths
// through that combination).
std::vector<AccessPolicy> DefaultAdaptiveCandidates();

class AdaptivePolicyController {
 public:
  struct Options {
    // Every site starts here, and it is the spec fallback for untracked
    // sites. Must be a continuing policy — worker construction runs under
    // the prior (Frontend::Rebind applies overrides post-construction), and
    // epoch 0 observes sites through it.
    AccessPolicy prior = AccessPolicy::kFailureOblivious;
    // The arms. Defaults to every policy; non-continuing ones are explored
    // too (and disabled per site once they cost a shard).
    std::vector<AccessPolicy> candidates = DefaultAdaptiveCandidates();
    // Probability the focus site explores a random enabled arm instead of
    // exploiting, once all its arms have been tried.
    double epsilon = 0.1;
    uint64_t seed = 1;
    // Reward shaping: reward = -error_weight * site_epoch_errors, minus the
    // penalties when the epoch was unacceptable / lost a worker. The
    // penalties dominate any plausible error count, so acceptability is
    // lexically more important than the error rate.
    double error_weight = 1.0;
    double unacceptable_penalty = 1e5;
    double crash_penalty = 1e7;
    // Cap on tracked sites, first-observed order (ascending shard id, then
    // SiteId within a shard — deterministic).
    size_t max_sites = 8;
  };

  AdaptivePolicyController();
  explicit AdaptivePolicyController(const Options& options);

  // The spec for the epoch in flight: prior fallback + one override per
  // tracked site. Hand this to Memory::Rebind / Frontend::Rebind.
  PolicySpec CurrentSpec() const;

  // The learned assignment: each site's best enabled arm among those
  // actually tried (the prior where nothing has been tried yet).
  PolicySpec BestSpec() const;

  // Feeds one shard's cumulative per-site error aggregates (MemLog::sites()).
  // Call once per shard per epoch, in ascending shard-id order — the
  // Frontend's FeedSiteObservations does exactly that. The controller
  // differences against the last observation of the same (shard, site);
  // `incarnation` is the worker-replacement counter for the shard slot
  // (Frontend tracks it), which resets the baselines exactly when the log
  // actually restarted — without it a replacement that re-accumulates past
  // the dead worker's count would be differenced against the ghost.
  void ObserveShardLog(uint32_t shard_id, const MemLog& log, uint64_t incarnation = 0);

  // Closes the epoch: rewards the arms that were this epoch's experiment,
  // applies the crash safety rail, and re-selects every site's policy for
  // the next epoch. Returns the total errors observed at tracked sites this
  // epoch (the convergence-trace number).
  uint64_t EndEpoch(const EpochVerdict& verdict);

  const std::vector<AdaptiveSiteState>& sites() const { return sites_; }
  const Options& options() const { return options_; }
  size_t epochs_completed() const { return epochs_completed_; }
  // Index into sites() of the site deviating in the epoch in flight;
  // SIZE_MAX before any site exists (tracing and tests).
  size_t focus_site() const { return focus_; }

 private:
  size_t ArmIndex(size_t site_index, AccessPolicy policy) const;
  AccessPolicy BestArmOf(const AdaptiveSiteState& site) const;
  uint64_t NextRandom();

  Options options_;
  std::vector<AdaptiveSiteState> sites_;
  std::map<SiteId, size_t> site_index_;
  // (shard id, site) -> last cumulative count seen, for delta extraction.
  std::map<std::pair<uint32_t, SiteId>, uint64_t> last_counts_;
  // shard id -> last worker incarnation observed (see ObserveShardLog).
  std::map<uint32_t, uint64_t> shard_incarnation_;
  // Sites first observed during the epoch in flight: their prior arm was
  // the policy that actually ran, so they are rewarded alongside the focus.
  std::vector<size_t> new_this_epoch_;
  // Index into sites_ of the one site deviating this epoch; SIZE_MAX before
  // any site exists (and on epoch 0, where every site runs the prior).
  size_t focus_ = SIZE_MAX;
  size_t epochs_completed_ = 0;
  uint64_t rng_state_;
};

// True for policies whose continuation can take the worker down (raw access
// crash or deliberate termination) rather than continue.
bool PolicyTerminates(AccessPolicy policy);

}  // namespace fob

#endif  // SRC_RUNTIME_ADAPTIVE_H_
