// Compilation policies evaluated in the paper plus the §5.1 variants.

#ifndef SRC_RUNTIME_POLICY_H_
#define SRC_RUNTIME_POLICY_H_

#include <array>

namespace fob {

enum class AccessPolicy {
  // Plain C compiler: no checks; out-of-bounds accesses physically land,
  // corrupting whatever they hit; unmapped accesses are a SIGSEGV.
  kStandard,
  // CRED safe-C compiler: program terminates with an error message at the
  // first memory error.
  kBoundsCheck,
  // This paper: discard invalid writes, manufacture values for invalid reads
  // (§1.1, §3), continue executing.
  kFailureOblivious,
  // §5.1 variant: boundless memory blocks — out-of-bounds writes are stored
  // in a hash table keyed by (data unit, offset), and the corresponding
  // out-of-bounds reads return the stored values.
  kBoundless,
  // §5.1 variant: redirect out-of-bounds accesses back into the accessed
  // data unit at the offset modulo the unit size.
  kWrap,
};

const char* PolicyName(AccessPolicy policy);

// All policies, handy for parameterized tests and experiment sweeps.
inline constexpr std::array<AccessPolicy, 5> kAllPolicies = {
    AccessPolicy::kStandard,    AccessPolicy::kBoundsCheck, AccessPolicy::kFailureOblivious,
    AccessPolicy::kBoundless,   AccessPolicy::kWrap,
};

// The three configurations the paper's tables compare.
inline constexpr std::array<AccessPolicy, 3> kPaperPolicies = {
    AccessPolicy::kStandard,
    AccessPolicy::kBoundsCheck,
    AccessPolicy::kFailureOblivious,
};

}  // namespace fob

#endif  // SRC_RUNTIME_POLICY_H_
