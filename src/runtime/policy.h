// Compilation policies evaluated in the paper plus the §5.1 variants and the
// search-space continuation policies (Durieux et al.).

#ifndef SRC_RUNTIME_POLICY_H_
#define SRC_RUNTIME_POLICY_H_

#include <array>
#include <cstddef>

namespace fob {

enum class AccessPolicy {
  // Plain C compiler: no checks; out-of-bounds accesses physically land,
  // corrupting whatever they hit; unmapped accesses are a SIGSEGV.
  kStandard,
  // CRED safe-C compiler: program terminates with an error message at the
  // first memory error.
  kBoundsCheck,
  // This paper: discard invalid writes, manufacture values for invalid reads
  // (§1.1, §3), continue executing.
  kFailureOblivious,
  // §5.1 variant: boundless memory blocks — out-of-bounds writes are stored
  // in a hash table keyed by (data unit, offset), and the corresponding
  // out-of-bounds reads return the stored values.
  kBoundless,
  // §5.1 variant: redirect out-of-bounds accesses back into the accessed
  // data unit at the offset modulo the unit size.
  kWrap,
  // Search-space variant: discard invalid writes, manufacture *zero* for
  // every invalid read (no value sequence). The conservative end of the
  // manufactured-value spectrum Durieux et al. enumerate: value-seeking
  // loops that need a nonzero byte never get one.
  kZeroManufacture,
  // Search-space variant: behave failure-obliviously until
  // Memory::Config::error_threshold invalid accesses have been continued,
  // then terminate like Bounds Check. Bounds the damage an error-looping
  // site can do while preserving availability for bounded error bursts.
  kThreshold,
};

const char* PolicyName(AccessPolicy policy);

// Number of AccessPolicy values; sized for dense per-policy arrays.
inline constexpr size_t kPolicyCount = 7;

inline constexpr size_t PolicyIndex(AccessPolicy policy) {
  return static_cast<size_t>(policy);
}

// All policies, handy for parameterized tests and experiment sweeps.
inline constexpr std::array<AccessPolicy, kPolicyCount> kAllPolicies = {
    AccessPolicy::kStandard,        AccessPolicy::kBoundsCheck, AccessPolicy::kFailureOblivious,
    AccessPolicy::kBoundless,       AccessPolicy::kWrap,        AccessPolicy::kZeroManufacture,
    AccessPolicy::kThreshold,
};

// The three configurations the paper's tables compare.
inline constexpr std::array<AccessPolicy, 3> kPaperPolicies = {
    AccessPolicy::kStandard,
    AccessPolicy::kBoundsCheck,
    AccessPolicy::kFailureOblivious,
};

// The default per-site candidate set for the Durieux-style search-space
// sweep (src/harness/sweep.h): every continuation strategy plus per-site
// termination. Standard is excluded — an unchecked site cannot be combined
// with checked sites in one address space without changing what the other
// sites observe.
inline constexpr std::array<AccessPolicy, 5> kSweepCandidates = {
    AccessPolicy::kFailureOblivious, AccessPolicy::kZeroManufacture,
    AccessPolicy::kBoundless,        AccessPolicy::kWrap,
    AccessPolicy::kBoundsCheck,
};

}  // namespace fob

#endif  // SRC_RUNTIME_POLICY_H_
