#include "src/runtime/policy_spec.h"

namespace fob {

const char* AccessKindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
  }
  return "?";
}

namespace {

inline uint64_t Fnv1a(uint64_t hash, std::string_view bytes) {
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

SiteId MakeSiteId(std::string_view unit_name, std::string_view function, AccessKind kind) {
  uint64_t hash = 14695981039346656037ull;
  hash = Fnv1a(hash, unit_name);
  hash ^= 0xff;  // separator outside both strings' alphabets
  hash *= 1099511628211ull;
  hash = Fnv1a(hash, function);
  hash ^= static_cast<uint8_t>(kind) + 1;
  hash *= 1099511628211ull;
  // Reserve kInvalidSite for "no site".
  return hash == kInvalidSite ? 1 : hash;
}

}  // namespace fob
