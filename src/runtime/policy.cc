#include "src/runtime/policy.h"

namespace fob {

const char* PolicyName(AccessPolicy policy) {
  switch (policy) {
    case AccessPolicy::kStandard:
      return "Standard";
    case AccessPolicy::kBoundsCheck:
      return "Bounds Check";
    case AccessPolicy::kFailureOblivious:
      return "Failure Oblivious";
    case AccessPolicy::kBoundless:
      return "Boundless";
    case AccessPolicy::kWrap:
      return "Wrap";
    case AccessPolicy::kZeroManufacture:
      return "Zero Manufacture";
    case AccessPolicy::kThreshold:
      return "Threshold";
  }
  return "?";
}

}  // namespace fob
