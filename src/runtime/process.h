// Simulated processes and process pools.
//
// RunAsProcess runs a computation the way the OS runs a process: a Fault
// thrown anywhere inside is "the process died" and is converted into an exit
// status. WorkerPool models Apache's regenerating pool of child processes
// (§4.3.2): work is dispatched to workers (round robin, or to an explicit
// worker index for sticky/parallel callers), a worker that faults is torn
// down and a replacement is constructed by re-running the factory — which is
// what makes restarts cost real (re-initialization) time in the throughput
// experiment.
//
// Concurrency contract: each worker owns its whole simulated universe (its
// App holds a Memory holding a Shard — src/runtime/shard.h), so
// DispatchBatchOn may run concurrently from one thread per *distinct* index.
// A dispatch touches only its own worker slot; the restart counter is
// atomic; the factory must be safe to invoke concurrently (the standard
// factories build fresh state from captured-by-value configuration).

#ifndef SRC_RUNTIME_PROCESS_H_
#define SRC_RUNTIME_PROCESS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/softmem/fault.h"

namespace fob {

enum class ExitStatus {
  kOk,
  kSegfault,
  kBoundsTerminated,
  kStackSmash,
  kHeapCorruption,
  kBudgetExhausted,
  kOtherFault,
};

const char* ExitStatusName(ExitStatus status);
ExitStatus ExitStatusFromFault(FaultKind kind);

struct RunResult {
  ExitStatus status = ExitStatus::kOk;
  std::string detail;
  bool possible_code_injection = false;

  bool ok() const { return status == ExitStatus::kOk; }
  // Did the "process" die (any fault at all)?
  bool crashed() const { return status != ExitStatus::kOk; }
};

// Runs body, catching Faults. Any other exception propagates (it is a bug in
// the harness, not a simulated crash).
RunResult RunAsProcess(const std::function<void()>& body);

// What happened to one batch handed to WorkerPool::DispatchBatch.
struct BatchOutcome {
  // The prefix [0, completed) ran to completion. When `crashed`, entry
  // `completed` is the one that took the worker down; entries beyond it
  // never ran — the caller decides whether to re-dispatch that remainder
  // (the Frontend re-queues it onto the replacement worker).
  size_t completed = 0;
  bool crashed = false;
  RunResult failure;  // the faulting entry's exit, meaningful when crashed

  bool all_completed(size_t count) const { return !crashed && completed == count; }
};

// A pool of crash-isolated workers.
template <typename App>
class WorkerPool {
 public:
  using Factory = std::function<std::unique_ptr<App>()>;
  // Index-aware construction: receives the worker slot being (re)built, so
  // per-worker identity — a shard id, a seeded RNG — is stable across
  // replacements. A plain Factory wraps into one that ignores the index.
  using IndexedFactory = std::function<std::unique_ptr<App>(size_t)>;

  WorkerPool(size_t worker_count, Factory factory)
      : WorkerPool(worker_count,
                   IndexedFactory([factory = std::move(factory)](size_t) { return factory(); })) {}

  WorkerPool(size_t worker_count, IndexedFactory factory) : factory_(std::move(factory)) {
    workers_.resize(worker_count);
    for (size_t i = 0; i < workers_.size(); ++i) {
      workers_[i] = factory_(i);
    }
  }

  // Runs work(app) on the next worker. If the worker faults, it is replaced
  // (the replacement cost is paid here, synchronously, like a fork+init).
  template <typename Fn>
  RunResult Dispatch(Fn&& work) {
    size_t index = RoundRobin();
    App* app = workers_[index].get();
    RunResult result = RunAsProcess([&] { work(*app); });
    if (result.crashed()) {
      restarts_.fetch_add(1, std::memory_order_relaxed);
      workers_[index] = factory_(index);
    }
    return result;
  }

  // Batched dispatch: runs work(app, i) for i in [0, count) on ONE worker
  // inside a single simulated process entry, amortizing the per-request
  // entry cost (the fork/try/catch boundary) across the batch. A fault at
  // entry i replaces the worker and stops the batch: [0, i) completed,
  // entry i failed, (i, count) never ran. Progress is guaranteed for
  // callers that re-dispatch the remainder — every crash consumes the entry
  // that caused it.
  template <typename Fn>
  BatchOutcome DispatchBatch(size_t count, Fn&& work) {
    return DispatchBatchOn(RoundRobin(), count, std::forward<Fn>(work));
  }

  // DispatchBatch pinned to one worker. This is the truly-parallel entry
  // point: the Frontend runs one DispatchBatchOn per worker index on its own
  // std::thread. Safe concurrently for distinct indices — a crashed worker
  // is replaced in place (on the calling thread, so the restart latency
  // lands on that lane while the other lanes stream on), and the shared
  // restart counter is atomic.
  template <typename Fn>
  BatchOutcome DispatchBatchOn(size_t index, size_t count, Fn&& work) {
    BatchOutcome outcome;
    if (count == 0) {
      return outcome;
    }
    App* app = workers_[index].get();
    size_t i = 0;
    RunResult result = RunAsProcess([&] {
      for (; i < count; ++i) {
        work(*app, i);
      }
    });
    outcome.completed = i;
    if (result.crashed()) {
      restarts_.fetch_add(1, std::memory_order_relaxed);
      workers_[index] = factory_(index);
      outcome.crashed = true;
      outcome.failure = result;
    }
    return outcome;
  }

  uint64_t restarts() const { return restarts_.load(std::memory_order_relaxed); }
  size_t size() const { return workers_.size(); }
  App& worker(size_t index) { return *workers_[index]; }

 private:
  size_t RoundRobin() { return next_.fetch_add(1, std::memory_order_relaxed) % workers_.size(); }

  IndexedFactory factory_;
  std::vector<std::unique_ptr<App>> workers_;
  std::atomic<size_t> next_{0};
  std::atomic<uint64_t> restarts_{0};
};

}  // namespace fob

#endif  // SRC_RUNTIME_PROCESS_H_
