// Simulated hardware/runtime faults.
//
// The failure-oblivious runtime simulates an entire process address space, so
// "crashes" must be simulated too. A Fault models the abrupt termination of a
// process: a segmentation violation from touching unmapped memory, the glibc
// abort on corrupted heap metadata, a smashed stack detected when a function
// returns over an overwritten return address, or the CRED bounds-check
// compiler's terminate-with-error-message behaviour.
//
// Faults are thrown by the substrate and are intended to be caught only by
// fob::RunAsProcess (src/runtime/process.h), which converts them into exit
// statuses, exactly the way the OS converts SIGSEGV into a wait status.

#ifndef SRC_SOFTMEM_FAULT_H_
#define SRC_SOFTMEM_FAULT_H_

#include <cstdint>
#include <exception>
#include <string>

namespace fob {

enum class FaultKind {
  // Access to unmapped simulated memory (Standard-compiler behaviour).
  kSegfault,
  // A dynamic bounds check failed and the policy terminates the program
  // (the Bounds Check / CRED configuration).
  kBoundsViolation,
  // A frame canary (stand-in for the saved return address) was found
  // overwritten when a function returned.
  kStackSmash,
  // Heap block metadata (header/footer magic) found overwritten, detected at
  // free/realloc time like a glibc "heap corruption detected" abort.
  kHeapCorruption,
  // free() of a block that was already freed.
  kDoubleFree,
  // free() of a pointer that is not a live allocation.
  kInvalidFree,
  // The per-Memory access budget was exhausted; used by the experiment
  // harness to detect nontermination (e.g. a loop consuming manufactured
  // values that never produce the value that exits the loop).
  kBudgetExhausted,
  // Simulated stack region exhausted.
  kStackOverflow,
};

// Human-readable fault kind, e.g. "SIGSEGV (segmentation violation)".
const char* FaultKindName(FaultKind kind);

class Fault : public std::exception {
 public:
  Fault(FaultKind kind, std::string detail, bool possible_code_injection = false);

  FaultKind kind() const { return kind_; }
  const std::string& detail() const { return detail_; }
  // True when the corrupting bytes came from program (attacker) data written
  // over a control structure, i.e. the error would have been exploitable for
  // code injection on real hardware.
  bool possible_code_injection() const { return possible_code_injection_; }
  const char* what() const noexcept override { return message_.c_str(); }

  static Fault Segfault(uint64_t addr);
  static Fault BoundsViolation(std::string detail);
  static Fault StackSmash(std::string function, bool possible_code_injection);
  static Fault HeapCorruption(std::string detail);
  static Fault BudgetExhausted(uint64_t budget);

 private:
  FaultKind kind_;
  std::string detail_;
  std::string message_;
  bool possible_code_injection_;
};

}  // namespace fob

#endif  // SRC_SOFTMEM_FAULT_H_
