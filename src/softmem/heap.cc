#include "src/softmem/heap.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/softmem/fault.h"

namespace fob {

namespace {

constexpr size_t kHeaderBytes = 16;
constexpr size_t kFooterBytes = 8;
constexpr size_t kAlign = 16;
constexpr uint64_t kHeaderMagic = 0x48454150424c4b21ull;  // "HEAPBLK!"
constexpr uint64_t kFooterMagic = 0x464f4f5445524d21ull;  // "FOOTERM!"

size_t AlignUp(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

Heap::Heap(AddressSpace& space, ObjectTable& table, Addr base, size_t size)
    : space_(space), table_(table), base_(base), size_(size) {
  assert(base >= kNullGuardSize);
  space_.Map(base_, size_);
  free_ranges_.emplace(base_, size_);
}

void Heap::WriteMetadata(Addr payload, size_t size) {
  uint64_t header[2] = {kHeaderMagic ^ static_cast<uint64_t>(size), static_cast<uint64_t>(size)};
  bool ok = space_.Write(payload - kHeaderBytes, header, sizeof(header));
  uint64_t footer = kFooterMagic ^ static_cast<uint64_t>(size);
  ok = space_.Write(payload + size, &footer, sizeof(footer)) && ok;
  assert(ok);
  (void)ok;
}

bool Heap::MetadataIntact(Addr payload, size_t size) const {
  uint64_t header[2] = {0, 0};
  if (!space_.Read(payload - kHeaderBytes, header, sizeof(header))) {
    return false;
  }
  if (header[0] != (kHeaderMagic ^ static_cast<uint64_t>(size)) ||
      header[1] != static_cast<uint64_t>(size)) {
    return false;
  }
  uint64_t footer = 0;
  if (!space_.Read(payload + size, &footer, sizeof(footer))) {
    return false;
  }
  return footer == (kFooterMagic ^ static_cast<uint64_t>(size));
}

Addr Heap::AllocateRange(size_t bytes) {
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->second >= bytes) {
      Addr range_base = it->first;
      size_t range_size = it->second;
      free_ranges_.erase(it);
      if (range_size > bytes) {
        free_ranges_.emplace(range_base + bytes, range_size - bytes);
      }
      return range_base;
    }
  }
  return 0;
}

void Heap::ReleaseRange(Addr range_base, size_t bytes) {
  auto next = free_ranges_.lower_bound(range_base);
  // Coalesce with the following range.
  if (next != free_ranges_.end() && range_base + bytes == next->first) {
    bytes += next->second;
    next = free_ranges_.erase(next);
  }
  // Coalesce with the preceding range.
  if (next != free_ranges_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == range_base) {
      prev->second += bytes;
      return;
    }
  }
  free_ranges_.emplace(range_base, bytes);
}

Addr Heap::Malloc(size_t size, std::string name) {
  if (size == 0) {
    size = 1;
  }
  size_t reserved = AlignUp(kHeaderBytes + size + kFooterBytes);
  Addr range = AllocateRange(reserved);
  if (range == 0) {
    return 0;
  }
  Addr payload = range + kHeaderBytes;
  // Fresh blocks start zeroed: the region may hold stale bytes from earlier
  // allocations, which is realistic for malloc but makes tests flaky; the
  // paper's buffers are all written before being read in the legal paths, so
  // zeroing does not change any experiment. Uninitialized-read bugs (Midnight
  // Commander) come from *reusing* a block without resetting it, which this
  // does not mask.
  bool ok = space_.Fill(payload, 0, size);
  assert(ok);
  (void)ok;
  WriteMetadata(payload, size);
  BlockInfo info;
  info.size = size;
  info.reserved = reserved;
  info.unit = table_.Register(payload, size, UnitKind::kHeap, std::move(name));
  live_.emplace(payload, info);
  ++malloc_count_;
  bytes_in_use_ += size;
  return payload;
}

void Heap::Free(Addr payload) {
  auto it = live_.find(payload);
  if (it == live_.end()) {
    // Distinguish a stale (double) free from a wild free for the fault log.
    const DataUnit* unit = table_.LookupByAddress(payload);
    std::ostringstream os;
    os << "free(0x" << std::hex << payload << ")";
    if (unit == nullptr) {
      throw Fault(FaultKind::kDoubleFree, os.str());
    }
    throw Fault(FaultKind::kInvalidFree, os.str());
  }
  const BlockInfo info = it->second;
  if (!MetadataIntact(payload, info.size)) {
    std::ostringstream os;
    os << "block 0x" << std::hex << payload << " (" << std::dec << info.size
       << " bytes) has overwritten metadata";
    throw Fault::HeapCorruption(os.str());
  }
  table_.Retire(info.unit);
  live_.erase(it);
  ReleaseRange(payload - kHeaderBytes, info.reserved);
  ++free_count_;
  bytes_in_use_ -= info.size;
}

Addr Heap::Realloc(Addr payload, size_t new_size) {
  if (payload == 0) {
    return Malloc(new_size, "realloc");
  }
  auto it = live_.find(payload);
  if (it == live_.end()) {
    std::ostringstream os;
    os << "realloc(0x" << std::hex << payload << ")";
    throw Fault(FaultKind::kInvalidFree, os.str());
  }
  const BlockInfo info = it->second;
  if (!MetadataIntact(payload, info.size)) {
    std::ostringstream os;
    os << "block 0x" << std::hex << payload << " (" << std::dec << info.size
       << " bytes) has overwritten metadata";
    throw Fault::HeapCorruption(os.str());
  }
  const DataUnit* unit = table_.Lookup(info.unit);
  std::string name = unit != nullptr ? unit->name : "realloc";
  Addr fresh = Malloc(new_size, name);
  if (fresh == 0) {
    return 0;
  }
  size_t to_copy = std::min(info.size, new_size);
  if (to_copy > 0) {
    std::string buf(to_copy, '\0');
    bool ok = space_.Read(payload, buf.data(), to_copy);
    ok = space_.Write(fresh, buf.data(), to_copy) && ok;
    assert(ok);
    (void)ok;
  }
  Free(payload);
  return fresh;
}

bool Heap::BlockIntact(Addr payload) const {
  auto it = live_.find(payload);
  if (it == live_.end()) {
    return false;
  }
  return MetadataIntact(payload, it->second.size);
}

size_t Heap::BlockSize(Addr payload) const {
  auto it = live_.find(payload);
  return it == live_.end() ? 0 : it->second.size;
}

UnitId Heap::BlockUnit(Addr payload) const {
  auto it = live_.find(payload);
  return it == live_.end() ? kInvalidUnit : it->second.unit;
}

}  // namespace fob
