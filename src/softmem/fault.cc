#include "src/softmem/fault.h"

#include <sstream>

namespace fob {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSegfault:
      return "SIGSEGV (segmentation violation)";
    case FaultKind::kBoundsViolation:
      return "bounds violation (checker terminated program)";
    case FaultKind::kStackSmash:
      return "stack smashing detected";
    case FaultKind::kHeapCorruption:
      return "heap corruption detected";
    case FaultKind::kDoubleFree:
      return "double free detected";
    case FaultKind::kInvalidFree:
      return "invalid free detected";
    case FaultKind::kBudgetExhausted:
      return "access budget exhausted (possible nontermination)";
    case FaultKind::kStackOverflow:
      return "stack overflow";
  }
  return "unknown fault";
}

Fault::Fault(FaultKind kind, std::string detail, bool possible_code_injection)
    : kind_(kind), detail_(std::move(detail)), possible_code_injection_(possible_code_injection) {
  message_ = std::string(FaultKindName(kind_));
  if (!detail_.empty()) {
    message_ += ": " + detail_;
  }
}

Fault Fault::Segfault(uint64_t addr) {
  std::ostringstream os;
  os << "access to unmapped address 0x" << std::hex << addr;
  return Fault(FaultKind::kSegfault, os.str());
}

Fault Fault::BoundsViolation(std::string detail) {
  return Fault(FaultKind::kBoundsViolation, std::move(detail));
}

Fault Fault::StackSmash(std::string function, bool possible_code_injection) {
  return Fault(FaultKind::kStackSmash, "in function " + function, possible_code_injection);
}

Fault Fault::HeapCorruption(std::string detail) {
  return Fault(FaultKind::kHeapCorruption, std::move(detail));
}

Fault Fault::BudgetExhausted(uint64_t budget) {
  return Fault(FaultKind::kBudgetExhausted, "after " + std::to_string(budget) + " accesses");
}

}  // namespace fob
