// CRED-style out-of-bounds pointer bookkeeping.
//
// Ruwase & Lam's CRED extends Jones-Kelly by letting pointer *values* travel
// out of bounds: arithmetic that leaves an object produces an "OOB object"
// remembering the intended referent, and only dereferences are checked. Our
// fob::Ptr carries its referent unit id permanently, which subsumes the OOB
// object mechanism; this registry keeps the statistics and classification
// the OOB objects would have provided, which the error log and the §4.1
// discussion (out-of-bounds pointers used in inequality comparisons) rely on.

#ifndef SRC_SOFTMEM_OOB_REGISTRY_H_
#define SRC_SOFTMEM_OOB_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/softmem/address_space.h"
#include "src/softmem/object_table.h"

namespace fob {

// How a pointer relates to its intended referent at dereference time.
enum class PointerStatus {
  kInBounds,
  kNull,      // null or points into the null guard
  kOobBelow,  // before the referent's base
  kOobAbove,  // at or past the referent's end
  kDangling,  // referent retired (freed block / popped frame)
  kWild,      // referent id never issued (fabricated pointer)
};

const char* PointerStatusName(PointerStatus status);

class OobRegistry {
 public:
  // Classifies an n-byte access at addr against its intended referent.
  static PointerStatus Classify(const ObjectTable& table, UnitId unit, Addr addr, size_t n);

  // Records one out-of-bounds dereference attempt (for statistics).
  void Note(PointerStatus status);

  uint64_t total() const { return total_; }
  uint64_t count(PointerStatus status) const;

 private:
  uint64_t total_ = 0;
  std::map<PointerStatus, uint64_t> counts_;
};

}  // namespace fob

#endif  // SRC_SOFTMEM_OOB_REGISTRY_H_
