// Simulated call stack with per-frame canaries.
//
// The stack grows downward. Pushing a frame stores an 8-byte canary at the
// top of the frame — the stand-in for the function's saved return address.
// Locals are allocated below it, so a buffer overrun that writes upward
// through increasing addresses crosses other locals, then the canary, then
// the caller's frame, exactly like a classic stack-smashing attack. The
// corruption is detected when the function returns (PopFrame), at which point
// the simulated process takes a Fault: either a plain crash, or — if the
// attacker's bytes landed on the canary — a fault flagged as a possible
// code-injection opportunity.
//
// Frames must be managed through Memory::Frame (RAII) so that C++ unwinding
// from other Faults pops frames without re-checking canaries (a process that
// is already crashing does not "return" through its frames).

#ifndef SRC_SOFTMEM_STACK_H_
#define SRC_SOFTMEM_STACK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/softmem/address_space.h"
#include "src/softmem/object_table.h"

namespace fob {

class Stack {
 public:
  // Mapped (but unallocatable) bytes above the stack top, standing in for
  // the caller frames/argv/environ a real process has there.
  static constexpr size_t kTopPad = 4 * kPageSize;

  // Carves the stack out of [low, low+size+kTopPad); the stack pointer
  // starts at low+size and grows toward low.
  Stack(AddressSpace& space, ObjectTable& table, Addr low, size_t size);
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  // Enters function `name`: pushes the canary and opens a frame.
  void PushFrame(std::string name);

  // Allocates a local buffer in the current frame (8-byte aligned, grows the
  // frame downward). Registers a stack data unit named "function::name".
  // Local memory is NOT cleared: it retains whatever bytes earlier frames
  // left there, faithfully reproducing uninitialized-local bugs. Throws
  // Fault{kStackOverflow} when the region is exhausted.
  Addr AllocLocal(size_t size, std::string name);

  // Returns from the current function. Verifies the canary and throws
  // Fault{kStackSmash} if it was overwritten; retires the frame's locals.
  void PopFrame();

  // Pops without the canary check; used when unwinding a crashing process.
  void PopFrameUnchecked();

  size_t depth() const { return frames_.size(); }
  // The innermost frame's function, or "<no frame>". A view into the frame
  // record (or into a constant), not a copy: valid until the frame pops.
  std::string_view current_function() const;
  Addr stack_pointer() const { return sp_; }
  uint64_t canary_checks() const { return canary_checks_; }

 private:
  struct FrameRecord {
    std::string name;
    Addr canary_addr = 0;
    uint64_t canary_value = 0;
    Addr sp_at_entry = 0;
    std::vector<UnitId> locals;
  };

  void RetireLocals(FrameRecord& frame);

  AddressSpace& space_;
  ObjectTable& table_;
  Addr low_;
  Addr sp_;
  std::vector<FrameRecord> frames_;
  uint64_t canary_seed_ = 0x52455441444452aaull;  // varied per frame
  uint64_t canary_checks_ = 0;
};

}  // namespace fob

#endif  // SRC_SOFTMEM_STACK_H_
