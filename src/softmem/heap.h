// Simulated heap allocator with metadata that can really be corrupted.
//
// Blocks carry a header and footer *inside simulated memory*:
//
//   [ header: magic^size (8) | size (8) ] [ payload ... ] [ footer: magic^size (8) ]
//
// Under the Standard (unchecked) policy an out-of-bounds write physically
// stomps the next block's header or this block's footer. Like glibc, the
// allocator notices at free()/realloc() time and aborts the process — that is
// how the paper's Standard versions of Pine and Mutt "corrupt the heap and
// terminate with a segmentation violation". Under checked policies the
// corrupting writes never land, so these checks always pass.
//
// The free list itself is native shadow state (a std::map), which
// approximates an allocator whose list heads live outside the corruptible
// region; header/footer magic is the corruption detector.

#ifndef SRC_SOFTMEM_HEAP_H_
#define SRC_SOFTMEM_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "src/softmem/address_space.h"
#include "src/softmem/object_table.h"

namespace fob {

class Heap {
 public:
  // Carves the heap out of [base, base+size) of `space`, mapping it eagerly.
  Heap(AddressSpace& space, ObjectTable& table, Addr base, size_t size);
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Allocates `size` bytes (size 0 behaves as size 1). Returns the payload
  // address and registers a live heap data unit, or 0 on out-of-memory.
  Addr Malloc(size_t size, std::string name);

  // Frees the block whose payload starts at `payload`. Throws Fault with
  // kHeapCorruption if the block's metadata was overwritten, kDoubleFree for
  // a block already freed, kInvalidFree for an address that was never a
  // payload base.
  void Free(Addr payload);

  // Classic realloc: contents preserved up to min(old,new) sizes. Returns
  // the new payload address, or 0 on out-of-memory (original intact). Same
  // corruption checks as Free.
  Addr Realloc(Addr payload, size_t new_size);

  // True iff payload is a live block whose header and footer are intact.
  bool BlockIntact(Addr payload) const;

  // Size of the live block at payload, or 0 if not a live block.
  size_t BlockSize(Addr payload) const;
  UnitId BlockUnit(Addr payload) const;

  uint64_t malloc_count() const { return malloc_count_; }
  uint64_t free_count() const { return free_count_; }
  size_t live_blocks() const { return live_.size(); }
  size_t bytes_in_use() const { return bytes_in_use_; }

 private:
  struct BlockInfo {
    size_t size = 0;        // payload size
    size_t reserved = 0;    // total carved bytes incl. header/footer/padding
    UnitId unit = kInvalidUnit;
  };

  // Header/footer helpers. All may touch only mapped heap memory.
  void WriteMetadata(Addr payload, size_t size);
  bool MetadataIntact(Addr payload, size_t size) const;

  Addr AllocateRange(size_t bytes);      // from free list, first fit
  void ReleaseRange(Addr base, size_t bytes);  // back to free list, coalescing

  AddressSpace& space_;
  ObjectTable& table_;
  Addr base_;
  size_t size_;
  std::map<Addr, BlockInfo> live_;     // by payload address
  std::map<Addr, size_t> free_ranges_; // by range base
  uint64_t malloc_count_ = 0;
  uint64_t free_count_ = 0;
  size_t bytes_in_use_ = 0;
};

}  // namespace fob

#endif  // SRC_SOFTMEM_HEAP_H_
