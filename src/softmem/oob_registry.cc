#include "src/softmem/oob_registry.h"

namespace fob {

const char* PointerStatusName(PointerStatus status) {
  switch (status) {
    case PointerStatus::kInBounds:
      return "in-bounds";
    case PointerStatus::kNull:
      return "null";
    case PointerStatus::kOobBelow:
      return "out-of-bounds (below)";
    case PointerStatus::kOobAbove:
      return "out-of-bounds (above)";
    case PointerStatus::kDangling:
      return "dangling";
    case PointerStatus::kWild:
      return "wild";
  }
  return "?";
}

PointerStatus OobRegistry::Classify(const ObjectTable& table, UnitId unit, Addr addr, size_t n) {
  if (addr < kNullGuardSize) {
    return PointerStatus::kNull;
  }
  const DataUnit* u = table.Lookup(unit);
  if (u == nullptr) {
    return PointerStatus::kWild;
  }
  if (!u->live) {
    return PointerStatus::kDangling;
  }
  if (u->Contains(addr, n == 0 ? 1 : n)) {
    return PointerStatus::kInBounds;
  }
  return addr < u->base ? PointerStatus::kOobBelow : PointerStatus::kOobAbove;
}

void OobRegistry::Note(PointerStatus status) {
  ++total_;
  ++counts_[status];
}

uint64_t OobRegistry::count(PointerStatus status) const {
  auto it = counts_.find(status);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace fob
