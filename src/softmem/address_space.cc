#include "src/softmem/address_space.h"

#include <algorithm>
#include <cstring>

namespace fob {

namespace {
Addr PageBase(Addr addr) { return addr & ~static_cast<Addr>(kPageSize - 1); }
}  // namespace

void AddressSpace::Map(Addr base, size_t size) {
  if (size == 0) {
    return;
  }
  Addr first = PageBase(base);
  Addr last = PageBase(base + size - 1);
  for (Addr page = first;; page += kPageSize) {
    if (page >= kNullGuardSize && pages_.find(page) == pages_.end()) {
      auto data = std::make_unique<uint8_t[]>(kPageSize);
      std::memset(data.get(), 0, kPageSize);
      pages_.emplace(page, std::move(data));
    }
    if (page == last) {
      break;
    }
  }
}

void AddressSpace::Unmap(Addr base, size_t size) {
  if (size == 0) {
    return;
  }
  Addr first = PageBase(base);
  Addr last = PageBase(base + size - 1);
  for (Addr page = first;; page += kPageSize) {
    // Only unmap pages fully inside the range.
    if (page >= base && page + kPageSize <= base + size) {
      // Drop the TLB entry with the page it points into: a later Map of the
      // same page allocates fresh storage, and serving reads or writes
      // through the stale cached pointer would touch freed memory.
      if (page == cached_page_) {
        cached_page_ = ~static_cast<Addr>(0);
        cached_data_ = nullptr;
      }
      pages_.erase(page);
    }
    if (page == last) {
      break;
    }
  }
}

bool AddressSpace::IsMapped(Addr addr, size_t size) const {
  if (size == 0) {
    size = 1;
  }
  Addr first = PageBase(addr);
  Addr last = PageBase(addr + size - 1);
  for (Addr page = first;; page += kPageSize) {
    if (pages_.find(page) == pages_.end()) {
      return false;
    }
    if (page == last) {
      break;
    }
  }
  return true;
}

uint8_t* AddressSpace::PageData(Addr page_base) {
  if (page_base == cached_page_) {
    return cached_data_;
  }
  auto it = pages_.find(page_base);
  if (it == pages_.end()) {
    return nullptr;
  }
  cached_page_ = page_base;
  cached_data_ = it->second.get();
  return it->second.get();
}

const uint8_t* AddressSpace::PageData(Addr page_base) const {
  if (page_base == cached_page_) {
    return cached_data_;
  }
  auto it = pages_.find(page_base);
  if (it == pages_.end()) {
    return nullptr;
  }
  cached_page_ = page_base;
  cached_data_ = it->second.get();
  return it->second.get();
}

bool AddressSpace::Read(Addr addr, void* dst, size_t n) const {
  uint8_t* out = static_cast<uint8_t*>(dst);
  while (n > 0) {
    Addr page = PageBase(addr);
    const uint8_t* data = PageData(page);
    if (data == nullptr) {
      return false;
    }
    size_t offset = static_cast<size_t>(addr - page);
    size_t chunk = std::min(n, kPageSize - offset);
    std::memcpy(out, data + offset, chunk);
    out += chunk;
    addr += chunk;
    n -= chunk;
  }
  return true;
}

bool AddressSpace::Write(Addr addr, const void* src, size_t n) {
  const uint8_t* in = static_cast<const uint8_t*>(src);
  while (n > 0) {
    Addr page = PageBase(addr);
    uint8_t* data = PageData(page);
    if (data == nullptr) {
      return false;
    }
    size_t offset = static_cast<size_t>(addr - page);
    size_t chunk = std::min(n, kPageSize - offset);
    std::memcpy(data + offset, in, chunk);
    in += chunk;
    addr += chunk;
    n -= chunk;
  }
  return true;
}

bool AddressSpace::Fill(Addr addr, uint8_t value, size_t n) {
  while (n > 0) {
    Addr page = PageBase(addr);
    uint8_t* data = PageData(page);
    if (data == nullptr) {
      return false;
    }
    size_t offset = static_cast<size_t>(addr - page);
    size_t chunk = std::min(n, kPageSize - offset);
    std::memset(data + offset, value, chunk);
    addr += chunk;
    n -= chunk;
  }
  return true;
}

}  // namespace fob
