#include "src/softmem/address_space.h"

#include <algorithm>
#include <cstring>

#include "src/softmem/page_map.h"

namespace fob {

void AddressSpace::AttachPageMap(PageMap* map) {
  page_map_ = map;
  if (page_map_ != nullptr) {
    for (const auto& [page, data] : pages_) {
      page_map_->OnPageMapped(page, data.get());
    }
  }
}

void AddressSpace::Map(Addr base, size_t size) {
  if (size == 0) {
    return;
  }
  Addr first = PageBaseOf(base);
  Addr last = PageBaseOf(base + size - 1);
  for (Addr page = first;; page += kPageSize) {
    if (page >= kNullGuardSize && pages_.find(page) == pages_.end()) {
      auto data = std::make_unique<uint8_t[]>(kPageSize);
      std::memset(data.get(), 0, kPageSize);
      if (page_map_ != nullptr) {
        page_map_->OnPageMapped(page, data.get());
      }
      pages_.emplace(page, std::move(data));
    }
    if (page == last) {
      break;
    }
  }
}

void AddressSpace::Unmap(Addr base, size_t size) {
  if (size == 0) {
    return;
  }
  Addr first = PageBaseOf(base);
  Addr last = PageBaseOf(base + size - 1);
  for (Addr page = first;; page += kPageSize) {
    // Only unmap pages fully inside the range.
    if (page >= base && page + kPageSize <= base + size) {
      // Drop the TLB slot with the page it points into: a later Map of the
      // same page allocates fresh storage, and serving reads or writes
      // through the stale cached pointer would touch freed memory. Same for
      // the attached page map's data pointer.
      TranslationSlot& slot = tlb_[SlotIndex(page)];
      if (slot.page == page) {
        slot = TranslationSlot{};
      }
      if (page_map_ != nullptr) {
        page_map_->OnPageUnmapped(page);
      }
      pages_.erase(page);
    }
    if (page == last) {
      break;
    }
  }
}

bool AddressSpace::IsMapped(Addr addr, size_t size) const {
  if (size == 0) {
    size = 1;
  }
  Addr first = PageBaseOf(addr);
  Addr last = PageBaseOf(addr + size - 1);
  for (Addr page = first;; page += kPageSize) {
    if (pages_.find(page) == pages_.end()) {
      return false;
    }
    if (page == last) {
      break;
    }
  }
  return true;
}

uint8_t* AddressSpace::PageData(Addr page_base) {
  TranslationSlot& slot = tlb_[SlotIndex(page_base)];
  if (slot.page == page_base) {
    return slot.data;
  }
  auto it = pages_.find(page_base);
  if (it == pages_.end()) {
    return nullptr;
  }
  slot.page = page_base;
  slot.data = it->second.get();
  return it->second.get();
}

const uint8_t* AddressSpace::PageData(Addr page_base) const {
  TranslationSlot& slot = tlb_[SlotIndex(page_base)];
  if (slot.page == page_base) {
    return slot.data;
  }
  auto it = pages_.find(page_base);
  if (it == pages_.end()) {
    return nullptr;
  }
  slot.page = page_base;
  slot.data = it->second.get();
  return it->second.get();
}

bool AddressSpace::Read(Addr addr, void* dst, size_t n) const {
  uint8_t* out = static_cast<uint8_t*>(dst);
  while (n > 0) {
    Addr page = PageBaseOf(addr);
    const uint8_t* data = PageData(page);
    if (data == nullptr) {
      return false;
    }
    size_t offset = static_cast<size_t>(addr - page);
    size_t chunk = std::min(n, kPageSize - offset);
    std::memcpy(out, data + offset, chunk);
    out += chunk;
    addr += chunk;
    n -= chunk;
  }
  return true;
}

bool AddressSpace::Write(Addr addr, const void* src, size_t n) {
  const uint8_t* in = static_cast<const uint8_t*>(src);
  while (n > 0) {
    Addr page = PageBaseOf(addr);
    uint8_t* data = PageData(page);
    if (data == nullptr) {
      return false;
    }
    size_t offset = static_cast<size_t>(addr - page);
    size_t chunk = std::min(n, kPageSize - offset);
    std::memcpy(data + offset, in, chunk);
    in += chunk;
    addr += chunk;
    n -= chunk;
  }
  return true;
}

bool AddressSpace::Fill(Addr addr, uint8_t value, size_t n) {
  while (n > 0) {
    Addr page = PageBaseOf(addr);
    uint8_t* data = PageData(page);
    if (data == nullptr) {
      return false;
    }
    size_t offset = static_cast<size_t>(addr - page);
    size_t chunk = std::min(n, kPageSize - offset);
    std::memset(data + offset, value, chunk);
    addr += chunk;
    n -= chunk;
  }
  return true;
}

}  // namespace fob
