#include "src/softmem/object_table.h"

#include <cassert>

namespace fob {

const char* UnitKindName(UnitKind kind) {
  switch (kind) {
    case UnitKind::kHeap:
      return "heap";
    case UnitKind::kStack:
      return "stack";
    case UnitKind::kGlobal:
      return "global";
  }
  return "?";
}

UnitId ObjectTable::Register(Addr base, size_t size, UnitKind kind, std::string name) {
  DataUnit unit;
  unit.id = static_cast<UnitId>(units_.size() + 1);
  unit.base = base;
  unit.size = size;
  unit.kind = kind;
  unit.live = true;
  unit.name = std::move(name);
  units_.push_back(unit);
  by_base_.emplace(base, unit.id);
  return unit.id;
}

void ObjectTable::Retire(UnitId id) {
  if (id == kInvalidUnit || id > units_.size()) {
    return;
  }
  DataUnit& unit = units_[id - 1];
  if (!unit.live) {
    return;
  }
  unit.live = false;
  ++retire_epoch_;
  auto it = by_base_.find(unit.base);
  // Several dead units may have shared a base over time, but only one live
  // unit can; make sure we erase exactly the one being retired.
  if (it != by_base_.end() && it->second == id) {
    by_base_.erase(it);
  }
}

const DataUnit* ObjectTable::Lookup(UnitId id) const {
  if (id == kInvalidUnit || id > units_.size()) {
    return nullptr;
  }
  return &units_[id - 1];
}

const DataUnit* ObjectTable::LookupByAddress(Addr addr) const {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) {
    return nullptr;
  }
  --it;
  const DataUnit& unit = units_[it->second - 1];
  if (unit.size == 0) {
    return addr == unit.base ? &unit : nullptr;
  }
  if (addr >= unit.base && addr - unit.base < unit.size) {
    return &unit;
  }
  return nullptr;
}

}  // namespace fob
