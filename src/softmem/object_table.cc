#include "src/softmem/object_table.h"

#include <algorithm>
#include <cassert>

#include "src/softmem/page_map.h"

namespace fob {

const char* UnitKindName(UnitKind kind) {
  switch (kind) {
    case UnitKind::kHeap:
      return "heap";
    case UnitKind::kStack:
      return "stack";
    case UnitKind::kGlobal:
      return "global";
  }
  return "?";
}

size_t ObjectTable::LowerBound(Addr addr) const {
  auto it = std::lower_bound(
      by_base_.begin(), by_base_.end(), addr,
      [](const Interval& entry, Addr value) { return entry.base < value; });
  return static_cast<size_t>(it - by_base_.begin());
}

UnitId ObjectTable::Register(Addr base, size_t size, UnitKind kind, std::string name) {
  DataUnit unit;
  unit.id = static_cast<UnitId>(units_.size() + 1);
  unit.base = base;
  unit.size = size;
  unit.kind = kind;
  unit.live = true;
  unit.name = std::move(name);
  units_.push_back(unit);
  // Keep the interval vector sorted. Allocators mostly hand out ascending
  // addresses (heap bump/free-list reuse, globals) so the common insert is
  // an O(1) append; the stack, growing downward, and address reuse pay the
  // memmove.
  size_t pos = LowerBound(base);
  by_base_.insert(by_base_.begin() + static_cast<std::ptrdiff_t>(pos),
                  Interval{base, unit.id});
  if (page_map_ != nullptr) {
    page_map_->OnUnitRegistered(units_.back());
  }
  return unit.id;
}

void ObjectTable::Retire(UnitId id) {
  if (id == kInvalidUnit || id > units_.size()) {
    return;
  }
  DataUnit& unit = units_[id - 1];
  if (!unit.live) {
    return;
  }
  unit.live = false;
  ++retire_epoch_;
  // Only live units are indexed, so the base locates exactly this unit's
  // slot (several dead units may have shared the base over time, but only
  // one live unit can).
  size_t pos = LowerBound(unit.base);
  if (pos < by_base_.size() && by_base_[pos].base == unit.base && by_base_[pos].id == id) {
    by_base_.erase(by_base_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  // Notified after the index drop, so owner refreshes only see survivors.
  if (page_map_ != nullptr) {
    page_map_->OnUnitRetired(unit, *this);
  }
}

void ObjectTable::AttachPageMap(PageMap* map) {
  page_map_ = map;
  if (page_map_ != nullptr) {
    for (const Interval& interval : by_base_) {
      page_map_->OnUnitRegistered(units_[interval.id - 1]);
    }
  }
}

const DataUnit* ObjectTable::FirstLiveOverlap(Addr lo, Addr hi) const {
  size_t pos = LowerBound(lo);
  if (pos > 0) {
    const DataUnit& prev = units_[by_base_[pos - 1].id - 1];
    size_t span = prev.size == 0 ? 1 : prev.size;
    if (prev.base + span > lo) {
      return &prev;
    }
  }
  if (pos < by_base_.size() && by_base_[pos].base < hi) {
    return &units_[by_base_[pos].id - 1];
  }
  return nullptr;
}

const DataUnit* ObjectTable::Lookup(UnitId id) const {
  if (id == kInvalidUnit || id > units_.size()) {
    return nullptr;
  }
  return &units_[id - 1];
}

const DataUnit* ObjectTable::LookupByAddress(Addr addr) const {
  // Last entry with base <= addr.
  size_t pos = LowerBound(addr);
  if (pos < by_base_.size() && by_base_[pos].base == addr) {
    return &units_[by_base_[pos].id - 1];
  }
  if (pos == 0) {
    return nullptr;
  }
  const DataUnit& unit = units_[by_base_[pos - 1].id - 1];
  if (unit.size == 0) {
    return addr == unit.base ? &unit : nullptr;
  }
  if (addr >= unit.base && addr - unit.base < unit.size) {
    return &unit;
  }
  return nullptr;
}

}  // namespace fob
