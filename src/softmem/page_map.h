// Page-granular unit map: the O(1) translation layer for checked accesses.
//
// The Jones-Kelly checker's per-access cost is the object-table interval
// search. For the overwhelmingly common case — a valid access through a
// pointer whose referent is the only live unit on its page — that search is
// pure overhead: the page alone identifies the unit. The PageMap keeps one
// small record per simulated page holding the page's backing storage (the
// raw data-pointer half, fed by AddressSpace::Map/Unmap) and the page's
// *sole live owner* when exactly one live data unit overlaps the page (the
// unit half, fed by ObjectTable::Register/Retire). A checked access then
// resolves with shift+lookup: page hit whose owner is the pointer's intended
// referent, access inside the referent's extent → done, no interval search.
// A mixed page (two or more live units), a page miss, or an out-of-extent
// range falls into ObjectTable::LookupByAddress exactly as before —
// byte-identically, since the fast path only accepts accesses the full
// checking code would have classified kInBounds.
//
// Coherence: the map is written only from the two places the address→unit
// relation changes — ObjectTable::Register/Retire and AddressSpace::
// Map/Unmap — both of which notify their attached PageMap (fob::Shard
// attaches one map to its space and table at construction, so the map can
// never skew from the bundle it serves). When a retire drops a page's live
// overlap count back to one, the owner is refreshed from the table (an
// O(log n) search per page, paid on retire rather than per access), so a
// page that was mixed can become sole-owned again.
//
// Ownership is tracked for every live unit; pages whose units are smaller
// than a page (packed heap blocks, stack locals) are simply mixed and keep
// today's slow-path cost. That matches the workloads this layer is for:
// large buffers, arenas and tables — Apache's request buffers, MC's hash
// probing — whose pages are sole-owned and whose accesses dominate.

#ifndef SRC_SOFTMEM_PAGE_MAP_H_
#define SRC_SOFTMEM_PAGE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "src/softmem/address_space.h"
#include "src/softmem/object_table.h"

namespace fob {

class PageMap {
 public:
  // One page's translation record. `data` is the page's backing storage
  // (nullptr while the page is unmapped); `owner` is the sole live unit
  // overlapping the page, or kInvalidUnit when the page has no live unit or
  // is mixed (overlaps != 1). The invariant owner != kInvalidUnit ⇒
  // overlaps == 1 is what the fast path relies on.
  struct Entry {
    uint8_t* data = nullptr;
    UnitId owner = kInvalidUnit;
    uint32_t overlaps = 0;
  };

  PageMap() = default;
  PageMap(const PageMap&) = delete;
  PageMap& operator=(const PageMap&) = delete;

  // ---- AddressSpace notifications (the data-pointer half) -----------------
  void OnPageMapped(Addr page_base, uint8_t* data);
  void OnPageUnmapped(Addr page_base);

  // ---- ObjectTable notifications (the unit half) --------------------------
  void OnUnitRegistered(const DataUnit& unit);
  // Called after the unit left the address index, so `table` only sees the
  // survivors — what a page's refreshed owner is computed from.
  void OnUnitRetired(const DataUnit& unit, const ObjectTable& table);

  // The record for addr's page, or nullptr. The fast-path entry point.
  const Entry* Find(Addr addr) const {
    auto it = entries_.find(PageBaseOf(addr));
    return it == entries_.end() ? nullptr : &it->second;
  }

  // ---- Introspection (tests, accounting) ----------------------------------
  UnitId OwnerOf(Addr addr) const;
  uint32_t OverlapCount(Addr addr) const;
  bool HasData(Addr addr) const;
  size_t entry_count() const { return entries_.size(); }

 private:
  // Visits each page base overlapped by the unit (zero-size units span one
  // byte for overlap purposes, matching OobRegistry::Classify's n==0 → 1).
  template <typename Fn>
  void ForEachPageOf(const DataUnit& unit, Fn&& fn);

  std::unordered_map<Addr, Entry> entries_;
};

}  // namespace fob

#endif  // SRC_SOFTMEM_PAGE_MAP_H_
