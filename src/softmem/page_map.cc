#include "src/softmem/page_map.h"

namespace fob {

template <typename Fn>
void PageMap::ForEachPageOf(const DataUnit& unit, Fn&& fn) {
  size_t span = unit.size == 0 ? 1 : unit.size;
  Addr first = PageBaseOf(unit.base);
  Addr last = PageBaseOf(unit.base + span - 1);
  for (Addr page = first;; page += kPageSize) {
    fn(page);
    if (page == last) {
      break;
    }
  }
}

void PageMap::OnPageMapped(Addr page_base, uint8_t* data) {
  entries_[page_base].data = data;
}

void PageMap::OnPageUnmapped(Addr page_base) {
  auto it = entries_.find(page_base);
  if (it == entries_.end()) {
    return;
  }
  it->second.data = nullptr;
  if (it->second.overlaps == 0) {
    entries_.erase(it);
  }
}

void PageMap::OnUnitRegistered(const DataUnit& unit) {
  ForEachPageOf(unit, [&](Addr page) {
    Entry& entry = entries_[page];
    ++entry.overlaps;
    entry.owner = entry.overlaps == 1 ? unit.id : kInvalidUnit;
  });
}

void PageMap::OnUnitRetired(const DataUnit& unit, const ObjectTable& table) {
  ForEachPageOf(unit, [&](Addr page) {
    auto it = entries_.find(page);
    if (it == entries_.end() || it->second.overlaps == 0) {
      return;  // unit registered before the map attached; nothing tracked
    }
    Entry& entry = it->second;
    --entry.overlaps;
    if (entry.overlaps == 0) {
      entry.owner = kInvalidUnit;
      if (entry.data == nullptr) {
        entries_.erase(it);
      }
      return;
    }
    if (entry.overlaps == 1) {
      // The page just dropped back to a single live unit: refresh the owner
      // so a previously mixed page re-earns the fast path. This search is
      // paid per retired page, not per access.
      const DataUnit* survivor = table.FirstLiveOverlap(page, page + kPageSize);
      entry.owner = survivor != nullptr ? survivor->id : kInvalidUnit;
    } else {
      entry.owner = kInvalidUnit;
    }
  });
}

UnitId PageMap::OwnerOf(Addr addr) const {
  const Entry* entry = Find(addr);
  return entry == nullptr ? kInvalidUnit : entry->owner;
}

uint32_t PageMap::OverlapCount(Addr addr) const {
  const Entry* entry = Find(addr);
  return entry == nullptr ? 0 : entry->overlaps;
}

bool PageMap::HasData(Addr addr) const {
  const Entry* entry = Find(addr);
  return entry != nullptr && entry->data != nullptr;
}

}  // namespace fob
