// Sparse simulated 64-bit address space.
//
// Every byte a "compiled" program can touch lives in an AddressSpace: the
// heap, the call stack and global storage are all carved out of one of these.
// Pages are 4 KiB and allocated lazily when a region is mapped. Reads and
// writes report (rather than throw on) unmapped access so the policy layer
// (src/runtime/memory.h) can decide whether that is a simulated SIGSEGV
// (Standard compilation) or something the checker already intercepted.
//
// Addresses below kNullGuardSize are never mappable, so null pointer
// dereferences and small null-plus-offset dereferences fault like they do on
// a real OS.

#ifndef SRC_SOFTMEM_ADDRESS_SPACE_H_
#define SRC_SOFTMEM_ADDRESS_SPACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace fob {

// A simulated virtual address.
using Addr = uint64_t;

inline constexpr size_t kPageSize = 4096;
// [0, kNullGuardSize) is permanently unmapped.
inline constexpr Addr kNullGuardSize = 0x10000;

// Base address of the page containing addr.
inline constexpr Addr PageBaseOf(Addr addr) {
  return addr & ~static_cast<Addr>(kPageSize - 1);
}

class PageMap;

class AddressSpace {
 public:
  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Maps all pages overlapping [base, base+size). New pages are zero filled.
  // Mapping an already-mapped page is a no-op (contents preserved). Attempts
  // to map inside the null guard are ignored.
  void Map(Addr base, size_t size);

  // Unmaps all pages fully contained in [base, base+size).
  void Unmap(Addr base, size_t size);

  // True iff every byte of [addr, addr+size) is mapped.
  bool IsMapped(Addr addr, size_t size) const;

  // Copies n bytes out of / into simulated memory. Returns false (and in the
  // read case leaves dst unspecified) if any byte of the range is unmapped;
  // a failed write may have written a mapped prefix, matching the byte-at-a-
  // time behaviour of a real fault.
  [[nodiscard]] bool Read(Addr addr, void* dst, size_t n) const;
  [[nodiscard]] bool Write(Addr addr, const void* src, size_t n);

  // memset over simulated memory; same unmapped semantics as Write.
  [[nodiscard]] bool Fill(Addr addr, uint8_t value, size_t n);

  size_t mapped_bytes() const { return pages_.size() * kPageSize; }
  size_t page_count() const { return pages_.size(); }

  // Attaches the page-granular translation map (src/softmem/page_map.h) this
  // space notifies on Map/Unmap; existing pages are reported immediately, so
  // attach order relative to mapping does not matter. One map per space
  // (fob::Shard attaches its own at construction); pass nullptr to detach.
  void AttachPageMap(PageMap* map);

 private:
  // Direct-mapped multi-entry translation cache (a software TLB): most
  // access streams touch a small working set of pages, and real compiled
  // code pays nothing for address translation — this keeps the unchecked
  // Standard policy's cost model honest, and unlike the old 1-slot cache it
  // survives strided and multi-buffer access patterns. Page data pointers
  // are stable across map rehashes, so slots only need invalidation on
  // Unmap.
  static constexpr size_t kTranslationSlots = 64;
  struct TranslationSlot {
    Addr page = ~static_cast<Addr>(0);
    uint8_t* data = nullptr;
  };
  static size_t SlotIndex(Addr page_base) {
    return static_cast<size_t>(page_base / kPageSize) % kTranslationSlots;
  }

  uint8_t* PageData(Addr page_base);
  const uint8_t* PageData(Addr page_base) const;

  std::unordered_map<Addr, std::unique_ptr<uint8_t[]>> pages_;
  mutable std::array<TranslationSlot, kTranslationSlots> tlb_{};
  PageMap* page_map_ = nullptr;
};

}  // namespace fob

#endif  // SRC_SOFTMEM_ADDRESS_SPACE_H_
