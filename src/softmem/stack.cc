#include "src/softmem/stack.h"

#include <cassert>

#include "src/softmem/fault.h"

namespace fob {

namespace {
constexpr size_t kLocalAlign = 8;
constexpr std::string_view kNoFunction = "<no frame>";
}  // namespace

Stack::Stack(AddressSpace& space, ObjectTable& table, Addr low, size_t size)
    : space_(space), table_(table), low_(low), sp_(low + size) {
  assert(low >= kNullGuardSize);
  // Map a pad above the top of the stack as well: on a real process the
  // initial frames sit below argv/environ, so an overrun out of the topmost
  // frame lands in mapped memory instead of instantly faulting.
  space_.Map(low, size + kTopPad);
}

std::string_view Stack::current_function() const {
  return frames_.empty() ? kNoFunction : std::string_view(frames_.back().name);
}

void Stack::PushFrame(std::string name) {
  if (sp_ - 8 < low_) {
    throw Fault(FaultKind::kStackOverflow, "pushing frame for " + name);
  }
  FrameRecord frame;
  frame.name = std::move(name);
  frame.sp_at_entry = sp_;
  sp_ -= 8;
  frame.canary_addr = sp_;
  canary_seed_ = canary_seed_ * 6364136223846793005ull + 1442695040888963407ull;
  frame.canary_value = canary_seed_;
  bool ok = space_.Write(frame.canary_addr, &frame.canary_value, 8);
  assert(ok);
  (void)ok;
  frames_.push_back(std::move(frame));
}

Addr Stack::AllocLocal(size_t size, std::string name) {
  assert(!frames_.empty() && "AllocLocal outside any frame");
  if (size == 0) {
    size = 1;
  }
  size_t reserved = (size + kLocalAlign - 1) & ~(kLocalAlign - 1);
  if (sp_ < low_ + reserved) {
    throw Fault(FaultKind::kStackOverflow, "allocating local " + name);
  }
  sp_ -= reserved;
  FrameRecord& frame = frames_.back();
  UnitId unit = table_.Register(sp_, size, UnitKind::kStack, frame.name + "::" + std::move(name));
  frame.locals.push_back(unit);
  return sp_;
}

void Stack::RetireLocals(FrameRecord& frame) {
  for (UnitId unit : frame.locals) {
    table_.Retire(unit);
  }
}

void Stack::PopFrame() {
  assert(!frames_.empty() && "PopFrame with no frame");
  FrameRecord& frame = frames_.back();
  ++canary_checks_;
  uint64_t stored = 0;
  bool ok = space_.Read(frame.canary_addr, &stored, 8);
  assert(ok);
  (void)ok;
  if (stored != frame.canary_value) {
    // The saved "return address" was overwritten. Any overwrite is a crash;
    // an overwrite with nonzero program data is additionally the signature
    // of a code-injection attempt (attacker-controlled bytes reached the
    // return slot).
    bool injection = stored != 0;
    std::string function = frame.name;
    RetireLocals(frame);
    sp_ = frame.sp_at_entry;
    frames_.pop_back();
    throw Fault::StackSmash(function, injection);
  }
  RetireLocals(frame);
  sp_ = frame.sp_at_entry;
  frames_.pop_back();
}

void Stack::PopFrameUnchecked() {
  assert(!frames_.empty() && "PopFrameUnchecked with no frame");
  FrameRecord& frame = frames_.back();
  RetireLocals(frame);
  sp_ = frame.sp_at_entry;
  frames_.pop_back();
}

}  // namespace fob
