// Jones-Kelly object table: maps addresses to data units.
//
// Following Jones & Kelly (1997) as enhanced by Ruwase & Lam's CRED (2004),
// every allocated object — each heap block, stack local and global — is a
// *data unit* with known base and extent. The checking code distinguishes
// legal from illegal accesses by locating the data unit a pointer was derived
// from and comparing the access range against that unit's bounds.
//
// Units are identified by a stable UnitId that survives retirement, so a
// dangling pointer can still be attributed to the (dead) unit it once
// pointed into — that is what lets the error log name the buffer a bad
// access was aimed at.

#ifndef SRC_SOFTMEM_OBJECT_TABLE_H_
#define SRC_SOFTMEM_OBJECT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/softmem/address_space.h"

namespace fob {

using UnitId = uint32_t;
inline constexpr UnitId kInvalidUnit = 0;

enum class UnitKind : uint8_t {
  kHeap,
  kStack,
  kGlobal,
};

const char* UnitKindName(UnitKind kind);

class PageMap;

struct DataUnit {
  UnitId id = kInvalidUnit;
  Addr base = 0;
  size_t size = 0;
  UnitKind kind = UnitKind::kHeap;
  bool live = false;
  std::string name;

  bool Contains(Addr addr, size_t n) const {
    return addr >= base && n <= size && addr - base <= size - n;
  }
};

class ObjectTable {
 public:
  ObjectTable() = default;
  ObjectTable(const ObjectTable&) = delete;
  ObjectTable& operator=(const ObjectTable&) = delete;

  // Registers a new live unit and returns its id. Overlapping live units are
  // a programming error in the substrate (CHECK-failed).
  UnitId Register(Addr base, size_t size, UnitKind kind, std::string name);

  // Marks the unit dead and removes it from the address index. The record
  // itself is kept so Lookup(id) can still describe it.
  void Retire(UnitId id);

  // Unit by id; nullptr if the id was never issued.
  const DataUnit* Lookup(UnitId id) const;

  // The live unit containing addr, or nullptr. This is the table search the
  // Jones-Kelly checker performs on a checked access: a binary search over
  // the sorted interval vector, the cache-friendly analogue of CRED's splay
  // tree. Since the page-granular fast path (src/softmem/page_map.h)
  // resolves valid sole-owner-page accesses in O(1), this search is the
  // *slow* tier — mixed pages, page misses and invalid accesses land here.
  // bench_check_cost tracks both tiers' cost against the live-object
  // population.
  const DataUnit* LookupByAddress(Addr addr) const;

  // The first live unit overlapping [lo, hi), or nullptr. Zero-size units
  // span one byte for overlap purposes (matching OobRegistry::Classify).
  // What PageMap refreshes a page's sole owner from on retirement.
  const DataUnit* FirstLiveOverlap(Addr lo, Addr hi) const;

  // Attaches the page-granular translation map notified on Register/Retire;
  // already-live units are reported immediately, so attach order does not
  // matter. One map per table (fob::Shard attaches its own at
  // construction); pass nullptr to detach.
  void AttachPageMap(PageMap* map);

  size_t live_count() const { return by_base_.size(); }
  size_t total_registered() const { return units_.size(); }

  // Bumped every time a unit is retired. A cached resolution of a live
  // unit's bounds (src/runtime/access_cursor.h) stays valid exactly as long
  // as this counter does not move: units never resize or change base, ids
  // are never reused, so only retirement can invalidate cached bounds.
  uint64_t retire_epoch() const { return retire_epoch_; }

 private:
  // One live unit's slot in the address index.
  struct Interval {
    Addr base = 0;
    UnitId id = kInvalidUnit;
  };

  // Position of the first index entry with base >= addr.
  size_t LowerBound(Addr addr) const;

  std::vector<DataUnit> units_;     // units_[id - 1]
  std::vector<Interval> by_base_;   // live units, sorted by base address
  uint64_t retire_epoch_ = 0;
  PageMap* page_map_ = nullptr;
};

}  // namespace fob

#endif  // SRC_SOFTMEM_OBJECT_TABLE_H_
