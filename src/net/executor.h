// LaneExecutor: persistent, parked worker threads for the Frontend's lanes.
//
// Before this executor existed the Frontend forked and joined a fresh
// std::thread per active lane on *every* pump — N thread-create/join
// syscalls per round, the dominant fixed cost at small batch sizes. The
// executor starts one long-lived thread per lane exactly once, parks each
// on a condition variable, and feeds them rounds: RunRound marks the active
// lanes, wakes the pool, and blocks until every marked lane has run the
// round's job. Steady-state pumps therefore create zero threads
// (threads_started() is the pinned counter).
//
// Concurrency contract:
//   * RunRound is called from one thread (the Frontend's pump thread) and
//     does not return until every active lane's job call has completed, so
//     round N+1 cannot overlap round N.
//   * The job runs with the executor's internal mutex *released*; lane
//     jobs may block, dispatch batches, and replace crashed workers freely.
//   * All main-thread writes that precede RunRound happen-before the job
//     body on the lane threads, and all job-body writes happen-before
//     RunRound's return (the mutex orders both directions) — which is what
//     lets the Frontend keep its "written before the round / read after
//     the join" data free of any other synchronization.
//   * The job must not let exceptions escape (the Frontend's lane body
//     catches everything and carries errors back by value, same as the old
//     fork/join path).

#ifndef SRC_NET_EXECUTOR_H_
#define SRC_NET_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fob {

class LaneExecutor {
 public:
  using Job = std::function<void(size_t lane)>;

  // Starts one parked worker thread per lane, immediately.
  explicit LaneExecutor(size_t lanes);

  // Wakes any parked workers, waits for them to exit, joins. Safe only when
  // no round is in flight (the Frontend destroys the executor between
  // pumps).
  ~LaneExecutor();

  LaneExecutor(const LaneExecutor&) = delete;
  LaneExecutor& operator=(const LaneExecutor&) = delete;

  // Runs job(lane) for every lane in `active` on that lane's persistent
  // thread and blocks until all of them finish. Lanes outside `active` stay
  // parked. `active` must hold distinct lane indices < lanes().
  void RunRound(const std::vector<size_t>& active, const Job& job);

  // Lifetime thread-creation count: equals lanes() after construction and
  // never grows — the "zero thread churn per pump" property tests pin.
  uint64_t threads_started() const { return threads_started_; }
  size_t lanes() const { return threads_.size(); }

 private:
  void WorkerMain(size_t lane);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers park here
  std::condition_variable done_cv_;  // RunRound waits here
  const Job* job_ = nullptr;         // valid for the duration of one round
  std::vector<uint8_t> has_work_;    // per lane; guarded by mu_
  size_t outstanding_ = 0;           // active lanes not yet finished
  bool stop_ = false;
  uint64_t threads_started_ = 0;  // written during construction only
  std::vector<std::thread> threads_;
};

}  // namespace fob

#endif  // SRC_NET_EXECUTOR_H_
