#include "src/net/imap.h"

#include "src/codec/utf7.h"

namespace fob {

bool ImapServer::AddFolderUtf8(const std::string& utf8_name, std::vector<MailMessage> messages) {
  std::optional<std::string> utf7 = Utf8ToUtf7(utf8_name);
  if (!utf7) {
    return false;
  }
  folders_[*utf7] = std::move(messages);
  return true;
}

ImapServer::SelectResult ImapServer::Select(const std::string& utf7_name) const {
  SelectResult result;
  auto it = folders_.find(utf7_name);
  if (it == folders_.end()) {
    result.ok = false;
    result.response = "NO [NONEXISTENT] Mailbox does not exist";
    return result;
  }
  result.ok = true;
  result.message_count = it->second.size();
  result.response = "OK [READ-WRITE] SELECT completed";
  return result;
}

std::optional<MailMessage> ImapServer::Fetch(const std::string& utf7_name, size_t index) const {
  auto it = folders_.find(utf7_name);
  if (it == folders_.end() || index == 0 || index > it->second.size()) {
    return std::nullopt;
  }
  return it->second[index - 1];
}

bool ImapServer::MoveMessage(const std::string& from_utf7, size_t index,
                             const std::string& to_utf7) {
  auto from = folders_.find(from_utf7);
  auto to = folders_.find(to_utf7);
  if (from == folders_.end() || to == folders_.end() || index == 0 ||
      index > from->second.size()) {
    return false;
  }
  to->second.push_back(std::move(from->second[index - 1]));
  from->second.erase(from->second.begin() + static_cast<ptrdiff_t>(index - 1));
  return true;
}

bool ImapServer::Append(const std::string& utf7_name, MailMessage message) {
  auto it = folders_.find(utf7_name);
  if (it == folders_.end()) {
    return false;
  }
  it->second.push_back(std::move(message));
  return true;
}

std::vector<std::string> ImapServer::ListUtf7() const {
  std::vector<std::string> names;
  names.reserve(folders_.size());
  for (const auto& [name, messages] : folders_) {
    (void)messages;
    names.push_back(name);
  }
  return names;
}

}  // namespace fob
