// Frontend: multiplexes N interleaved client sessions onto a WorkerPool of
// shard-isolated workers, dispatching batches on real threads.
//
// Each client holds a LineChannel (src/net/channel.h) and writes serialized
// ServerRequests; the Frontend polls the channels fairly (one line per
// client per sweep, so no client can starve the others) and gathers requests
// into per-worker *lanes*. Lane assignment is sticky session affinity: the
// first request from a client id binds it to a worker (round robin over the
// pool), and every later request from that client is served by the same
// worker/shard — which both preserves per-client request ordering under
// parallel dispatch and keeps whatever per-shard state a client's requests
// accumulate (error-log history, heap layout) on one worker.
//
// Dispatch is truly parallel: each pump, every lane with pending work
// drains its queue batch-by-batch (WorkerPool::DispatchBatchOn) on its own
// std::thread against its own worker — N workers, N shards
// (src/runtime/shard.h), no shared mutable state between lanes except the
// per-lane result slots the main thread reads after joining and the pool's
// atomic restart counter. Responses are written to the client channels
// after the join, in stable lane order, so the outcome of a run is
// deterministic no matter how the threads interleaved on the wall clock.
//
// Crash handling reproduces the §4.3.2 worker-pool dynamics at batch
// granularity, per lane: when a worker dies mid-batch, the requests already
// served keep their responses, the request that killed the worker is
// answered with an error (that client's request is lost, exactly like a
// child segfaulting mid-connection), the worker is replaced on its own lane
// thread (paying full re-initialization there while other lanes stream on),
// and the unserved batch remainder is re-queued ahead of the backlog — so a
// crashing policy pays restart + re-batch latency while a failure-oblivious
// pool streams on.
//
// Per-shard MemLogs merge deterministically in ascending worker/shard-id
// order via MergedLog(); see src/net/README.md for the shard model and the
// merge ordering rule.

#ifndef SRC_NET_FRONTEND_H_
#define SRC_NET_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/server_app.h"
#include "src/net/channel.h"
#include "src/runtime/memlog.h"
#include "src/runtime/policy_spec.h"
#include "src/runtime/process.h"

namespace fob {

class AdaptivePolicyController;

class Frontend {
 public:
  struct Options {
    // Worker count == worker-thread count == shard count: each worker is
    // dispatched on its own std::thread (a round with one active lane runs
    // inline on the caller's thread, so workers=1 is the single-threaded
    // baseline).
    size_t workers = 2;
    // Requests dispatched per lane per process entry. 1 degenerates to the
    // legacy per-request Dispatch behavior.
    size_t batch = 8;
    // Applied to every worker (and every replacement): nonzero turns a
    // hung worker into a kBudgetExhausted crash the pool recovers from.
    uint64_t worker_access_budget = 0;
  };

  struct Stats {
    uint64_t served = 0;     // responses written, error responses included
    uint64_t failed = 0;     // requests whose worker died serving them
    uint64_t requeued = 0;   // batch-remainder requests re-queued after a crash
    uint64_t batches = 0;    // lane dispatches (process entries) used
    uint64_t rejected = 0;   // lines that did not parse as a ServerRequest
  };

  using Factory = WorkerPool<ServerApp>::Factory;

  Frontend(Factory factory, const Options& options);

  // Attaches a client connection. The returned channel is owned by the
  // Frontend and stable until Disconnect; the client writes serialized
  // requests with ClientSend and half-closes with ClientClose when done.
  LineChannel& Connect(uint64_t client_id);

  // Forgets a client entirely: frees its channel and its lane-affinity
  // entry (the round-robin cursor does not rewind). Call only once the
  // client is closed and drained — the adaptive epoch loop retires each
  // epoch's client namespace this way, so channel polling cost does not
  // grow with epoch count.
  void Disconnect(uint64_t client_id);

  // Ingests every line currently readable across all channels (fair,
  // round-robin) and serves the pending queue in parallel lane batches.
  // Returns the number of responses written this pump.
  size_t Pump();

  // Pumps until every connected channel is closed and drained and no
  // requests are pending. Returns total responses written.
  size_t Run();

  // True when nothing is pending and every channel has reached EOF.
  bool Idle() const;

  // The worker/shard this client's requests are (or would be) served by.
  // Assignment is first-seen round robin and never changes afterwards.
  size_t LaneOf(uint64_t client_id);

  // Deterministic merged view of every worker shard's error log, folded in
  // ascending worker/shard-id order (the canonical merge rule).
  MemLog MergedLog();

  // Epoch-boundary respec of every live worker shard (Memory::Rebind: logs,
  // heap and handler-bank state survive; only SiteId -> policy resolution
  // changes) — and of every *future* crash replacement, which is
  // constructed by the original factory (under whatever spec it captured,
  // which must be a continuing one so construction cannot fault) and then
  // rebound to the latest respec before serving. Re-arms each worker's
  // hang budget to `accesses + worker_access_budget`, so budget exhaustion
  // stays an intra-epoch hang signal rather than a lifetime cap. Must be
  // called between pumps: no lane threads may be running.
  void Rebind(const PolicySpec& spec);

  // Feeds every worker shard's cumulative per-site error aggregates to the
  // controller, in ascending worker/shard-id order — the same deterministic
  // rule MemLog::Merge callers follow — so all lanes learn from each
  // other's errors and the learning trajectory is reproducible no matter
  // how lane threads interleaved. Call once per epoch, between pumps.
  void FeedSiteObservations(AdaptivePolicyController& controller);

  const Stats& stats() const { return stats_; }
  uint64_t restarts() const { return pool_.restarts(); }
  WorkerPool<ServerApp>& pool() { return pool_; }

 private:
  struct Pending {
    uint64_t client_id = 0;
    ServerRequest request;
  };

  void Ingest();
  void ServePending();
  void Respond(uint64_t client_id, const ServerResponse& response);
  WorkerPool<ServerApp>::IndexedFactory MakeWorkerFactory(Factory factory);
  void ArmBudget(Memory& memory);

  Options options_;
  // The latest Rebind spec, applied to crash replacements after the base
  // factory constructs them. Written only between pumps (no lane threads
  // running); read by the factory on lane threads during dispatch — the
  // thread spawn orders those reads after the write.
  std::optional<PolicySpec> respec_;
  // Per-worker-slot construction counter: bumped by the factory on every
  // (re)build, so observers can tell a replacement's fresh log from the
  // dead worker's. Each slot is written only by the lane thread replacing
  // that worker (distinct elements, no sharing); read by the main thread
  // after the join.
  std::vector<uint64_t> incarnations_;
  WorkerPool<ServerApp> pool_;
  std::map<uint64_t, std::unique_ptr<LineChannel>> clients_;
  std::map<uint64_t, size_t> affinity_;  // client id -> sticky lane
  size_t next_lane_ = 0;
  std::deque<Pending> pending_;
  Stats stats_;
};

}  // namespace fob

#endif  // SRC_NET_FRONTEND_H_
