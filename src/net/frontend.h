// Frontend: multiplexes N interleaved client sessions onto a WorkerPool.
//
// Each client holds a LineChannel (src/net/channel.h) and writes serialized
// ServerRequests; the Frontend polls the channels fairly (one line per
// client per sweep, so no client can starve the others), gathers requests
// into batches, and dispatches each batch to a pool of crash-isolated
// ServerApp workers in ONE simulated process entry
// (WorkerPool::DispatchBatch) — amortizing the per-request entry cost
// across the batch, which is the request-batching scale item from the
// roadmap.
//
// Crash handling reproduces the §4.3.2 worker-pool dynamics at batch
// granularity: when a worker dies mid-batch, the requests already served
// keep their responses, the request that killed the worker is answered
// with an error (that client's request is lost, exactly like a child
// segfaulting mid-connection), the worker is replaced (paying full
// re-initialization), and the unserved batch remainder is re-queued at the
// front of the pending queue — so a crashing policy pays restart + re-batch
// latency while a failure-oblivious pool streams on.
//
// Workers are stateless between requests (the PCRAFT-style capacity model):
// any worker can serve any client's request, which is what lets one pool
// absorb interleaved sessions from many clients.

#ifndef SRC_NET_FRONTEND_H_
#define SRC_NET_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/apps/server_app.h"
#include "src/net/channel.h"
#include "src/runtime/process.h"

namespace fob {

class Frontend {
 public:
  struct Options {
    size_t workers = 2;
    // Requests dispatched per process entry. 1 degenerates to the legacy
    // per-request Dispatch behavior.
    size_t batch = 8;
    // Applied to every worker (and every replacement): nonzero turns a
    // hung worker into a kBudgetExhausted crash the pool recovers from.
    uint64_t worker_access_budget = 0;
  };

  struct Stats {
    uint64_t served = 0;     // responses written, error responses included
    uint64_t failed = 0;     // requests whose worker died serving them
    uint64_t requeued = 0;   // batch-remainder requests re-queued after a crash
    uint64_t batches = 0;    // process entries used
    uint64_t rejected = 0;   // lines that did not parse as a ServerRequest
  };

  using Factory = WorkerPool<ServerApp>::Factory;

  Frontend(Factory factory, const Options& options);

  // Attaches a client connection. The returned channel is owned by the
  // Frontend and stable for its lifetime; the client writes serialized
  // requests with ClientSend and half-closes with ClientClose when done.
  LineChannel& Connect(uint64_t client_id);

  // Ingests every line currently readable across all channels (fair,
  // round-robin) and serves the pending queue in batches. Returns the
  // number of responses written this pump.
  size_t Pump();

  // Pumps until every connected channel is closed and drained and no
  // requests are pending. Returns total responses written.
  size_t Run();

  // True when nothing is pending and every channel has reached EOF.
  bool Idle() const;

  const Stats& stats() const { return stats_; }
  uint64_t restarts() const { return pool_.restarts(); }
  WorkerPool<ServerApp>& pool() { return pool_; }

 private:
  struct Pending {
    uint64_t client_id = 0;
    ServerRequest request;
  };

  void Ingest();
  void ServePending();
  void Respond(uint64_t client_id, const ServerResponse& response);

  Options options_;
  WorkerPool<ServerApp> pool_;
  std::map<uint64_t, std::unique_ptr<LineChannel>> clients_;
  std::deque<Pending> pending_;
  Stats stats_;
};

}  // namespace fob

#endif  // SRC_NET_FRONTEND_H_
