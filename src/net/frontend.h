// Frontend: multiplexes N interleaved client sessions onto a WorkerPool of
// shard-isolated workers, dispatching batches on real threads.
//
// Each client holds a LineChannel (src/net/channel.h) and writes serialized
// ServerRequests; the Frontend polls the channels fairly (one line per
// client per sweep, so no client can starve the others) and gathers requests
// into per-worker *lanes*. Lane assignment is sticky session affinity: the
// first request from a client id binds it to a worker (round robin over the
// pool), and every later request from that client is served by the same
// worker/shard — which both preserves per-client request ordering under
// parallel dispatch and keeps whatever per-shard state a client's requests
// accumulate (error-log history, heap layout) on one worker.
//
// Dispatch is truly parallel: each pump, every lane with pending work
// drains its queue batch-by-batch (WorkerPool::DispatchBatchOn) on its own
// std::thread against its own worker — N workers, N shards
// (src/runtime/shard.h), no shared mutable state between lanes except the
// per-lane result slots the main thread reads after joining and the pool's
// atomic restart counter. Responses are written to the client channels
// after the join, in stable lane order, so the outcome of a run is
// deterministic no matter how the threads interleaved on the wall clock.
//
// Crash handling reproduces the §4.3.2 worker-pool dynamics at batch
// granularity, per lane: when a worker dies mid-batch, the requests already
// served keep their responses, the request that killed the worker is
// answered with an error (that client's request is lost, exactly like a
// child segfaulting mid-connection), the worker is replaced on its own lane
// thread (paying full re-initialization there while other lanes stream on),
// and the unserved batch remainder is re-queued ahead of the backlog — so a
// crashing policy pays restart + re-batch latency while a failure-oblivious
// pool streams on.
//
// Per-shard MemLogs merge deterministically in ascending worker/shard-id
// order via MergedLog(); see src/net/README.md for the shard model and the
// merge ordering rule.

#ifndef SRC_NET_FRONTEND_H_
#define SRC_NET_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/apps/server_app.h"
#include "src/net/channel.h"
#include "src/runtime/memlog.h"
#include "src/runtime/process.h"

namespace fob {

class Frontend {
 public:
  struct Options {
    // Worker count == worker-thread count == shard count: each worker is
    // dispatched on its own std::thread (a round with one active lane runs
    // inline on the caller's thread, so workers=1 is the single-threaded
    // baseline).
    size_t workers = 2;
    // Requests dispatched per lane per process entry. 1 degenerates to the
    // legacy per-request Dispatch behavior.
    size_t batch = 8;
    // Applied to every worker (and every replacement): nonzero turns a
    // hung worker into a kBudgetExhausted crash the pool recovers from.
    uint64_t worker_access_budget = 0;
  };

  struct Stats {
    uint64_t served = 0;     // responses written, error responses included
    uint64_t failed = 0;     // requests whose worker died serving them
    uint64_t requeued = 0;   // batch-remainder requests re-queued after a crash
    uint64_t batches = 0;    // lane dispatches (process entries) used
    uint64_t rejected = 0;   // lines that did not parse as a ServerRequest
  };

  using Factory = WorkerPool<ServerApp>::Factory;

  Frontend(Factory factory, const Options& options);

  // Attaches a client connection. The returned channel is owned by the
  // Frontend and stable for its lifetime; the client writes serialized
  // requests with ClientSend and half-closes with ClientClose when done.
  LineChannel& Connect(uint64_t client_id);

  // Ingests every line currently readable across all channels (fair,
  // round-robin) and serves the pending queue in parallel lane batches.
  // Returns the number of responses written this pump.
  size_t Pump();

  // Pumps until every connected channel is closed and drained and no
  // requests are pending. Returns total responses written.
  size_t Run();

  // True when nothing is pending and every channel has reached EOF.
  bool Idle() const;

  // The worker/shard this client's requests are (or would be) served by.
  // Assignment is first-seen round robin and never changes afterwards.
  size_t LaneOf(uint64_t client_id);

  // Deterministic merged view of every worker shard's error log, folded in
  // ascending worker/shard-id order (the canonical merge rule).
  MemLog MergedLog();

  const Stats& stats() const { return stats_; }
  uint64_t restarts() const { return pool_.restarts(); }
  WorkerPool<ServerApp>& pool() { return pool_; }

 private:
  struct Pending {
    uint64_t client_id = 0;
    ServerRequest request;
  };

  void Ingest();
  void ServePending();
  void Respond(uint64_t client_id, const ServerResponse& response);

  Options options_;
  WorkerPool<ServerApp> pool_;
  std::map<uint64_t, std::unique_ptr<LineChannel>> clients_;
  std::map<uint64_t, size_t> affinity_;  // client id -> sticky lane
  size_t next_lane_ = 0;
  std::deque<Pending> pending_;
  Stats stats_;
};

}  // namespace fob

#endif  // SRC_NET_FRONTEND_H_
