// Frontend: multiplexes N interleaved client sessions onto a WorkerPool of
// shard-isolated workers, dispatching batches on persistent worker threads.
//
// Each client holds a LineChannel (src/net/channel.h) and writes serialized
// ServerRequests; the Frontend polls the channels fairly (one line per
// client per sweep, so no client can starve the others) and gathers requests
// into per-worker *lanes*. Lane assignment is sticky session affinity: the
// first request from a client id binds it to the least-loaded lane at that
// moment (round robin breaks ties, so an idle frontend degrades to plain
// round robin), and every later request from that client is served by the
// same worker/shard — which both preserves per-client request ordering
// under parallel dispatch and keeps whatever per-shard state a client's
// requests accumulate (error-log history, heap layout) on one worker. A
// client whose channel reaches EOF (closed and drained) has its affinity
// entry evicted at the end of the pump, so a long-lived Frontend does not
// leak one map entry per client ever seen.
//
// Dispatch is truly parallel and thread-churn free: the Frontend owns a
// LaneExecutor (src/net/executor.h) with one long-lived worker thread per
// lane, parked on a condition variable between pumps — a steady-state pump
// creates zero threads (Options::legacy_dispatch restores the old
// fork/join-per-pump path as the benchmark baseline). Each pump partitions
// the backlog into per-lane batch lists, then — single-threaded, before any
// wakeup — computes a deterministic *steal plan*: whole batches move from
// the most-backlogged lanes to lanes that were idle this pump (ties broken
// by lane id), so one hot client cannot serialize the pool while neighbors
// park. A stolen batch runs on the thief's worker/shard; responses are
// written post-join in original submission order regardless of which lane
// served them, so same stream + seed + workers still yields identical
// merged responses (the determinism property tests/test_shard.cc pins,
// stealing included).
//
// Backpressure: Options::shed_watermark caps each lane's per-pump queue
// depth. A new request past the watermark is never silently queued — it is
// answered immediately with an explicit overloaded response
// (kOverloadedStatus); crash-requeued batch remainders are exempt, so
// recovery work cannot be shed. Shed/stolen/depth counters live in
// Frontend::Stats and fold into the merged MemLog's Summary().
//
// Crash handling reproduces the §4.3.2 worker-pool dynamics at batch
// granularity, per lane: when a worker dies mid-batch, the requests already
// served keep their responses, the request that killed the worker is
// answered with an error (that client's request is lost, exactly like a
// child segfaulting mid-connection), the worker is replaced on its own lane
// thread (paying full re-initialization there while other lanes stream on),
// and the unserved batch remainder is re-queued as the lane's next batch —
// so a crashing policy pays restart + re-batch latency while a
// failure-oblivious pool streams on.
//
// Per-shard MemLogs merge deterministically in ascending worker/shard-id
// order via MergedLog(); see src/net/README.md for the shard model, the
// steal-plan rule, and the merge ordering rule.

#ifndef SRC_NET_FRONTEND_H_
#define SRC_NET_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/server_app.h"
#include "src/net/channel.h"
#include "src/net/executor.h"
#include "src/runtime/memlog.h"
#include "src/runtime/policy_spec.h"
#include "src/runtime/process.h"

namespace fob {

class AdaptivePolicyController;

class Frontend {
 public:
  // Status code of the explicit overload response shed requests receive
  // (distinct from 500, the worker-crash error).
  static constexpr int kOverloadedStatus = 503;

  struct Options {
    // Worker count == lane count == shard count: each worker is served by
    // its own persistent executor thread (a round with one active lane runs
    // inline on the caller's thread, so workers=1 is the single-threaded
    // baseline and starts no executor).
    size_t workers = 2;
    // Requests dispatched per lane per process entry. 1 degenerates to the
    // legacy per-request Dispatch behavior.
    size_t batch = 8;
    // Applied to every worker (and every replacement): nonzero turns a
    // hung worker into a kBudgetExhausted crash the pool recovers from.
    uint64_t worker_access_budget = 0;
    // Serve multi-lane rounds by forking and joining a std::thread per
    // active lane every pump — the pre-executor behavior, kept as the
    // baseline the pump-overhead perf gate measures against.
    bool legacy_dispatch = false;
    // Plan-based work stealing: at pump time (single-threaded) whole
    // batches are reassigned from the most-backlogged lanes to this pump's
    // idle lanes, ties broken by lane id. Deterministic; disable to pin
    // sticky-only dispatch (shard-history-sensitive learners do).
    bool steal = true;
    // Per-lane queue-depth watermark per pump; 0 disables shedding. A new
    // request that would push its lane past the watermark is answered with
    // an explicit kOverloadedStatus response instead of being queued.
    // Crash-requeued batch remainders are exempt.
    size_t shed_watermark = 0;
  };

  struct Stats {
    uint64_t served = 0;     // responses written, error/overload responses included
    uint64_t failed = 0;     // requests whose worker died serving them
    uint64_t requeued = 0;   // batch-remainder requests re-queued after a crash
    uint64_t batches = 0;    // lane dispatches (process entries) used
    uint64_t rejected = 0;   // lines that did not parse as a ServerRequest
    uint64_t shed = 0;       // requests answered kOverloadedStatus at the watermark
    uint64_t stolen_batches = 0;  // whole batches reassigned by the steal plan
    uint64_t max_lane_depth = 0;  // high-water per-lane queue depth (post-shed)
  };

  using Factory = WorkerPool<ServerApp>::Factory;

  Frontend(Factory factory, const Options& options);

  // Attaches a client connection. The returned channel is owned by the
  // Frontend and stable until Disconnect; the client writes serialized
  // requests with ClientSend and half-closes with ClientClose when done.
  LineChannel& Connect(uint64_t client_id);

  // Forgets a client entirely: frees its channel and its lane-affinity
  // entry. Call only once the client is closed and drained — the adaptive
  // epoch loop retires each epoch's client namespace this way, so channel
  // polling cost does not grow with epoch count. (The affinity entry alone
  // is evicted automatically once the channel reaches EOF.)
  void Disconnect(uint64_t client_id);

  // Ingests every line currently readable across all channels (fair,
  // round-robin) and serves the pending queue in parallel lane batches.
  // Returns the number of responses written this pump.
  size_t Pump();

  // Pumps until every connected channel is closed and drained and no
  // requests are pending. Returns total responses written.
  size_t Run();

  // True when nothing is pending and every channel has reached EOF.
  bool Idle() const;

  // The worker/shard this client's requests are (or would be) served by.
  // First sight binds to the least-loaded lane at that instant (current
  // pump's partial partition depth; all-equal depths fall back to round
  // robin) and the binding never changes while the client's channel is
  // live. Note stealing can run *batches* of an over-backlogged lane on
  // another worker; the sticky lane is where a client's requests queue and
  // serve by default.
  size_t LaneOf(uint64_t client_id);

  // Live lane-affinity entries (monitoring/tests): entries are evicted when
  // a client's channel reaches EOF, so this tracks open clients, not every
  // client ever seen.
  size_t affinity_size() const { return affinity_.size(); }

  // Lifetime executor thread creations: equals `workers` right after
  // construction (0 for workers=1 or legacy dispatch) and never grows —
  // steady-state pumps create zero threads.
  uint64_t executor_threads_started() const {
    return executor_ != nullptr ? executor_->threads_started() : 0;
  }

  // Deterministic merged view of every worker shard's error log, folded in
  // ascending worker/shard-id order (the canonical merge rule), plus the
  // frontend's scheduler counters (shed/stolen/depth).
  MemLog MergedLog();

  // Epoch-boundary respec of every live worker shard (Memory::Rebind: logs,
  // heap and handler-bank state survive; only SiteId -> policy resolution
  // changes) — and of every *future* crash replacement, which is
  // constructed by the original factory (under whatever spec it captured,
  // which must be a continuing one so construction cannot fault) and then
  // rebound to the latest respec before serving. Re-arms each worker's
  // hang budget to `accesses + worker_access_budget`, so budget exhaustion
  // stays an intra-epoch hang signal rather than a lifetime cap. Must be
  // called between pumps: no lane threads may be running.
  void Rebind(const PolicySpec& spec);

  // Feeds every worker shard's cumulative per-site error aggregates to the
  // controller, in ascending worker/shard-id order — the same deterministic
  // rule MemLog::Merge callers follow — so all lanes learn from each
  // other's errors and the learning trajectory is reproducible no matter
  // how lane threads interleaved. Call once per epoch, between pumps.
  void FeedSiteObservations(AdaptivePolicyController& controller);

  const Stats& stats() const { return stats_; }
  uint64_t restarts() const { return pool_.restarts(); }
  WorkerPool<ServerApp>& pool() { return pool_; }

 private:
  struct Pending {
    uint64_t client_id = 0;
    // Global submission order, stamped at ingest. Responses are written in
    // ascending seq post-join, which keeps per-client FIFO order intact
    // even when the steal plan splits one client's batches across lanes.
    uint64_t seq = 0;
    // Crash-remainder (or exception-path) requeue: exempt from shedding.
    bool requeued = false;
    ServerRequest request;
  };

  void Ingest();
  void ServePending();
  void Respond(uint64_t client_id, const ServerResponse& response);
  void EvictClosedAffinities();
  ServerResponse OverloadedResponse(size_t lane) const;
  WorkerPool<ServerApp>::IndexedFactory MakeWorkerFactory(Factory factory);
  void ArmBudget(Memory& memory);

  Options options_;
  // The latest Rebind spec, applied to crash replacements after the base
  // factory constructs them. Written only between pumps (no lane threads
  // running); read by the factory on lane threads during dispatch — the
  // executor's round mutex (or the legacy thread spawn) orders those reads
  // after the write.
  std::optional<PolicySpec> respec_;
  // Per-worker-slot construction counter: bumped by the factory on every
  // (re)build, so observers can tell a replacement's fresh log from the
  // dead worker's. Each slot is written only by the lane thread replacing
  // that worker (distinct elements, no sharing); read by the main thread
  // after the round completes.
  std::vector<uint64_t> incarnations_;
  WorkerPool<ServerApp> pool_;
  // Persistent lane threads; null for workers=1 (always inline) and for
  // legacy dispatch. Destroyed (drained + joined) before the pool.
  std::unique_ptr<LaneExecutor> executor_;
  std::map<uint64_t, std::unique_ptr<LineChannel>> clients_;
  std::map<uint64_t, size_t> affinity_;  // client id -> sticky lane
  size_t next_lane_ = 0;                 // round-robin tie-break cursor
  // Scratch: requests assigned per lane during the current pump's
  // partition (what "least-loaded" and the shed watermark measure).
  // All-zero between pumps.
  std::vector<size_t> lane_depth_;
  uint64_t next_seq_ = 0;
  std::deque<Pending> pending_;
  Stats stats_;
};

}  // namespace fob

#endif  // SRC_NET_FRONTEND_H_
