// Minimal HTTP/1.0 message handling for mini-Apache.

#ifndef SRC_NET_HTTP_H_
#define SRC_NET_HTTP_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/runtime/ptr.h"

namespace fob {

class Memory;

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::string version = "HTTP/1.0";
  std::vector<std::pair<std::string, std::string>> headers;

  // Parses "METHOD SP path SP version CRLF (header CRLF)* CRLF". Returns
  // nullopt on a malformed request line.
  static std::optional<HttpRequest> Parse(std::string_view text);

  // Parses a request sitting in the server's connection buffer inside the
  // simulated image. The bytes are staged out through Memory::ReadSpan, so
  // an over-read of the buffer unit yields policy-continued bytes (and a
  // likely 400) instead of killing the worker.
  static std::optional<HttpRequest> Parse(Memory& memory, Ptr text, size_t size);
  std::string Serialize() const;
  std::string Header(std::string_view name) const;  // empty if absent
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  static HttpResponse Ok(std::string body, std::string content_type = "text/html");
  static HttpResponse NotFound(std::string_view path);
  static HttpResponse BadRequest(std::string detail);
  std::string Serialize() const;
};

}  // namespace fob

#endif  // SRC_NET_HTTP_H_
