#include "src/net/frontend.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "src/runtime/adaptive.h"

namespace fob {

// Wraps the caller's factory into the pool's index-aware form: every worker
// (and every crash replacement for it) gets the access budget applied and
// its shard stamped with the stable worker index — the identity the
// deterministic log merge orders by. When a Rebind spec is in force, the
// replacement is rebound to it after construction, so a crash replacement
// serves under the current epoch's spec even though the base factory
// captured the construction-time (continuing) spec.
WorkerPool<ServerApp>::IndexedFactory Frontend::MakeWorkerFactory(Factory factory) {
  return [this, factory = std::move(factory)](size_t index) {
    std::unique_ptr<ServerApp> app = factory();
    ++incarnations_[index];
    ArmBudget(app->memory());
    app->memory().set_shard_id(static_cast<uint32_t>(index));
    if (respec_.has_value()) {
      app->memory().Rebind(*respec_);
    }
    return app;
  };
}

void Frontend::ArmBudget(Memory& memory) {
  if (options_.worker_access_budget != 0) {
    memory.set_access_budget(memory.access_count() + options_.worker_access_budget);
  }
}

Frontend::Frontend(Factory factory, const Options& options)
    : options_(options),
      incarnations_(options.workers == 0 ? 1 : options.workers, 0),
      pool_(options.workers == 0 ? 1 : options.workers, MakeWorkerFactory(std::move(factory))) {}

void Frontend::Rebind(const PolicySpec& spec) {
  respec_ = spec;
  for (size_t index = 0; index < pool_.size(); ++index) {
    Memory& memory = pool_.worker(index).memory();
    memory.Rebind(spec);
    ArmBudget(memory);
  }
}

void Frontend::FeedSiteObservations(AdaptivePolicyController& controller) {
  for (size_t index = 0; index < pool_.size(); ++index) {
    Memory& memory = pool_.worker(index).memory();
    controller.ObserveShardLog(memory.shard_id(), memory.log(), incarnations_[index]);
  }
}

LineChannel& Frontend::Connect(uint64_t client_id) {
  std::unique_ptr<LineChannel>& slot = clients_[client_id];
  if (slot == nullptr) {
    slot = std::make_unique<LineChannel>();
  }
  return *slot;
}

void Frontend::Disconnect(uint64_t client_id) {
  clients_.erase(client_id);
  affinity_.erase(client_id);
}

size_t Frontend::LaneOf(uint64_t client_id) {
  auto [it, inserted] = affinity_.try_emplace(client_id, next_lane_);
  if (inserted) {
    next_lane_ = (next_lane_ + 1) % pool_.size();
  }
  return it->second;
}

void Frontend::Ingest() {
  // Fair sweep: take at most one line per client per round, so a chatty
  // client cannot starve the others — its requests interleave.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [client_id, channel] : clients_) {
      LineChannel::Recv recv = channel->ServerReceiveLine();
      if (!recv.has_line()) {
        continue;  // kNoInput or kClosed: nothing to read from this client
      }
      progress = true;
      auto request = ServerRequest::Deserialize(recv.line);
      if (!request) {
        ++stats_.rejected;
        ServerResponse malformed;
        malformed.error = "malformed request line";
        Respond(client_id, malformed);
        continue;
      }
      request->client_id = client_id;  // the connection authenticates the id
      pending_.push_back(Pending{client_id, std::move(*request)});
    }
  }
}

void Frontend::Respond(uint64_t client_id, const ServerResponse& response) {
  auto it = clients_.find(client_id);
  if (it != clients_.end()) {
    it->second->ServerSend(response.Serialize());
  }
  ++stats_.served;
}

void Frontend::ServePending() {
  const size_t batch_limit = options_.batch == 0 ? 1 : options_.batch;
  const size_t lane_count = pool_.size();
  // Partition the backlog once: each request moves to its client's sticky
  // lane queue, preserving arrival order (a client never spans lanes, so
  // per-client order is per-lane order).
  std::vector<std::deque<Pending>> lanes(lane_count);
  while (!pending_.empty()) {
    Pending item = std::move(pending_.front());
    pending_.pop_front();
    lanes[LaneOf(item.client_id)].push_back(std::move(item));
  }

  // Each active lane drains its whole queue on its own thread against its
  // own worker/shard — batch by batch, crash remainders re-queued at the
  // front of the lane's own queue, so a crashing lane pays restart +
  // re-batch latency while the other lanes stream on. A lane thread writes
  // only its own LaneResult slot; the main thread reads the slots after the
  // join — the only other cross-thread state is the pool's atomic restart
  // counter.
  struct LaneResult {
    // (client id, response) in serve order, crash error responses included.
    std::vector<std::pair<uint64_t, ServerResponse>> responses;
    uint64_t failed = 0;
    uint64_t requeued = 0;
    uint64_t batches = 0;
    // A non-Fault exception that escaped the lane (a harness bug, not a
    // simulated crash): captured here and rethrown on the main thread, so
    // it stays as catchable as it was under single-threaded dispatch.
    std::exception_ptr error;
  };
  std::vector<LaneResult> results(lane_count);
  auto serve_lane = [&](size_t lane) {
    LaneResult& result = results[lane];
    try {
      std::deque<Pending>& queue = lanes[lane];
      while (!queue.empty()) {
        size_t count = std::min(batch_limit, queue.size());
        std::vector<Pending> batch;
        batch.reserve(count);
        for (size_t i = 0; i < count; ++i) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        std::vector<ServerResponse> out(count);
        ++result.batches;
        BatchOutcome outcome = pool_.DispatchBatchOn(
            lane, count, [&](ServerApp& app, size_t i) { out[i] = app.Handle(batch[i].request); });
        for (size_t i = 0; i < outcome.completed; ++i) {
          result.responses.emplace_back(batch[i].client_id, std::move(out[i]));
        }
        if (!outcome.crashed) {
          continue;
        }
        // The worker died at batch[completed]: that request is lost (its
        // client sees the failure), the rest of the batch re-queues onto
        // the replacement worker, oldest first.
        ServerResponse failure;
        failure.status = 500;
        failure.error = "worker crashed: " + outcome.failure.detail;
        result.responses.emplace_back(batch[outcome.completed].client_id, std::move(failure));
        ++result.failed;
        for (size_t i = count; i > outcome.completed + 1; --i) {
          queue.push_front(std::move(batch[i - 1]));
          ++result.requeued;
        }
      }
    } catch (...) {
      result.error = std::current_exception();
    }
  };

  std::vector<size_t> active;
  for (size_t lane = 0; lane < lane_count; ++lane) {
    if (!lanes[lane].empty()) {
      active.push_back(lane);
    }
  }
  if (active.size() == 1) {
    serve_lane(active.front());  // one lane: skip the thread round trip
  } else {
    std::vector<std::thread> threads;
    threads.reserve(active.size());
    for (size_t lane : active) {
      threads.emplace_back(serve_lane, lane);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  // Post-join, single-threaded, in stable lane order: write responses to
  // the client channels and fold the per-lane accounting — then surface the
  // first escaped harness exception exactly where single-threaded dispatch
  // would have thrown it.
  for (size_t lane : active) {
    for (auto& [client_id, response] : results[lane].responses) {
      Respond(client_id, response);
    }
    stats_.failed += results[lane].failed;
    stats_.requeued += results[lane].requeued;
    stats_.batches += results[lane].batches;
  }
  // A lane that threw left its queue partially drained; hand whatever is
  // unserved back to pending_ (lane order — per-client order is unaffected,
  // one client maps to one lane) so a caller that catches the rethrow below
  // and pumps again loses nothing. A clean round leaves every queue empty.
  for (std::deque<Pending>& queue : lanes) {
    for (Pending& item : queue) {
      pending_.push_back(std::move(item));
    }
  }
  for (size_t lane : active) {
    if (results[lane].error) {
      std::rethrow_exception(results[lane].error);
    }
  }
}

size_t Frontend::Pump() {
  uint64_t served_before = stats_.served;
  Ingest();
  ServePending();
  return static_cast<size_t>(stats_.served - served_before);
}

bool Frontend::Idle() const {
  if (!pending_.empty()) {
    return false;
  }
  for (const auto& [client_id, channel] : clients_) {
    if (!channel->ServerAtEof()) {
      return false;
    }
  }
  return true;
}

size_t Frontend::Run() {
  size_t served = 0;
  while (!Idle()) {
    size_t this_pump = Pump();
    served += this_pump;
    if (this_pump == 0 && pending_.empty()) {
      // No progress and nothing queued: the remaining channels are open but
      // idle — no further input can arrive between pumps, so waiting would
      // spin forever.
      break;
    }
  }
  return served;
}

MemLog Frontend::MergedLog() {
  // Size the merged detail ring to hold every shard's ring, so merging
  // cannot silently drop records the shards still hold (aggregates are
  // exact either way).
  size_t capacity = 0;
  for (size_t index = 0; index < pool_.size(); ++index) {
    capacity += pool_.worker(index).memory().log().capacity();
  }
  MemLog merged(capacity);
  for (size_t index = 0; index < pool_.size(); ++index) {
    const Memory& memory = pool_.worker(index).memory();
    merged.Merge(memory.log());
    // Fast-path counters and boundless-store accounting live on the shard,
    // not in its log; fold them in here so the merged view carries the
    // pool's translation and OOB-storage profiles.
    merged.AddTranslationStats(memory.translation_hits(), memory.translation_misses());
    merged.AddBoundlessStats(memory.boundless().stats());
  }
  return merged;
}

}  // namespace fob
