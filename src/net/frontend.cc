#include "src/net/frontend.h"

#include <utility>
#include <vector>

namespace fob {

namespace {

Frontend::Factory WithBudget(Frontend::Factory factory, uint64_t budget) {
  if (budget == 0) {
    return factory;
  }
  return [factory = std::move(factory), budget]() {
    std::unique_ptr<ServerApp> app = factory();
    app->memory().set_access_budget(budget);
    return app;
  };
}

}  // namespace

Frontend::Frontend(Factory factory, const Options& options)
    : options_(options),
      pool_(options.workers == 0 ? 1 : options.workers,
            WithBudget(std::move(factory), options.worker_access_budget)) {}

LineChannel& Frontend::Connect(uint64_t client_id) {
  std::unique_ptr<LineChannel>& slot = clients_[client_id];
  if (slot == nullptr) {
    slot = std::make_unique<LineChannel>();
  }
  return *slot;
}

void Frontend::Ingest() {
  // Fair sweep: take at most one line per client per round, so a chatty
  // client cannot starve the others — its requests interleave.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [client_id, channel] : clients_) {
      LineChannel::Recv recv = channel->ServerReceiveLine();
      if (!recv.has_line()) {
        continue;  // kNoInput or kClosed: nothing to read from this client
      }
      progress = true;
      auto request = ServerRequest::Deserialize(recv.line);
      if (!request) {
        ++stats_.rejected;
        ServerResponse malformed;
        malformed.error = "malformed request line";
        Respond(client_id, malformed);
        continue;
      }
      request->client_id = client_id;  // the connection authenticates the id
      pending_.push_back(Pending{client_id, std::move(*request)});
    }
  }
}

void Frontend::Respond(uint64_t client_id, const ServerResponse& response) {
  auto it = clients_.find(client_id);
  if (it != clients_.end()) {
    it->second->ServerSend(response.Serialize());
  }
  ++stats_.served;
}

void Frontend::ServePending() {
  size_t batch_limit = options_.batch == 0 ? 1 : options_.batch;
  while (!pending_.empty()) {
    size_t count = std::min(batch_limit, pending_.size());
    std::vector<Pending> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    std::vector<ServerResponse> responses(count);
    ++stats_.batches;
    BatchOutcome outcome = pool_.DispatchBatch(
        count, [&](ServerApp& app, size_t i) { responses[i] = app.Handle(batch[i].request); });
    for (size_t i = 0; i < outcome.completed; ++i) {
      Respond(batch[i].client_id, responses[i]);
    }
    if (!outcome.crashed) {
      continue;
    }
    // The worker died at batch[completed]: that request is lost (its client
    // sees the failure), the rest of the batch re-queues onto the
    // replacement worker, oldest first.
    ServerResponse failure;
    failure.status = 500;
    failure.error = "worker crashed: " + outcome.failure.detail;
    Respond(batch[outcome.completed].client_id, failure);
    ++stats_.failed;
    for (size_t i = count; i > outcome.completed + 1; --i) {
      pending_.push_front(std::move(batch[i - 1]));
      ++stats_.requeued;
    }
  }
}

size_t Frontend::Pump() {
  uint64_t served_before = stats_.served;
  Ingest();
  ServePending();
  return static_cast<size_t>(stats_.served - served_before);
}

bool Frontend::Idle() const {
  if (!pending_.empty()) {
    return false;
  }
  for (const auto& [client_id, channel] : clients_) {
    if (!channel->ServerAtEof()) {
      return false;
    }
  }
  return true;
}

size_t Frontend::Run() {
  size_t served = 0;
  while (!Idle()) {
    size_t this_pump = Pump();
    served += this_pump;
    if (this_pump == 0 && pending_.empty()) {
      // No progress and nothing queued: the remaining channels are open but
      // idle — in this single-threaded simulation no further input can
      // arrive, so waiting would spin forever.
      break;
    }
  }
  return served;
}

}  // namespace fob
