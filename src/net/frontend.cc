#include "src/net/frontend.h"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/runtime/adaptive.h"

namespace fob {

// Wraps the caller's factory into the pool's index-aware form: every worker
// (and every crash replacement for it) gets the access budget applied and
// its shard stamped with the stable worker index — the identity the
// deterministic log merge orders by. When a Rebind spec is in force, the
// replacement is rebound to it after construction, so a crash replacement
// serves under the current epoch's spec even though the base factory
// captured the construction-time (continuing) spec.
WorkerPool<ServerApp>::IndexedFactory Frontend::MakeWorkerFactory(Factory factory) {
  return [this, factory = std::move(factory)](size_t index) {
    std::unique_ptr<ServerApp> app = factory();
    ++incarnations_[index];
    ArmBudget(app->memory());
    app->memory().set_shard_id(static_cast<uint32_t>(index));
    if (respec_.has_value()) {
      app->memory().Rebind(*respec_);
    }
    return app;
  };
}

void Frontend::ArmBudget(Memory& memory) {
  if (options_.worker_access_budget != 0) {
    memory.set_access_budget(memory.access_count() + options_.worker_access_budget);
  }
}

Frontend::Frontend(Factory factory, const Options& options)
    : options_(options),
      incarnations_(options.workers == 0 ? 1 : options.workers, 0),
      pool_(options.workers == 0 ? 1 : options.workers, MakeWorkerFactory(std::move(factory))),
      lane_depth_(pool_.size(), 0) {
  // One persistent parked thread per lane. A single-lane pool always serves
  // inline and a legacy-dispatch pool forks per pump, so neither needs one.
  if (pool_.size() > 1 && !options_.legacy_dispatch) {
    executor_ = std::make_unique<LaneExecutor>(pool_.size());
  }
}

void Frontend::Rebind(const PolicySpec& spec) {
  respec_ = spec;
  for (size_t index = 0; index < pool_.size(); ++index) {
    Memory& memory = pool_.worker(index).memory();
    memory.Rebind(spec);
    ArmBudget(memory);
  }
}

void Frontend::FeedSiteObservations(AdaptivePolicyController& controller) {
  for (size_t index = 0; index < pool_.size(); ++index) {
    Memory& memory = pool_.worker(index).memory();
    controller.ObserveShardLog(memory.shard_id(), memory.log(), incarnations_[index]);
  }
}

LineChannel& Frontend::Connect(uint64_t client_id) {
  std::unique_ptr<LineChannel>& slot = clients_[client_id];
  if (slot == nullptr) {
    slot = std::make_unique<LineChannel>();
  }
  return *slot;
}

void Frontend::Disconnect(uint64_t client_id) {
  clients_.erase(client_id);
  affinity_.erase(client_id);
}

size_t Frontend::LaneOf(uint64_t client_id) {
  auto it = affinity_.find(client_id);
  if (it != affinity_.end()) {
    return it->second;
  }
  // Least-loaded bind, measured on the current pump's partial partition
  // depth. The scan starts at the round-robin cursor and only a *strictly*
  // shallower lane displaces the candidate, so all-equal depths (every lane
  // idle, the common case) degrade to exact round robin — which keeps the
  // binding deterministic for a fixed arrival order.
  const size_t lane_count = pool_.size();
  size_t best = next_lane_ % lane_count;
  for (size_t step = 1; step < lane_count; ++step) {
    const size_t lane = (next_lane_ + step) % lane_count;
    if (lane_depth_[lane] < lane_depth_[best]) {
      best = lane;
    }
  }
  next_lane_ = (best + 1) % lane_count;
  affinity_.emplace(client_id, best);
  return best;
}

void Frontend::Ingest() {
  // Fair sweep: take at most one line per client per round, so a chatty
  // client cannot starve the others — its requests interleave.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [client_id, channel] : clients_) {
      LineChannel::Recv recv = channel->ServerReceiveLine();
      if (!recv.has_line()) {
        continue;  // kNoInput or kClosed: nothing to read from this client
      }
      progress = true;
      auto request = ServerRequest::Deserialize(recv.line);
      if (!request) {
        ++stats_.rejected;
        ServerResponse malformed;
        malformed.error = "malformed request line";
        Respond(client_id, malformed);
        continue;
      }
      request->client_id = client_id;  // the connection authenticates the id
      pending_.push_back(Pending{client_id, next_seq_++, /*requeued=*/false, std::move(*request)});
    }
  }
}

void Frontend::Respond(uint64_t client_id, const ServerResponse& response) {
  auto it = clients_.find(client_id);
  if (it != clients_.end()) {
    it->second->ServerSend(response.Serialize());
  }
  ++stats_.served;
}

ServerResponse Frontend::OverloadedResponse(size_t lane) const {
  ServerResponse response;
  response.status = kOverloadedStatus;
  response.error = "overloaded: lane " + std::to_string(lane) + " past watermark " +
                   std::to_string(options_.shed_watermark);
  return response;
}

void Frontend::EvictClosedAffinities() {
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    auto client = clients_.find(it->first);
    if (client == clients_.end() || client->second->ServerAtEof()) {
      it = affinity_.erase(it);
    } else {
      ++it;
    }
  }
}

void Frontend::ServePending() {
  const size_t batch_limit = options_.batch == 0 ? 1 : options_.batch;
  const size_t lane_count = pool_.size();

  // A response waiting to be written, tagged with its request's submission
  // seq. Every response this pump — served, crash error, shed — funnels into
  // one seq-sorted write, so a client reads responses in the order it sent
  // requests no matter which lane (or no lane) produced each one.
  struct Outgoing {
    uint64_t seq = 0;
    uint64_t client_id = 0;
    ServerResponse response;
  };
  std::vector<Outgoing> shed;

  // Partition the backlog: each request moves to its client's sticky lane
  // unless that lane is already past the shed watermark, in which case the
  // request is answered kOverloadedStatus instead of queued — explicit
  // backpressure, never a silently growing queue. Crash-requeued work is
  // exempt: recovery must drain.
  std::fill(lane_depth_.begin(), lane_depth_.end(), 0);
  std::vector<std::deque<Pending>> lanes(lane_count);
  while (!pending_.empty()) {
    Pending item = std::move(pending_.front());
    pending_.pop_front();
    const size_t lane = LaneOf(item.client_id);
    if (options_.shed_watermark != 0 && !item.requeued &&
        lane_depth_[lane] >= options_.shed_watermark) {
      ++stats_.shed;
      shed.push_back(Outgoing{item.seq, item.client_id, OverloadedResponse(lane)});
      continue;
    }
    lanes[lane].push_back(std::move(item));
    ++lane_depth_[lane];
  }
  for (size_t depth : lane_depth_) {
    stats_.max_lane_depth = std::max<uint64_t>(stats_.max_lane_depth, depth);
  }

  // Chunk each lane's queue into dispatch-ready batches. Pre-chunking is
  // what makes stealing whole-batch and cheap: the plan reassigns vectors,
  // never splits one.
  std::vector<std::deque<std::vector<Pending>>> plan(lane_count);
  for (size_t lane = 0; lane < lane_count; ++lane) {
    std::deque<Pending>& queue = lanes[lane];
    while (!queue.empty()) {
      const size_t count = std::min(batch_limit, queue.size());
      std::vector<Pending> batch;
      batch.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      plan[lane].push_back(std::move(batch));
    }
  }

  // Steal plan, computed single-threaded before any wakeup so it is a pure
  // function of the partition: repeatedly move the *last* batch of the most
  // backlogged lane (ties: lowest id) to the emptiest originally-idle lane
  // (ties: lowest id), until no move would still leave the victim ahead.
  // Only this pump's idle lanes ever receive stolen work — a busy lane's own
  // backlog is its sticky clients' order, and runs untouched, in order.
  if (options_.steal && lane_count > 1) {
    std::vector<size_t> idle;
    for (size_t lane = 0; lane < lane_count; ++lane) {
      if (plan[lane].empty()) {
        idle.push_back(lane);
      }
    }
    while (!idle.empty()) {
      size_t victim = 0;
      for (size_t lane = 1; lane < lane_count; ++lane) {
        if (plan[lane].size() > plan[victim].size()) {
          victim = lane;
        }
      }
      size_t thief = idle.front();
      for (size_t lane : idle) {
        if (plan[lane].size() < plan[thief].size()) {
          thief = lane;
        }
      }
      if (plan[victim].size() <= plan[thief].size() + 1) {
        break;  // another move would just swap who is backlogged
      }
      plan[thief].push_back(std::move(plan[victim].back()));
      plan[victim].pop_back();
      ++stats_.stolen_batches;
    }
  }

  // Each active lane drains its planned batches on its persistent executor
  // thread against its own worker/shard — crash remainders re-queued as the
  // lane's next batch, so a crashing lane pays restart + re-batch latency
  // while the other lanes stream on. A lane thread writes only its own
  // LaneResult slot; the main thread reads the slots after the round — the
  // only other cross-thread state is the pool's atomic restart counter.
  struct LaneResult {
    std::vector<Outgoing> responses;  // serve order; crash errors included
    uint64_t failed = 0;
    uint64_t requeued = 0;
    uint64_t batches = 0;
    // A non-Fault exception that escaped the lane (a harness bug, not a
    // simulated crash): captured here and rethrown on the main thread, so
    // it stays as catchable as it was under single-threaded dispatch.
    std::exception_ptr error;
  };
  std::vector<LaneResult> results(lane_count);
  auto serve_lane = [&](size_t lane) {
    LaneResult& result = results[lane];
    try {
      std::deque<std::vector<Pending>>& queue = plan[lane];
      while (!queue.empty()) {
        std::vector<Pending> batch = std::move(queue.front());
        queue.pop_front();
        const size_t count = batch.size();
        std::vector<ServerResponse> out(count);
        ++result.batches;
        BatchOutcome outcome = pool_.DispatchBatchOn(
            lane, count, [&](ServerApp& app, size_t i) { out[i] = app.Handle(batch[i].request); });
        for (size_t i = 0; i < outcome.completed; ++i) {
          result.responses.push_back(
              Outgoing{batch[i].seq, batch[i].client_id, std::move(out[i])});
        }
        if (!outcome.crashed) {
          continue;
        }
        // The worker died at batch[completed]: that request is lost (its
        // client sees the failure), the rest of the batch re-queues onto
        // the replacement worker as this lane's next batch, marked exempt
        // from shedding — recovery work is never shed.
        ServerResponse failure;
        failure.status = 500;
        failure.error = "worker crashed: " + outcome.failure.detail;
        result.responses.push_back(Outgoing{batch[outcome.completed].seq,
                                            batch[outcome.completed].client_id,
                                            std::move(failure)});
        ++result.failed;
        if (outcome.completed + 1 < count) {
          std::vector<Pending> remainder;
          remainder.reserve(count - outcome.completed - 1);
          for (size_t i = outcome.completed + 1; i < count; ++i) {
            batch[i].requeued = true;
            remainder.push_back(std::move(batch[i]));
            ++result.requeued;
          }
          queue.push_front(std::move(remainder));
        }
      }
    } catch (...) {
      result.error = std::current_exception();
    }
  };

  std::vector<size_t> active;
  for (size_t lane = 0; lane < lane_count; ++lane) {
    if (!plan[lane].empty()) {
      active.push_back(lane);
    }
  }
  if (active.size() == 1) {
    serve_lane(active.front());  // one lane: skip the wakeup round trip
  } else if (!active.empty()) {
    if (executor_ != nullptr) {
      executor_->RunRound(active, serve_lane);
    } else {
      // Legacy fork/join baseline: a fresh thread per active lane per pump.
      std::vector<std::thread> threads;
      threads.reserve(active.size());
      for (size_t lane : active) {
        threads.emplace_back(serve_lane, lane);
      }
      for (std::thread& t : threads) {
        t.join();
      }
    }
  }

  // Post-join, single-threaded: merge shed responses and every lane's
  // served responses, sort by submission seq, and write — original
  // submission order, independent of lane interleaving and stealing. Then
  // fold the per-lane accounting.
  std::vector<Outgoing> outgoing = std::move(shed);
  for (size_t lane : active) {
    for (Outgoing& out : results[lane].responses) {
      outgoing.push_back(std::move(out));
    }
    stats_.failed += results[lane].failed;
    stats_.requeued += results[lane].requeued;
    stats_.batches += results[lane].batches;
  }
  std::sort(outgoing.begin(), outgoing.end(),
            [](const Outgoing& a, const Outgoing& b) { return a.seq < b.seq; });
  for (Outgoing& out : outgoing) {
    Respond(out.client_id, out.response);
  }

  // A lane that threw left planned batches unserved; hand them back to
  // pending_ in submission order, shed-exempt (they were already accepted),
  // so a caller that catches the rethrow below and pumps again loses
  // nothing. A clean round leaves every plan empty.
  std::vector<Pending> leftover;
  for (std::deque<std::vector<Pending>>& queue : plan) {
    for (std::vector<Pending>& batch : queue) {
      for (Pending& item : batch) {
        item.requeued = true;
        leftover.push_back(std::move(item));
      }
    }
  }
  std::sort(leftover.begin(), leftover.end(),
            [](const Pending& a, const Pending& b) { return a.seq < b.seq; });
  for (Pending& item : leftover) {
    pending_.push_back(std::move(item));
  }

  std::fill(lane_depth_.begin(), lane_depth_.end(), 0);
  for (size_t lane : active) {
    if (results[lane].error) {
      std::rethrow_exception(results[lane].error);
    }
  }
}

size_t Frontend::Pump() {
  uint64_t served_before = stats_.served;
  Ingest();
  ServePending();
  // A channel at EOF (closed and drained) can never produce another
  // request; dropping its affinity entry here keeps the map bounded by
  // *open* clients rather than clients ever seen.
  EvictClosedAffinities();
  return static_cast<size_t>(stats_.served - served_before);
}

bool Frontend::Idle() const {
  if (!pending_.empty()) {
    return false;
  }
  for (const auto& [client_id, channel] : clients_) {
    if (!channel->ServerAtEof()) {
      return false;
    }
  }
  return true;
}

size_t Frontend::Run() {
  size_t served = 0;
  while (!Idle()) {
    size_t this_pump = Pump();
    served += this_pump;
    if (this_pump == 0 && pending_.empty()) {
      // No progress and nothing queued: the remaining channels are open but
      // idle — no further input can arrive between pumps, so waiting would
      // spin forever.
      break;
    }
  }
  return served;
}

MemLog Frontend::MergedLog() {
  // Size the merged detail ring to hold every shard's ring, so merging
  // cannot silently drop records the shards still hold (aggregates are
  // exact either way).
  size_t capacity = 0;
  for (size_t index = 0; index < pool_.size(); ++index) {
    capacity += pool_.worker(index).memory().log().capacity();
  }
  MemLog merged(capacity);
  for (size_t index = 0; index < pool_.size(); ++index) {
    const Memory& memory = pool_.worker(index).memory();
    merged.Merge(memory.log());
    // Fast-path counters and boundless-store accounting live on the shard,
    // not in its log; fold them in here so the merged view carries the
    // pool's translation and OOB-storage profiles.
    merged.AddTranslationStats(memory.translation_hits(), memory.translation_misses());
    merged.AddBoundlessStats(memory.boundless().stats());
  }
  // Scheduler counters live on the frontend, not any shard; fold them in so
  // Summary() tells the overload/stealing story alongside the error story.
  merged.AddSchedulerStats(stats_.shed, stats_.stolen_batches, stats_.max_lane_depth);
  return merged;
}

}  // namespace fob
