#include "src/net/smtp.h"

#include <cctype>

namespace fob {

SmtpCommand ParseSmtpCommand(std::string_view line) {
  SmtpCommand command;
  size_t i = 0;
  while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
         line[i] != ':') {
    command.verb.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(line[i]))));
    ++i;
  }
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  command.arg = std::string(line.substr(i));
  while (!command.arg.empty() &&
         std::isspace(static_cast<unsigned char>(command.arg.back()))) {
    command.arg.pop_back();
  }
  return command;
}

std::optional<std::string> ExtractAngleAddress(std::string_view arg) {
  size_t open = arg.find('<');
  if (open == std::string_view::npos) {
    return std::nullopt;
  }
  size_t close = arg.rfind('>');
  if (close == std::string_view::npos || close < open) {
    return std::nullopt;
  }
  return std::string(arg.substr(open + 1, close - open - 1));
}

}  // namespace fob
