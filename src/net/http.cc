#include "src/net/http.h"

#include <algorithm>
#include <sstream>

#include "src/runtime/memory.h"

namespace fob {

namespace {

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimView(std::string_view s) {
  size_t start = s.find_first_not_of(" \t\r");
  if (start == std::string_view::npos) {
    return {};
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

}  // namespace

std::optional<HttpRequest> HttpRequest::Parse(std::string_view text) {
  HttpRequest request;
  size_t line_end = text.find('\n');
  std::string_view request_line = text.substr(0, line_end == std::string_view::npos
                                                     ? text.size()
                                                     : line_end);
  request_line = TrimView(request_line);
  size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) {
    return std::nullopt;
  }
  size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return std::nullopt;
  }
  request.method = std::string(request_line.substr(0, sp1));
  request.path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.path.empty() || request.version.substr(0, 5) != "HTTP/") {
    return std::nullopt;
  }
  // Headers until a blank line.
  size_t pos = line_end == std::string_view::npos ? text.size() : line_end + 1;
  while (pos < text.size()) {
    size_t next = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, next == std::string_view::npos ? text.size() - pos : next - pos);
    pos = next == std::string_view::npos ? text.size() : next + 1;
    line = TrimView(line);
    if (line.empty()) {
      break;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;  // tolerate junk header lines
    }
    request.headers.emplace_back(std::string(TrimView(line.substr(0, colon))),
                                 std::string(TrimView(line.substr(colon + 1))));
  }
  return request;
}

std::optional<HttpRequest> HttpRequest::Parse(Memory& memory, Ptr text, size_t size) {
  return Parse(memory.ReadSpanAsString(text, size));
}

std::string HttpRequest::Serialize() const {
  std::ostringstream os;
  os << method << " " << path << " " << version << "\r\n";
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "\r\n";
  return os.str();
}

std::string HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (IEquals(key, name)) {
      return value;
    }
  }
  return {};
}

HttpResponse HttpResponse::Ok(std::string body, std::string content_type) {
  HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.headers.emplace_back("Content-Type", std::move(content_type));
  response.headers.emplace_back("Content-Length", std::to_string(body.size()));
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::NotFound(std::string_view path) {
  HttpResponse response;
  response.status = 404;
  response.reason = "Not Found";
  response.body = "<html><body><h1>404 Not Found</h1><p>" + std::string(path) +
                  "</p></body></html>\n";
  response.headers.emplace_back("Content-Type", "text/html");
  response.headers.emplace_back("Content-Length", std::to_string(response.body.size()));
  return response;
}

HttpResponse HttpResponse::BadRequest(std::string detail) {
  HttpResponse response;
  response.status = 400;
  response.reason = "Bad Request";
  response.body = "<html><body><h1>400 Bad Request</h1><p>" + detail + "</p></body></html>\n";
  response.headers.emplace_back("Content-Type", "text/html");
  response.headers.emplace_back("Content-Length", std::to_string(response.body.size()));
  return response;
}

std::string HttpResponse::Serialize() const {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << " " << reason << "\r\n";
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "\r\n" << body;
  return os.str();
}

}  // namespace fob
