// SMTP command parsing helpers for mini-Sendmail.

#ifndef SRC_NET_SMTP_H_
#define SRC_NET_SMTP_H_

#include <optional>
#include <string>
#include <string_view>

namespace fob {

struct SmtpCommand {
  std::string verb;  // uppercased: HELO, MAIL, RCPT, DATA, QUIT, RSET, NOOP
  std::string arg;   // remainder after the verb, trimmed
};

SmtpCommand ParseSmtpCommand(std::string_view line);

// "FROM:<user@host>" / "TO:<user@host>" -> "user@host". Returns nullopt if
// the angle brackets are missing. The address is NOT validated — that is the
// server's (vulnerable) job.
std::optional<std::string> ExtractAngleAddress(std::string_view arg);

}  // namespace fob

#endif  // SRC_NET_SMTP_H_
