// Mini IMAP folder server.
//
// Just enough IMAP for the Mutt experiment (§4.6): folders are stored under
// their modified-UTF-7 names (the on-the-wire form); SELECT of a nonexistent
// folder answers "NO Mailbox does not exist" — the anticipated error case
// Mutt's standard error handling processes after failure-oblivious execution
// truncates the converted folder name.

#ifndef SRC_NET_IMAP_H_
#define SRC_NET_IMAP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/mail/message.h"

namespace fob {

class ImapServer {
 public:
  // Adds a folder by UTF-8 name (stored under its modified-UTF-7 encoding).
  // Returns false if the name is not valid UTF-8.
  bool AddFolderUtf8(const std::string& utf8_name, std::vector<MailMessage> messages);

  struct SelectResult {
    bool ok = false;
    std::string response;  // the tagged IMAP response line
    size_t message_count = 0;
  };

  // SELECT with the wire-format (modified UTF-7) mailbox name.
  SelectResult Select(const std::string& utf7_name) const;

  // 1-based message fetch from a selected folder.
  std::optional<MailMessage> Fetch(const std::string& utf7_name, size_t index) const;

  // Moves message `index` (1-based) from one folder to another. Returns
  // false if either folder or the message is missing.
  bool MoveMessage(const std::string& from_utf7, size_t index, const std::string& to_utf7);

  // Appends a message to a folder; false if the folder is missing.
  bool Append(const std::string& utf7_name, MailMessage message);

  std::vector<std::string> ListUtf7() const;
  size_t folder_count() const { return folders_.size(); }

 private:
  std::map<std::string, std::vector<MailMessage>> folders_;  // by UTF-7 name
};

}  // namespace fob

#endif  // SRC_NET_IMAP_H_
