// In-memory line-oriented connection.
//
// Stands in for a TCP connection between a client (the attacker or a
// legitimate user agent) and a server under test. Both mini-Sendmail's SMTP
// dialogue and the Frontend (src/net/frontend.h) drive servers through one
// of these.
//
// Each direction has explicit close/EOF semantics: a closed direction with
// drained queue is end-of-stream, which ServerReceiveLine/ClientReceiveLine
// report distinctly from "no input yet" — the Frontend needs the difference
// to know when a multiplexed client is finished rather than merely idle.
// The optional-returning ServerReceive/ClientReceive remain for callers
// that never close (they conflate the two, as before).

#ifndef SRC_NET_CHANNEL_H_
#define SRC_NET_CHANNEL_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace fob {

class LineChannel {
 public:
  enum class RecvStatus {
    kLine,     // a line was received
    kNoInput,  // nothing queued, but the peer may still send
    kClosed,   // the peer closed and everything queued has been drained
  };
  struct Recv {
    RecvStatus status = RecvStatus::kNoInput;
    std::string line;

    bool has_line() const { return status == RecvStatus::kLine; }
    bool closed() const { return status == RecvStatus::kClosed; }
  };

  // ---- Client -> server direction ----------------------------------------

  // Sending on a closed direction is a dropped packet (the connection is
  // gone), matching what a real half-closed socket would do to the writer.
  void ClientSend(std::string line) {
    if (!client_closed_) {
      to_server_.push_back(std::move(line));
    }
  }
  // Half-close: no more client lines. Queued lines remain receivable; the
  // server sees kClosed only after draining them.
  void ClientClose() { client_closed_ = true; }
  bool client_closed() const { return client_closed_; }

  Recv ServerReceiveLine() {
    if (to_server_.empty()) {
      return Recv{client_closed_ ? RecvStatus::kClosed : RecvStatus::kNoInput, {}};
    }
    Recv recv{RecvStatus::kLine, std::move(to_server_.front())};
    to_server_.pop_front();
    return recv;
  }
  // Legacy form: a line, or nullopt for *either* "no input yet" or
  // "closed". Prefer ServerReceiveLine when the difference matters.
  std::optional<std::string> ServerReceive() {
    Recv recv = ServerReceiveLine();
    if (!recv.has_line()) {
      return std::nullopt;
    }
    return std::move(recv.line);
  }
  bool ServerHasInput() const { return !to_server_.empty(); }
  // End-of-stream from the server's perspective: closed and drained.
  bool ServerAtEof() const { return client_closed_ && to_server_.empty(); }

  // ---- Server -> client direction ----------------------------------------

  void ServerSend(std::string line) {
    if (!server_closed_) {
      to_client_.push_back(std::move(line));
    }
  }
  void ServerClose() { server_closed_ = true; }
  bool server_closed() const { return server_closed_; }

  Recv ClientReceiveLine() {
    if (to_client_.empty()) {
      return Recv{server_closed_ ? RecvStatus::kClosed : RecvStatus::kNoInput, {}};
    }
    Recv recv{RecvStatus::kLine, std::move(to_client_.front())};
    to_client_.pop_front();
    return recv;
  }
  std::optional<std::string> ClientReceive() {
    Recv recv = ClientReceiveLine();
    if (!recv.has_line()) {
      return std::nullopt;
    }
    return std::move(recv.line);
  }
  std::vector<std::string> ClientReceiveAll() {
    std::vector<std::string> lines(to_client_.begin(), to_client_.end());
    to_client_.clear();
    return lines;
  }
  bool ClientAtEof() const { return server_closed_ && to_client_.empty(); }

 private:
  std::deque<std::string> to_server_;
  std::deque<std::string> to_client_;
  bool client_closed_ = false;
  bool server_closed_ = false;
};

}  // namespace fob

#endif  // SRC_NET_CHANNEL_H_
