// In-memory line-oriented connection.
//
// Stands in for a TCP connection between a client (the attacker or a
// legitimate user agent) and a server under test. Both mini-Sendmail's SMTP
// dialogue and the stability harness drive servers through one of these.

#ifndef SRC_NET_CHANNEL_H_
#define SRC_NET_CHANNEL_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace fob {

class LineChannel {
 public:
  // Client -> server direction.
  void ClientSend(std::string line) { to_server_.push_back(std::move(line)); }
  std::optional<std::string> ServerReceive() {
    if (to_server_.empty()) {
      return std::nullopt;
    }
    std::string line = std::move(to_server_.front());
    to_server_.pop_front();
    return line;
  }
  bool ServerHasInput() const { return !to_server_.empty(); }

  // Server -> client direction.
  void ServerSend(std::string line) { to_client_.push_back(std::move(line)); }
  std::optional<std::string> ClientReceive() {
    if (to_client_.empty()) {
      return std::nullopt;
    }
    std::string line = std::move(to_client_.front());
    to_client_.pop_front();
    return line;
  }
  std::vector<std::string> ClientReceiveAll() {
    std::vector<std::string> lines(to_client_.begin(), to_client_.end());
    to_client_.clear();
    return lines;
  }

 private:
  std::deque<std::string> to_server_;
  std::deque<std::string> to_client_;
};

}  // namespace fob

#endif  // SRC_NET_CHANNEL_H_
