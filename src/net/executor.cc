#include "src/net/executor.h"

namespace fob {

LaneExecutor::LaneExecutor(size_t lanes) : has_work_(lanes, 0) {
  threads_.reserve(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    threads_.emplace_back(&LaneExecutor::WorkerMain, this, lane);
    ++threads_started_;
  }
}

LaneExecutor::~LaneExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void LaneExecutor::WorkerMain(size_t lane) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || has_work_[lane] != 0; });
    if (has_work_[lane] == 0) {
      return;  // stop requested with nothing assigned
    }
    has_work_[lane] = 0;
    const Job* job = job_;
    lock.unlock();
    (*job)(lane);
    lock.lock();
    if (--outstanding_ == 0) {
      done_cv_.notify_one();  // only RunRound's caller waits here
    }
  }
}

void LaneExecutor::RunRound(const std::vector<size_t>& active, const Job& job) {
  if (active.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    for (size_t lane : active) {
      has_work_[lane] = 1;
    }
    outstanding_ = active.size();
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  job_ = nullptr;
}

}  // namespace fob
