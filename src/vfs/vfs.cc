#include "src/vfs/vfs.h"

namespace fob {

Vfs::Vfs() : root_(std::make_unique<Node>()) {}

Vfs::Vfs(const Vfs& other) : root_(other.root_->Clone()) {}

Vfs& Vfs::operator=(const Vfs& other) {
  if (this != &other) {
    root_ = other.root_->Clone();
  }
  return *this;
}

std::unique_ptr<Vfs::Node> Vfs::Node::Clone() const {
  auto copy = std::make_unique<Node>();
  copy->type = type;
  copy->contents = contents;
  for (const auto& [name, child] : children) {
    copy->children.emplace(name, child->Clone());
  }
  return copy;
}

std::optional<std::vector<std::string>> Vfs::SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return std::nullopt;
  }
  std::vector<std::string> parts;
  size_t pos = 1;
  while (pos <= path.size()) {
    size_t next = path.find('/', pos);
    std::string_view part =
        path.substr(pos, next == std::string_view::npos ? path.size() - pos : next - pos);
    pos = next == std::string_view::npos ? path.size() + 1 : next + 1;
    if (part.empty()) {
      continue;  // tolerate trailing or doubled slashes
    }
    if (part == "." || part == "..") {
      return std::nullopt;
    }
    parts.emplace_back(part);
  }
  return parts;
}

const Vfs::Node* Vfs::Find(std::string_view path) const {
  auto parts = SplitPath(path);
  if (!parts) {
    return nullptr;
  }
  const Node* node = root_.get();
  for (const std::string& part : *parts) {
    if (node->type != VfsNodeType::kDirectory) {
      return nullptr;
    }
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

Vfs::Node* Vfs::Find(std::string_view path) {
  return const_cast<Node*>(static_cast<const Vfs*>(this)->Find(path));
}

Vfs::Node* Vfs::FindParent(std::string_view path, std::string* leaf, bool create_parents) {
  auto parts = SplitPath(path);
  if (!parts || parts->empty()) {
    return nullptr;
  }
  *leaf = parts->back();
  parts->pop_back();
  Node* node = root_.get();
  for (const std::string& part : *parts) {
    if (node->type != VfsNodeType::kDirectory) {
      return nullptr;
    }
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      if (!create_parents) {
        return nullptr;
      }
      auto fresh = std::make_unique<Node>();
      it = node->children.emplace(part, std::move(fresh)).first;
    }
    node = it->second.get();
  }
  return node->type == VfsNodeType::kDirectory ? node : nullptr;
}

bool Vfs::MkDir(std::string_view path, bool create_parents) {
  std::string leaf;
  Node* parent = FindParent(path, &leaf, create_parents);
  if (parent == nullptr || parent->children.count(leaf) > 0) {
    return false;
  }
  parent->children.emplace(leaf, std::make_unique<Node>());
  return true;
}

bool Vfs::WriteFile(std::string_view path, std::string contents, bool create_parents) {
  std::string leaf;
  Node* parent = FindParent(path, &leaf, create_parents);
  if (parent == nullptr) {
    return false;
  }
  auto it = parent->children.find(leaf);
  if (it != parent->children.end()) {
    if (it->second->type != VfsNodeType::kFile) {
      return false;
    }
    it->second->contents = std::move(contents);
    return true;
  }
  auto node = std::make_unique<Node>();
  node->type = VfsNodeType::kFile;
  node->contents = std::move(contents);
  parent->children.emplace(leaf, std::move(node));
  return true;
}

bool Vfs::SymLink(std::string_view path, std::string target, bool create_parents) {
  std::string leaf;
  Node* parent = FindParent(path, &leaf, create_parents);
  if (parent == nullptr || parent->children.count(leaf) > 0) {
    return false;
  }
  auto node = std::make_unique<Node>();
  node->type = VfsNodeType::kSymlink;
  node->contents = std::move(target);
  parent->children.emplace(leaf, std::move(node));
  return true;
}

std::optional<std::string> Vfs::ReadFile(std::string_view path) const {
  const Node* node = Find(path);
  if (node == nullptr || node->type != VfsNodeType::kFile) {
    return std::nullopt;
  }
  return node->contents;
}

std::optional<std::string> Vfs::ReadLink(std::string_view path) const {
  const Node* node = Find(path);
  if (node == nullptr || node->type != VfsNodeType::kSymlink) {
    return std::nullopt;
  }
  return node->contents;
}

bool Vfs::Exists(std::string_view path) const { return Find(path) != nullptr; }

bool Vfs::IsDirectory(std::string_view path) const {
  const Node* node = Find(path);
  return node != nullptr && node->type == VfsNodeType::kDirectory;
}

std::optional<uint64_t> Vfs::FileSize(std::string_view path) const {
  const Node* node = Find(path);
  if (node == nullptr || node->type != VfsNodeType::kFile) {
    return std::nullopt;
  }
  return node->contents.size();
}

std::optional<std::vector<std::string>> Vfs::List(std::string_view path) const {
  const Node* node = Find(path);
  if (node == nullptr || node->type != VfsNodeType::kDirectory) {
    return std::nullopt;
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    (void)child;
    names.push_back(name);
  }
  return names;
}

bool Vfs::Remove(std::string_view path) {
  std::string leaf;
  Node* parent = FindParent(path, &leaf, /*create_parents=*/false);
  if (parent == nullptr) {
    return false;
  }
  return parent->children.erase(leaf) > 0;
}

bool Vfs::Copy(std::string_view src, std::string_view dst) {
  const Node* source = Find(src);
  if (source == nullptr) {
    return false;
  }
  std::unique_ptr<Node> clone = source->Clone();
  std::string leaf;
  Node* parent = FindParent(dst, &leaf, /*create_parents=*/false);
  if (parent == nullptr || parent->children.count(leaf) > 0) {
    return false;
  }
  parent->children.emplace(leaf, std::move(clone));
  return true;
}

bool Vfs::Move(std::string_view src, std::string_view dst) {
  if (!Copy(src, dst)) {
    return false;
  }
  return Remove(src);
}

namespace {
uint64_t TreeBytesOf(const Vfs& vfs, const std::string& path) {
  uint64_t total = 0;
  if (auto size = vfs.FileSize(path)) {
    return *size;
  }
  auto children = vfs.List(path);
  if (!children) {
    return 0;
  }
  for (const std::string& name : *children) {
    total += TreeBytesOf(vfs, path == "/" ? "/" + name : path + "/" + name);
  }
  return total;
}

size_t TreeCountOf(const Vfs& vfs, const std::string& path) {
  size_t total = 1;
  auto children = vfs.List(path);
  if (!children) {
    return total;
  }
  for (const std::string& name : *children) {
    total += TreeCountOf(vfs, path == "/" ? "/" + name : path + "/" + name);
  }
  return total;
}
}  // namespace

uint64_t Vfs::TreeBytes(std::string_view path) const {
  if (!Exists(path)) {
    return 0;
  }
  return TreeBytesOf(*this, std::string(path));
}

size_t Vfs::TreeCount(std::string_view path) const {
  if (!Exists(path)) {
    return 0;
  }
  return TreeCountOf(*this, std::string(path));
}

uint64_t PopulateTree(Vfs& fs, const std::string& root, uint64_t bytes) {
  fs.MkDir(root, true);
  uint64_t written = 0;
  size_t file_index = 0;
  std::string chunk(64 << 10, 'd');
  while (written < bytes) {
    std::string dir = root + "/d" + std::to_string(file_index / 16);
    size_t take = static_cast<size_t>(std::min<uint64_t>(chunk.size(), bytes - written));
    fs.WriteFile(dir + "/f" + std::to_string(file_index) + ".dat", chunk.substr(0, take), true);
    written += take;
    ++file_index;
  }
  return written;
}

}  // namespace fob
