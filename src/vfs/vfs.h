// In-memory filesystem.
//
// The "disk" mini-Apache serves its docroot from and the tree Midnight
// Commander's file operations (Copy/Move/MkDir/Delete, Figure 5) manipulate.
// Paths are '/'-separated, absolute ("/a/b/c"); "." and ".." components are
// not interpreted (Resolve rejects them), which is also the sandboxing rule
// the HTTP server relies on.

#ifndef SRC_VFS_VFS_H_
#define SRC_VFS_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fob {

enum class VfsNodeType { kDirectory, kFile, kSymlink };

class Vfs {
 public:
  Vfs();
  // Deep-copying a whole filesystem is meaningful (worker "fork" images).
  Vfs(const Vfs& other);
  Vfs& operator=(const Vfs& other);
  Vfs(Vfs&&) = default;
  Vfs& operator=(Vfs&&) = default;

  // All mutators create missing parent directories like `mkdir -p` when
  // `create_parents` is true, and fail (returning false) otherwise.
  bool MkDir(std::string_view path, bool create_parents = false);
  bool WriteFile(std::string_view path, std::string contents, bool create_parents = false);
  bool SymLink(std::string_view path, std::string target, bool create_parents = false);

  std::optional<std::string> ReadFile(std::string_view path) const;
  std::optional<std::string> ReadLink(std::string_view path) const;
  bool Exists(std::string_view path) const;
  bool IsDirectory(std::string_view path) const;
  std::optional<uint64_t> FileSize(std::string_view path) const;

  // Directory listing: child names (not full paths), sorted.
  std::optional<std::vector<std::string>> List(std::string_view path) const;

  // Recursive remove. False if the path does not exist.
  bool Remove(std::string_view path);
  // Recursive copy (directories deep-copied). False if src missing or dst
  // parent missing.
  bool Copy(std::string_view src, std::string_view dst);
  // Copy + Remove.
  bool Move(std::string_view src, std::string_view dst);

  // Total bytes of file content under path (0 if missing).
  uint64_t TreeBytes(std::string_view path) const;
  // Number of nodes under (and including) path.
  size_t TreeCount(std::string_view path) const;

  // Splits a path into components; rejects empty, non-absolute, "." / ".."
  // components. Empty vector = root.
  static std::optional<std::vector<std::string>> SplitPath(std::string_view path);

 private:
  struct Node {
    VfsNodeType type = VfsNodeType::kDirectory;
    std::string contents;  // file data or symlink target
    std::map<std::string, std::unique_ptr<Node>> children;

    std::unique_ptr<Node> Clone() const;
  };

  const Node* Find(std::string_view path) const;
  Node* Find(std::string_view path);
  // Parent directory of path + leaf name; creates parents on demand.
  Node* FindParent(std::string_view path, std::string* leaf, bool create_parents);

  std::unique_ptr<Node> root_;
};

// Populates `fs` with a directory tree of roughly `bytes` of file content
// under `root` (64 KiB files, 16 per directory) and returns the actual byte
// count. The tree Figure 5's file-management requests operate on; exposed
// here so both the workload generators and MC's "mktree" setup op build the
// same shape.
uint64_t PopulateTree(Vfs& fs, const std::string& root, uint64_t bytes);

}  // namespace fob

#endif  // SRC_VFS_VFS_H_
