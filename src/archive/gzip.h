// gzip container with stored (uncompressed) DEFLATE blocks.
//
// The paper's Midnight Commander attack arrives as a .tgz. Building a full
// DEFLATE codec is out of scope for what the experiment exercises — the
// vulnerable code operates on the *decompressed* entry stream — so this
// module implements the honest subset: a real gzip container (magic, flags,
// CRC32, ISIZE) whose DEFLATE payload uses stored blocks only (BTYPE=00,
// what `gzip -0` conceptually emits). Any archive produced by GzipStore
// round-trips through GunzipStore with full CRC verification; archives that
// use Huffman-compressed blocks are reported as unsupported, not silently
// misparsed. DESIGN.md records this substitution.

#ifndef SRC_ARCHIVE_GZIP_H_
#define SRC_ARCHIVE_GZIP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fob {

// CRC-32 (IEEE 802.3), the checksum gzip uses.
uint32_t Crc32(std::string_view data);

// Wraps data in a gzip member whose DEFLATE stream is stored blocks.
std::string GzipStore(std::string_view data);

// Same container, but with the FNAME flag set and `name` recorded as the
// member's original file name (NUL-terminated, immediately after the fixed
// header, per RFC 1952). GunzipStore already skips the field; the archive
// inbox server (src/apps/archive_inbox.h) parses it through the gzip
// 1.2.4-style fixed name buffer — the attack surface this writer feeds.
std::string GzipStoreWithName(std::string_view data, std::string_view name);

// Byte offset of the FNAME field in `bytes`, when the member has one
// (magic + FLG bit 3), and the offset just past its terminating NUL.
// nullopt when there is no parseable FNAME field. Host-side header math
// shared by the honest decoder and the vulnerable inbox parser.
struct GzipNameField {
  size_t offset = 0;  // first byte of the name
  size_t end = 0;     // one past the NUL (== offset of the next field)
};
std::optional<GzipNameField> FindGzipName(std::string_view bytes);

enum class GunzipError {
  kBadMagic,
  kUnsupportedCompression,  // a BTYPE other than stored
  kTruncated,
  kBadCrc,
  kBadLength,
};

// Decodes a stored-block gzip member. On failure returns nullopt and, if
// error != nullptr, the reason.
std::optional<std::string> GunzipStore(std::string_view bytes, GunzipError* error = nullptr);

}  // namespace fob

#endif  // SRC_ARCHIVE_GZIP_H_
