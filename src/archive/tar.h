// ustar (POSIX tar) archives, in memory.
//
// Midnight Commander's vulnerability (§4.5) lives in its tgz virtual
// filesystem: symlink entries with absolute targets get rewritten to
// archive-relative names in an uninitialized stack buffer. This module
// provides the archive substrate: header parsing with checksum validation,
// entry extraction, and a writer the attack-workload generator uses to craft
// malicious archives.

#ifndef SRC_ARCHIVE_TAR_H_
#define SRC_ARCHIVE_TAR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fob {

enum class TarEntryType {
  kFile,     // typeflag '0' or '\0'
  kSymlink,  // typeflag '2'
  kDirectory,  // typeflag '5'
};

struct TarEntry {
  std::string name;
  TarEntryType type = TarEntryType::kFile;
  std::string link_target;  // for symlinks
  std::string data;         // for files

  static TarEntry File(std::string name, std::string data);
  static TarEntry Symlink(std::string name, std::string target);
  static TarEntry Directory(std::string name);
};

// Serializes entries as a ustar archive (512-byte blocks, two zero blocks at
// the end). Names and link targets longer than 99 bytes are unsupported and
// make this return an empty string.
std::string WriteTar(const std::vector<TarEntry>& entries);

// Parses an archive; nullopt on malformed headers or checksum mismatch.
std::optional<std::vector<TarEntry>> ReadTar(std::string_view bytes);

}  // namespace fob

#endif  // SRC_ARCHIVE_TAR_H_
