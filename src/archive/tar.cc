#include "src/archive/tar.h"

#include <cstring>

namespace fob {

namespace {

constexpr size_t kBlock = 512;

struct Header {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char padding[12];
};
static_assert(sizeof(Header) == kBlock, "ustar header must be one block");

void WriteOctal(char* field, size_t width, uint64_t value) {
  // width-1 octal digits, NUL terminated.
  for (size_t i = width - 1; i-- > 0;) {
    field[i] = static_cast<char>('0' + (value & 7));
    value >>= 3;
  }
  field[width - 1] = '\0';
}

uint64_t ReadOctal(const char* field, size_t width) {
  uint64_t value = 0;
  for (size_t i = 0; i < width; ++i) {
    char c = field[i];
    if (c == '\0' || c == ' ') {
      break;
    }
    if (c < '0' || c > '7') {
      return value;  // tolerate garbage like GNU tar does
    }
    value = (value << 3) | static_cast<uint64_t>(c - '0');
  }
  return value;
}

uint32_t Checksum(const Header& header) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&header);
  uint32_t sum = 0;
  for (size_t i = 0; i < kBlock; ++i) {
    // The checksum field itself counts as spaces.
    if (i >= offsetof(Header, chksum) && i < offsetof(Header, chksum) + 8) {
      sum += ' ';
    } else {
      sum += bytes[i];
    }
  }
  return sum;
}

char TypeFlag(TarEntryType type) {
  switch (type) {
    case TarEntryType::kFile:
      return '0';
    case TarEntryType::kSymlink:
      return '2';
    case TarEntryType::kDirectory:
      return '5';
  }
  return '0';
}

}  // namespace

TarEntry TarEntry::File(std::string name, std::string data) {
  TarEntry entry;
  entry.name = std::move(name);
  entry.type = TarEntryType::kFile;
  entry.data = std::move(data);
  return entry;
}

TarEntry TarEntry::Symlink(std::string name, std::string target) {
  TarEntry entry;
  entry.name = std::move(name);
  entry.type = TarEntryType::kSymlink;
  entry.link_target = std::move(target);
  return entry;
}

TarEntry TarEntry::Directory(std::string name) {
  TarEntry entry;
  entry.name = std::move(name);
  entry.type = TarEntryType::kDirectory;
  return entry;
}

std::string WriteTar(const std::vector<TarEntry>& entries) {
  std::string out;
  for (const TarEntry& entry : entries) {
    if (entry.name.size() > 99 || entry.link_target.size() > 99) {
      return {};
    }
    Header header;
    std::memset(&header, 0, sizeof(header));
    std::memcpy(header.name, entry.name.data(), entry.name.size());
    WriteOctal(header.mode, 8, entry.type == TarEntryType::kDirectory ? 0755 : 0644);
    WriteOctal(header.uid, 8, 1000);
    WriteOctal(header.gid, 8, 1000);
    WriteOctal(header.size, 12, entry.type == TarEntryType::kFile ? entry.data.size() : 0);
    WriteOctal(header.mtime, 12, 1096329600);  // late 2004
    header.typeflag = TypeFlag(entry.type);
    std::memcpy(header.linkname, entry.link_target.data(), entry.link_target.size());
    std::memcpy(header.magic, "ustar", 6);
    header.version[0] = '0';
    header.version[1] = '0';
    std::memcpy(header.uname, "user", 4);
    std::memcpy(header.gname, "user", 4);
    uint32_t sum = Checksum(header);
    // 6 octal digits, NUL, space — the traditional layout.
    for (int i = 5; i >= 0; --i) {
      header.chksum[i] = static_cast<char>('0' + (sum & 7));
      sum >>= 3;
    }
    header.chksum[6] = '\0';
    header.chksum[7] = ' ';
    out.append(reinterpret_cast<const char*>(&header), kBlock);
    if (entry.type == TarEntryType::kFile) {
      out.append(entry.data);
      size_t pad = (kBlock - entry.data.size() % kBlock) % kBlock;
      out.append(pad, '\0');
    }
  }
  out.append(2 * kBlock, '\0');
  return out;
}

std::optional<std::vector<TarEntry>> ReadTar(std::string_view bytes) {
  std::vector<TarEntry> entries;
  size_t pos = 0;
  while (pos + kBlock <= bytes.size()) {
    Header header;
    std::memcpy(&header, bytes.data() + pos, kBlock);
    // Two all-zero blocks end the archive; one is enough for us to stop.
    bool all_zero = true;
    for (size_t i = 0; i < kBlock; ++i) {
      if (bytes[pos + i] != '\0') {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      return entries;
    }
    uint32_t declared = static_cast<uint32_t>(ReadOctal(header.chksum, 8));
    if (Checksum(header) != declared) {
      return std::nullopt;
    }
    pos += kBlock;
    TarEntry entry;
    entry.name = std::string(header.name, strnlen(header.name, sizeof(header.name)));
    entry.link_target =
        std::string(header.linkname, strnlen(header.linkname, sizeof(header.linkname)));
    uint64_t size = ReadOctal(header.size, 12);
    switch (header.typeflag) {
      case '2':
        entry.type = TarEntryType::kSymlink;
        break;
      case '5':
        entry.type = TarEntryType::kDirectory;
        break;
      case '0':
      case '\0':
      default:
        entry.type = TarEntryType::kFile;
        break;
    }
    if (entry.type == TarEntryType::kFile) {
      if (pos + size > bytes.size()) {
        return std::nullopt;
      }
      entry.data = std::string(bytes.substr(pos, size));
      pos += (size + kBlock - 1) / kBlock * kBlock;
    }
    entries.push_back(std::move(entry));
  }
  // Missing terminator blocks: accept what we parsed (like GNU tar's
  // "unexpected EOF" warning path).
  return entries;
}

}  // namespace fob
