#include "src/archive/gzip.h"

#include <algorithm>
#include <array>

namespace fob {

namespace {

constexpr std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(std::string_view s, size_t pos) {
  return static_cast<uint8_t>(s[pos]) | (static_cast<uint8_t>(s[pos + 1]) << 8) |
         (static_cast<uint8_t>(s[pos + 2]) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(s[pos + 3])) << 24);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  // constexpr: the table lives in .rodata — no guard variable, no writable
  // bss, nothing shared-mutable across shards (shard-isolation pass 2).
  static constexpr std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string GzipStore(std::string_view data) {
  std::string out;
  // Member header: magic, CM=8 (deflate), FLG=0, MTIME=0, XFL=0, OS=3 (unix).
  out.push_back('\x1f');
  out.push_back('\x8b');
  out.push_back('\x08');
  out.push_back('\x00');
  PutU32(out, 0);
  out.push_back('\x00');
  out.push_back('\x03');
  // DEFLATE stored blocks: max 65535 bytes each.
  size_t pos = 0;
  do {
    size_t chunk = std::min<size_t>(data.size() - pos, 65535);
    bool final = pos + chunk == data.size();
    out.push_back(final ? '\x01' : '\x00');  // BFINAL bit, BTYPE=00
    PutU16(out, static_cast<uint16_t>(chunk));
    PutU16(out, static_cast<uint16_t>(~chunk & 0xffff));
    out.append(data.substr(pos, chunk));
    pos += chunk;
  } while (pos < data.size());
  PutU32(out, Crc32(data));
  PutU32(out, static_cast<uint32_t>(data.size() & 0xffffffffu));
  return out;
}

std::string GzipStoreWithName(std::string_view data, std::string_view name) {
  // The fixed header GzipStore emits is exactly 10 bytes; FNAME slots in
  // right after it (RFC 1952 field order: FEXTRA, FNAME, FCOMMENT, FHCRC —
  // we emit none of the others). The name must not contain NUL.
  std::string out = GzipStore(data);
  out[3] = '\x08';  // FLG: FNAME
  std::string field(name);
  field.push_back('\0');
  out.insert(10, field);
  return out;
}

std::optional<GzipNameField> FindGzipName(std::string_view bytes) {
  if (bytes.size() < 10) {
    return std::nullopt;
  }
  if (static_cast<uint8_t>(bytes[0]) != 0x1f || static_cast<uint8_t>(bytes[1]) != 0x8b) {
    return std::nullopt;
  }
  uint8_t flags = static_cast<uint8_t>(bytes[3]);
  if ((flags & 0x08) == 0) {
    return std::nullopt;
  }
  size_t pos = 10;
  if (flags & 0x04) {  // FEXTRA precedes FNAME
    if (pos + 2 > bytes.size()) {
      return std::nullopt;
    }
    uint16_t extra = static_cast<uint8_t>(bytes[pos]) | (static_cast<uint8_t>(bytes[pos + 1]) << 8);
    pos += 2 + extra;
  }
  if (pos >= bytes.size()) {
    return std::nullopt;
  }
  GzipNameField field;
  field.offset = pos;
  while (pos < bytes.size() && bytes[pos] != '\0') {
    ++pos;
  }
  // A truncated member may lack the NUL; end then points at the buffer end
  // and the caller sees an unterminated name, just like a real header read.
  field.end = pos < bytes.size() ? pos + 1 : bytes.size();
  return field;
}

std::optional<std::string> GunzipStore(std::string_view bytes, GunzipError* error) {
  auto fail = [&](GunzipError e) -> std::optional<std::string> {
    if (error != nullptr) {
      *error = e;
    }
    return std::nullopt;
  };
  if (bytes.size() < 18) {
    return fail(GunzipError::kTruncated);
  }
  if (static_cast<uint8_t>(bytes[0]) != 0x1f || static_cast<uint8_t>(bytes[1]) != 0x8b ||
      static_cast<uint8_t>(bytes[2]) != 0x08) {
    return fail(GunzipError::kBadMagic);
  }
  uint8_t flags = static_cast<uint8_t>(bytes[3]);
  size_t pos = 10;
  if (flags & 0x04) {  // FEXTRA
    if (pos + 2 > bytes.size()) {
      return fail(GunzipError::kTruncated);
    }
    uint16_t extra = static_cast<uint8_t>(bytes[pos]) | (static_cast<uint8_t>(bytes[pos + 1]) << 8);
    pos += 2 + extra;
  }
  for (uint8_t flag : {static_cast<uint8_t>(0x08), static_cast<uint8_t>(0x10)}) {  // FNAME, FCOMMENT
    if (flags & flag) {
      while (pos < bytes.size() && bytes[pos] != '\0') {
        ++pos;
      }
      ++pos;
    }
  }
  if (flags & 0x02) {  // FHCRC
    pos += 2;
  }
  std::string out;
  for (;;) {
    if (pos >= bytes.size()) {
      return fail(GunzipError::kTruncated);
    }
    uint8_t block_header = static_cast<uint8_t>(bytes[pos]);
    bool final = (block_header & 1) != 0;
    uint8_t btype = (block_header >> 1) & 0x3;
    if (btype != 0) {
      return fail(GunzipError::kUnsupportedCompression);
    }
    ++pos;
    if (pos + 4 > bytes.size()) {
      return fail(GunzipError::kTruncated);
    }
    uint16_t len = static_cast<uint8_t>(bytes[pos]) | (static_cast<uint8_t>(bytes[pos + 1]) << 8);
    uint16_t nlen =
        static_cast<uint8_t>(bytes[pos + 2]) | (static_cast<uint8_t>(bytes[pos + 3]) << 8);
    if (static_cast<uint16_t>(~len) != nlen) {
      return fail(GunzipError::kBadLength);
    }
    pos += 4;
    if (pos + len > bytes.size()) {
      return fail(GunzipError::kTruncated);
    }
    out.append(bytes.substr(pos, len));
    pos += len;
    if (final) {
      break;
    }
  }
  if (pos + 8 > bytes.size()) {
    return fail(GunzipError::kTruncated);
  }
  if (GetU32(bytes, pos) != Crc32(out)) {
    return fail(GunzipError::kBadCrc);
  }
  if (GetU32(bytes, pos + 4) != (out.size() & 0xffffffffu)) {
    return fail(GunzipError::kBadLength);
  }
  return out;
}

}  // namespace fob
