// mini-Mutt (§2, §4.6).
//
// A text-based mail user agent whose folder-open path runs the paper's
// Figure 1 procedure: utf8_to_utf7 conversion into a heap buffer allocated
// at u8len*2+1 bytes — too small, since the conversion can expand by more
// than 2x. Opening a mailbox whose UTF-8 name has a high expansion ratio
// makes the conversion write past the end of the buffer:
//
//   Standard          heap metadata physically stomped; the allocator aborts
//                     at the safe_realloc/safe_free (simulated SIGSEGV).
//   Bounds Check      terminates at the first out-of-bounds write, before
//                     the user interface ever comes up.
//   Failure Oblivious writes discarded -> truncated converted name; the
//                     IMAP server answers "NO Mailbox does not exist"; the
//                     standard error handling shows the error and the user
//                     keeps working (§4.6.2).
//   Boundless         the out-of-bounds bytes are stored and recovered by
//                     safe_realloc, so the conversion is *correct* (§5.1).
//
// All buffer manipulation in the open path runs in simulated memory under
// the configured policy; the IMAP server, message store and UI rendering
// are native substrates.

#ifndef SRC_APPS_MUTT_H_
#define SRC_APPS_MUTT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/imap.h"
#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"

namespace fob {

class MuttApp {
 public:
  struct Result {
    bool ok = false;
    std::string display;  // what the user sees
    std::string error;    // the error line, if any
  };

  // `imap` must outlive the app.
  MuttApp(const PolicySpec& spec, ImapServer* imap);

  // Opens a mailbox by its configured UTF-8 name: converts the name with
  // the vulnerable Figure 1 procedure and SELECTs it on the IMAP server.
  // Mutt runs this during startup for the spool folder, which is why the
  // Standard/BoundsCheck versions die before the UI appears.
  Result OpenFolder(const std::string& utf8_name);

  // Reads message `index` (1-based) from a folder (converted + fetched).
  Result ReadMessage(const std::string& utf8_name, size_t index);

  // Moves a message between folders.
  Result MoveMessage(const std::string& from_utf8, size_t index, const std::string& to_utf8);

  // Composes a message and appends it to a folder via IMAP APPEND (§4.6.4
  // "read, forward, and compose mail").
  Result Compose(const std::string& folder_utf8, const std::string& to,
                 const std::string& subject, const std::string& body);

  // Forwards message `index` of a folder to a recipient, appending the
  // forwarded copy to the same folder.
  Result Forward(const std::string& folder_utf8, size_t index, const std::string& to);

  // The Figure 1 port, exposed for tests and benches. Returns the converted
  // string (heap Ptr, caller frees) or null on the bail paths. The
  // undersized allocation is the paper's `safe_malloc(u8len * 2 + 1)`.
  Ptr Utf8ToUtf7Port(Ptr u8, size_t u8len);

  // Reads the converted C-string out of simulated memory (checked reads, so
  // manufactured NULs terminate it, §4.6.2) and quotes it for the IMAP wire.
  std::string QuoteConvertedName(Ptr name);

  Memory& memory() { return memory_; }
  uint64_t folders_opened() const { return folders_opened_; }

 private:
  Memory memory_;
  ImapServer* imap_;
  Ptr b64chars_;  // Figure 1's B64Chars[] table, loaded as a global
  // Mutt's long-lived heap state (header cache, thread tree nodes).
  std::vector<Ptr> resident_;
  uint64_t folders_opened_ = 0;
};

}  // namespace fob

#endif  // SRC_APPS_MUTT_H_
