#include "src/apps/resident.h"

namespace fob {

std::vector<Ptr> PopulateResidentHeap(Memory& memory, size_t blocks, size_t bytes_each,
                                      const std::string& name) {
  std::vector<Ptr> resident;
  resident.reserve(blocks);
  for (size_t i = 0; i < blocks; ++i) {
    Ptr p = memory.Malloc(bytes_each, name);
    if (p.IsNull()) {
      break;
    }
    // Touch the block so it is part of the working set, not just the table.
    memory.WriteU8(p, static_cast<uint8_t>(i));
    resident.push_back(p);
  }
  return resident;
}

}  // namespace fob
