#include "src/apps/apache.h"

#include <sstream>

#include "src/runtime/access_cursor.h"

namespace fob {

ApacheApp::ApacheApp(const PolicySpec& spec, const Vfs* docroot, const std::string& config_text)
    : memory_(spec), docroot_(docroot) {
  // Server initialization: parse the config and compile every rewrite rule.
  // This is the work a worker restart repeats.
  std::istringstream config(config_text);
  std::string line;
  while (std::getline(config, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string directive, pattern, replacement;
    fields >> directive >> pattern >> replacement;
    if (directive != "RewriteRule" || pattern.empty()) {
      continue;
    }
    std::string error;
    auto rule = RewriteRule::Make(pattern, replacement, &error);
    if (rule) {
      rules_.push_back(std::move(*rule));
    }
  }
  // Startup also allocates the request-pool arenas in program memory. The
  // touch loop stays inside one unit, so a cursor hoists the per-touch
  // object-table search (byte-loop-identical semantics).
  Memory::Frame frame(memory_, "server_init");
  Ptr arena = memory_.Malloc(64 << 10, "request_pool");
  AccessCursor cursor(memory_);
  for (int i = 0; i < (64 << 10); i += 512) {
    cursor.WriteU8(arena + i, 0);
  }
  memory_.Free(arena);
}

std::optional<std::string> ApacheApp::RewriteVulnerable(const std::string& url) {
  for (const RewriteRule& rule : rules_) {
    MatchResult match = rule.pattern.Search(url);
    if (!match.matched) {
      continue;
    }
    // --- the vulnerable copy (ap_regexec offset handling) ---
    Memory::Frame frame(memory_, "try_rewrite");
    Ptr offsets = frame.Local(static_cast<size_t>(kMaxCapturePairs) * 2 * 4, "capture_offsets");
    // Bug: writes (group_count + 1) pairs with no clamp against the ten the
    // buffer holds.
    for (int g = 0; g < match.GroupCount(); ++g) {
      memory_.WriteI32(offsets + static_cast<int64_t>(g) * 8, match.groups[static_cast<size_t>(g)].first);
      memory_.WriteI32(offsets + static_cast<int64_t>(g) * 8 + 4,
                       match.groups[static_cast<size_t>(g)].second);
    }
    // The rewrite proper then copies the first ten pairs into its own
    // structure (§4.3.2) — these reads are always in bounds.
    int starts[kMaxCapturePairs];
    int ends[kMaxCapturePairs];
    for (int g = 0; g < kMaxCapturePairs; ++g) {
      starts[g] = memory_.ReadI32(offsets + static_cast<int64_t>(g) * 8);
      ends[g] = memory_.ReadI32(offsets + static_cast<int64_t>(g) * 8 + 4);
    }
    // Expand the replacement from the read-back offsets ($0..$9: single
    // digits, so discarded pairs beyond ten are never referenced).
    std::string out;
    const std::string& repl = rule.replacement;
    for (size_t i = 0; i < repl.size(); ++i) {
      char c = repl[i];
      if (c == '$' && i + 1 < repl.size() && repl[i + 1] >= '0' && repl[i + 1] <= '9') {
        int g = repl[i + 1] - '0';
        int s = starts[g];
        int e = ends[g];
        if (g < match.GroupCount() && s >= 0 && e >= s &&
            e <= static_cast<int>(url.size())) {
          out.append(url, static_cast<size_t>(s), static_cast<size_t>(e - s));
        }
        ++i;
        continue;
      }
      out.push_back(c);
    }
    return out;
    // Standard compilation: the smashed canary is detected when this frame
    // pops — the child has computed the response but dies returning.
  }
  return std::nullopt;
}

void ApacheApp::LogAccess(const HttpRequest& request, int status, size_t bytes) {
  // Common log format, assembled in the per-request log buffer.
  Memory::Frame frame(memory_, "log_transaction");
  std::string line = "127.0.0.1 - - [01/Oct/2004:12:00:00] \"" + request.method + " " +
                     request.path + " " + request.version + "\" " + std::to_string(status) +
                     " " + std::to_string(bytes);
  Ptr buf = memory_.NewCString(line, "log_line");
  access_log_.push_back(memory_.ReadCString(buf, line.size() + 1));
  memory_.Free(buf);
  if (access_log_.size() > 4096) {
    access_log_.erase(access_log_.begin(), access_log_.begin() + 2048);
  }
}

HttpResponse ApacheApp::Handle(const HttpRequest& request) {
  ++requests_served_;
  bool head_only = request.method == "HEAD";
  if (request.method != "GET" && !head_only) {
    HttpResponse response = HttpResponse::BadRequest("only GET and HEAD are supported");
    LogAccess(request, response.status, response.body.size());
    return response;
  }
  std::string path = request.path;
  if (auto rewritten = RewriteVulnerable(path)) {
    path = *rewritten;
  }
  // Strip a query string before the filesystem lookup.
  size_t query = path.find('?');
  if (query != std::string::npos) {
    path.resize(query);
  }
  // Request processing copies the served file through the connection
  // buffer in program memory (the write() path).
  auto contents = docroot_->ReadFile(path);
  if (!contents) {
    HttpResponse response = HttpResponse::NotFound(path);
    LogAccess(request, response.status, response.body.size());
    return response;
  }
  if (head_only) {
    HttpResponse response = HttpResponse::Ok("");
    response.headers[1].second = std::to_string(contents->size());  // Content-Length
    LogAccess(request, 200, 0);
    return response;
  }
  Memory::Frame frame(memory_, "default_handler");
  constexpr size_t kIoBuf = 8192;
  Ptr buffer = frame.Local(kIoBuf, "conn_buf");
  std::string body;
  body.reserve(contents->size());
  for (size_t off = 0; off < contents->size(); off += kIoBuf) {
    size_t chunk = std::min(kIoBuf, contents->size() - off);
    memory_.Write(buffer, contents->data() + off, chunk);
    std::string staged(chunk, '\0');
    memory_.Read(buffer, staged.data(), chunk);
    body.append(staged);
  }
  LogAccess(request, 200, body.size());
  return HttpResponse::Ok(std::move(body));
}

std::string ApacheApp::DefaultConfigText(int filler_rules) {
  std::ostringstream os;
  os << "# mini-Apache rewrite configuration\n";
  os << "RewriteRule ^/old/(\\w+)$ /$1\n";
  os << "RewriteRule ^/project/(\\w+)/docs$ /docs/$1.html\n";
  // The >10-capture rule (the real-world configs hit by the CVE used long
  // capture lists to decompose structured paths). Only URLs shaped
  // /captures/a-b-c-d-e-f-g-h-i-j-k-l reach it.
  os << "RewriteRule ^/captures/(\\w+)-(\\w+)-(\\w+)-(\\w+)-(\\w+)-(\\w+)-(\\w+)-(\\w+)-"
        "(\\w+)-(\\w+)-(\\w+)-(\\w+)$ /rewritten/$1/$2/$3\n";
  for (int i = 0; i < filler_rules; ++i) {
    os << "RewriteRule ^/legacy" << i << "/(\\d+)/(\\w+)$ /archive" << i << "/$2-$1.html\n";
  }
  return os.str();
}

}  // namespace fob
