#include "src/apps/sendmail.h"

#include "src/apps/resident.h"
#include "src/net/smtp.h"
#include "src/runtime/access_cursor.h"

namespace fob {

SendmailApp::SendmailApp(const PolicySpec& spec) : memory_(spec) {
  work_queue_ = memory_.Malloc(static_cast<size_t>(kQueueSlots) * 4, "work_queue");
  for (int i = 0; i < kQueueSlots; ++i) {
    memory_.WriteI32(work_queue_ + static_cast<int64_t>(i) * 4, 0);
  }
  // Daemon startup loads the alias database and connection caches — the
  // long-lived allocations a real sendmail carries.
  resident_ = PopulateResidentHeap(memory_, 1024, 48, "alias_db_entry");
  local_mailbox_.reserve(1024);
  relay_queue_.reserve(1024);
  // The daemon checks for queued work as it comes up; under Bounds Check
  // this is already fatal.
  DaemonWakeup();
}

void SendmailApp::DaemonWakeup() {
  ++wakeups_;
  Memory::Frame frame(memory_, "runqueue");
  int pending = 0;
  // Off-by-one scan: <= instead of < — reads one int past the array every
  // single wakeup. Harmless garbage under Standard (the heap page is
  // mapped), a manufactured value under Failure Oblivious, fatal under
  // Bounds Check.
  for (int i = 0; i <= kQueueSlots; ++i) {
    if (memory_.ReadI32(work_queue_ + static_cast<int64_t>(i) * 4) != 0) {
      ++pending;
    }
  }
  (void)pending;
}

bool SendmailApp::PrescanAddress(const std::string& address, std::string* parsed,
                                 std::string* error) {
  Memory::Frame frame(memory_, "prescan");
  Ptr buf = frame.Local(kAddrBufSize, "addr_buf");
  Ptr in = memory_.NewCString(address, "addr_wire");
  size_t len = address.size();
  size_t i = 0;
  int64_t q = 0;
  int backslash_run = 0;
  bool too_long = false;

  // The *input* side of prescan scans the wire copy sequentially and always
  // in bounds, so those reads go through a cursor (span fast path). The
  // vulnerable *stores* into addr_buf below deliberately stay per-access —
  // hoisting them would change the reproduced bug's pattern.
  AccessCursor wire(memory_);
  while (i < len) {
    // sign extension: 0xff -> -1
    int c = static_cast<int8_t>(wire.ReadU8(in + static_cast<int64_t>(i)));
    ++i;
    if (c == '\\') {
      ++backslash_run;
      bool odd_backslash = (backslash_run % 2) == 1;
      int lookahead =
          i < len ? static_cast<int8_t>(wire.ReadU8(in + static_cast<int64_t>(i))) : -1;
      if (lookahead == -1 || odd_backslash) {
        // The branch that skips the checked store — and with it the only
        // bounds check on q.
      } else {
        if (q >= static_cast<int64_t>(kAddrBufSize) - 1) {
          too_long = true;
          break;
        }
        memory_.WriteU8(buf + q, static_cast<uint8_t>(lookahead));
        ++q;
        ++i;
      }
      // The unchecked store: a '\' is written for a '\' lookahead that was
      // not -1, with no room check at all.
      if (lookahead == '\\') {
        memory_.WriteU8(buf + q, '\\');
        ++q;
      }
    } else if (c == -1) {
      // Sign-extended 0xff: "no lookahead character".
      backslash_run = 0;
    } else {
      backslash_run = 0;
      if (q >= static_cast<int64_t>(kAddrBufSize) - 1) {
        too_long = true;
        break;
      }
      memory_.WriteU8(buf + q, static_cast<uint8_t>(c));
      ++q;
    }
  }
  memory_.WriteU8(buf + q, 0);  // terminator, also unchecked
  memory_.Free(in);

  // Back in the caller: "The next step is to check if the input mail
  // address is too long. This check fails, throwing Sendmail into an
  // anticipated error case." (§4.4.2)
  if (too_long || q >= static_cast<int64_t>(kAddrBufSize) ||
      address.size() > kMaxAddressLength) {
    if (error != nullptr) {
      *error = "553 5.1.0 Address too long or malformed";
    }
    return false;
  }
  if (parsed != nullptr) {
    *parsed = memory_.ReadCString(buf, kAddrBufSize);
  }
  return true;
  // Standard compilation with the attack address: the unchecked stores ran
  // through the canary; the crash fires when this frame pops.
}

void SendmailApp::ResetTransaction() {
  mail_from_.clear();
  rcpt_to_.clear();
  data_lines_.clear();
  in_data_ = false;
}

void SendmailApp::DeliverCurrentMessage() {
  std::string body;
  for (const std::string& line : data_lines_) {
    // Each body line is staged through the message collection buffer.
    Memory::Frame frame(memory_, "collect");
    Ptr staging = memory_.Malloc(line.size() + 1, "body_line");
    memory_.WriteBytes(staging, line);
    memory_.WriteU8(staging + static_cast<int64_t>(line.size()), 0);
    body += memory_.ReadCString(staging, line.size() + 1);
    body += '\n';
    memory_.Free(staging);
  }
  MailMessage message;
  message.SetHeader("From", mail_from_);
  for (const std::string& rcpt : rcpt_to_) {
    message.SetHeader("To", rcpt);
    // Local recipients deliver to the mailbox; everything else queues for
    // relay — the "send" path.
    bool local = rcpt.find("@localhost") != std::string::npos ||
                 rcpt.find('@') == std::string::npos;
    message.body = body;
    if (local) {
      local_mailbox_.push_back(message);
    } else {
      relay_queue_.push_back(message);
    }
  }
}

std::string SendmailApp::HandleCommand(const std::string& line) {
  if (in_data_) {
    if (line == ".") {
      in_data_ = false;
      DeliverCurrentMessage();
      ResetTransaction();
      return "250 2.0.0 Message accepted for delivery";
    }
    data_lines_.push_back(line);
    return "";  // no response per body line
  }
  SmtpCommand command = ParseSmtpCommand(line);
  if (command.verb == "HELO" || command.verb == "EHLO") {
    saw_helo_ = true;
    return "250 mini-sendmail Hello " + (command.arg.empty() ? "you" : command.arg);
  }
  if (command.verb == "MAIL") {
    auto address = ExtractAngleAddress(command.arg);
    if (!address) {
      return "501 5.5.4 Syntax error in MAIL command";
    }
    std::string parsed;
    std::string error;
    if (!PrescanAddress(*address, &parsed, &error)) {
      return error;
    }
    mail_from_ = parsed;
    return "250 2.1.0 Sender ok";
  }
  if (command.verb == "RCPT") {
    auto address = ExtractAngleAddress(command.arg);
    if (!address) {
      return "501 5.5.4 Syntax error in RCPT command";
    }
    std::string parsed;
    std::string error;
    if (!PrescanAddress(*address, &parsed, &error)) {
      return error;
    }
    rcpt_to_.push_back(parsed);
    return "250 2.1.5 Recipient ok";
  }
  if (command.verb == "DATA") {
    if (mail_from_.empty() || rcpt_to_.empty()) {
      return "503 5.0.0 Need MAIL and RCPT before DATA";
    }
    in_data_ = true;
    return "354 Enter mail, end with \".\" on a line by itself";
  }
  if (command.verb == "VRFY" || command.verb == "EXPN") {
    // Address verification runs the same (vulnerable) prescan as MAIL/RCPT
    // — a second remote-reachable path to the §4.4 bug.
    std::string parsed;
    std::string error;
    std::string address = command.arg;
    if (auto angled = ExtractAngleAddress(command.arg)) {
      address = *angled;
    }
    if (!PrescanAddress(address, &parsed, &error)) {
      return error;
    }
    bool local = parsed.find("@localhost") != std::string::npos ||
                 parsed.find('@') == std::string::npos;
    if (command.verb == "VRFY") {
      return local ? "250 2.1.5 <" + parsed + ">" : "252 2.1.5 Cannot VRFY remote user";
    }
    return "550 5.1.1 EXPN not available for " + parsed;
  }
  if (command.verb == "RSET") {
    ResetTransaction();
    return "250 2.0.0 Reset state";
  }
  if (command.verb == "NOOP") {
    return "250 2.0.0 OK";
  }
  if (command.verb == "QUIT") {
    return "221 2.0.0 mini-sendmail closing connection";
  }
  return "500 5.5.1 Command unrecognized: \"" + command.verb + "\"";
}

std::vector<std::string> SendmailApp::HandleSession(const std::vector<std::string>& client_lines) {
  std::vector<std::string> responses;
  responses.push_back("220 mini-sendmail ESMTP ready");
  for (const std::string& line : client_lines) {
    std::string response = HandleCommand(line);
    if (!response.empty()) {
      responses.push_back(std::move(response));
    }
  }
  return responses;
}

std::string MakeSendmailAttackAddress(size_t pairs) {
  // Fill the buffer right up to its bound with legitimate characters, then
  // drive the unchecked store once per "\ \ 0xff" triple:
  //   '\' (odd run)  -> skips the checked store, lookahead '\' fires the
  //                     unchecked store of '\';
  //   '\' (even run) -> lookahead 0xff reads as -1, skips everything;
  //   0xff           -> resets the run parity.
  std::string address(SendmailApp::kAddrBufSize - 1, 'a');
  for (size_t i = 0; i < pairs; ++i) {
    address += "\\\\\xff";
  }
  return address;
}

}  // namespace fob
