#include "src/apps/codec_gateway.h"

#include <cstdint>

#include "src/codec/base64.h"
#include "src/codec/utf7.h"
#include "src/codec/utf8.h"
#include "src/libc/cstring.h"

namespace fob {

CodecGatewayApp::CodecGatewayApp(const PolicySpec& spec) : memory_(spec) {}

Ptr CodecGatewayApp::Utf7ToUtf8Port(Ptr u7, size_t u7len) {
  Memory::Frame frame(memory_, "utf7_to_utf8");
  // The sizing mistake, mirror-image of Figure 1's: "decoding removes the
  // shift characters and packs base64 back into raw bytes, so the output is
  // never longer than the input". False once a shifted run decodes to
  // multi-byte UTF-8 — 8 base64 chars carry three 16-bit units that encode
  // to nine bytes. The safe bound is 3*u7len + 1.
  Ptr buf = memory_.Malloc(u7len + 1, "u8_out_buf");
  if (buf.IsNull()) {
    return kNullPtr;
  }
  Ptr p = buf;
  size_t i = 0;
  while (i < u7len) {
    uint8_t c = memory_.ReadU8(u7 + static_cast<int64_t>(i));
    if (c != '&') {
      if (c < 0x20 || c >= 0x7f) {
        memory_.Free(buf);
        return kNullPtr;  // raw non-printable never legal
      }
      memory_.WriteU8(p, c);
      ++p;
      ++i;
      continue;
    }
    // Shifted section.
    ++i;
    if (i < u7len && memory_.ReadU8(u7 + static_cast<int64_t>(i)) == '-') {
      memory_.WriteU8(p, '&');
      ++p;
      ++i;
      continue;
    }
    uint32_t bits = 0;
    int nbits = 0;
    bool any_unit = false;
    bool closed = false;
    while (i < u7len) {
      uint8_t d = memory_.ReadU8(u7 + static_cast<int64_t>(i));
      if (d == '-') {
        closed = true;
        ++i;
        break;
      }
      int index = Base64Index(static_cast<char>(d), kB64Chars);
      if (index < 0) {
        memory_.Free(buf);
        return kNullPtr;
      }
      bits = (bits << 6) | static_cast<uint32_t>(index);
      nbits += 6;
      if (nbits >= 16) {
        nbits -= 16;
        // A C port streams each unit straight into the output buffer —
        // these unchecked stores are where a long CJK run walks off the
        // end of the undersized allocation.
        std::string encoded = Utf8Encode((bits >> nbits) & 0xffffu);
        for (char b : encoded) {
          memory_.WriteU8(p, static_cast<uint8_t>(b));
          ++p;
        }
        any_unit = true;
      }
      ++i;
    }
    if (!closed || !any_unit) {
      memory_.Free(buf);
      return kNullPtr;
    }
    // Leftover bits must be zero padding only.
    if (nbits > 0 && (bits & ((1u << nbits) - 1)) != 0) {
      memory_.Free(buf);
      return kNullPtr;
    }
  }
  memory_.WriteU8(p, 0);
  ++p;
  // Shrink to the bytes "actually used" — under the Standard policy this is
  // where the stomped heap metadata comes to light (Mutt's safe_realloc
  // dynamic), not at the overflowing stores themselves.
  return memory_.Realloc(buf, static_cast<size_t>(p - buf));
}

std::string CodecGatewayApp::StageCharsetLabel(const std::string& label) {
  Memory::Frame frame(memory_, "parse_charset");
  Ptr buf = frame.Local(kCharsetBufSize, "charset_buf");
  Ptr raw = memory_.NewCString(label, "charset_arg");
  // Unchecked: every label the shipped workloads send ("utf7", "utf8",
  // "b64") fits kCharsetBufSize; an oversized one (the fuzzer's
  // length-stretch of the arg field) writes past the end.
  StrCpy(memory_, buf, raw);
  memory_.Free(raw);
  return memory_.ReadCString(buf, kCharsetBufSize * 4);
}

CodecGatewayApp::Result CodecGatewayApp::Transcode(const std::string& direction,
                                                   const std::string& charset,
                                                   const std::string& input) {
  Result result;
  ++requests_served_;
  StageCharsetLabel(charset);
  if (direction == "u7to8") {
    Ptr u7 = memory_.NewCString(input, "codec_input");
    Ptr converted = Utf7ToUtf8Port(u7, input.size());
    memory_.Free(u7);
    if (converted.IsNull()) {
      result.error = "malformed utf-7";
      return result;
    }
    // The reply path scans the converted string back out of program memory;
    // under a continuing policy the scan's termination (stored byte,
    // manufactured zero, wrapped NUL) decides what the client sees.
    Memory::Frame frame(memory_, "codec_reply");
    result.output = memory_.ReadCString(converted, input.size() * 3 + 2);
    memory_.Free(converted);
    result.ok = true;
    return result;
  }
  if (direction == "u8to7") {
    Ptr u8 = memory_.NewCString(input, "codec_input");
    Ptr converted = Utf8ToUtf7(memory_, u8, input.size());
    memory_.Free(u8);
    if (converted.IsNull()) {
      result.error = "invalid utf-8";
      return result;
    }
    Memory::Frame frame(memory_, "codec_reply");
    result.output = memory_.ReadCString(converted, Utf7MaxOutputBytes(input.size()));
    memory_.Free(converted);
    result.ok = true;
    return result;
  }
  if (direction == "b64enc") {
    Ptr data = memory_.NewBytes(input, "codec_input");
    result.output = Base64Encode(memory_, data, input.size());
    memory_.Free(data);
    result.ok = true;
    return result;
  }
  if (direction == "b64dec") {
    Ptr text = memory_.NewBytes(input, "codec_input");
    auto decoded = Base64Decode(memory_, text, input.size());
    memory_.Free(text);
    if (!decoded) {
      result.error = "bad base64";
      return result;
    }
    result.output = std::move(*decoded);
    result.ok = true;
    return result;
  }
  result.error = "unsupported direction \"" + direction + "\"";
  return result;
}

}  // namespace fob
