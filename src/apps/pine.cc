#include "src/apps/pine.h"

#include "src/libc/cstring.h"
#include "src/mail/mbox.h"
#include "src/runtime/access_cursor.h"

namespace fob {

PineApp::PineApp(const PolicySpec& spec, const std::string& mbox_text) : memory_(spec) {
  inbox_ = ParseMbox(mbox_text);
  folders_["sent"] = {};
  folders_["saved"] = {};
  // Keep per-message heap records live for the whole session, like Pine's
  // in-core mailbox state (envelope, header cache, body cache per message).
  resident_.reserve(inbox_.size() * 3);
  for (const MailMessage& message : inbox_) {
    resident_.push_back(memory_.NewCString(message.From(), "envelope_from"));
    resident_.push_back(memory_.NewCString(message.Subject(), "header_cache"));
    resident_.push_back(memory_.Malloc(64, "body_cache_entry"));
  }
  BuildIndex();  // faults here under Standard/BoundsCheck with attack mail
}

std::string PineApp::QuoteFromVulnerable(const std::string& from) {
  Memory::Frame frame(memory_, "addr_list_string");
  // Count the characters that need quoting...
  size_t quotable = 0;
  for (char c : from) {
    if (c == '\\' || c == '"') {
      ++quotable;
    }
  }
  // ...then miscalculate the buffer length: each quotable character grows
  // the string by one byte, but the estimate only accounts for half of
  // them. (Correct: from.size() + quotable + 1.)
  size_t estimated = from.size() + quotable / 2 + 1;
  Ptr buf = memory_.Malloc(estimated, "from_quote_buf");

  // The transfer loop inserts '\' before each quoted character — writing
  // through the end of the undersized buffer when `quotable` is large.
  Ptr input = memory_.NewCString(from, "from_field");
  int64_t j = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(from.size()); ++i) {
    uint8_t c = memory_.ReadU8(input + i);
    if (c == '\\' || c == '"') {
      memory_.WriteU8(buf + j, '\\');
      ++j;
    }
    memory_.WriteU8(buf + j, c);
    ++j;
  }
  memory_.WriteU8(buf + j, 0);
  std::string quoted = memory_.ReadCString(buf, from.size() * 2 + 2);
  // Under Standard compilation the overrun stomped this block's footer; the
  // free is where the allocator notices (simulated SIGSEGV).
  memory_.Free(buf);
  memory_.Free(input);
  return quoted;
}

void PineApp::BuildIndex() {
  index_lines_.clear();
  index_lines_.reserve(inbox_.size());
  for (size_t i = 0; i < inbox_.size(); ++i) {
    std::string quoted = QuoteFromVulnerable(inbox_[i].From());
    // "the mail list user interface displays only an initial segment of
    //  long From fields" (§4.2.2).
    if (quoted.size() > kIndexFromWidth) {
      quoted.resize(kIndexFromWidth);
    }
    Memory::Frame frame(memory_, "index_line");
    std::string line =
        std::to_string(i + 1) + "  " + quoted + "  " + inbox_[i].Subject();
    Ptr rendered = memory_.Malloc(line.size() + 1, "index_render");
    memory_.WriteBytes(rendered, line);
    memory_.WriteU8(rendered + static_cast<int64_t>(line.size()), 0);
    index_lines_.push_back(memory_.ReadCString(rendered, line.size() + 1));
    memory_.Free(rendered);
  }
}

PineApp::Result PineApp::ReadMessage(size_t index) {
  Result result;
  if (index >= inbox_.size()) {
    result.error = "No such message";
    return result;
  }
  const MailMessage& message = inbox_[index];
  // The correct translation path: full headers, no quoting bug (§4.2.2).
  // The pager renders character by character (line-wrap tracking per byte),
  // which is where Pine's interactive requests pay the checking cost.
  Memory::Frame frame(memory_, "mail_view");
  std::string text = "From: " + message.From() + "\nTo: " + message.To() +
                     "\nSubject: " + message.Subject() + "\n\n" + message.body;
  Ptr raw = memory_.NewCString(text, "view_raw");
  Ptr view = memory_.Malloc(text.size() * 2 + 16, "view_buf");
  // The pager walks both buffers strictly sequentially and always in
  // bounds (view_buf is worst-case sized), so the scan runs on cursors:
  // byte-loop-identical semantics, one bounds resolution per buffer.
  AccessCursor in(memory_);
  AccessCursor pager(memory_);
  int64_t out = 0;
  int column = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(text.size()); ++i) {
    uint8_t c = in.ReadU8(raw + i);
    pager.WriteU8(view + out, c);
    ++out;
    if (c == '\n') {
      column = 0;
    } else if (++column >= 80) {
      pager.WriteU8(view + out, '\n');
      ++out;
      column = 0;
    }
  }
  pager.WriteU8(view + out, 0);
  result.display = memory_.ReadCString(view, static_cast<size_t>(out) + 1);
  memory_.Free(view);
  memory_.Free(raw);
  result.ok = true;
  return result;
}

PineApp::Result PineApp::Compose(const std::string& to, const std::string& subject,
                                 const std::string& body) {
  Result result;
  // The compose screen builds the editable draft character by character
  // (header lines, separator, body, signature) in an edit buffer — the
  // same per-byte profile as the real composer's redraw.
  Memory::Frame frame(memory_, "compose");
  static const char kSignature[] =
      "\n-- \nsent with mini-pine, a failure-oblivious reproduction\n";
  std::string draft = "From: user@local\nTo: " + to + "\nSubject: " + subject +
                      "\n--------\n" + body + kSignature;
  Ptr raw = memory_.NewCString(draft, "draft_raw");
  Ptr edit = memory_.Malloc(draft.size() + 1, "edit_buf");
  // Sequential in-bounds transfer: the edit buffer is exactly sized, so the
  // copy loop runs on cursors (span fast path, same per-byte semantics).
  AccessCursor in(memory_);
  AccessCursor out(memory_);
  for (int64_t i = 0; i < static_cast<int64_t>(draft.size()); ++i) {
    out.WriteU8(edit + i, in.ReadU8(raw + i));
  }
  out.WriteU8(edit + static_cast<int64_t>(draft.size()), 0);
  std::string draft_back = memory_.ReadCString(edit, draft.size() + 1);
  memory_.Free(edit);
  memory_.Free(raw);
  MailMessage message = MailMessage::Make("user@local", to, subject, body);
  (void)draft_back;
  folders_["sent"].push_back(std::move(message));
  result.ok = true;
  result.display = "Message sent";
  return result;
}

PineApp::Result PineApp::Reply(size_t index, const std::string& body) {
  Result result;
  if (index >= inbox_.size()) {
    result.error = "No such message";
    return result;
  }
  const MailMessage& original = inbox_[index];
  // Build the quoted original in the reply edit buffer: "> " before every
  // line, character by character like the composer.
  Memory::Frame frame(memory_, "reply_quote");
  Ptr raw = memory_.NewCString(original.body, "reply_raw");
  Ptr edit = memory_.Malloc(original.body.size() * 2 + 64, "reply_edit");
  // The "> " quoting loop writes at most 2 bytes per input byte plus the
  // final pair, always inside the worst-case-sized edit buffer: cursors
  // hoist the per-byte table search without changing a single access.
  AccessCursor in(memory_);
  AccessCursor quote(memory_);
  int64_t out = 0;
  bool at_line_start = true;
  for (int64_t i = 0; i < static_cast<int64_t>(original.body.size()); ++i) {
    uint8_t c = in.ReadU8(raw + i);
    if (at_line_start) {
      quote.WriteU8(edit + out, '>');
      ++out;
      quote.WriteU8(edit + out, ' ');
      ++out;
      at_line_start = false;
    }
    quote.WriteU8(edit + out, c);
    ++out;
    if (c == '\n') {
      at_line_start = true;
    }
  }
  quote.WriteU8(edit + out, 0);
  std::string quoted = memory_.ReadCString(edit, static_cast<size_t>(out) + 1);
  memory_.Free(edit);
  memory_.Free(raw);
  std::string subject = original.Subject();
  if (subject.substr(0, 4) != "Re: ") {
    subject = "Re: " + subject;
  }
  folders_["sent"].push_back(
      MailMessage::Make("user@local", original.From(), subject, body + "\n" + quoted));
  result.ok = true;
  result.display = "Reply sent to " + original.From();
  return result;
}

PineApp::Result PineApp::Forward(size_t index, const std::string& to) {
  Result result;
  if (index >= inbox_.size()) {
    result.error = "No such message";
    return result;
  }
  const MailMessage& original = inbox_[index];
  // The forwarded copy round-trips through the attachment buffer.
  Memory::Frame frame(memory_, "forward");
  std::string wrapped = "----- Forwarded message from " + original.From() + " -----\n" +
                        original.body;
  Ptr buf = memory_.NewCString(wrapped, "fwd_buf");
  std::string body = memory_.ReadCString(buf, wrapped.size() + 1);
  memory_.Free(buf);
  folders_["sent"].push_back(
      MailMessage::Make("user@local", to, "Fwd: " + original.Subject(), body));
  result.ok = true;
  result.display = "Message forwarded to " + to;
  return result;
}

PineApp::Result PineApp::MoveMessage(size_t index, const std::string& folder) {
  Result result;
  if (index >= inbox_.size()) {
    result.error = "No such message";
    return result;
  }
  // Folder name passes through a path buffer (strcpy-style validation).
  Memory::Frame frame(memory_, "folder_select");
  Ptr name = memory_.NewCString(folder, "folder_name");
  Ptr copy = memory_.Malloc(folder.size() + 1, "folder_copy");
  StrCpy(memory_, copy, name);
  std::string resolved = memory_.ReadCString(copy, folder.size() + 1);
  memory_.Free(copy);
  memory_.Free(name);
  auto it = folders_.find(resolved);
  if (it == folders_.end()) {
    result.error = "Folder \"" + resolved + "\" does not exist";
    return result;
  }
  it->second.push_back(inbox_[index]);
  inbox_.erase(inbox_.begin() + static_cast<ptrdiff_t>(index));
  BuildIndex();
  result.ok = true;
  result.display = "Message moved to " + resolved;
  return result;
}

size_t PineApp::FolderSize(const std::string& folder) const {
  auto it = folders_.find(folder);
  return it == folders_.end() ? 0 : it->second.size();
}

}  // namespace fob
