#include "src/apps/mutt.h"

#include "src/apps/resident.h"
#include "src/codec/base64.h"
#include "src/runtime/access_cursor.h"

namespace fob {

MuttApp::MuttApp(const PolicySpec& spec, ImapServer* imap)
    : memory_(spec), imap_(imap) {
  // Figure 1 indexes a global B64Chars table; load it into the simulated
  // image like the compiler would.
  b64chars_ = memory_.AllocGlobal(64, "B64Chars");
  memory_.WriteBytes(b64chars_, std::string_view(kB64Chars, 64));
  // Mutt keeps per-message header-cache and thread-tree nodes alive for the
  // whole session.
  resident_ = PopulateResidentHeap(memory_, 768, 56, "header_cache");
}

// Line-for-line port of Figure 1. `goto bail` becomes an early-return
// lambda; everything else — including the undersized allocation and the
// unchecked `*p++` stores — keeps the original structure.
Ptr MuttApp::Utf8ToUtf7Port(Ptr u8, size_t u8len) {
  Memory::Frame frame(memory_, "utf8_to_utf7");
  // "The allocated string is too small; instead of u8len*2+1, a safe length
  //  would be u8len*4+1."
  Ptr buf = memory_.Malloc(u8len * 2 + 1, "utf7_buf");
  Ptr p = buf;
  uint32_t ch = 0;
  int n = 0;
  int b = 0;
  int k = 0;
  int base64 = 0;

  auto bail = [&]() -> Ptr {
    memory_.Free(buf);
    return kNullPtr;
  };

  while (u8len) {
    uint8_t c = memory_.ReadU8(u8);
    if (c < 0x80) {
      ch = c;
      n = 0;
    } else if (c < 0xc2) {
      return bail();
    } else if (c < 0xe0) {
      ch = c & 0x1f;
      n = 1;
    } else if (c < 0xf0) {
      ch = c & 0x0f;
      n = 2;
    } else if (c < 0xf8) {
      ch = c & 0x07;
      n = 3;
    } else if (c < 0xfc) {
      ch = c & 0x03;
      n = 4;
    } else if (c < 0xfe) {
      ch = c & 0x01;
      n = 5;
    } else {
      return bail();
    }
    ++u8;
    --u8len;
    if (static_cast<size_t>(n) > u8len) {
      return bail();
    }
    for (int i = 0; i < n; ++i) {
      uint8_t cont = memory_.ReadU8(u8 + i);
      if ((cont & 0xc0) != 0x80) {
        return bail();
      }
      ch = (ch << 6) | (cont & 0x3f);
    }
    if (n > 1 && !(ch >> (n * 5 + 1))) {
      return bail();
    }
    u8 += n;
    u8len -= static_cast<size_t>(n);

    if (ch < 0x20 || ch >= 0x7f) {
      if (!base64) {
        memory_.WriteU8(p, '&');
        ++p;
        base64 = 1;
        b = 0;
        k = 10;
      }
      if (ch & ~0xffffu) {
        ch = 0xfffe;
      }
      memory_.WriteU8(p, memory_.ReadU8(b64chars_ + (b | (ch >> k))));
      ++p;
      k -= 6;
      for (; k >= 0; k -= 6) {
        memory_.WriteU8(p, memory_.ReadU8(b64chars_ + ((ch >> k) & 0x3f)));
        ++p;
      }
      b = static_cast<int>((ch << (-k)) & 0x3f);
      k += 16;
    } else {
      if (base64) {
        if (k > 10) {
          memory_.WriteU8(p, memory_.ReadU8(b64chars_ + b));
          ++p;
        }
        memory_.WriteU8(p, '-');
        ++p;
        base64 = 0;
      }
      memory_.WriteU8(p, static_cast<uint8_t>(ch));
      ++p;
      if (ch == '&') {
        memory_.WriteU8(p, '-');
        ++p;
      }
    }
  }
  if (base64) {
    if (k > 10) {
      memory_.WriteU8(p, memory_.ReadU8(b64chars_ + b));
      ++p;
    }
    memory_.WriteU8(p, '-');
    ++p;
  }
  memory_.WriteU8(p, '\0');
  ++p;
  // safe_realloc((void **) &buf, p - buf): under Standard compilation this
  // is where the stomped heap metadata is discovered.
  Ptr shrunk = memory_.Realloc(buf, static_cast<size_t>(p - buf));
  return shrunk;
}

std::string MuttApp::QuoteConvertedName(Ptr name) {
  // Mutt places "a quoted and escaped version of the name into yet another
  // buffer, then passes this name on as part of a command to the IMAP
  // server" (§4.6.2). Reads go through checked memory; for a truncated name
  // with no NUL, manufactured zeros terminate the scan.
  Memory::Frame frame(memory_, "imap_quote_string");
  std::string raw = memory_.ReadCString(name, 4096);
  Ptr quoted = memory_.Malloc(raw.size() * 2 + 3, "quoted_name");
  // The quoting loop always fits its (worst-case sized) buffer, so the
  // sequential stores go through a cursor: same per-byte semantics, one
  // bounds resolution instead of one table search per store. The vulnerable
  // conversion loop above (Utf8ToUtf7Port) deliberately keeps per-access
  // stores — hoisting there would change the reproduced bug's pattern.
  AccessCursor cursor(memory_);
  Ptr q = quoted;
  cursor.WriteU8(q, '"');
  ++q;
  for (char c : raw) {
    if (c == '"' || c == '\\') {
      cursor.WriteU8(q, '\\');
      ++q;
    }
    cursor.WriteU8(q, static_cast<uint8_t>(c));
    ++q;
  }
  cursor.WriteU8(q, '"');
  ++q;
  cursor.WriteU8(q, '\0');
  std::string result = memory_.ReadCString(quoted, 8192);
  memory_.Free(quoted);
  // Strip the wire quotes for the in-memory IMAP call.
  if (result.size() >= 2 && result.front() == '"' && result.back() == '"') {
    result = result.substr(1, result.size() - 2);
  }
  std::string unescaped;
  for (size_t i = 0; i < result.size(); ++i) {
    if (result[i] == '\\' && i + 1 < result.size()) {
      ++i;
    }
    unescaped.push_back(result[i]);
  }
  return unescaped;
}

MuttApp::Result MuttApp::OpenFolder(const std::string& utf8_name) {
  Result result;
  ++folders_opened_;
  // The folder name arrives in program memory (heap), like any config value.
  Ptr u8 = memory_.NewCString(utf8_name, "folder_name_utf8");
  Ptr converted = Utf8ToUtf7Port(u8, utf8_name.size());
  memory_.Free(u8);
  if (converted.IsNull()) {
    result.error = "Bad mailbox name (invalid UTF-8)";
    return result;
  }
  std::string wire_name = QuoteConvertedName(converted);
  memory_.Free(converted);
  ImapServer::SelectResult select = imap_->Select(wire_name);
  if (!select.ok) {
    // The anticipated error case: Mutt's standard error-handling logic
    // reports it and execution continues.
    result.error = "Mailbox " + wire_name + ": " + select.response;
    return result;
  }
  result.ok = true;
  result.display = "Mailbox " + wire_name + " opened (" +
                   std::to_string(select.message_count) + " messages)";
  return result;
}

MuttApp::Result MuttApp::ReadMessage(const std::string& utf8_name, size_t index) {
  Result result;
  Ptr u8 = memory_.NewCString(utf8_name, "folder_name_utf8");
  Ptr converted = Utf8ToUtf7Port(u8, utf8_name.size());
  memory_.Free(u8);
  if (converted.IsNull()) {
    result.error = "Bad mailbox name";
    return result;
  }
  std::string wire_name = QuoteConvertedName(converted);
  memory_.Free(converted);
  auto message = imap_->Fetch(wire_name, index);
  if (!message) {
    result.error = "Message " + std::to_string(index) + " not found in " + wire_name;
    return result;
  }
  // Render the pager view through a simulated line buffer, like Mutt's
  // display path.
  Memory::Frame frame(memory_, "mutt_display");
  std::string rendered = "From: " + message->From() + "\nSubject: " + message->Subject() +
                         "\n\n" + message->body;
  Ptr line = memory_.Malloc(rendered.size() + 1, "pager_line");
  memory_.WriteBytes(line, rendered);
  memory_.WriteU8(line + static_cast<int64_t>(rendered.size()), 0);
  result.display = memory_.ReadCString(line, rendered.size() + 1);
  memory_.Free(line);
  result.ok = true;
  return result;
}

MuttApp::Result MuttApp::Compose(const std::string& folder_utf8, const std::string& to,
                                 const std::string& subject, const std::string& body) {
  Result result;
  Ptr u8 = memory_.NewCString(folder_utf8, "folder_name_utf8");
  Ptr converted = Utf8ToUtf7Port(u8, folder_utf8.size());
  memory_.Free(u8);
  if (converted.IsNull()) {
    result.error = "Bad mailbox name";
    return result;
  }
  std::string wire_name = QuoteConvertedName(converted);
  memory_.Free(converted);
  // The draft is edited in program memory before APPEND.
  Memory::Frame frame(memory_, "mutt_compose");
  std::string draft = "To: " + to + "\nSubject: " + subject + "\n\n" + body;
  Ptr edit = memory_.NewCString(draft, "compose_buf");
  std::string final_draft = memory_.ReadCString(edit, draft.size() + 1);
  memory_.Free(edit);
  if (!imap_->Append(wire_name, MailMessage::Make("me@here", to, subject, body))) {
    result.error = "APPEND failed: mailbox " + wire_name + " does not exist";
    return result;
  }
  result.ok = true;
  result.display = "Message appended to " + wire_name;
  return result;
}

MuttApp::Result MuttApp::Forward(const std::string& folder_utf8, size_t index,
                                 const std::string& to) {
  Result result;
  Result read = ReadMessage(folder_utf8, index);
  if (!read.ok) {
    result.error = read.error;
    return result;
  }
  return Compose(folder_utf8, to, "Fwd:", read.display);
}

MuttApp::Result MuttApp::MoveMessage(const std::string& from_utf8, size_t index,
                                     const std::string& to_utf8) {
  Result result;
  Ptr from_p = memory_.NewCString(from_utf8, "from_folder");
  Ptr from_conv = Utf8ToUtf7Port(from_p, from_utf8.size());
  memory_.Free(from_p);
  Ptr to_p = memory_.NewCString(to_utf8, "to_folder");
  Ptr to_conv = Utf8ToUtf7Port(to_p, to_utf8.size());
  memory_.Free(to_p);
  if (from_conv.IsNull() || to_conv.IsNull()) {
    result.error = "Bad mailbox name";
    if (!from_conv.IsNull()) {
      memory_.Free(from_conv);
    }
    if (!to_conv.IsNull()) {
      memory_.Free(to_conv);
    }
    return result;
  }
  std::string from_wire = QuoteConvertedName(from_conv);
  std::string to_wire = QuoteConvertedName(to_conv);
  memory_.Free(from_conv);
  memory_.Free(to_conv);
  if (!imap_->MoveMessage(from_wire, index, to_wire)) {
    result.error = "Could not move message";
    return result;
  }
  result.ok = true;
  result.display = "Message moved to " + to_wire;
  return result;
}

}  // namespace fob
