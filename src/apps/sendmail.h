// mini-Sendmail (§4.4).
//
// An SMTP daemon. Address parsing ports the prescan() bug: the transfer
// into a fixed-size stack buffer uses an integer lookahead character that
// can be -1 (no character, via sign extension of 0xff) and treats '\'
// specially; a crafted alternating sequence of -1 and '\' characters drives
// an *unchecked* store of '\' arbitrarily many times past the end of the
// buffer:
//
//   Standard          the call stack is physically corrupted — the classic
//                     remote-code-execution setup; the process dies when
//                     prescan returns.
//   Bounds Check      dies even earlier — and in fact never gets this far:
//                     the daemon's periodic wakeup commits a (benign) OOB
//                     read every single time (§4.4.4), so the Bounds Check
//                     daemon exits during initialization and "is simply
//                     unusable".
//   Failure Oblivious the out-of-bounds stores are discarded; prescan
//                     returns; the very next step — the address-length
//                     check — fails, Sendmail answers "553 address too
//                     long", and the session continues (§4.4.2).
//
// The SMTP state machine, delivery queues and mailboxes are native
// substrates; every byte of address/message handling goes through the
// simulated memory.

#ifndef SRC_APPS_SENDMAIL_H_
#define SRC_APPS_SENDMAIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mail/message.h"
#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"

namespace fob {

class SendmailApp {
 public:
  // prescan's fixed address buffer (MAXNAME-flavored).
  static constexpr size_t kAddrBufSize = 64;
  // The post-prescan policy limit that turns the attack into an anticipated
  // error under failure-oblivious execution.
  static constexpr size_t kMaxAddressLength = 256;

  // Daemon initialization runs the first queue wakeup — the path with the
  // everyday memory error that disables the Bounds Check version outright.
  explicit SendmailApp(const PolicySpec& spec);

  // Feeds a full SMTP session (client lines, CRLF stripped) and returns the
  // server's responses, one per processed line (plus the greeting first).
  std::vector<std::string> HandleSession(const std::vector<std::string>& client_lines);

  // One SMTP line against the session state machine; returns the response.
  std::string HandleCommand(const std::string& line);

  // The daemon's periodic queue scan; commits one out-of-bounds read per
  // call (§4.4.4: "every time the Sendmail daemon wakes up to check for
  // incoming messages, it generates a memory error").
  void DaemonWakeup();

  // The vulnerable parser, public for tests. Returns false when the address
  // was rejected (too long / bad syntax); *parsed receives the buffer
  // contents on success.
  bool PrescanAddress(const std::string& address, std::string* parsed, std::string* error);

  const std::vector<MailMessage>& local_mailbox() const { return local_mailbox_; }
  const std::vector<MailMessage>& relay_queue() const { return relay_queue_; }
  uint64_t wakeups() const { return wakeups_; }
  Memory& memory() { return memory_; }

 private:
  void ResetTransaction();
  void DeliverCurrentMessage();

  Memory memory_;
  Ptr work_queue_;               // heap array the wakeup scans one past the end
  static constexpr int kQueueSlots = 16;
  // The daemon's long-lived heap state (alias db, mci cache, class macros):
  // a realistic live-object population for the checker to search.
  std::vector<Ptr> resident_;

  // Session state.
  bool saw_helo_ = false;
  bool in_data_ = false;
  std::string mail_from_;
  std::vector<std::string> rcpt_to_;
  std::vector<std::string> data_lines_;
  std::vector<MailMessage> local_mailbox_;
  std::vector<MailMessage> relay_queue_;
  uint64_t wakeups_ = 0;
};

// The crafted MAIL FROM address: a normal prefix that fills the buffer to
// its edge, followed by `pairs` repetitions of the "\ \ 0xff" pattern, each
// of which drives one unchecked store past the end.
std::string MakeSendmailAttackAddress(size_t pairs);

}  // namespace fob

#endif  // SRC_APPS_SENDMAIL_H_
