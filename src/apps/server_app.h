// The unified server-facing session API.
//
// Every mini-server in src/apps/ historically exposed a bespoke surface
// (`ApacheApp::Handle(HttpRequest)`, `SendmailApp::HandleSession(...)`,
// `MuttApp::OpenFolder(...)`, MC's per-operation calls), so each harness —
// the §4 experiment, the search-space sweep, the stability bench, the
// examples — carried its own per-server switch of request-construction
// glue. ServerApp replaces that: one value pair (ServerRequest in,
// ServerResponse out) and one interface every server implements through an
// adapter (src/apps/server_adapters.h), so any harness drives any server
// through the same code path.
//
// A request is *tagged* — attack, legitimate, or maintenance — because the
// paper's availability argument is about mixed traffic: the §4 outcome
// classification needs to know which responses count toward "the attack was
// absorbed acceptably" and which toward "subsequent legitimate requests
// still succeed". The adapter judges acceptability per request (it knows
// the §4 semantics: Sendmail's attack MAIL must be *rejected* with 553,
// Mutt's attack folder open must *fail* with the server's error, Apache's
// attack GET must still produce a well-formed response) and reports the
// verdict in ServerResponse::acceptable.
//
// Requests serialize to single lines, so a stream of them can travel over a
// LineChannel like any other wire traffic — that is what the Frontend
// (src/net/frontend.h) multiplexes onto a WorkerPool.

#ifndef SRC_APPS_SERVER_APP_H_
#define SRC_APPS_SERVER_APP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/memory.h"

namespace fob {

// The five servers of §4, plus the two post-paper additions that grow the
// matrix beyond the seed attacks: the archive inbox (tar/gzip upload over
// simulated memory, a gzip-1.2.4-style FNAME overflow) and the codec
// gateway (base64/utf7/utf8 transcoding, a Figure-1-style undersized decode
// buffer). Every harness that iterates kAllServers picks them up.
enum class Server { kPine, kApache, kSendmail, kMc, kMutt, kArchive, kCodec };
const char* ServerName(Server server);
// Lowercase CLI/directory token ("pine", ..., "archive", "codec") — what
// bench_sweep parses and the fuzz corpus uses as tests/corpus/<server>/.
const char* ServerShortName(Server server);
inline constexpr Server kAllServers[] = {Server::kPine,  Server::kApache, Server::kSendmail,
                                         Server::kMc,    Server::kMutt,   Server::kArchive,
                                         Server::kCodec};

// What role a request plays in the traffic mix.
enum class RequestTag : uint8_t {
  kLegit,        // a legitimate user request; must be served correctly
  kAttack,       // crafted to reach a memory error; must be absorbed
  kMaintenance,  // background work (daemon wakeups, workload setup)
};

const char* RequestTagName(RequestTag tag);

// One request in a server's wire vocabulary. `op` is the server verb
// ("get", "session", "browse", "open", ...); `target`/`arg`/`lines`/
// `payload` carry its operands. `expect` is an op-specific acceptance
// operand interpreted by the adapter (e.g. the index line count a Pine
// mailbox should produce) so workload knowledge stays in the stream, not in
// the server.
struct ServerRequest {
  RequestTag tag = RequestTag::kLegit;
  uint64_t client_id = 0;
  std::string op;
  std::string target;
  std::string arg;
  std::string arg2;
  std::vector<std::string> lines;  // payload lines (an SMTP session)
  std::string payload;             // raw bytes (a .tgz archive, a mail body)
  std::string expect;              // op-specific acceptance operand

  // One-line wire form (all fields percent-escaped) and its inverse, used
  // by the LineChannel transport. Serialize(Deserialize(x)) == x.
  std::string Serialize() const;
  static std::optional<ServerRequest> Deserialize(const std::string& line);
};

// What the server answered. `ok` is the operation-level success as the
// server reports it; `acceptable` is the adapter's §4 availability verdict
// for this request (an attack folder open that *fails* with the server's
// standard error is not ok but is acceptable).
struct ServerResponse {
  bool ok = false;
  bool acceptable = false;
  int status = 0;          // numeric status where the protocol has one
  std::string body;        // rendered output (page body, pager view, ...)
  std::string error;       // the error line, if any
  std::vector<std::string> lines;  // multi-line output (SMTP dialogue, listing)

  std::string Serialize() const;
  static std::optional<ServerResponse> Deserialize(const std::string& line);
};

// The uniform session interface. BeginSession/EndSession bracket one
// client's interaction (stateless adapters keep the defaults); Handle
// processes one request; memory() exposes the simulated image for budgets
// and the error log — the outcome-relevant state probes the harness needs.
//
// Ownership under parallel serving: one worker = one ServerApp = one Memory
// = one Shard (src/runtime/shard.h). An adapter and its substrate (docroot,
// IMAP store) are private to its worker thread; nothing behind memory() is
// shared between two ServerApp instances, which is what lets the Frontend
// dispatch worker lanes concurrently with no locking.
class ServerApp {
 public:
  virtual ~ServerApp() = default;

  virtual void BeginSession(uint64_t client_id) { (void)client_id; }
  virtual ServerResponse Handle(const ServerRequest& request) = 0;
  virtual void EndSession(uint64_t client_id) { (void)client_id; }

  virtual Memory& memory() = 0;
};

}  // namespace fob

#endif  // SRC_APPS_SERVER_APP_H_
