#include "src/apps/mc.h"

#include <sstream>

#include "src/archive/gzip.h"
#include "src/archive/tar.h"
#include "src/libc/cstring.h"
#include "src/runtime/access_cursor.h"

namespace fob {

namespace {
Memory::Config McConfig(const PolicySpec& spec, SequenceKind sequence) {
  Memory::Config config;
  config.policy = spec;
  config.sequence = sequence;
  return config;
}
}  // namespace

McApp::McApp(const PolicySpec& spec, const std::string& config_text, SequenceKind sequence)
    : memory_(McConfig(spec, sequence)) {
  ParseConfigVulnerable(config_text);
}

void McApp::ParseConfigVulnerable(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    Memory::Frame frame(memory_, "load_setup");
    Ptr buf = memory_.NewCString(line, "config_line");
    size_t len = StrLen(memory_, buf);
    // The bug: trim a trailing '\r' by peeking at line[len-1] — with no
    // check that the line is nonempty. A blank line reads one byte *below*
    // the buffer.
    uint8_t last = memory_.ReadU8(buf + static_cast<int64_t>(len) - 1);
    if (last == '\r') {
      memory_.WriteU8(buf + static_cast<int64_t>(len) - 1, 0);
    }
    std::string cleaned = memory_.ReadCString(buf, line.size() + 1);
    memory_.Free(buf);
    size_t eq = cleaned.find('=');
    if (eq != std::string::npos && eq > 0) {
      config_[cleaned.substr(0, eq)] = cleaned.substr(eq + 1);
    }
  }
}

McApp::ArchiveListing McApp::BrowseTgz(const std::string& tgz_bytes) {
  ArchiveListing listing;
  GunzipError gz_error;
  auto tar_bytes = GunzipStore(tgz_bytes, &gz_error);
  if (!tar_bytes) {
    listing.error = "Cannot open archive (gzip error)";
    return listing;
  }
  auto entries = ReadTar(*tar_bytes);
  if (!entries) {
    listing.error = "Cannot open archive (tar error)";
    return listing;
  }

  // Names present in the archive, for symlink resolution.
  std::map<std::string, const TarEntry*> by_name;
  for (const TarEntry& entry : *entries) {
    by_name[entry.name] = &entry;
  }

  // --- the vulnerable pass: relativize absolute symlinks -----------------
  // One stack buffer for the whole loop, never reset between links: the
  // component names "simply accumulate sequentially in the buffer"
  // (§4.5.1).
  Memory::Frame frame(memory_, "vfs_tarfs_resolve");
  Ptr linkbuf = frame.Local(kLinkBufSize, "linkname_buf");
  std::map<std::string, std::string> resolved_links;

  for (const TarEntry& entry : *entries) {
    if (entry.type != TarEntryType::kSymlink || entry.link_target.empty() ||
        entry.link_target[0] != '/') {
      continue;
    }
    // Split the absolute target into components.
    std::vector<std::string> parts;
    {
      std::istringstream components(entry.link_target);
      std::string component;
      while (std::getline(components, component, '/')) {
        if (!component.empty()) {
          parts.push_back(component);
        }
      }
    }
    if (parts.size() < 2) {
      // Top-of-tree targets take a different (boring) path in MC.
      resolved_links[entry.name] = entry.link_target;
      continue;
    }
    // Remember where this link's name starts in the buffer (strcat appends
    // after everything the previous links left there).
    size_t start = StrLen(memory_, linkbuf);
    // Append each path component, '/'-separated, strcat-style.
    bool first = true;
    for (const std::string& component : parts) {
      Ptr piece = memory_.NewCString(first ? component : "/" + component, "component");
      StrCat(memory_, linkbuf, piece);
      memory_.Free(piece);
      first = false;
    }
    // Find the first '/' of this link's relative name: the §3 loop. When
    // the overflow discarded the '/' writes, the scan runs past the end of
    // the buffer and has to be rescued by a manufactured '/':
    Ptr cursor = linkbuf + static_cast<int64_t>(start);
    while (memory_.ReadU8(cursor) != '/') {
      ++cursor;
    }
    // Extract this link's accumulated name and look it up in the archive.
    // A sequential scan, so it runs on a cursor (the span fast path): for
    // the in-bounds prefix the table search is hoisted; once the scan runs
    // past the end of the overflowed buffer the cursor falls back to the
    // per-byte continuation path — byte-loop-identical either way.
    AccessCursor name_scan(memory_);
    std::string relative;
    for (Ptr p = linkbuf + static_cast<int64_t>(start);; ++p) {
      uint8_t c = name_scan.ReadU8(p);
      if (c == 0 || relative.size() > kLinkBufSize * 4) {
        break;
      }
      relative.push_back(static_cast<char>(c));
    }
    // "This lookup always fails (apparently even for the first symbolic
    //  link, when the name in the buffer is correct)" — the archive stores
    //  entry names, not reconstructed target paths, so the miss is the
    //  anticipated dangling-link case (§4.5.2).
    if (by_name.find(relative) == by_name.end()) {
      resolved_links[entry.name] = "(dangling)";
    } else {
      resolved_links[entry.name] = relative;
    }
  }

  for (const TarEntry& entry : *entries) {
    std::string row;
    switch (entry.type) {
      case TarEntryType::kDirectory:
        row = "dir   " + entry.name;
        break;
      case TarEntryType::kFile:
        row = "file  " + entry.name + " (" + std::to_string(entry.data.size()) + " bytes)";
        break;
      case TarEntryType::kSymlink: {
        auto it = resolved_links.find(entry.name);
        std::string shown = it != resolved_links.end() ? it->second : entry.link_target;
        row = "link  " + entry.name + " -> " + shown;
        break;
      }
    }
    listing.rows.push_back(std::move(row));
  }
  listing.ok = true;
  return listing;
}

std::string McApp::StagePath(const std::string& path) {
  Memory::Frame frame(memory_, "name_quote");
  Ptr raw = memory_.NewCString(path, "path_arg");
  Ptr staged = memory_.Malloc(path.size() + 1, "path_buf");
  StrCpy(memory_, staged, raw);
  std::string result = memory_.ReadCString(staged, path.size() + 1);
  memory_.Free(staged);
  memory_.Free(raw);
  return result;
}

void McApp::StageContents(const std::string& contents) {
  Memory::Frame frame(memory_, "file_io");
  constexpr size_t kIoBuf = 64 << 10;
  Ptr buffer = frame.Local(kIoBuf, "io_buf");
  for (size_t off = 0; off < contents.size(); off += kIoBuf) {
    size_t chunk = std::min(kIoBuf, contents.size() - off);
    memory_.Write(buffer, contents.data() + off, chunk);
    std::string readback(chunk, '\0');
    memory_.Read(buffer, readback.data(), chunk);
  }
}

bool McApp::Copy(const std::string& src, const std::string& dst) {
  std::string s = StagePath(src);
  std::string d = StagePath(dst);
  // Stage the data movement through program memory like read()/write().
  std::vector<std::string> stack = {s};
  while (!stack.empty()) {
    std::string path = stack.back();
    stack.pop_back();
    // Every visited node's path goes through the name-handling buffers,
    // like MC's per-entry path construction.
    std::string staged_path = StagePath(path);
    if (auto contents = fs_.ReadFile(staged_path)) {
      StageContents(*contents);
      continue;
    }
    if (auto children = fs_.List(staged_path)) {
      for (const std::string& name : *children) {
        stack.push_back(staged_path == "/" ? "/" + name : staged_path + "/" + name);
      }
    }
  }
  return fs_.Copy(s, d);
}

bool McApp::Move(const std::string& src, const std::string& dst) {
  std::string s = StagePath(src);
  std::string d = StagePath(dst);
  // A move inside one filesystem is a rename: no data staging.
  return fs_.Move(s, d);
}

bool McApp::MkDir(const std::string& path) {
  return fs_.MkDir(StagePath(path));
}

bool McApp::Delete(const std::string& path) {
  return fs_.Remove(StagePath(path));
}

std::optional<std::string> McApp::View(const std::string& path, size_t limit) {
  std::string staged = StagePath(path);
  auto contents = fs_.ReadFile(staged);
  if (!contents) {
    return std::nullopt;
  }
  // The viewer pages the file through its display buffer.
  Memory::Frame frame(memory_, "mc_view");
  size_t shown = std::min(limit, contents->size());
  Ptr pager = memory_.Malloc(shown + 1, "pager_buf");
  memory_.Write(pager, contents->data(), shown);
  memory_.WriteU8(pager + static_cast<int64_t>(shown), 0);
  std::string rendered = memory_.ReadBytesAsString(pager, shown);
  memory_.Free(pager);
  return rendered;
}

bool McApp::ExtractFromTgz(const std::string& tgz_bytes, const std::string& entry_name,
                           const std::string& dst_dir) {
  auto tar_bytes = GunzipStore(tgz_bytes);
  if (!tar_bytes) {
    return false;
  }
  auto entries = ReadTar(*tar_bytes);
  if (!entries) {
    return false;
  }
  for (const TarEntry& entry : *entries) {
    if (entry.name != entry_name || entry.type != TarEntryType::kFile) {
      continue;
    }
    // Stage the extraction through the I/O buffer like a real copy-out.
    StageContents(entry.data);
    std::string leaf = entry.name;
    size_t slash = leaf.rfind('/');
    if (slash != std::string::npos) {
      leaf = leaf.substr(slash + 1);
    }
    return fs_.WriteFile(dst_dir + "/" + leaf, entry.data, /*create_parents=*/true);
  }
  return false;
}

std::string McApp::DefaultConfigText(bool with_blank_lines) {
  std::string text =
      "use_internal_edit=1\n"
      "show_backups=0\n"
      "confirm_delete=1\n";
  if (with_blank_lines) {
    text += "\n";  // the everyday memory error (§4.5.4)
  }
  text += "pause_after_run=1\n";
  return text;
}

}  // namespace fob
