#include "src/apps/server_adapters.h"

#include <cstdlib>

namespace fob {

namespace {

uint64_t ParseU64(const std::string& s) {
  return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
}

ServerResponse UnknownOp(const ServerRequest& request) {
  ServerResponse response;
  response.error = "unknown op \"" + request.op + "\"";
  return response;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

// ---- Pine -----------------------------------------------------------------

PineServer::PineServer(const PolicySpec& spec, const std::string& mbox_text)
    : app_(spec, mbox_text) {}

ServerResponse PineServer::Handle(const ServerRequest& request) {
  ServerResponse response;
  if (request.op == "index") {
    response.lines = app_.IndexLines();
    response.ok = true;
    // Acceptability (§4.2.2): the index came up with every message listed.
    response.acceptable =
        request.expect.empty() || response.lines.size() == ParseU64(request.expect);
    return response;
  }
  if (request.op == "quote") {
    // The §4.2 vulnerable path directly: quoting a From field for the index.
    response.body = app_.QuoteFromVulnerable(request.target);
    response.ok = true;
    response.acceptable = true;  // surviving the quote is the criterion
    return response;
  }
  if (request.op == "folder_size") {
    response.body = std::to_string(app_.FolderSize(request.target));
    response.ok = true;
    response.acceptable = request.expect.empty() || response.body == request.expect;
    return response;
  }
  PineApp::Result result;
  if (request.op == "read") {
    result = app_.ReadMessage(ParseU64(request.target));
  } else if (request.op == "compose") {
    result = app_.Compose(request.target, request.arg, request.payload);
  } else if (request.op == "reply") {
    result = app_.Reply(ParseU64(request.target), request.payload);
  } else if (request.op == "forward") {
    result = app_.Forward(ParseU64(request.target), request.arg);
  } else if (request.op == "move") {
    result = app_.MoveMessage(ParseU64(request.target), request.arg);
  } else {
    return UnknownOp(request);
  }
  response.ok = result.ok;
  response.body = result.display;
  response.error = result.error;
  response.acceptable = result.ok;
  if (request.op == "move" && !request.expect.empty()) {
    response.acceptable =
        response.acceptable && app_.FolderSize(request.arg) == ParseU64(request.expect);
  }
  return response;
}

// ---- Apache ---------------------------------------------------------------

ApacheServer::ApacheServer(const PolicySpec& spec, Vfs docroot, const std::string& config_text)
    : docroot_(std::move(docroot)), app_(spec, &docroot_, config_text) {}

ServerResponse ApacheServer::Handle(const ServerRequest& request) {
  if (request.op != "get") {
    return UnknownOp(request);
  }
  HttpRequest get;
  get.method = "GET";
  get.path = request.target;
  get.version = "HTTP/1.0";
  get.headers.emplace_back("Host", "www.flexc.csail.mit.edu");
  HttpResponse http = app_.Handle(get);
  ServerResponse response;
  response.status = http.status;
  response.body = http.body;
  response.ok = http.status == 200;
  if (request.tag == RequestTag::kAttack) {
    // Acceptable (§4.3.2): the attack request got a well-formed HTTP
    // response — under Failure Oblivious it is byte-identical to the
    // correct one; under Wrap the redirected writes may degrade it to a
    // 404, which still leaves every legitimate user unaffected.
    response.acceptable = http.status == 200 || http.status == 404;
  } else {
    // A legitimate fetch must be served in full; `expect` carries the
    // minimum body size when the workload pins one.
    response.acceptable =
        http.status == 200 &&
        (request.expect.empty() || http.body.size() > ParseU64(request.expect));
  }
  return response;
}

// ---- Sendmail -------------------------------------------------------------

SendmailServer::SendmailServer(const PolicySpec& spec) : app_(spec) {}

ServerResponse SendmailServer::Handle(const ServerRequest& request) {
  ServerResponse response;
  if (request.op == "wakeup") {
    app_.DaemonWakeup();  // §4.4.4: one (benign) memory error per call
    response.ok = true;
    response.acceptable = true;
    return response;
  }
  if (request.op != "session") {
    return UnknownOp(request);
  }
  response.lines = app_.HandleSession(request.lines);
  bool closed = !response.lines.empty() && StartsWith(response.lines.back(), "221");
  response.ok = closed;
  if (request.tag == RequestTag::kAttack) {
    // Acceptable (§4.4.2): the attack MAIL command was *rejected* (553) and
    // the session continued to QUIT.
    bool rejected = false;
    for (const std::string& line : response.lines) {
      if (StartsWith(line, "553")) {
        rejected = true;
      }
    }
    response.acceptable = rejected && closed;
  } else {
    response.acceptable = closed && (request.expect.empty() ||
                                     app_.local_mailbox().size() == ParseU64(request.expect));
  }
  return response;
}

// ---- Midnight Commander ---------------------------------------------------

McServer::McServer(const PolicySpec& spec, const std::string& config_text,
                   SequenceKind sequence)
    : app_(spec, config_text, sequence) {}

ServerResponse McServer::Handle(const ServerRequest& request) {
  ServerResponse response;
  if (request.op == "browse") {
    McApp::ArchiveListing listing = app_.BrowseTgz(request.payload);
    response.lines = listing.rows;
    response.error = listing.error;
    response.ok = listing.ok;
    // Acceptable (§4.5.2): the browse returned a listing — dangling
    // symlinks shown is the anticipated case.
    response.acceptable =
        listing.ok &&
        (request.expect.empty() || listing.rows.size() == ParseU64(request.expect));
    return response;
  }
  if (request.op == "mktree") {
    uint64_t written = PopulateTree(app_.fs(), request.target, ParseU64(request.arg));
    response.body = std::to_string(written);
    response.ok = true;
    response.acceptable = true;
    return response;
  }
  if (request.op == "view") {
    auto contents = app_.View(request.target);
    response.ok = contents.has_value();
    if (contents) {
      response.body = *contents;
    }
    response.acceptable = response.ok;
    return response;
  }
  bool ok = false;
  if (request.op == "copy") {
    ok = app_.Copy(request.target, request.arg);
  } else if (request.op == "move") {
    ok = app_.Move(request.target, request.arg);
  } else if (request.op == "mkdir") {
    ok = app_.MkDir(request.target);
  } else if (request.op == "delete") {
    ok = app_.Delete(request.target);
  } else {
    return UnknownOp(request);
  }
  response.ok = ok;
  response.acceptable = ok;
  return response;
}

// ---- Mutt -----------------------------------------------------------------

MuttServer::MuttServer(const PolicySpec& spec,
                       std::vector<std::pair<std::string, std::vector<MailMessage>>> folders)
    : app_(spec, &imap_) {
  for (auto& [name, messages] : folders) {
    imap_.AddFolderUtf8(name, std::move(messages));
  }
}

ServerResponse MuttServer::Handle(const ServerRequest& request) {
  MuttApp::Result result;
  bool attack_open = false;
  if (request.op == "open") {
    result = app_.OpenFolder(request.target);
    attack_open = request.tag == RequestTag::kAttack;
  } else if (request.op == "read") {
    result = app_.ReadMessage(request.target, ParseU64(request.arg));
  } else if (request.op == "move") {
    result = app_.MoveMessage(request.target, ParseU64(request.arg), request.arg2);
  } else if (request.op == "compose") {
    result = app_.Compose(request.target, request.arg, request.arg2, request.payload);
  } else if (request.op == "forward") {
    result = app_.Forward(request.target, ParseU64(request.arg), request.arg2);
  } else {
    return UnknownOp(request);
  }
  ServerResponse response;
  response.ok = result.ok;
  response.body = result.display;
  response.error = result.error;
  if (attack_open) {
    // Acceptable (§4.6.2): the open *failed* with the IMAP server's "does
    // not exist" error, handled by Mutt's standard error logic.
    response.acceptable =
        !result.ok && result.error.find("does not exist") != std::string::npos;
  } else {
    response.acceptable = result.ok;
  }
  return response;
}

// ---- Archive Inbox ---------------------------------------------------------

ArchiveServer::ArchiveServer(const PolicySpec& spec) : app_(spec) {}

ServerResponse ArchiveServer::Handle(const ServerRequest& request) {
  ArchiveInboxApp::Result result;
  bool attack_upload = false;
  if (request.op == "upload") {
    result = app_.Upload(request.target, request.payload);
    attack_upload = request.tag == RequestTag::kAttack;
  } else if (request.op == "list") {
    result = app_.List(request.target);
  } else if (request.op == "extract") {
    result = app_.Extract(request.target, request.arg);
  } else if (request.op == "drop") {
    result = app_.Drop(request.target);
  } else {
    return UnknownOp(request);
  }
  ServerResponse response;
  response.ok = result.ok;
  response.body = result.display;
  response.error = result.error;
  response.lines = result.files;
  bool count_ok =
      request.expect.empty() || result.files.size() == ParseU64(request.expect);
  if (attack_upload) {
    // Acceptable: the upload was stored in full despite the oversized FNAME
    // (the name is display-only) — or the malformed container was rejected
    // through the server's standard "Cannot open archive" path, the
    // anticipated error case.
    response.acceptable =
        (result.ok && count_ok) || StartsWith(result.error, "Cannot open archive");
  } else {
    response.acceptable = result.ok && count_ok;
  }
  return response;
}

// ---- Codec Gateway ---------------------------------------------------------

CodecServer::CodecServer(const PolicySpec& spec) : app_(spec) {}

ServerResponse CodecServer::Handle(const ServerRequest& request) {
  if (request.op != "transcode") {
    return UnknownOp(request);
  }
  CodecGatewayApp::Result result =
      app_.Transcode(request.target, request.arg, request.payload);
  ServerResponse response;
  response.ok = result.ok;
  response.body = result.output;
  response.error = result.error;
  // Acceptable: the conversion came back, and matches exactly when the
  // workload pins the expected bytes (an integrity-checking client — under
  // the undersized decode only Boundless reproduces the reference output,
  // which is what drives the sweep toward a per-site assignment no §4
  // server needs).
  response.acceptable =
      result.ok && (request.expect.empty() || result.output == request.expect);
  return response;
}

}  // namespace fob
