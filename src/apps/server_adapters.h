// ServerApp adapters for the five §4 servers and the two post-paper
// additions (archive inbox, codec gateway).
//
// Each adapter owns one app instance (plus its native substrate — Apache's
// docroot, Mutt's IMAP server) and translates the uniform ServerRequest
// vocabulary onto the app's own methods, 1:1 and in order, so a request
// stream driven through an adapter performs *exactly* the simulated-memory
// operations the equivalent direct calls would (tests/test_server_app.cc
// pins that equivalence: identical responses, memlog contents and Outcome
// under all seven policies).
//
// The adapter also owns the §4 acceptability judgment for each op — the
// server-specific knowledge that used to be scattered through the harness:
// an attack GET is acceptable if it still gets a well-formed response, an
// attack MAIL if it is *rejected* with 553, an attack folder open if it
// *fails* through the server's standard error path. Workload-specific
// expectations (an index line count, a mailbox size) arrive in
// ServerRequest::expect so the adapters stay workload-agnostic.
//
// Op vocabulary (target/arg/arg2/lines/payload/expect per op):
//
//   Pine      index            expect: index line count
//             read             target: 0-based message index
//             compose          target: to, arg: subject, payload: body
//             reply            target: index, payload: body
//             forward          target: index, arg: to
//             move             target: index, arg: folder, expect: folder size after
//             quote            target: the From field (the §4.2 vulnerable path)
//             folder_size      target: folder, expect: size
//   Apache    get              target: path, expect: minimum body bytes (legit)
//   Sendmail  session          lines: client SMTP lines, expect: mailbox size after
//             wakeup           (the §4.4.4 everyday error)
//   MC        browse           payload: tgz bytes, expect: listing row count
//             mktree           target: root, arg: approximate bytes
//             copy|move        target: src, arg: dst
//             mkdir|delete     target: path
//             view             target: path
//   Mutt      open             target: UTF-8 folder name
//             read             target: folder, arg: 1-based index
//             move             target: from, arg: index, arg2: to
//             compose          target: folder, arg: to, arg2: subject, payload: body
//             forward          target: folder, arg: index, arg2: to
//   Archive   upload           target: slot, payload: tgz bytes, expect: stored file count
//             list             target: slot, expect: file count
//             extract          target: slot, arg: entry path
//             drop             target: slot
//   Codec     transcode        target: direction (u7to8|u8to7|b64enc|b64dec),
//                              arg: charset label, payload: input text,
//                              expect: exact output bytes (empty = don't check)

#ifndef SRC_APPS_SERVER_ADAPTERS_H_
#define SRC_APPS_SERVER_ADAPTERS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/apps/apache.h"
#include "src/apps/archive_inbox.h"
#include "src/apps/codec_gateway.h"
#include "src/apps/mc.h"
#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/apps/server_app.h"
#include "src/net/imap.h"
#include "src/vfs/vfs.h"

namespace fob {

class PineServer : public ServerApp {
 public:
  PineServer(const PolicySpec& spec, const std::string& mbox_text);
  ServerResponse Handle(const ServerRequest& request) override;
  Memory& memory() override { return app_.memory(); }
  PineApp& app() { return app_; }

 private:
  PineApp app_;
};

class ApacheServer : public ServerApp {
 public:
  ApacheServer(const PolicySpec& spec, Vfs docroot, const std::string& config_text);
  ServerResponse Handle(const ServerRequest& request) override;
  Memory& memory() override { return app_.memory(); }
  ApacheApp& app() { return app_; }

 private:
  Vfs docroot_;  // must outlive app_ (declared first)
  ApacheApp app_;
};

class SendmailServer : public ServerApp {
 public:
  explicit SendmailServer(const PolicySpec& spec);
  ServerResponse Handle(const ServerRequest& request) override;
  Memory& memory() override { return app_.memory(); }
  SendmailApp& app() { return app_; }

 private:
  SendmailApp app_;
};

class McServer : public ServerApp {
 public:
  McServer(const PolicySpec& spec, const std::string& config_text,
           SequenceKind sequence = SequenceKind::kPaper);
  ServerResponse Handle(const ServerRequest& request) override;
  Memory& memory() override { return app_.memory(); }
  McApp& app() { return app_; }

 private:
  McApp app_;
};

class MuttServer : public ServerApp {
 public:
  // `folders` seeds the adapter-owned IMAP server (native substrate).
  MuttServer(const PolicySpec& spec,
             std::vector<std::pair<std::string, std::vector<MailMessage>>> folders);
  ServerResponse Handle(const ServerRequest& request) override;
  Memory& memory() override { return app_.memory(); }
  MuttApp& app() { return app_; }

 private:
  ImapServer imap_;  // must outlive app_ (declared first)
  MuttApp app_;
};

class ArchiveServer : public ServerApp {
 public:
  explicit ArchiveServer(const PolicySpec& spec);
  ServerResponse Handle(const ServerRequest& request) override;
  Memory& memory() override { return app_.memory(); }
  ArchiveInboxApp& app() { return app_; }

 private:
  ArchiveInboxApp app_;
};

class CodecServer : public ServerApp {
 public:
  explicit CodecServer(const PolicySpec& spec);
  ServerResponse Handle(const ServerRequest& request) override;
  Memory& memory() override { return app_.memory(); }
  CodecGatewayApp& app() { return app_; }

 private:
  CodecGatewayApp app_;
};

}  // namespace fob

#endif  // SRC_APPS_SERVER_ADAPTERS_H_
