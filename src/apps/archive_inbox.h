// mini archive-inbox server (post-§4 matrix row).
//
// An upload-and-extract service: clients POST .tgz archives into named inbox
// slots; the server unpacks them over simulated memory and serves listings
// and file extractions. Two ported memory errors:
//
//  1. gzip original-name parsing (the documented attack): gzip 1.2.4's
//     get_method() copies the header's FNAME field into a fixed stack
//     buffer with no length check ("strcpy into the static work area").
//     Our port stages the member header into simulated memory and copies
//     the name byte-by-byte into a kNameBufSize frame local; an archive
//     whose recorded name is longer writes past the end.
//
//       Standard          stack physically corrupted; stack-smash fault at
//                         function return.
//       Bounds Check      terminates at the first out-of-bounds store.
//       Failure Oblivious writes discarded; the read-back scan leaves the
//                         buffer and the first manufactured value (0)
//                         terminates it — a truncated display name, and the
//                         upload itself (which never depended on the name)
//                         completes normally.
//       Boundless         the full name round-trips through the OOB store.
//       Wrap              the terminating NUL wraps back into the buffer,
//                         so the display name comes back empty.
//
//  2. Slot-name staging: each request's slot argument is strcpy'd through a
//     kSlotBufSize lookup buffer. Every slot the §4-style workloads use
//     fits; an oversized slot name (what the mutation fuzzer finds by
//     length-stretching the target field) overflows it — an error site the
//     baseline streams never exercise.
//
// The archive substrates (gzip container, tar parsing, the Vfs the slots
// live in) are honest host-side code, exactly like MC's BrowseTgz: the
// vulnerability is in the ported header-field handling, not the container
// math.

#ifndef SRC_APPS_ARCHIVE_INBOX_H_
#define SRC_APPS_ARCHIVE_INBOX_H_

#include <string>
#include <vector>

#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"
#include "src/vfs/vfs.h"

namespace fob {

class ArchiveInboxApp {
 public:
  // gzip 1.2.4 sized its name work area generously; ours is the experiment's
  // scaled-down equivalent, like MC's kLinkBufSize.
  static constexpr size_t kNameBufSize = 32;
  // The slot-lookup staging buffer (error site 2).
  static constexpr size_t kSlotBufSize = 24;

  explicit ArchiveInboxApp(const PolicySpec& spec);

  struct Result {
    bool ok = false;
    std::string display;             // human line ("stored 3 files from ...")
    std::string error;
    std::vector<std::string> files;  // affected/listed file paths, sorted
  };

  // Unpacks a .tgz into /inbox/<slot>/ — the vulnerable FNAME parse runs
  // first, then the honest gunzip+untar. Malformed containers fail with the
  // server's standard "Cannot open archive" error (the anticipated case).
  Result Upload(const std::string& slot, const std::string& tgz_bytes);
  // Recursive file listing of a slot.
  Result List(const std::string& slot);
  // Returns one stored file's contents (staged through the reply buffer).
  Result Extract(const std::string& slot, const std::string& entry);
  // Removes a slot and everything in it.
  Result Drop(const std::string& slot);

  Memory& memory() { return memory_; }
  Vfs& fs() { return fs_; }

 private:
  // The gzip 1.2.4 get_method() port: copies the FNAME field out of the
  // staged header into a fixed frame local, unchecked. Returns the name the
  // server will display (whatever the policy left in the buffer).
  std::string ParseGzipNameVulnerable(const std::string& tgz_bytes);
  // Stages a slot argument through the fixed lookup buffer (error site 2).
  std::string StageSlotName(const std::string& slot);
  void CollectFiles(const std::string& root, std::vector<std::string>& out);

  Memory memory_;
  Vfs fs_;
};

}  // namespace fob

#endif  // SRC_APPS_ARCHIVE_INBOX_H_
