#include "src/apps/server_app.h"

#include <sstream>

namespace fob {

const char* ServerName(Server server) {
  switch (server) {
    case Server::kPine:
      return "Pine";
    case Server::kApache:
      return "Apache";
    case Server::kSendmail:
      return "Sendmail";
    case Server::kMc:
      return "Midnight Commander";
    case Server::kMutt:
      return "Mutt";
    case Server::kArchive:
      return "Archive Inbox";
    case Server::kCodec:
      return "Codec Gateway";
  }
  return "?";
}

const char* ServerShortName(Server server) {
  switch (server) {
    case Server::kPine:
      return "pine";
    case Server::kApache:
      return "apache";
    case Server::kSendmail:
      return "sendmail";
    case Server::kMc:
      return "mc";
    case Server::kMutt:
      return "mutt";
    case Server::kArchive:
      return "archive";
    case Server::kCodec:
      return "codec";
  }
  return "?";
}

const char* RequestTagName(RequestTag tag) {
  switch (tag) {
    case RequestTag::kLegit:
      return "legit";
    case RequestTag::kAttack:
      return "attack";
    case RequestTag::kMaintenance:
      return "maintenance";
  }
  return "?";
}

namespace {

// Percent-escapes tabs, newlines, '%' and non-printable bytes so any field
// — including raw archive bytes — survives the one-line wire form.
std::string Escape(const std::string& s) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '%' || c == '\t' || c == '\n' || c == '\r' || c < 0x20 || c >= 0x7f) {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

std::optional<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) {
      return std::nullopt;
    }
    int hi = HexNibble(s[i + 1]);
    int lo = HexNibble(s[i + 2]);
    if (hi < 0 || lo < 0) {
      return std::nullopt;
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string joined;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) {
      joined.push_back('\n');
    }
    joined += lines[i];
  }
  return joined;
}

std::vector<std::string> SplitJoined(const std::string& joined) {
  if (joined.empty()) {
    return {};
  }
  std::vector<std::string> lines;
  size_t start = 0;
  while (true) {
    size_t nl = joined.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(joined.substr(start));
      return lines;
    }
    lines.push_back(joined.substr(start, nl - start));
    start = nl + 1;
  }
}

}  // namespace

std::string ServerRequest::Serialize() const {
  std::ostringstream os;
  os << "REQ\t" << static_cast<int>(tag) << '\t' << client_id << '\t' << Escape(op) << '\t'
     << Escape(target) << '\t' << Escape(arg) << '\t' << Escape(arg2) << '\t'
     << Escape(JoinLines(lines)) << '\t' << Escape(payload) << '\t' << Escape(expect);
  return os.str();
}

std::optional<ServerRequest> ServerRequest::Deserialize(const std::string& line) {
  std::vector<std::string> fields = SplitTabs(line);
  if (fields.size() != 10 || fields[0] != "REQ") {
    return std::nullopt;
  }
  int tag_value = 0;
  try {
    tag_value = std::stoi(fields[1]);
  } catch (...) {
    return std::nullopt;
  }
  if (tag_value < 0 || tag_value > static_cast<int>(RequestTag::kMaintenance)) {
    return std::nullopt;
  }
  ServerRequest request;
  request.tag = static_cast<RequestTag>(tag_value);
  try {
    request.client_id = std::stoull(fields[2]);
  } catch (...) {
    return std::nullopt;
  }
  auto op = Unescape(fields[3]);
  auto target = Unescape(fields[4]);
  auto arg = Unescape(fields[5]);
  auto arg2 = Unescape(fields[6]);
  auto lines_joined = Unescape(fields[7]);
  auto payload = Unescape(fields[8]);
  auto expect = Unescape(fields[9]);
  if (!op || !target || !arg || !arg2 || !lines_joined || !payload || !expect) {
    return std::nullopt;
  }
  request.op = std::move(*op);
  request.target = std::move(*target);
  request.arg = std::move(*arg);
  request.arg2 = std::move(*arg2);
  request.lines = SplitJoined(*lines_joined);
  request.payload = std::move(*payload);
  request.expect = std::move(*expect);
  return request;
}

std::string ServerResponse::Serialize() const {
  std::ostringstream os;
  os << "RSP\t" << (ok ? 1 : 0) << '\t' << (acceptable ? 1 : 0) << '\t' << status << '\t'
     << Escape(body) << '\t' << Escape(error) << '\t' << Escape(JoinLines(lines));
  return os.str();
}

std::optional<ServerResponse> ServerResponse::Deserialize(const std::string& line) {
  std::vector<std::string> fields = SplitTabs(line);
  if (fields.size() != 7 || fields[0] != "RSP") {
    return std::nullopt;
  }
  ServerResponse response;
  response.ok = fields[1] == "1";
  response.acceptable = fields[2] == "1";
  try {
    response.status = std::stoi(fields[3]);
  } catch (...) {
    return std::nullopt;
  }
  auto body = Unescape(fields[4]);
  auto error = Unescape(fields[5]);
  auto lines_joined = Unescape(fields[6]);
  if (!body || !error || !lines_joined) {
    return std::nullopt;
  }
  response.body = std::move(*body);
  response.error = std::move(*error);
  response.lines = SplitJoined(*lines_joined);
  return response;
}

}  // namespace fob
