// mini-Pine (§4.2).
//
// A mail user agent that loads an mbox at startup and builds the message
// index. Building each index line quotes the From field into a heap buffer
// whose maximum length is miscalculated ("fails to correctly account for
// the potential increase" from inserted '\' characters), so a From field
// with many quotable characters writes past the end of the buffer:
//
//   Standard          heap corrupted during startup; Pine dies before the
//                     user can interact at all (the attack message sits in
//                     the mailbox, so restarting does not help).
//   Bounds Check      terminates during startup for the same reason.
//   Failure Oblivious out-of-bounds writes discarded; the From column is
//                     truncated — invisible, since the index shows only an
//                     initial segment anyway. Selecting the message takes a
//                     different, correct path that shows the full header.
//
// Index construction, quoting and rendering run in simulated memory; the
// mailbox substrate (mbox parsing, folders) is native.

#ifndef SRC_APPS_PINE_H_
#define SRC_APPS_PINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/mail/message.h"
#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"

namespace fob {

class PineApp {
 public:
  struct Result {
    bool ok = false;
    std::string display;
    std::string error;
  };

  // Width of the From column in the index view; long (and truncated) From
  // fields are cut to this anyway, which is why failure-oblivious truncation
  // is invisible (§4.2.2).
  static constexpr size_t kIndexFromWidth = 40;

  // Startup: parses the mbox and builds the index — the vulnerable path.
  // Under Standard/BoundsCheck an attack mailbox faults out of here.
  PineApp(const PolicySpec& spec, const std::string& mbox_text);

  // The index screen: one line per message.
  const std::vector<std::string>& IndexLines() const { return index_lines_; }

  // Opens message `index` (0-based): the full-header display path, which
  // translates the From field correctly (§4.2.2).
  Result ReadMessage(size_t index);

  // Composes a message into the "sent" folder.
  Result Compose(const std::string& to, const std::string& subject, const std::string& body);

  // Replies to message `index`: quotes its body ("> " prefixes, built in an
  // edit buffer) and sends to its From address (§4.2.4 "replying to mails").
  Result Reply(size_t index, const std::string& body);

  // Forwards message `index` verbatim to a new recipient (§4.2.4
  // "forwarding mails").
  Result Forward(size_t index, const std::string& to);

  // Moves a message from the inbox to a named folder.
  Result MoveMessage(size_t index, const std::string& folder);

  size_t MessageCount() const { return inbox_.size(); }
  size_t FolderSize(const std::string& folder) const;
  Memory& memory() { return memory_; }

  // The vulnerable quoting routine, public for tests: quotes '\' and '"'
  // with a leading backslash into an undersized heap buffer and returns the
  // (possibly truncated) result.
  std::string QuoteFromVulnerable(const std::string& from);

 private:
  void BuildIndex();

  Memory memory_;
  std::vector<MailMessage> inbox_;
  std::map<std::string, std::vector<MailMessage>> folders_;
  std::vector<std::string> index_lines_;
  // Live per-message heap records (header copies etc.), like the real
  // Pine's in-core mailbox: these populate the object table for the
  // lifetime of the session.
  std::vector<Ptr> resident_;
};

}  // namespace fob

#endif  // SRC_APPS_PINE_H_
