#include "src/apps/archive_inbox.h"

#include <algorithm>

#include "src/archive/gzip.h"
#include "src/archive/tar.h"
#include "src/libc/cstring.h"

namespace fob {

namespace {

// Stages uploaded file contents through a simulated I/O buffer, chunk by
// chunk — the per-byte cost a real server pays writing the unpacked entry
// out (always in bounds; the realism substrate, not the vulnerability).
void StageFileContents(Memory& memory, const std::string& contents) {
  Memory::Frame frame(memory, "inbox_file_io");
  constexpr size_t kIoBuf = 16 << 10;
  Ptr buffer = frame.Local(kIoBuf, "upload_io_buf");
  for (size_t off = 0; off < contents.size(); off += kIoBuf) {
    size_t chunk = std::min(kIoBuf, contents.size() - off);
    memory.Write(buffer, contents.data() + off, chunk);
    std::string readback(chunk, '\0');
    memory.Read(buffer, readback.data(), chunk);
  }
}

}  // namespace

ArchiveInboxApp::ArchiveInboxApp(const PolicySpec& spec) : memory_(spec) {
  fs_.MkDir("/inbox");
}

std::string ArchiveInboxApp::ParseGzipNameVulnerable(const std::string& tgz_bytes) {
  auto field = FindGzipName(tgz_bytes);
  if (!field) {
    return "";
  }
  // The buffered header read: everything through the name field lands in
  // program memory before the copy, like gzip's inbuf.
  Ptr header = memory_.NewBytes(std::string_view(tgz_bytes).substr(0, field->end), "gz_header");
  Memory::Frame frame(memory_, "gz_read_header");
  Ptr namebuf = frame.Local(kNameBufSize, "orig_name_buf");
  // The gzip 1.2.4 bug: the FNAME bytes are copied into the fixed work area
  // until the header's NUL arrives — nothing ever compares the copy cursor
  // against the end of the buffer.
  Ptr p = namebuf;
  for (size_t i = field->offset; i < field->end; ++i) {
    uint8_t c = memory_.ReadU8(header + static_cast<int64_t>(i));
    memory_.WriteU8(p, c);
    ++p;
    if (c == 0) {
      break;
    }
  }
  // Read the display name back out. For an overflowed buffer the in-bounds
  // prefix has no NUL, so the scan crosses the end and the policy decides
  // what terminates it (manufactured zero, stored byte, wrapped NUL).
  std::string name = memory_.ReadCString(namebuf, kNameBufSize * 4);
  memory_.Free(header);
  return name;
}

std::string ArchiveInboxApp::StageSlotName(const std::string& slot) {
  Memory::Frame frame(memory_, "inbox_lookup");
  Ptr buf = frame.Local(kSlotBufSize, "slot_name_buf");
  Ptr raw = memory_.NewCString(slot, "slot_arg");
  // Unchecked: every slot the shipped workloads send fits kSlotBufSize; an
  // oversized one (the fuzzer's length-stretch) writes past the end.
  StrCpy(memory_, buf, raw);
  memory_.Free(raw);
  return memory_.ReadCString(buf, kSlotBufSize * 4);
}

ArchiveInboxApp::Result ArchiveInboxApp::Upload(const std::string& slot,
                                                const std::string& tgz_bytes) {
  Result result;
  std::string staged_slot = StageSlotName(slot);
  // gzip parses the member header — FNAME included — before it looks at the
  // compressed stream, so the vulnerable copy runs even for archives whose
  // payload later fails CRC (exactly gzip 1.2.4's order of operations).
  std::string display_name = ParseGzipNameVulnerable(tgz_bytes);
  GunzipError gz_error;
  auto tar_bytes = GunzipStore(tgz_bytes, &gz_error);
  if (!tar_bytes) {
    result.error = "Cannot open archive (gzip error)";
    return result;
  }
  auto entries = ReadTar(*tar_bytes);
  if (!entries) {
    result.error = "Cannot open archive (tar error)";
    return result;
  }
  std::string root = "/inbox/" + staged_slot;
  for (const TarEntry& entry : *entries) {
    if (entry.type != TarEntryType::kFile) {
      continue;
    }
    StageFileContents(memory_, entry.data);
    fs_.WriteFile(root + "/" + entry.name, entry.data, /*create_parents=*/true);
    result.files.push_back(entry.name);
  }
  std::sort(result.files.begin(), result.files.end());
  result.ok = true;
  result.display = "stored " + std::to_string(result.files.size()) + " files";
  if (!display_name.empty()) {
    result.display += " from \"" + display_name + "\"";
  }
  return result;
}

void ArchiveInboxApp::CollectFiles(const std::string& root, std::vector<std::string>& out) {
  std::vector<std::string> stack = {root};
  while (!stack.empty()) {
    std::string path = stack.back();
    stack.pop_back();
    if (fs_.ReadFile(path)) {
      out.push_back(path.substr(root.size() + 1));
      continue;
    }
    if (auto children = fs_.List(path)) {
      for (const std::string& name : *children) {
        stack.push_back(path + "/" + name);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

ArchiveInboxApp::Result ArchiveInboxApp::List(const std::string& slot) {
  Result result;
  std::string staged_slot = StageSlotName(slot);
  std::string root = "/inbox/" + staged_slot;
  if (!fs_.List(root)) {
    result.error = "no such slot \"" + staged_slot + "\"";
    return result;
  }
  CollectFiles(root, result.files);
  result.ok = true;
  result.display = std::to_string(result.files.size()) + " files";
  return result;
}

ArchiveInboxApp::Result ArchiveInboxApp::Extract(const std::string& slot,
                                                 const std::string& entry) {
  Result result;
  std::string staged_slot = StageSlotName(slot);
  auto contents = fs_.ReadFile("/inbox/" + staged_slot + "/" + entry);
  if (!contents) {
    result.error = "no such entry \"" + entry + "\"";
    return result;
  }
  // The reply pages through a simulated buffer, like MC's viewer.
  Memory::Frame frame(memory_, "inbox_extract");
  size_t n = contents->size();
  Ptr buf = memory_.Malloc(n + 1, "extract_buf");
  memory_.WriteBytes(buf, *contents);
  memory_.WriteU8(buf + static_cast<int64_t>(n), 0);
  result.display = memory_.ReadBytesAsString(buf, n);
  memory_.Free(buf);
  result.ok = true;
  result.files.push_back(entry);
  return result;
}

ArchiveInboxApp::Result ArchiveInboxApp::Drop(const std::string& slot) {
  Result result;
  std::string staged_slot = StageSlotName(slot);
  result.ok = fs_.Remove("/inbox/" + staged_slot);
  if (!result.ok) {
    result.error = "no such slot \"" + staged_slot + "\"";
  } else {
    result.display = "dropped " + staged_slot;
  }
  return result;
}

}  // namespace fob
