// Resident-heap population for the mini-servers.
//
// A long-running server carries thousands of live heap allocations (parsed
// messages, alias databases, connection caches, config trees). The size of
// that live set is what the Jones-Kelly object-table search pays for on
// every checked access, so the mini-servers must carry a realistic resident
// set for the Standard-vs-checked performance gap to be meaningful.
// PopulateResidentHeap allocates `blocks` long-lived allocations whose Ptrs
// the app keeps for its lifetime.

#ifndef SRC_APPS_RESIDENT_H_
#define SRC_APPS_RESIDENT_H_

#include <string>
#include <vector>

#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"

namespace fob {

std::vector<Ptr> PopulateResidentHeap(Memory& memory, size_t blocks, size_t bytes_each,
                                      const std::string& name);

}  // namespace fob

#endif  // SRC_APPS_RESIDENT_H_
