// mini codec-gateway server (post-§4 matrix row).
//
// A transcoding service: clients submit text plus a direction (utf7→utf8,
// utf8→utf7, base64 encode/decode) and get the converted bytes back. Two
// ported memory errors:
//
//  1. UTF-7 decoding (the documented attack): the inverse of the paper's
//     Figure 1 conversion, with the inverse of its sizing mistake. The
//     gateway allocates `u7len + 1` output bytes on the reasoning that
//     "decoding only ever shrinks" — true for ASCII and short shifted runs,
//     false for CJK-dense input, where every 16-bit unit costs ~2.67 input
//     characters but produces 3 output bytes. A long shifted run overflows
//     the heap buffer; the correct bound is 3*u7len + 1.
//
//       Standard          heap metadata stomped; the shrinking realloc at
//                         the end discovers the corruption (the Mutt
//                         safe_realloc dynamic).
//       Bounds Check      terminates at the first out-of-bounds store.
//       Failure Oblivious overflow writes discarded; the reply comes back
//                         truncated at the allocation boundary — output a
//                         byte-exact prefix of the correct conversion.
//       Boundless         the full conversion round-trips through the OOB
//                         store, byte-identical to the host codec — which
//                         is why an integrity-checking client (the codec
//                         bomb stream pins expected outputs) accepts only
//                         per-site assignments that use Boundless here.
//
//  2. Charset-label staging: each request's charset tag is strcpy'd through
//     a fixed lookup buffer. Every label the shipped workloads send fits;
//     an oversized one (found by the mutation fuzzer stretching the arg
//     field) overflows it — outside the baseline-exercised site set.
//
// Encoding directions use the *correct* checked codecs (src/codec/) — the
// contrast case, like Mutt's properly sized quoting buffer.

#ifndef SRC_APPS_CODEC_GATEWAY_H_
#define SRC_APPS_CODEC_GATEWAY_H_

#include <string>

#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"

namespace fob {

class CodecGatewayApp {
 public:
  // The charset-label staging buffer (error site 2).
  static constexpr size_t kCharsetBufSize = 16;

  explicit CodecGatewayApp(const PolicySpec& spec);

  struct Result {
    bool ok = false;
    std::string output;
    std::string error;
  };

  // direction: "u7to8" (the vulnerable decode), "u8to7", "b64enc", "b64dec".
  // charset is the request's label tag (display/bookkeeping only — but it is
  // staged through the fixed buffer, which is the point).
  Result Transcode(const std::string& direction, const std::string& charset,
                   const std::string& input);

  Memory& memory() { return memory_; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  // The undersized modified-UTF-7 decoder: reads the input out of simulated
  // memory, writes the UTF-8 bytes into a u7len+1 heap buffer unchecked,
  // then shrink-reallocs. Returns kNullPtr on malformed UTF-7 (the
  // anticipated error path, handled like Figure 1's bail).
  Ptr Utf7ToUtf8Port(Ptr u7, size_t u7len);
  // Stages the charset label through the fixed lookup buffer (error site 2).
  std::string StageCharsetLabel(const std::string& label);

  Memory memory_;
  uint64_t requests_served_ = 0;
};

}  // namespace fob

#endif  // SRC_APPS_CODEC_GATEWAY_H_
