// mini-Midnight Commander (§4.5).
//
// A file manager with a tgz virtual filesystem. Two ported memory errors:
//
//  1. Symlink relativization (the documented attack): converting absolute
//     symlink targets in a .tgz to archive-relative links builds the name
//     with strcat in a stack buffer that is never (re)initialized, so the
//     component names of *all* the links accumulate; enough combined length
//     writes past the end (§4.5.1). After the overflow, a scan for '/'
//     can run past the end of the buffer — the loop §3 uses to motivate the
//     manufactured-value sequence (zero-only values hang it).
//
//       Standard          stack physically corrupted; segfault.
//       Bounds Check      terminates at the first out-of-bounds strcat.
//       Failure Oblivious writes discarded; the (truncated/garbled) name
//                         fails the archive lookup — the anticipated
//                         "dangling symlink" case MC displays; the session
//                         continues (§4.5.2).
//
//  2. Config parsing: a *blank line* in the configuration file makes the
//     parser read line[len-1] with len == 0 — an everyday out-of-bounds
//     read that "completely disabled the Bounds Check version until we
//     removed the blank lines" (§4.5.4).
//
// File operations (Copy/Move/MkDir/Delete — Figure 5's requests) run over
// the native Vfs with their data staged through simulated I/O buffers.

#ifndef SRC_APPS_MC_H_
#define SRC_APPS_MC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/memory.h"
#include "src/runtime/ptr.h"
#include "src/vfs/vfs.h"

namespace fob {

class McApp {
 public:
  // The symlink name buffer (MC_MAXPATHLEN-flavored).
  static constexpr size_t kLinkBufSize = 64;

  // Startup parses the config text — the blank-line bug lives there.
  // `sequence` selects the manufactured-value sequence (§3); the zeros
  // baseline hangs the symlink '/'-search on attack archives, which is the
  // ablation bench_manufacture runs.
  McApp(const PolicySpec& spec, const std::string& config_text,
        SequenceKind sequence = SequenceKind::kPaper);

  struct ArchiveListing {
    bool ok = false;
    std::vector<std::string> rows;
    std::string error;
  };

  // Opens a .tgz in the VFS browser: gunzip + untar (substrates), then the
  // vulnerable symlink relativization, then the listing.
  ArchiveListing BrowseTgz(const std::string& tgz_bytes);

  // Figure 5's request types, over the in-memory filesystem.
  bool Copy(const std::string& src, const std::string& dst);
  bool Move(const std::string& src, const std::string& dst);
  bool MkDir(const std::string& path);
  bool Delete(const std::string& path);

  // F3 view: reads a file through the pager buffer; returns the first
  // `limit` bytes, or nullopt if the file is missing.
  std::optional<std::string> View(const std::string& path, size_t limit = 4096);

  // Extracts one file entry of a .tgz into the filesystem at dst_dir
  // (browsing is read-only; extraction is how archive contents get used).
  bool ExtractFromTgz(const std::string& tgz_bytes, const std::string& entry_name,
                      const std::string& dst_dir);

  Vfs& fs() { return fs_; }
  Memory& memory() { return memory_; }
  const std::map<std::string, std::string>& config() const { return config_; }

  static std::string DefaultConfigText(bool with_blank_lines);

 private:
  void ParseConfigVulnerable(const std::string& text);
  // Copies one path string through a simulated path buffer (the cost every
  // file operation pays per argument).
  std::string StagePath(const std::string& path);
  // Stages file contents through the simulated I/O buffer, chunk by chunk.
  void StageContents(const std::string& contents);

  Memory memory_;
  Vfs fs_;
  std::map<std::string, std::string> config_;
};

}  // namespace fob

#endif  // SRC_APPS_MC_H_
