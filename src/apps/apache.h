// mini-Apache (§4.3).
//
// An HTTP server with mod_rewrite-style URL rewriting. The rewrite engine
// records each parenthesized capture's (start,end) offsets in a
// stack-allocated buffer "with enough room for ten captures. If there are
// more, Apache writes the corresponding pairs of offsets beyond the end of
// the buffer" — the paper's remotely exploitable memory error:
//
//   Standard          offsets overrun the frame; the smashed stack is the
//                     crash (child process segfaults after handling).
//   Bounds Check      the child terminates at the first out-of-bounds
//                     write; the parent forks a replacement (costly under
//                     attack load, §4.3.2).
//   Failure Oblivious extra offset pairs discarded. Replacements reference
//                     captures as single digits $0..$9 only, so the
//                     discarded data is never consulted: the response is
//                     byte-identical to the correct one.
//
// A WorkerPool of ApacheApp instances models the regenerating child-process
// pool; worker construction re-runs full server initialization (config
// parse + regex compilation), which is what restarts cost.

#ifndef SRC_APPS_APACHE_H_
#define SRC_APPS_APACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/net/http.h"
#include "src/regex/regex.h"
#include "src/regex/rewrite.h"
#include "src/runtime/memory.h"
#include "src/vfs/vfs.h"

namespace fob {

class ApacheApp {
 public:
  // The vulnerable buffer holds ten (start,end) capture pairs (AP_MAX_REG_MATCH).
  static constexpr int kMaxCapturePairs = 10;

  // `docroot` must outlive the app (it is the parent's mmap'd content).
  // config_text holds "RewriteRule <pattern> <replacement>" lines; parsing
  // and compiling it is the startup cost a worker restart pays.
  ApacheApp(const PolicySpec& spec, const Vfs* docroot, const std::string& config_text);

  HttpResponse Handle(const HttpRequest& request);

  // Default server config: benign rules plus the >10-capture rule that a
  // crafted URL can reach, padded with filler rules so that worker restart
  // costs realistic initialization work.
  static std::string DefaultConfigText(int filler_rules = 40);

  uint64_t requests_served() const { return requests_served_; }
  size_t rule_count() const { return rules_.size(); }
  Memory& memory() { return memory_; }
  // Common-log-format lines, one per request, written through the log
  // buffer in program memory.
  const std::vector<std::string>& access_log() const { return access_log_; }

 private:
  // Runs the vulnerable rewrite: regex match (substrate), then the offset
  // copy through the fixed stack buffer, then replacement expansion using
  // the offsets read back from that buffer.
  std::optional<std::string> RewriteVulnerable(const std::string& url);

  void LogAccess(const HttpRequest& request, int status, size_t bytes);

  Memory memory_;
  const Vfs* docroot_;
  std::vector<RewriteRule> rules_;
  std::vector<std::string> access_log_;
  uint64_t requests_served_ = 0;
};

}  // namespace fob

#endif  // SRC_APPS_APACHE_H_
