// Base64 alphabets and host-side codecs.
//
// Two alphabets: the standard RFC 4648 one, and the modified-UTF-7 variant
// RFC 3501 uses for IMAP mailbox names (',' instead of '/'). kB64Chars is
// the exact table the paper's Figure 1 indexes as B64Chars[]; the Mutt port
// (src/apps/mutt.h) loads it into simulated memory.

#ifndef SRC_CODEC_BASE64_H_
#define SRC_CODEC_BASE64_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "src/runtime/ptr.h"

namespace fob {

class Memory;

// RFC 4648.
extern const char kBase64Std[65];
// RFC 3501 modified base64 (used by modified UTF-7): '/' becomes ','.
extern const char kB64Chars[65];

// Standard base64 with padding.
std::string Base64Encode(std::string_view data);
// Returns nullopt on any character outside the alphabet or bad padding.
std::optional<std::string> Base64Decode(std::string_view text);

// The same codecs over a buffer in checked memory: the input is staged out
// through Memory::ReadSpan (per-byte policy semantics, amortized checks) and
// run through the host codec. A size that overruns the unit therefore decodes
// whatever the policy continues with — manufactured bytes under Failure
// Oblivious, stored bytes under Boundless — instead of crashing.
std::string Base64Encode(Memory& memory, Ptr data, size_t size);
std::optional<std::string> Base64Decode(Memory& memory, Ptr text, size_t size);

// Index of c in the given alphabet, or -1.
int Base64Index(char c, const char* alphabet);

}  // namespace fob

#endif  // SRC_CODEC_BASE64_H_
