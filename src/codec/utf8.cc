#include "src/codec/utf8.h"

#include "src/runtime/access_cursor.h"

namespace fob {

namespace {

// One decoder, two byte sources (host string_view and checked-memory
// cursor). read(i) returns the byte at index i of the buffer.
template <typename ReadByte>
std::optional<uint32_t> DecodeNext(ReadByte&& read, size_t size, size_t& i) {
  if (i >= size) {
    return std::nullopt;
  }
  uint8_t c = read(i);
  uint32_t ch;
  int n;
  // The lead-byte ladder from Figure 1.
  if (c < 0x80) {
    ch = c;
    n = 0;
  } else if (c < 0xc2) {
    return std::nullopt;  // continuation byte or overlong C0/C1 lead
  } else if (c < 0xe0) {
    ch = c & 0x1f;
    n = 1;
  } else if (c < 0xf0) {
    ch = c & 0x0f;
    n = 2;
  } else if (c < 0xf8) {
    ch = c & 0x07;
    n = 3;
  } else if (c < 0xfc) {
    ch = c & 0x03;
    n = 4;
  } else if (c < 0xfe) {
    ch = c & 0x01;
    n = 5;
  } else {
    return std::nullopt;
  }
  ++i;
  if (static_cast<size_t>(n) > size - i) {
    return std::nullopt;  // truncated
  }
  for (int k = 0; k < n; ++k) {
    uint8_t cont = read(i + static_cast<size_t>(k));
    if ((cont & 0xc0) != 0x80) {
      return std::nullopt;
    }
    ch = (ch << 6) | (cont & 0x3f);
  }
  // Overlong check, exactly as Figure 1 writes it: an n+1 byte sequence must
  // encode a value that needs more than the next-shorter form's bits.
  if (n > 1 && (ch >> (n * 5 + 1)) == 0) {
    return std::nullopt;
  }
  // The 2-byte overlong case is already excluded by rejecting c < 0xc2.
  i += static_cast<size_t>(n);
  return ch;
}

}  // namespace

std::optional<uint32_t> Utf8DecodeNext(std::string_view s, size_t& i) {
  return DecodeNext([&](size_t k) { return static_cast<uint8_t>(s[k]); }, s.size(), i);
}

std::optional<uint32_t> Utf8DecodeNext(AccessCursor& cursor, Ptr s, size_t size,
                                       size_t& i) {
  return DecodeNext([&](size_t k) { return cursor.ReadU8(s + static_cast<int64_t>(k)); },
                    size, i);
}

std::optional<std::vector<uint32_t>> Utf8DecodeAll(Memory& memory, Ptr s, size_t size) {
  AccessCursor cursor(memory);
  std::vector<uint32_t> cps;
  size_t i = 0;
  while (i < size) {
    auto cp = Utf8DecodeNext(cursor, s, size, i);
    if (!cp) {
      return std::nullopt;
    }
    cps.push_back(*cp);
  }
  return cps;
}

void Utf8Encode(uint32_t cp, std::string& out) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x200000) {
    out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x4000000) {
    out.push_back(static_cast<char>(0xf8 | (cp >> 24)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 18) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xfc | (cp >> 30)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 24) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 18) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

std::string Utf8Encode(uint32_t cp) {
  std::string out;
  Utf8Encode(cp, out);
  return out;
}

std::optional<std::vector<uint32_t>> Utf8DecodeAll(std::string_view s) {
  std::vector<uint32_t> cps;
  size_t i = 0;
  while (i < s.size()) {
    auto cp = Utf8DecodeNext(s, i);
    if (!cp) {
      return std::nullopt;
    }
    cps.push_back(*cp);
  }
  return cps;
}

std::string Utf8EncodeAll(const std::vector<uint32_t>& cps) {
  std::string out;
  for (uint32_t cp : cps) {
    Utf8Encode(cp, out);
  }
  return out;
}

bool Utf8Valid(std::string_view s) { return Utf8DecodeAll(s).has_value(); }

}  // namespace fob
