// Modified UTF-7 (RFC 3501 IMAP mailbox encoding) — reference codec.
//
// Utf8ToUtf7 is the *correct* version of the paper's Figure 1 procedure: the
// identical state machine (shift in with '&', modified base64 over 16-bit
// units, shift out with '-', "&-" for a literal '&', codepoints above 0xffff
// replaced by 0xfffe), but writing into a correctly sized buffer. The Mutt
// application (src/apps/mutt.h) ports the same algorithm into simulated
// memory with the paper's undersized `u8len*2+1` allocation; property tests
// assert that under the Boundless policy the port reproduces this reference
// output exactly, and that under Failure Oblivious it produces a prefix of
// it (truncation by discarded writes).
//
// The worst case expansion is 7/3: each 3-byte UTF-8 sequence can become a
// shift-in '&', ~2.67 base64 chars, and a shift-out '-' (§4.6.1).

#ifndef SRC_CODEC_UTF7_H_
#define SRC_CODEC_UTF7_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/runtime/ptr.h"

namespace fob {

class Memory;

// Ratio the paper cites for sizing: output <= kUtf7WorstCaseNumerator/
// kUtf7WorstCaseDenominator * input + small constant.
inline constexpr int kUtf7WorstCaseNumerator = 7;
inline constexpr int kUtf7WorstCaseDenominator = 3;

// nullopt on invalid UTF-8 (the Figure 1 "bail" paths).
std::optional<std::string> Utf8ToUtf7(std::string_view utf8);

// The correctly sized conversion over checked memory: reads the UTF-8 input
// out of the simulated image through an AccessCursor (the span fast path),
// converts, and heap-allocates the NUL-terminated result with the
// Utf7MaxOutputBytes bound Figure 1 should have used. Returns kNullPtr on
// invalid UTF-8 or allocation failure. Contrast with MuttApp::Utf8ToUtf7Port,
// which keeps the paper's undersized `u8len*2+1` buffer and byte loop.
Ptr Utf8ToUtf7(Memory& memory, Ptr u8, size_t u8len);

// Inverse transform; nullopt on malformed modified-UTF-7.
std::optional<std::string> Utf7ToUtf8(std::string_view utf7);

// An input of length n can produce an output this long (excluding the NUL):
// the bound Mutt should have used instead of n*2 (Figure 1 recommends
// u8len*4+1, which this returns).
size_t Utf7MaxOutputBytes(size_t utf8_len);

}  // namespace fob

#endif  // SRC_CODEC_UTF7_H_
