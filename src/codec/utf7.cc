#include "src/codec/utf7.h"

#include <cstdint>
#include <vector>

#include "src/codec/base64.h"
#include "src/codec/utf8.h"
#include "src/runtime/access_cursor.h"

namespace fob {

size_t Utf7MaxOutputBytes(size_t utf8_len) {
  // Figure 1's comment: "a safe length would be u8len*4+1". The 7/3 ratio
  // §4.6.1 quotes is the worst case for multi-byte (CJK-style) inputs; a
  // pathological mix of shifted one-byte characters and literal '&'
  // characters can reach 3.5x, so the tight universal bound is 4x.
  return utf8_len * 4 + 1;
}

namespace {

// The Figure 1 shift-encoder state machine, shared by both overloads: feed
// it codepoints, then Finish() to close an open shifted section.
class Utf7Encoder {
 public:
  explicit Utf7Encoder(size_t utf8_len) { out_.reserve(Utf7MaxOutputBytes(utf8_len)); }

  void Append(uint32_t ch) {
    if (ch < 0x20 || ch >= 0x7f) {
      if (!base64_) {
        out_.push_back('&');
        base64_ = true;
        b_ = 0;
        k_ = 10;
      }
      if (ch & ~0xffffu) {
        ch = 0xfffe;  // Figure 1 folds astral codepoints to U+FFFE
      }
      out_.push_back(kB64Chars[b_ | (ch >> k_)]);
      k_ -= 6;
      for (; k_ >= 0; k_ -= 6) {
        out_.push_back(kB64Chars[(ch >> k_) & 0x3f]);
      }
      b_ = static_cast<int>((ch << (-k_)) & 0x3f);
      k_ += 16;
    } else {
      if (base64_) {
        FlushShifted();
      }
      out_.push_back(static_cast<char>(ch));
      if (ch == '&') {
        out_.push_back('-');
      }
    }
  }

  std::string Finish() {
    if (base64_) {
      FlushShifted();
    }
    return std::move(out_);
  }

 private:
  void FlushShifted() {
    if (k_ > 10) {
      out_.push_back(kB64Chars[b_]);
    }
    out_.push_back('-');
    base64_ = false;
  }

  std::string out_;
  int b_ = 0;        // carry bits
  int k_ = 0;        // bits pending in the carry
  bool base64_ = false;
};

}  // namespace

std::optional<std::string> Utf8ToUtf7(std::string_view utf8) {
  Utf7Encoder encoder(utf8.size());
  size_t i = 0;
  while (i < utf8.size()) {
    auto decoded = Utf8DecodeNext(utf8, i);
    if (!decoded) {
      return std::nullopt;  // Figure 1: goto bail
    }
    encoder.Append(*decoded);
  }
  return encoder.Finish();
}

Ptr Utf8ToUtf7(Memory& memory, Ptr u8, size_t u8len) {
  // Decode through the cursor (one bounds resolution per run of the input
  // unit), building the converted name host-side with the shared encoder.
  AccessCursor cursor(memory);
  Utf7Encoder encoder(u8len);
  size_t i = 0;
  while (i < u8len) {
    auto decoded = Utf8DecodeNext(cursor, u8, u8len, i);
    if (!decoded) {
      return kNullPtr;
    }
    encoder.Append(*decoded);
  }
  std::string out = encoder.Finish();
  Ptr buf = memory.Malloc(out.size() + 1, "utf7_buf");
  if (buf.IsNull()) {
    return kNullPtr;
  }
  memory.WriteSpan(buf, out.c_str(), out.size() + 1);  // includes the NUL
  return buf;
}

std::optional<std::string> Utf7ToUtf8(std::string_view utf7) {
  std::string out;
  size_t i = 0;
  while (i < utf7.size()) {
    char c = utf7[i];
    if (c != '&') {
      if (static_cast<uint8_t>(c) < 0x20 || static_cast<uint8_t>(c) >= 0x7f) {
        return std::nullopt;  // raw non-printable never legal
      }
      out.push_back(c);
      ++i;
      continue;
    }
    // Shifted section.
    ++i;
    if (i < utf7.size() && utf7[i] == '-') {
      out.push_back('&');
      ++i;
      continue;
    }
    uint32_t bits = 0;
    int nbits = 0;
    std::vector<uint16_t> units;
    bool closed = false;
    while (i < utf7.size()) {
      char d = utf7[i];
      if (d == '-') {
        closed = true;
        ++i;
        break;
      }
      int index = Base64Index(d, kB64Chars);
      if (index < 0) {
        return std::nullopt;
      }
      bits = (bits << 6) | static_cast<uint32_t>(index);
      nbits += 6;
      if (nbits >= 16) {
        nbits -= 16;
        units.push_back(static_cast<uint16_t>((bits >> nbits) & 0xffff));
      }
      ++i;
    }
    if (!closed || units.empty()) {
      return std::nullopt;
    }
    // Leftover bits must be zero padding only.
    if (nbits > 0 && (bits & ((1u << nbits) - 1)) != 0) {
      return std::nullopt;
    }
    for (uint16_t unit : units) {
      Utf8Encode(unit, out);
    }
  }
  return out;
}

}  // namespace fob
