#include "src/codec/utf7.h"

#include <cstdint>
#include <vector>

#include "src/codec/base64.h"
#include "src/codec/utf8.h"

namespace fob {

size_t Utf7MaxOutputBytes(size_t utf8_len) {
  // Figure 1's comment: "a safe length would be u8len*4+1". The 7/3 ratio
  // §4.6.1 quotes is the worst case for multi-byte (CJK-style) inputs; a
  // pathological mix of shifted one-byte characters and literal '&'
  // characters can reach 3.5x, so the tight universal bound is 4x.
  return utf8_len * 4 + 1;
}

std::optional<std::string> Utf8ToUtf7(std::string_view utf8) {
  std::string out;
  out.reserve(Utf7MaxOutputBytes(utf8.size()));
  size_t i = 0;
  int b = 0;        // carry bits
  int k = 0;        // bits pending in the carry
  bool base64 = false;
  while (i < utf8.size()) {
    auto decoded = Utf8DecodeNext(utf8, i);
    if (!decoded) {
      return std::nullopt;  // Figure 1: goto bail
    }
    uint32_t ch = *decoded;
    if (ch < 0x20 || ch >= 0x7f) {
      if (!base64) {
        out.push_back('&');
        base64 = true;
        b = 0;
        k = 10;
      }
      if (ch & ~0xffffu) {
        ch = 0xfffe;  // Figure 1 folds astral codepoints to U+FFFE
      }
      out.push_back(kB64Chars[b | (ch >> k)]);
      k -= 6;
      for (; k >= 0; k -= 6) {
        out.push_back(kB64Chars[(ch >> k) & 0x3f]);
      }
      b = static_cast<int>((ch << (-k)) & 0x3f);
      k += 16;
    } else {
      if (base64) {
        if (k > 10) {
          out.push_back(kB64Chars[b]);
        }
        out.push_back('-');
        base64 = false;
      }
      out.push_back(static_cast<char>(ch));
      if (ch == '&') {
        out.push_back('-');
      }
    }
  }
  if (base64) {
    if (k > 10) {
      out.push_back(kB64Chars[b]);
    }
    out.push_back('-');
  }
  return out;
}

std::optional<std::string> Utf7ToUtf8(std::string_view utf7) {
  std::string out;
  size_t i = 0;
  while (i < utf7.size()) {
    char c = utf7[i];
    if (c != '&') {
      if (static_cast<uint8_t>(c) < 0x20 || static_cast<uint8_t>(c) >= 0x7f) {
        return std::nullopt;  // raw non-printable never legal
      }
      out.push_back(c);
      ++i;
      continue;
    }
    // Shifted section.
    ++i;
    if (i < utf7.size() && utf7[i] == '-') {
      out.push_back('&');
      ++i;
      continue;
    }
    uint32_t bits = 0;
    int nbits = 0;
    std::vector<uint16_t> units;
    bool closed = false;
    while (i < utf7.size()) {
      char d = utf7[i];
      if (d == '-') {
        closed = true;
        ++i;
        break;
      }
      int index = Base64Index(d, kB64Chars);
      if (index < 0) {
        return std::nullopt;
      }
      bits = (bits << 6) | static_cast<uint32_t>(index);
      nbits += 6;
      if (nbits >= 16) {
        nbits -= 16;
        units.push_back(static_cast<uint16_t>((bits >> nbits) & 0xffff));
      }
      ++i;
    }
    if (!closed || units.empty()) {
      return std::nullopt;
    }
    // Leftover bits must be zero padding only.
    if (nbits > 0 && (bits & ((1u << nbits) - 1)) != 0) {
      return std::nullopt;
    }
    for (uint16_t unit : units) {
      Utf8Encode(unit, out);
    }
  }
  return out;
}

}  // namespace fob
