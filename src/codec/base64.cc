#include "src/codec/base64.h"

#include <cstdint>

#include "src/runtime/memory.h"

namespace fob {

std::string Base64Encode(Memory& memory, Ptr data, size_t size) {
  return Base64Encode(memory.ReadSpanAsString(data, size));
}

std::optional<std::string> Base64Decode(Memory& memory, Ptr text, size_t size) {
  return Base64Decode(memory.ReadSpanAsString(text, size));
}

const char kBase64Std[65] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const char kB64Chars[65] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+,";

int Base64Index(char c, const char* alphabet) {
  for (int i = 0; i < 64; ++i) {
    if (alphabet[i] == c) {
      return i;
    }
  }
  return -1;
}

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t triple = (static_cast<uint8_t>(data[i]) << 16) |
                      (static_cast<uint8_t>(data[i + 1]) << 8) | static_cast<uint8_t>(data[i + 2]);
    out.push_back(kBase64Std[(triple >> 18) & 0x3f]);
    out.push_back(kBase64Std[(triple >> 12) & 0x3f]);
    out.push_back(kBase64Std[(triple >> 6) & 0x3f]);
    out.push_back(kBase64Std[triple & 0x3f]);
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<uint8_t>(data[i]) << 16;
    out.push_back(kBase64Std[(v >> 18) & 0x3f]);
    out.push_back(kBase64Std[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    uint32_t v = (static_cast<uint8_t>(data[i]) << 16) | (static_cast<uint8_t>(data[i + 1]) << 8);
    out.push_back(kBase64Std[(v >> 18) & 0x3f]);
    out.push_back(kBase64Std[(v >> 12) & 0x3f]);
    out.push_back(kBase64Std[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::string> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return std::nullopt;
  }
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    uint32_t triple = 0;
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) {
          return std::nullopt;
        }
        ++pad;
        triple <<= 6;
        continue;
      }
      if (pad > 0) {
        return std::nullopt;  // data after padding
      }
      int index = Base64Index(c, kBase64Std);
      if (index < 0) {
        return std::nullopt;
      }
      triple = (triple << 6) | static_cast<uint32_t>(index);
    }
    out.push_back(static_cast<char>((triple >> 16) & 0xff));
    if (pad < 2) {
      out.push_back(static_cast<char>((triple >> 8) & 0xff));
    }
    if (pad < 1) {
      out.push_back(static_cast<char>(triple & 0xff));
    }
  }
  return out;
}

}  // namespace fob
