// UTF-8 reference codec.
//
// Decoding follows the same structure as the paper's Figure 1 loop (lead
// byte classes at 0xc2/0xe0/0xf0/0xf8/0xfc/0xfe boundaries, continuation
// bytes 10xxxxxx, overlong rejection) so that property tests can compare the
// checked-memory ports against it byte for byte. Encoding covers the same
// 31-bit range the classic UTF-8 definition (and Figure 1) accepts.

#ifndef SRC_CODEC_UTF8_H_
#define SRC_CODEC_UTF8_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/runtime/ptr.h"

namespace fob {

class AccessCursor;
class Memory;

// Decodes the codepoint starting at s[i]; advances i past it. Returns
// nullopt (i unspecified) on invalid input — lead byte 0x80..0xc1 or >=
// 0xfe, truncated sequence, bad continuation byte, or overlong encoding.
std::optional<uint32_t> Utf8DecodeNext(std::string_view s, size_t& i);

// The same decoder over checked memory: bytes are read through the cursor,
// so sequential decoding pays the object-table search once per buffer run
// instead of once per byte, and out-of-bounds bytes follow the Memory's
// policy (a manufactured continuation byte can legitimately extend a
// sequence under Failure Oblivious).
std::optional<uint32_t> Utf8DecodeNext(AccessCursor& cursor, Ptr s, size_t size,
                                       size_t& i);

// Whole-buffer helper over checked memory; nullopt on any invalid sequence.
std::optional<std::vector<uint32_t>> Utf8DecodeAll(Memory& memory, Ptr s, size_t size);

// Appends the UTF-8 encoding of cp (up to 6 bytes, 31-bit range) to out.
void Utf8Encode(uint32_t cp, std::string& out);
std::string Utf8Encode(uint32_t cp);

// Whole-string helpers.
std::optional<std::vector<uint32_t>> Utf8DecodeAll(std::string_view s);
std::string Utf8EncodeAll(const std::vector<uint32_t>& cps);
bool Utf8Valid(std::string_view s);

}  // namespace fob

#endif  // SRC_CODEC_UTF8_H_
