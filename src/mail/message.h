// RFC-822-style mail messages.

#ifndef SRC_MAIL_MESSAGE_H_
#define SRC_MAIL_MESSAGE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fob {

struct MailMessage {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with the given name (case-insensitive); empty if absent.
  std::string Header(std::string_view name) const;
  std::string From() const { return Header("From"); }
  std::string To() const { return Header("To"); }
  std::string Subject() const { return Header("Subject"); }

  void SetHeader(std::string name, std::string value);

  // Parses "Header: value" lines up to the first blank line, then the body.
  // Header continuation lines (leading whitespace) are folded.
  static MailMessage Parse(std::string_view text);
  std::string Serialize() const;

  static MailMessage Make(std::string from, std::string to, std::string subject,
                          std::string body);
};

}  // namespace fob

#endif  // SRC_MAIL_MESSAGE_H_
