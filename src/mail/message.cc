#include "src/mail/message.h"

#include <cctype>
#include <sstream>

namespace fob {

namespace {
bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string MailMessage::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (IEquals(key, name)) {
      return value;
    }
  }
  return {};
}

void MailMessage::SetHeader(std::string name, std::string value) {
  for (auto& [key, existing] : headers) {
    if (IEquals(key, name)) {
      existing = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

MailMessage MailMessage::Parse(std::string_view text) {
  MailMessage message;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t line_end = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, line_end == std::string_view::npos ? text.size() - pos : line_end - pos);
    pos = line_end == std::string_view::npos ? text.size() : line_end + 1;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty()) {
      break;  // end of headers
    }
    if ((line[0] == ' ' || line[0] == '\t') && !message.headers.empty()) {
      // Folded continuation line.
      message.headers.back().second += ' ';
      size_t start = line.find_first_not_of(" \t");
      message.headers.back().second += std::string(line.substr(start));
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;  // junk line in the header block; tolerate
    }
    std::string name(line.substr(0, colon));
    size_t value_start = colon + 1;
    while (value_start < line.size() && (line[value_start] == ' ' || line[value_start] == '\t')) {
      ++value_start;
    }
    message.headers.emplace_back(std::move(name), std::string(line.substr(value_start)));
  }
  message.body = std::string(text.substr(pos));
  return message;
}

std::string MailMessage::Serialize() const {
  std::ostringstream os;
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\n";
  }
  os << "\n" << body;
  return os.str();
}

MailMessage MailMessage::Make(std::string from, std::string to, std::string subject,
                              std::string body) {
  MailMessage message;
  message.headers.emplace_back("From", std::move(from));
  message.headers.emplace_back("To", std::move(to));
  message.headers.emplace_back("Subject", std::move(subject));
  message.body = std::move(body);
  return message;
}

}  // namespace fob
