#include "src/mail/mbox.h"

#include <sstream>

#include "src/runtime/memory.h"

namespace fob {

namespace {
bool IsFromLine(std::string_view line) { return line.substr(0, 5) == "From "; }
}  // namespace

std::vector<MailMessage> ParseMbox(std::string_view text) {
  std::vector<MailMessage> messages;
  std::string current;
  bool in_message = false;
  size_t pos = 0;
  auto flush = [&] {
    if (in_message) {
      // Strip one trailing newline added by the serializer between messages.
      if (!current.empty() && current.back() == '\n') {
        current.pop_back();
      }
      messages.push_back(MailMessage::Parse(current));
      current.clear();
    }
  };
  while (pos < text.size()) {
    size_t line_end = text.find('\n', pos);
    bool last = line_end == std::string_view::npos;
    std::string_view line = text.substr(pos, last ? text.size() - pos : line_end - pos);
    if (IsFromLine(line)) {
      flush();
      in_message = true;
    } else if (in_message) {
      // Unstuff ">From " -> "From " (and ">>From" -> ">From", etc.).
      if (!line.empty() && line[0] == '>') {
        size_t gt = line.find_first_not_of('>');
        if (gt != std::string_view::npos && line.substr(gt, 5) == "From ") {
          line.remove_prefix(1);
        }
      }
      current += std::string(line);
      current += '\n';
    }
    if (last) {
      break;
    }
    pos = line_end + 1;
  }
  flush();
  return messages;
}

std::vector<MailMessage> ParseMbox(Memory& memory, Ptr text, size_t size) {
  return ParseMbox(memory.ReadSpanAsString(text, size));
}

std::string SerializeMbox(const std::vector<MailMessage>& messages) {
  std::ostringstream os;
  for (const MailMessage& message : messages) {
    os << "From MAILER-DAEMON Thu Jan  1 00:00:00 2004\n";
    std::istringstream body(message.Serialize());
    std::string line;
    while (std::getline(body, line)) {
      std::string_view view = line;
      size_t gt = view.find_first_not_of('>');
      if (gt != std::string_view::npos && view.substr(gt, 5) == "From ") {
        os << '>';
      } else if (gt == std::string_view::npos && view.substr(0, 5) == "From ") {
        os << '>';
      }
      os << line << "\n";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fob
