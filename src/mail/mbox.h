// mbox folder format (mboxrd-style From-stuffing).
//
// Messages are separated by "From " lines; body lines that would collide
// are quoted with '>' on write and unquoted on read.

#ifndef SRC_MAIL_MBOX_H_
#define SRC_MAIL_MBOX_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/mail/message.h"

namespace fob {

std::vector<MailMessage> ParseMbox(std::string_view text);
std::string SerializeMbox(const std::vector<MailMessage>& messages);

}  // namespace fob

#endif  // SRC_MAIL_MBOX_H_
