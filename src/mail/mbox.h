// mbox folder format (mboxrd-style From-stuffing).
//
// Messages are separated by "From " lines; body lines that would collide
// are quoted with '>' on write and unquoted on read.

#ifndef SRC_MAIL_MBOX_H_
#define SRC_MAIL_MBOX_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/mail/message.h"
#include "src/runtime/ptr.h"

namespace fob {

class Memory;

std::vector<MailMessage> ParseMbox(std::string_view text);
std::string SerializeMbox(const std::vector<MailMessage>& messages);

// Parses a folder that lives in the simulated image (the mail server's
// spool buffer): the text is staged out through Memory::ReadSpan, so a size
// that overruns the spool unit parses whatever the policy continues with
// rather than crashing the server.
std::vector<MailMessage> ParseMbox(Memory& memory, Ptr text, size_t size);

}  // namespace fob

#endif  // SRC_MAIL_MBOX_H_
