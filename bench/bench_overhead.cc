// §1.1 / §4.7: the cost of dynamic bounds checking.
//
// "Previous experiments with safe-C compilers have indicated that these
//  checks usually cause the program to run less than a factor of two slower
//  ... but in some cases the program may run as much as eight to twelve
//  times slower."
//
// google-benchmark microbenches of the checked-access primitives under the
// Standard (unchecked) and Failure Oblivious (checked) policies, across
// access densities: bulk block transfers amortize the check (low overhead,
// the Apache/MC profile) while byte-at-a-time scans pay it on every access
// (high overhead, the Pine/Sendmail profile).

#include <benchmark/benchmark.h>

#include "src/libc/cstring.h"
#include "src/runtime/access_cursor.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

AccessPolicy PolicyArg(const benchmark::State& state) {
  return state.range(0) == 0 ? AccessPolicy::kStandard : AccessPolicy::kFailureOblivious;
}

void SetPolicyLabel(benchmark::State& state) {
  state.SetLabel(state.range(0) == 0 ? "Standard" : "FailureOblivious");
}

void BM_ByteWrites(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr buf = memory.Malloc(4096, "buf");
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) {
      memory.WriteU8(buf + i, static_cast<uint8_t>(i));
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ByteWrites)->Arg(0)->Arg(1);

void BM_ByteReads(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr buf = memory.Malloc(4096, "buf");
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) {
      sink += memory.ReadU8(buf + i);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ByteReads)->Arg(0)->Arg(1);

// The same sequential scans through the span fast path: the cursor resolves
// the unit once and the rest of the run skips the object-table search, so
// the checked policies' per-access cost approaches Standard's.
void BM_CursorByteWrites(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr buf = memory.Malloc(4096, "buf");
  for (auto _ : state) {
    AccessCursor cursor(memory);
    for (int i = 0; i < 4096; ++i) {
      cursor.WriteU8(buf + i, static_cast<uint8_t>(i));
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_CursorByteWrites)->Arg(0)->Arg(1);

void BM_CursorByteReads(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr buf = memory.Malloc(4096, "buf");
  uint64_t sink = 0;
  for (auto _ : state) {
    AccessCursor cursor(memory);
    for (int i = 0; i < 4096; ++i) {
      sink += cursor.ReadU8(buf + i);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_CursorByteReads)->Arg(0)->Arg(1);

void BM_SpanReads(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr buf = memory.Malloc(4096, "buf");
  uint8_t staged[4096];
  for (auto _ : state) {
    memory.ReadSpan(buf, staged, sizeof(staged));
    benchmark::DoNotOptimize(staged[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_SpanReads)->Arg(0)->Arg(1);

void BM_SpanWrites(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr buf = memory.Malloc(4096, "buf");
  uint8_t staged[4096];
  for (size_t i = 0; i < sizeof(staged); ++i) {
    staged[i] = static_cast<uint8_t>(i);
  }
  for (auto _ : state) {
    memory.WriteSpan(buf, staged, sizeof(staged));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_SpanWrites)->Arg(0)->Arg(1);

void BM_BlockCopy(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  size_t size = static_cast<size_t>(state.range(1));
  Ptr src = memory.Malloc(size, "src");
  Ptr dst = memory.Malloc(size, "dst");
  for (auto _ : state) {
    MemCpy(memory, dst, src, size);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_BlockCopy)->Args({0, 64 << 10})->Args({1, 64 << 10})->Args({0, 1 << 20})->Args({1, 1 << 20});

void BM_StrLenScan(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  std::string text(1024, 'a');
  Ptr s = memory.NewCString(text, "scan");
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrLen(memory, s));
  }
}
BENCHMARK(BM_StrLenScan)->Arg(0)->Arg(1);

void BM_MallocFree(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  for (auto _ : state) {
    Ptr p = memory.Malloc(128, "block");
    memory.Free(p);
  }
}
BENCHMARK(BM_MallocFree)->Arg(0)->Arg(1);

// The continuation code itself: how expensive is an *invalid* access under
// Failure Oblivious (log + discard/manufacture)?
void BM_DiscardedWrite(benchmark::State& state) {
  Memory::Config config;
  config.policy = AccessPolicy::kFailureOblivious;
  config.log_capacity = 16;
  Memory memory(config);
  Ptr buf = memory.Malloc(16, "small");
  for (auto _ : state) {
    memory.WriteU8(buf + 64, 1);
  }
}
BENCHMARK(BM_DiscardedWrite);

void BM_ManufacturedRead(benchmark::State& state) {
  Memory::Config config;
  config.policy = AccessPolicy::kFailureOblivious;
  config.log_capacity = 16;
  Memory memory(config);
  Ptr buf = memory.Malloc(16, "small");
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += memory.ReadU8(buf + 64);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ManufacturedRead);

}  // namespace
}  // namespace fob

BENCHMARK_MAIN();
