// §4.2-§4.6 "Security and Resilience": the outcome matrix.
//
// Each server is driven with its documented attack input under each
// compilation; the cell reports what happened and whether subsequent
// legitimate requests were served. This is the paper's headline table
// (described in prose per server; collected here in one place).

#include <cstdio>

#include "src/harness/experiment.h"
#include "src/harness/table.h"

namespace fob {
namespace {

void Run() {
  std::printf("Security and Resilience matrix (attack input per server, Sections 4.2-4.6)\n");
  Table table({"Server", "Standard", "Bounds Check", "Failure Oblivious",
               "Subsequent reqs (FO)", "Errors logged (FO)"});
  for (Server server : kAllServers) {
    AttackReport standard = RunAttackExperiment(server, AccessPolicy::kStandard);
    AttackReport bounds = RunAttackExperiment(server, AccessPolicy::kBoundsCheck);
    AttackReport oblivious = RunAttackExperiment(server, AccessPolicy::kFailureOblivious);
    std::string standard_cell = OutcomeName(standard.outcome);
    if (standard.possible_code_injection) {
      standard_cell += " [code-injection risk]";
    }
    table.AddRow({ServerName(server), standard_cell, OutcomeName(bounds.outcome),
                  OutcomeName(oblivious.outcome),
                  oblivious.subsequent_requests_ok ? "all OK" : "FAILED",
                  std::to_string(oblivious.memory_errors_logged)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper: Standard crashes (Apache/Sendmail exploitable), Bounds Check\n"
              "terminates (DoS), Failure Oblivious continues acceptably everywhere.\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
