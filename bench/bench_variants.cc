// §5.1 "Variants and Extensions": boundless memory blocks and wrap
// redirection on the five attack workloads.
//
// "Our experience indicates that our set of servers works acceptably with
//  both of these variants." Boundless additionally *eliminates* the size
// calculation errors: Mutt's conversion comes out byte-identical to the
// correct one (checked separately in the test suite).

#include <cstdio>

#include "src/harness/experiment.h"
#include "src/harness/table.h"

namespace fob {
namespace {

void Run() {
  std::printf("Section 5.1 variants: outcome on the attack workloads\n");
  Table table({"Server", "Failure Oblivious", "Boundless", "Wrap"});
  for (Server server : kAllServers) {
    AttackReport fo = RunAttackExperiment(server, AccessPolicy::kFailureOblivious);
    AttackReport boundless = RunAttackExperiment(server, AccessPolicy::kBoundless);
    AttackReport wrap = RunAttackExperiment(server, AccessPolicy::kWrap);
    table.AddRow({ServerName(server), OutcomeName(fo.outcome), OutcomeName(boundless.outcome),
                  OutcomeName(wrap.outcome)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper: all servers work acceptably with both variants.\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
