// bench_capacity: turn measured serving throughput into a provisioning
// story — workers-needed-for-SLO curves per policy.
//
// Reads BENCH_throughput.json (the google-benchmark JSON that
// bench_frontend_throughput emits; see bench/run_bench.sh) and, per policy
// row of BM_FrontendThroughput, extracts requests/sec, per-request
// p50/p99 latency, and crash accounting (restarts / served). From those it
// emits BENCH_capacity.json with a PCRAFT-style capacity model:
//
//   rate_per_worker  = max over (threads, batch) rows of rps / threads
//                      (the best marginal throughput one worker adds)
//   crash_rate       = total restarts / total served (per request)
//   restart_overhead = extra seconds per restart vs the failure-oblivious
//                      baseline: (1/best_rate - 1/best_rate_fo) / crash_rate
//   workers_needed(N)= ceil(N / (rate_per_worker * target_utilization))
//   p99_est          = measured p99 / (1 - target_utilization)
//                      (M/M/1-style queueing inflation at the provisioned
//                      utilization; crude, but it moves the right way)
//
// The point of the curve: a failure-oblivious pool provisions against its
// serving rate alone, while a crashing policy's effective rate carries the
// restart tax — the same availability gap §5 measures, expressed as "how
// many workers to serve N req/s inside the latency SLO".
//
// Usage: bench_capacity [BENCH_throughput.json [BENCH_capacity.json]]
// Exit codes: 0 ok; 1 input parsed but held no BM_FrontendThroughput rows;
// 2 missing/malformed input. No third-party deps: a ~100-line recursive-
// descent JSON reader below handles the subset google-benchmark writes.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- Minimal JSON value + parser -------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;  // order-preserving

  const Json* Find(const std::string& key) const {
    for (const auto& [name, value] : fields) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
  double NumberOr(const std::string& key, double fallback) const {
    const Json* value = Find(key);
    return (value != nullptr && value->type == Type::kNumber) ? value->number : fallback;
  }
  std::string StringOr(const std::string& key, const std::string& fallback) const {
    const Json* value = Find(key);
    return (value != nullptr && value->type == Type::kString) ? value->str : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<Json> Parse() {
    std::optional<Json> value = ParseValue();
    SkipSpace();
    if (!value.has_value() || pos_ != text_.size()) {
      return std::nullopt;
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return std::nullopt;
      }
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u':
          // Benchmark labels are ASCII; keep a placeholder for exotica.
          if (pos_ + 4 > text_.size()) {
            return std::nullopt;
          }
          pos_ += 4;
          out.push_back('?');
          break;
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    Json value;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      value.type = Json::Type::kObject;
      SkipSpace();
      if (Consume('}')) {
        return value;
      }
      for (;;) {
        std::optional<std::string> key = (SkipSpace(), ParseString());
        if (!key.has_value() || !Consume(':')) {
          return std::nullopt;
        }
        std::optional<Json> field = ParseValue();
        if (!field.has_value()) {
          return std::nullopt;
        }
        value.fields.emplace_back(std::move(*key), std::move(*field));
        if (Consume(',')) {
          continue;
        }
        if (Consume('}')) {
          return value;
        }
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value.type = Json::Type::kArray;
      SkipSpace();
      if (Consume(']')) {
        return value;
      }
      for (;;) {
        std::optional<Json> item = ParseValue();
        if (!item.has_value()) {
          return std::nullopt;
        }
        value.items.push_back(std::move(*item));
        if (Consume(',')) {
          continue;
        }
        if (Consume(']')) {
          return value;
        }
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> str = ParseString();
      if (!str.has_value()) {
        return std::nullopt;
      }
      value.type = Json::Type::kString;
      value.str = std::move(*str);
      return value;
    }
    if (ConsumeWord("true")) {
      value.type = Json::Type::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.type = Json::Type::kBool;
      return value;
    }
    if (ConsumeWord("null")) {
      return value;
    }
    // Number (strtod accepts the JSON grammar's numbers and more; good
    // enough for trusted benchmark output).
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double number = std::strtod(start, &end);
    if (end == start) {
      return std::nullopt;
    }
    pos_ += static_cast<size_t>(end - start);
    value.type = Json::Type::kNumber;
    value.number = number;
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- Capacity model ---------------------------------------------------------

struct PolicyModel {
  std::string policy;
  double rate_per_worker = 0.0;  // best rps a single worker contributes
  double best_rate = 0.0;        // best absolute rps observed
  int best_threads = 0;
  int best_batch = 0;
  double best_p50_ns = 0.0;
  double best_p99_ns = 0.0;
  double restarts = 0.0;
  double served = 0.0;

  double CrashRate() const { return served > 0.0 ? restarts / served : 0.0; }
};

// Parses "FailureOblivious/threads:4/batch:16" labels.
bool ParseLabel(const std::string& label, std::string* policy, int* threads, int* batch) {
  size_t threads_at = label.find("/threads:");
  size_t batch_at = label.find("/batch:");
  if (threads_at == std::string::npos || batch_at == std::string::npos || batch_at < threads_at) {
    return false;
  }
  *policy = label.substr(0, threads_at);
  *threads = std::atoi(label.c_str() + threads_at + 9);
  *batch = std::atoi(label.c_str() + batch_at + 7);
  return *threads > 0 && *batch > 0;
}

constexpr double kTargetUtilization = 0.7;
constexpr int64_t kOfferedLoads[] = {1'000, 2'000, 5'000, 10'000, 20'000, 50'000, 100'000};

std::string FormatDouble(double value) {
  std::ostringstream os;
  os.precision(6);
  os << value;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string in_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_capacity.json";

  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "bench_capacity: cannot open " << in_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::optional<Json> root = JsonParser(text).Parse();
  if (!root.has_value() || root->type != Json::Type::kObject) {
    std::cerr << "bench_capacity: " << in_path << " is not a JSON object\n";
    return 2;
  }

  std::string hardware_concurrency = "unknown";
  if (const Json* context = root->Find("context"); context != nullptr) {
    hardware_concurrency = context->StringOr("hardware_concurrency", hardware_concurrency);
  }

  const Json* benchmarks = root->Find("benchmarks");
  if (benchmarks == nullptr || benchmarks->type != Json::Type::kArray) {
    std::cerr << "bench_capacity: no benchmarks array in " << in_path << "\n";
    return 2;
  }

  std::map<std::string, PolicyModel> models;
  std::vector<std::string> policy_order;  // first-seen, stable output order
  for (const Json& run : benchmarks->items) {
    if (run.StringOr("name", "").rfind("BM_FrontendThroughput", 0) != 0) {
      continue;
    }
    // Skip statistical aggregate rows when repetitions were used.
    const std::string run_type = run.StringOr("run_type", "iteration");
    if (run_type != "iteration") {
      continue;
    }
    std::string policy;
    int threads = 0;
    int batch = 0;
    if (!ParseLabel(run.StringOr("label", ""), &policy, &threads, &batch)) {
      continue;
    }
    const double rate = run.NumberOr("items_per_second", 0.0);
    if (rate <= 0.0) {
      continue;
    }
    if (models.find(policy) == models.end()) {
      policy_order.push_back(policy);
      models[policy].policy = policy;
    }
    PolicyModel& model = models[policy];
    model.restarts += run.NumberOr("restarts", 0.0);
    model.served += run.NumberOr("served", 0.0);
    if (rate / threads > model.rate_per_worker) {
      model.rate_per_worker = rate / threads;
    }
    if (rate > model.best_rate) {
      model.best_rate = rate;
      model.best_threads = threads;
      model.best_batch = batch;
      model.best_p50_ns = run.NumberOr("p50_ns", 0.0);
      model.best_p99_ns = run.NumberOr("p99_ns", 0.0);
    }
  }
  if (models.empty()) {
    std::cerr << "bench_capacity: " << in_path
              << " holds no BM_FrontendThroughput rows (run bench_frontend_throughput first)\n";
    return 1;
  }

  // The failure-oblivious row is the restart-free baseline the restart
  // overhead is measured against ("Failure Oblivious" in display labels).
  const PolicyModel* fo = nullptr;
  for (const auto& [policy, model] : models) {
    std::string compact;
    for (char c : policy) {
      if (c != ' ') {
        compact.push_back(c);
      }
    }
    if (compact == "FailureOblivious") {
      fo = &model;
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_capacity: cannot write " << out_path << "\n";
    return 2;
  }
  out << "{\n";
  out << "  \"context\": {\n";
  out << "    \"source\": \"" << in_path << "\",\n";
  out << "    \"hardware_concurrency\": \"" << hardware_concurrency << "\",\n";
  out << "    \"target_utilization\": " << FormatDouble(kTargetUtilization) << ",\n";
  out << "    \"model\": \"workers = ceil(offered / (rate_per_worker * util)); "
         "p99_est = p99 / (1 - util)\"\n";
  out << "  },\n";
  out << "  \"policies\": [\n";
  for (size_t p = 0; p < policy_order.size(); ++p) {
    const PolicyModel& model = models[policy_order[p]];
    const double crash_rate = model.CrashRate();
    // Seconds of extra per-request cost, attributed per restart. Zero for
    // restart-free policies and when there is no FO baseline to compare to.
    double restart_overhead = 0.0;
    if (fo != nullptr && fo->best_rate > 0.0 && model.best_rate > 0.0 && crash_rate > 0.0) {
      const double extra_per_request = 1.0 / model.best_rate - 1.0 / fo->best_rate;
      restart_overhead = extra_per_request > 0.0 ? extra_per_request / crash_rate : 0.0;
    }
    out << "    {\n";
    out << "      \"policy\": \"" << model.policy << "\",\n";
    out << "      \"rate_per_worker_rps\": " << FormatDouble(model.rate_per_worker) << ",\n";
    out << "      \"best_rate_rps\": " << FormatDouble(model.best_rate) << ",\n";
    out << "      \"best_threads\": " << model.best_threads << ",\n";
    out << "      \"best_batch\": " << model.best_batch << ",\n";
    out << "      \"p50_ns\": " << FormatDouble(model.best_p50_ns) << ",\n";
    out << "      \"p99_ns\": " << FormatDouble(model.best_p99_ns) << ",\n";
    out << "      \"crash_rate_per_request\": " << FormatDouble(crash_rate) << ",\n";
    out << "      \"restart_overhead_s\": " << FormatDouble(restart_overhead) << ",\n";
    out << "      \"curve\": [\n";
    const size_t loads = sizeof(kOfferedLoads) / sizeof(kOfferedLoads[0]);
    for (size_t i = 0; i < loads; ++i) {
      const double offered = static_cast<double>(kOfferedLoads[i]);
      const double effective = model.rate_per_worker * kTargetUtilization;
      const int64_t workers =
          effective > 0.0 ? static_cast<int64_t>(std::ceil(offered / effective)) : -1;
      const double p99_est = model.best_p99_ns / (1.0 - kTargetUtilization);
      out << "        {\"offered_rps\": " << kOfferedLoads[i]
          << ", \"workers_needed\": " << workers
          << ", \"p99_est_ns\": " << FormatDouble(p99_est) << "}"
          << (i + 1 < loads ? "," : "") << "\n";
    }
    out << "      ]\n";
    out << "    }" << (p + 1 < policy_order.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";

  std::cout << "bench_capacity: wrote " << out_path << " (" << policy_order.size()
            << " policies, util " << kTargetUtilization << ")\n";
  return 0;
}
