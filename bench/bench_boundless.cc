// Boundless-store scaling: flat byte-map baseline vs paged store
// (google-benchmark; CI records BENCH_boundless.json in the perf trajectory,
// and the perf-smoke gate — tools/check_perf_smoke.py — fails the build if
// the paged store regresses past 2x the flat baseline on the sparse-spray
// axis).
//
// Three axes, each measured against both stores:
//
//   * BM_BoundlessDenseOverflow{Flat,Paged}/N — one contiguous N-byte
//     overflow past a unit's end, then a full read-back: the Mutt/Apache
//     overflow shape. Paged resolves one page per 256 bytes instead of one
//     hash entry per byte.
//   * BM_BoundlessSparseSpray{Flat,Paged}/N — N bytes sprayed as 256-byte
//     write-once spans strided across a >= 1 GiB simulated address range:
//     the attack shape ROADMAP's scaling item names. At N = 1M the paged
//     store holds one materialized page per touched page (counters
//     pages_live / stored_bytes / range_bytes are emitted), while the flat
//     store pays one hash entry + one FIFO deque entry per byte.
//   * BM_BoundlessChurn{Flat,Paged}/N — store-then-DropUnit cycles against
//     N bytes of background OOB state from other units: the unit-churn
//     shape. Flat DropUnit scans the whole table per retired unit; paged
//     walks the per-unit page index.
//
// Args: {bytes}. Output unit: ns per stored byte (items = bytes).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/boundless_flat.h"
#include "src/runtime/boundless_paged.h"

namespace fob {
namespace {

constexpr UnitId kUnit = 1;
constexpr UnitId kBackgroundUnit = 2;
constexpr size_t kSpanBytes = PagedBoundlessStore::kPageBytes;
constexpr int64_t kSprayRange = 1ll << 30;  // every spray covers >= 1 GiB

// ---- dense overflow ----------------------------------------------------------

// Benchmarks that build a fresh store per iteration run their body once
// untimed first: tearing down a previous benchmark's multi-million-entry
// store leaves the allocator a huge free list whose one-time consolidation
// would otherwise be billed to this benchmark's first timed iteration (and
// with it, to the calibration run that picks the iteration count).
template <typename Body>
void WarmUp(Body&& body) {
  body();
}

void BM_BoundlessDenseOverflowFlat(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  uint64_t sink = 0;
  auto body = [&] {
    FlatBoundlessStore store;
    for (size_t i = 0; i < n; ++i) {
      store.StoreByte(kUnit, static_cast<int64_t>(i), static_cast<uint8_t>(i));
    }
    for (size_t i = 0; i < n; ++i) {
      sink += *store.LoadByte(kUnit, static_cast<int64_t>(i));
    }
  };
  WarmUp(body);
  for (auto _ : state) {
    body();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("flat, contiguous overflow");
}

void BM_BoundlessDenseOverflowPaged(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> src(n);
  for (size_t i = 0; i < n; ++i) {
    src[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> dst(n);
  std::vector<uint8_t> present(n);
  uint64_t sink = 0;
  auto body = [&] {
    PagedBoundlessStore store;
    store.StoreSpan(kUnit, 0, src.data(), n);
    sink += store.LoadSpan(kUnit, 0, n, dst.data(), present.data());
  };
  WarmUp(body);
  for (auto _ : state) {
    body();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("paged, contiguous overflow");
}

// ---- sparse spray ------------------------------------------------------------

// N bytes as 256-byte single-value spans, strided so the whole spray covers
// kSprayRange. This is the perf-smoke gate's paired axis.
int64_t SprayStride(size_t total_bytes) {
  size_t spans = total_bytes / kSpanBytes;
  return spans == 0 ? kSprayRange : kSprayRange / static_cast<int64_t>(spans);
}

void BM_BoundlessSparseSprayFlat(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int64_t stride = SprayStride(n);
  auto body = [&] {
    FlatBoundlessStore store;
    for (size_t span = 0; span < n / kSpanBytes; ++span) {
      int64_t base = static_cast<int64_t>(span) * stride;
      for (size_t j = 0; j < kSpanBytes; ++j) {
        store.StoreByte(kUnit, base + static_cast<int64_t>(j), 0x41);
      }
    }
    benchmark::DoNotOptimize(store.stored_bytes());
  };
  WarmUp(body);
  for (auto _ : state) {
    body();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["range_bytes"] = static_cast<double>(kSprayRange);
  state.SetLabel("flat, write-once spray");
}

void BM_BoundlessSparseSprayPaged(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int64_t stride = SprayStride(n);
  std::vector<uint8_t> src(kSpanBytes, 0x41);
  auto body = [&] {
    PagedBoundlessStore store;
    for (size_t span = 0; span < n / kSpanBytes; ++span) {
      store.StoreSpan(kUnit, static_cast<int64_t>(span) * stride, src.data(), kSpanBytes);
    }
    benchmark::DoNotOptimize(store.stored_bytes());
  };
  WarmUp(body);
  for (auto _ : state) {
    body();
  }
  state.SetItemsProcessed(state.iterations() * n);
  // Untimed replay for the memory-proportionality counters: pages held is a
  // function of touched pages, not of the gigabyte range sprayed across.
  PagedBoundlessStore probe;
  for (size_t span = 0; span < n / kSpanBytes; ++span) {
    probe.StoreSpan(kUnit, static_cast<int64_t>(span) * stride, src.data(), kSpanBytes);
  }
  BoundlessStoreStats stats = probe.stats();
  state.counters["range_bytes"] = static_cast<double>(kSprayRange);
  state.counters["pages_live"] = static_cast<double>(stats.pages_live);
  state.counters["stored_bytes"] = static_cast<double>(probe.stored_bytes());
  state.SetLabel("paged, write-once spray");
}

// ---- unit churn --------------------------------------------------------------

// Background state belongs to a long-lived unit; the timed loop stores a
// little under a fresh unit and retires it, over and over. state.range(0) is
// the background byte count the flat DropUnit must rescan per cycle.
constexpr size_t kChurnBytesPerCycle = 64;

void BM_BoundlessChurnFlat(benchmark::State& state) {
  size_t background = static_cast<size_t>(state.range(0));
  FlatBoundlessStore store;
  for (size_t i = 0; i < background; ++i) {
    store.StoreByte(kBackgroundUnit, static_cast<int64_t>(i), 0x7e);
  }
  UnitId next_unit = 100;
  for (auto _ : state) {
    UnitId unit = next_unit++;
    for (size_t i = 0; i < kChurnBytesPerCycle; ++i) {
      store.StoreByte(unit, static_cast<int64_t>(i * 512), static_cast<uint8_t>(i));
    }
    store.DropUnit(unit);
  }
  benchmark::DoNotOptimize(store.stored_bytes());
  state.SetItemsProcessed(state.iterations() * kChurnBytesPerCycle);
  state.SetLabel("flat, store+drop cycles over " + std::to_string(background) +
                 " background bytes");
}

void BM_BoundlessChurnPaged(benchmark::State& state) {
  size_t background = static_cast<size_t>(state.range(0));
  PagedBoundlessStore store;
  for (size_t i = 0; i < background; ++i) {
    store.StoreByte(kBackgroundUnit, static_cast<int64_t>(i), 0x7e);
  }
  UnitId next_unit = 100;
  for (auto _ : state) {
    UnitId unit = next_unit++;
    for (size_t i = 0; i < kChurnBytesPerCycle; ++i) {
      store.StoreByte(unit, static_cast<int64_t>(i * 512), static_cast<uint8_t>(i));
    }
    store.DropUnit(unit);
  }
  benchmark::DoNotOptimize(store.stored_bytes());
  state.SetItemsProcessed(state.iterations() * kChurnBytesPerCycle);
  state.SetLabel("paged, store+drop cycles over " + std::to_string(background) +
                 " background bytes");
}

BENCHMARK(BM_BoundlessDenseOverflowFlat)->Arg(4096)->Arg(65536);
BENCHMARK(BM_BoundlessDenseOverflowPaged)->Arg(4096)->Arg(65536);
BENCHMARK(BM_BoundlessSparseSprayFlat)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_BoundlessSparseSprayPaged)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_BoundlessChurnFlat)->Arg(16384)->Arg(131072);
BENCHMARK(BM_BoundlessChurnPaged)->Arg(16384)->Arg(131072);

}  // namespace
}  // namespace fob

BENCHMARK_MAIN();
