// Figure 5: Request Processing Times for Midnight Commander (milliseconds).
//
// Copy copies a 31 MB directory tree, Move moves a directory of the same
// size, MkDir makes a directory, Delete deletes a 3.2 MB file. The paper
// reports slowdowns of 1.4x / 1.4x / 1.8x / 1.1x — file operations are
// dominated by filesystem work, with checking overhead only on the staged
// path/buffer handling.

#include <cstdio>
#include <string>

#include "src/apps/mc.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"

namespace fob {
namespace {

void Run() {
  std::printf("Figure 5: Request Processing Times for Midnight Commander (milliseconds)\n");
  McApp standard(AccessPolicy::kStandard, McApp::DefaultConfigText(false));
  McApp oblivious(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false));
  MakeMcTree(standard.fs(), "/data/tree", 31ull << 20);
  MakeMcTree(oblivious.fs(), "/data/tree", 31ull << 20);
  std::string big(3200 << 10, 'x');
  standard.fs().WriteFile("/data/big.dat", big, true);
  oblivious.fs().WriteFile("/data/big.dat", big, true);

  Table table({"Request", "Standard", "Failure Oblivious", "Slowdown"});
  auto row = [&](const char* name, const PairStats& pair) {
    table.AddRow({name, Table::Cell(pair.a.mean_ms, pair.a.stddev_pct),
                  Table::Cell(pair.b.mean_ms, pair.b.stddev_pct),
                  Table::Num(pair.b.mean_ms / pair.a.mean_ms)});
  };

  row("Copy (31MB)", MeasurePairMsWithCleanup(
                         [&] { standard.Copy("/data/tree", "/data/copy"); },
                         [&] { standard.fs().Remove("/data/copy"); },
                         [&] { oblivious.Copy("/data/tree", "/data/copy"); },
                         [&] { oblivious.fs().Remove("/data/copy"); }, /*reps=*/20));
  row("Move", MeasurePairMsWithCleanup(
                  [&] { standard.Move("/data/tree", "/data/moved"); },
                  [&] { standard.fs().Move("/data/moved", "/data/tree"); },
                  [&] { oblivious.Move("/data/tree", "/data/moved"); },
                  [&] { oblivious.fs().Move("/data/moved", "/data/tree"); }, /*reps=*/20));
  int n_std = 0;
  int n_fo = 0;
  row("MkDir", MeasurePairMs([&] { standard.MkDir("/data/dir" + std::to_string(n_std++)); },
                             [&] { oblivious.MkDir("/data/dir" + std::to_string(n_fo++)); },
                             /*batch=*/64, /*reps=*/25));
  row("Delete (3.2MB)",
      MeasurePairMsWithCleanup(
          [&] { standard.Delete("/data/big.dat"); },
          [&] { standard.fs().WriteFile("/data/big.dat", big, true); },
          [&] { oblivious.Delete("/data/big.dat"); },
          [&] { oblivious.fs().WriteFile("/data/big.dat", big, true); }, /*reps=*/20));
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper reported slowdowns: Copy 1.4x, Move 1.4x, MkDir 1.8x, Delete 1.1x\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
