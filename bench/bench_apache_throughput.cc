// §4.3.2: Apache throughput under attack, through the Frontend.
//
// Several attacker clients hammer the server with requests that trigger the
// rewrite memory error while a legitimate client fetches pages; all of them
// are multiplexed over LineChannels onto the regenerating WorkerPool by the
// Frontend, and we measure the legitimate client's throughput. The paper's
// result: the Failure Oblivious version delivers ~5.7x the Bounds Check
// version's throughput and ~4.8x the Standard version's — the crashing
// versions pay a full child-process restart per attack, and at batch sizes
// > 1 additionally pay the re-queue of every batch the attack aborts.
//
// The FO advantage factor is set by the restart-cost : request-cost ratio.
// We report two regimes:
//   calibrated — heavyweight (830 KB) fetches, so a restart costs a few
//                request-times, matching the paper's testbed ratio;
//   full-init  — in-memory 5 KB fetches, where a restart costs far more
//                than a request (the factor grows, same shape).

#include <cstdio>
#include <string>

#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/net/frontend.h"

namespace fob {
namespace {

struct ThroughputResult {
  double legit_per_second = 0;
  uint64_t restarts = 0;
};

ServerRequest Get(const std::string& path, RequestTag tag) {
  return MakeRequest(tag, "get", path);
}

ThroughputResult MeasureThroughput(AccessPolicy policy, const std::string& legit_path,
                                   double duration_ms) {
  Frontend frontend([policy] { return MakeServerApp(Server::kApache, policy); },
                    Frontend::Options{.workers = 4, .batch = 4});
  // Three attacker connections and one legitimate client (3:1 mix).
  LineChannel* attackers[3] = {&frontend.Connect(1), &frontend.Connect(2),
                               &frontend.Connect(3)};
  LineChannel& legit = frontend.Connect(4);
  std::string attack_line = Get(MakeApacheAttackUrl(), RequestTag::kAttack).Serialize();
  std::string legit_line = Get(legit_path, RequestTag::kLegit).Serialize();
  uint64_t legit_ok = 0;
  Stopwatch watch;
  while (watch.ElapsedMs() < duration_ms) {
    for (LineChannel* attacker : attackers) {
      attacker->ClientSend(attack_line);
    }
    legit.ClientSend(legit_line);
    frontend.Pump();
    while (auto line = legit.ClientReceive()) {
      auto response = ServerResponse::Deserialize(*line);
      if (response && response->status == 200) {
        ++legit_ok;
      }
    }
    for (LineChannel* attacker : attackers) {
      attacker->ClientReceiveAll();  // drain
    }
  }
  ThroughputResult result;
  result.legit_per_second = 1000.0 * static_cast<double>(legit_ok) / watch.ElapsedMs();
  result.restarts = frontend.restarts();
  return result;
}

double MeasureRestartToRequestRatio(const std::string& legit_path) {
  auto probe = MakeServerApp(Server::kApache, AccessPolicy::kStandard);
  ServerRequest legit = Get(legit_path, RequestTag::kLegit);
  TimingStats request = MeasureMs([&] { probe->Handle(legit); }, 30);
  // A restart re-runs the factory: full config parse + regex compilation.
  TimingStats restart = MeasureMs(
      [&] { auto worker = MakeServerApp(Server::kApache, AccessPolicy::kStandard); }, 30);
  return request.mean_ms > 0 ? restart.mean_ms / request.mean_ms : 0;
}

void RunRegime(const char* name, const std::string& legit_path, double duration_ms) {
  double ratio = MeasureRestartToRequestRatio(legit_path);
  ThroughputResult oblivious =
      MeasureThroughput(AccessPolicy::kFailureOblivious, legit_path, duration_ms);
  ThroughputResult bounds =
      MeasureThroughput(AccessPolicy::kBoundsCheck, legit_path, duration_ms);
  ThroughputResult standard =
      MeasureThroughput(AccessPolicy::kStandard, legit_path, duration_ms);

  std::printf("Regime: %s (restart costs %.1f request-times)\n", name, ratio);
  Table table({"Version", "Legit req/s", "Worker restarts", "FO advantage"});
  table.AddRow({"Failure Oblivious", Table::Num(oblivious.legit_per_second, 4),
                std::to_string(oblivious.restarts), "1.0x"});
  table.AddRow({"Bounds Check", Table::Num(bounds.legit_per_second, 4),
                std::to_string(bounds.restarts),
                Table::Num(oblivious.legit_per_second / bounds.legit_per_second) + "x"});
  table.AddRow({"Standard", Table::Num(standard.legit_per_second, 4),
                std::to_string(standard.restarts),
                Table::Num(oblivious.legit_per_second / standard.legit_per_second) + "x"});
  std::printf("%s", table.ToString().c_str());
}

void Run() {
  std::printf("Section 4.3.2: Apache throughput under attack (legitimate requests/second)\n");
  RunRegime("restart ~ a few request-times (large fetches, the paper's regime)",
            "/files/big.bin", 1200);
  RunRegime("restart >> request (in-memory 5KB fetches)", "/index.html", 600);
  std::printf("Paper reported: FO ~= 5.7x Bounds Check, ~= 4.8x Standard\n");
  std::printf("(shape: FO >> crashing versions; factor grows with restart:request cost ratio)\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
