// §4.3.2: Apache throughput under attack.
//
// Several attacker clients hammer the server with requests that trigger the
// rewrite memory error while a legitimate client fetches the home page; we
// measure the legitimate client's throughput. The paper's result: the
// Failure Oblivious version delivers ~5.7x the Bounds Check version's
// throughput and ~4.8x the Standard version's — the crashing versions pay a
// full child-process restart per attack.
//
// The FO advantage factor is set by the restart-cost : request-cost ratio.
// On the paper's testbed a request took ~44 ms (network/kernel bound) and a
// fork+exec+init restart ~7 request-times, which with a 3:1 attack:legit mix
// yields ~5.7x. We report two regimes:
//   calibrated — worker init trimmed until restart ~= 7 request-times,
//                matching the paper's testbed ratio (expect ~5x);
//   full-init  — the complete 43-rule config, where a restart costs far
//                more than an in-memory request (the factor grows, same
//                shape, further from the paper's constants).

#include <cstdio>
#include <string>

#include "src/apps/apache.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

struct ThroughputResult {
  double legit_per_second = 0;
  uint64_t restarts = 0;
};

ThroughputResult MeasureThroughput(AccessPolicy policy, const Vfs& docroot,
                                   const std::string& config, const std::string& legit_path,
                                   double duration_ms) {
  WorkerPool<ApacheApp> pool(4, [&] {
    return std::make_unique<ApacheApp>(policy, &docroot, config);
  });
  HttpRequest attack = MakeHttpGet(MakeApacheAttackUrl());
  HttpRequest legit = MakeHttpGet(legit_path);
  uint64_t legit_ok = 0;
  Stopwatch watch;
  while (watch.ElapsedMs() < duration_ms) {
    // The attack load: several local machines sending trigger requests
    // (three attack requests per legitimate fetch).
    for (int i = 0; i < 3; ++i) {
      pool.Dispatch([&](ApacheApp& app) { app.Handle(attack); });
    }
    HttpResponse response;
    RunResult result = pool.Dispatch([&](ApacheApp& app) { response = app.Handle(legit); });
    if (result.ok() && response.status == 200) {
      ++legit_ok;
    }
  }
  ThroughputResult result;
  result.legit_per_second = 1000.0 * static_cast<double>(legit_ok) / watch.ElapsedMs();
  result.restarts = pool.restarts();
  return result;
}

double MeasureRestartToRequestRatio(const Vfs& docroot, const std::string& config,
                                    const std::string& legit_path) {
  HttpRequest legit = MakeHttpGet(legit_path);
  ApacheApp probe(AccessPolicy::kStandard, &docroot, config);
  TimingStats request = MeasureMs([&] { probe.Handle(legit); }, 30);
  TimingStats restart = MeasureMs(
      [&] { ApacheApp worker(AccessPolicy::kStandard, &docroot, config); }, 30);
  return request.mean_ms > 0 ? restart.mean_ms / request.mean_ms : 0;
}

void RunRegime(const char* name, const std::string& config, const Vfs& docroot,
               const std::string& legit_path, double duration_ms) {
  double ratio = MeasureRestartToRequestRatio(docroot, config, legit_path);
  ThroughputResult oblivious = MeasureThroughput(AccessPolicy::kFailureOblivious, docroot,
                                                 config, legit_path, duration_ms);
  ThroughputResult bounds =
      MeasureThroughput(AccessPolicy::kBoundsCheck, docroot, config, legit_path, duration_ms);
  ThroughputResult standard =
      MeasureThroughput(AccessPolicy::kStandard, docroot, config, legit_path, duration_ms);

  std::printf("Regime: %s (restart costs %.1f request-times)\n", name, ratio);
  Table table({"Version", "Legit req/s", "Worker restarts", "FO advantage"});
  table.AddRow({"Failure Oblivious", Table::Num(oblivious.legit_per_second, 4),
                std::to_string(oblivious.restarts), "1.0x"});
  table.AddRow({"Bounds Check", Table::Num(bounds.legit_per_second, 4),
                std::to_string(bounds.restarts),
                Table::Num(oblivious.legit_per_second / bounds.legit_per_second) + "x"});
  table.AddRow({"Standard", Table::Num(standard.legit_per_second, 4),
                std::to_string(standard.restarts),
                Table::Num(oblivious.legit_per_second / standard.legit_per_second) + "x"});
  std::printf("%s", table.ToString().c_str());
}

void Run() {
  std::printf("Section 4.3.2: Apache throughput under attack (legitimate requests/second)\n");
  Vfs docroot = MakeApacheDocroot();
  // Calibrated regime: heavyweight (830 KB) legitimate fetches, so a worker
  // restart costs a small number of request-times — the paper's testbed
  // regime, where requests were 44 ms of mostly network/kernel time and a
  // fork+exec restart a handful of request-times. Expect a factor near the
  // paper's 4.8-5.7x.
  RunRegime("restart ~ a few request-times (large fetches, the paper's regime)",
            ApacheApp::DefaultConfigText(), docroot, "/files/big.bin", 1200);
  // In-memory regime: microsecond page fetches make each restart cost
  // hundreds of request-times; same shape, much larger factor.
  RunRegime("restart >> request (in-memory 5KB fetches)", ApacheApp::DefaultConfigText(),
            docroot, "/index.html", 600);
  std::printf("Paper reported: FO ~= 5.7x Bounds Check, ~= 4.8x Standard\n");
  std::printf("(shape: FO >> crashing versions; factor grows with restart:request cost ratio)\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
