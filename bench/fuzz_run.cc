// Fuzzer driver: runs the seeded mutation fuzzer (src/harness/fuzz.h)
// against one server, prints the discovery log, and optionally archives the
// minimized findings as a replayable corpus.
//
//   fuzz_run <server> [seed] [iterations] [corpus_dir]
//
// server: pine | apache | sendmail | mc | mutt | archive | codec
//
// With corpus_dir, each finding is written as
// <corpus_dir>/<server>/case_NNN.req (the request's one-line wire form) and
// recorded in <corpus_dir>/<server>/MANIFEST.tsv — the format
// tests/test_corpus_replay.cc replays and tools/check_corpus.py validates
// (see tests/corpus/README.md). Same seed ⇒ byte-identical corpus, so the
// checked-in cases can always be regenerated.
//
// When SITES_static.json (or $FOB_SITES_STATIC) is present, discovered
// sites are scored against the static universe: a discovery should be a
// site the extractor already knew was *constructible* — a phantom means the
// static model has a hole, and is reported loudly.
//
// Exit: 0 = at least one finding, 1 = none, 2 = usage/IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/harness/fuzz.h"
#include "src/harness/site_coverage.h"

namespace fob {
namespace {

bool ParseServer(const char* name, Server* server) {
  for (Server candidate : kAllServers) {
    if (std::strcmp(name, ServerShortName(candidate)) == 0) {
      *server = candidate;
      return true;
    }
  }
  return false;
}

int WriteCorpus(const FuzzResult& result, const std::string& corpus_dir) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(corpus_dir) / ServerShortName(result.server);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.string().c_str(),
                 ec.message().c_str());
    return 2;
  }
  std::ofstream manifest(dir / "MANIFEST.tsv");
  if (!manifest) {
    std::fprintf(stderr, "cannot write %s\n", (dir / "MANIFEST.tsv").string().c_str());
    return 2;
  }
  manifest << "# fuzz corpus for " << ServerShortName(result.server) << " — seed "
           << result.options.seed << ", " << result.findings.size() << " case(s)\n";
  manifest << "# <file>\t<seed>\t<generation>\t<0xsite,...>  (see tests/corpus/README.md)\n";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const FuzzFinding& finding = result.findings[i];
    char name[32];
    std::snprintf(name, sizeof(name), "case_%03zu.req", i);
    std::ofstream out(dir / name);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", (dir / name).string().c_str());
      return 2;
    }
    out << finding.request.Serialize() << '\n';
    CorpusCase record;
    record.file = name;
    record.seed = result.options.seed;
    record.generation = finding.generation;
    for (const MemSiteStat& stat : finding.new_sites) {
      record.sites.push_back(stat.site);
    }
    manifest << FormatManifestLine(record) << '\n';
  }
  std::printf("wrote %zu case(s) under %s\n", result.findings.size(), dir.string().c_str());
  return 0;
}

// Scores every discovered site against the static universe, if one is
// around. Returns the phantom count.
size_t PrintCoverage(const FuzzResult& result) {
  std::vector<MemSiteStat> discovered;
  for (const FuzzFinding& finding : result.findings) {
    discovered.insert(discovered.end(), finding.new_sites.begin(), finding.new_sites.end());
  }
  const std::string path = DefaultUniversePath();
  if (path.empty()) {
    std::printf("site coverage: no static universe (set FOB_SITES_STATIC or run "
                "tools/fob_analyze to emit SITES_static.json)\n");
    return 0;
  }
  auto universe = LoadStaticSiteUniverse(path);
  if (!universe.has_value()) {
    std::printf("site coverage: unreadable static universe at %s\n", path.c_str());
    return 0;
  }
  SiteCoverage coverage = ComputeSiteCoverage(discovered, *universe);
  std::printf("discovered-site %s\n", coverage.Summary().c_str());
  for (const MemSiteStat& phantom : coverage.phantoms) {
    std::printf("  PHANTOM %s %s @ %s (site 0x%016llx)\n", phantom.is_write ? "write" : "read",
                phantom.unit_name.c_str(), phantom.function.c_str(),
                static_cast<unsigned long long>(phantom.site));
  }
  return coverage.phantoms.size();
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: fuzz_run <server> [seed] [iterations] [corpus_dir]\n");
    return 2;
  }
  Server server = Server::kApache;
  if (!ParseServer(argv[1], &server)) {
    std::fprintf(stderr, "unknown server '%s' (pine|apache|sendmail|mc|mutt|archive|codec)\n",
                 argv[1]);
    return 2;
  }
  FuzzOptions options;
  if (argc > 2) {
    options.seed = std::strtoull(argv[2], nullptr, 10);
  }
  if (argc > 3) {
    options.iterations = static_cast<size_t>(std::strtoull(argv[3], nullptr, 10));
  }
  FuzzResult result = RunFuzzer(server, options);
  std::printf("%s", result.log.c_str());
  PrintCoverage(result);
  if (argc > 4) {
    int status = WriteCorpus(result, argv[4]);
    if (status != 0) {
      return status;
    }
  }
  return result.findings.empty() ? 1 : 0;
}

}  // namespace
}  // namespace fob

int main(int argc, char** argv) { return fob::Run(argc, argv); }
