// Figure 3: Request Processing Times for Apache (milliseconds).
//
// Small serves the ~5 KB project home page; Large serves an 830 KB file.
// The paper measured slowdowns of 1.06x and 1.03x: request processing is
// dominated by bulk I/O work whose checks are amortized per block, not per
// byte.

#include <cstdio>

#include "src/apps/apache.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"

namespace fob {
namespace {

void Run() {
  std::printf("Figure 3: Request Processing Times for Apache (milliseconds)\n");
  Vfs docroot = MakeApacheDocroot();
  HttpRequest small = MakeHttpGet("/index.html");
  HttpRequest large = MakeHttpGet("/files/big.bin");

  ApacheApp standard(AccessPolicy::kStandard, &docroot, ApacheApp::DefaultConfigText());
  ApacheApp oblivious(AccessPolicy::kFailureOblivious, &docroot, ApacheApp::DefaultConfigText());

  PairStats small_pair = MeasurePairMs([&] { standard.Handle(small); },
                                       [&] { oblivious.Handle(small); },
                                       /*batch=*/32, /*reps=*/25);
  PairStats large_pair = MeasurePairMs([&] { standard.Handle(large); },
                                       [&] { oblivious.Handle(large); },
                                       /*batch=*/2, /*reps=*/25);

  Table table({"Request", "Standard", "Failure Oblivious", "Slowdown"});
  table.AddRow({"Small (5KB)", Table::Cell(small_pair.a.mean_ms, small_pair.a.stddev_pct),
                Table::Cell(small_pair.b.mean_ms, small_pair.b.stddev_pct),
                Table::Num(small_pair.b.mean_ms / small_pair.a.mean_ms)});
  table.AddRow({"Large (830KB)", Table::Cell(large_pair.a.mean_ms, large_pair.a.stddev_pct),
                Table::Cell(large_pair.b.mean_ms, large_pair.b.stddev_pct),
                Table::Num(large_pair.b.mean_ms / large_pair.a.mean_ms)});
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper reported slowdowns: Small 1.06x, Large 1.03x\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
