// Checked-access cost vs live-object population (google-benchmark; CI
// records BENCH_check_cost.json in the perf trajectory, and the perf-smoke
// gate — tools/check_perf_smoke.py — fails the build if the checked/raw
// scalar-read ratio regresses past its bound).
//
// The Jones-Kelly checker's slow tier searches the object table on every
// access, so checked cost historically grew with the live-object population
// — the curve that explains why allocation-heavy servers (Pine, Sendmail,
// Mutt) see the paper's largest slowdowns. The page-granular unit map
// (src/softmem/page_map.h) is supposed to make the *common* access O(1) and
// population-independent; this benchmark measures both regimes:
//
//   * BM_CheckCost{Standard,FailureOblivious,MixedSpec}/N — sequential
//     scalar reads over a page-aligned hot window whose pages are
//     sole-owned: the fast-path regime. Checked cost should sit within a
//     small constant of Standard and stay flat in N.
//   * BM_CheckCostRandom{Standard,FailureOblivious}/{N,dist} — random
//     accesses over a 1 MiB arena: dist 0 is a uniform data-dependent
//     pointer chase (a Sattolo cycle, memcached-style hash probing), dist 1
//     is a Zipf(s=1.2) offset stream (hot-key skew). Also fast-path regime;
//     exercises page-map lookups across many pages plus the multi-entry
//     translation cache.
//   * BM_ResidentProbeFailureOblivious/N — scalar reads scattered over the
//     packed 48-byte resident blocks themselves: every page is mixed, so
//     this pins the slow tier's population curve (the pre-fast-path cost
//     model). Deliberately named outside the perf-smoke pairing.
//
// Every benchmark emits the shard's fast-path counters for the timed region
// as translation_hits / translation_misses / hit_rate, so the JSON carries
// which tier actually served the accesses.
//
// Args: {live-blocks} or {live-blocks, dist}. Output unit: ns per access.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/resident.h"
#include "src/runtime/memory.h"
#include "src/softmem/address_space.h"

namespace fob {
namespace {

constexpr int kAccesses = 4096;

// Deterministic seed stream (no global RNG state; same offsets every run so
// hit-rate counters are reproducible).
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// A page-aligned window of `bytes` inside a larger allocation. The window's
// pages lie strictly inside one data unit, so each is sole-owned and the
// page-map fast path can serve accesses to it; the unit's first partial page
// (possibly shared with a neighbouring block's tail) is skipped.
Ptr PageAlignedWindow(Memory& memory, size_t bytes, const std::string& name) {
  Ptr raw = memory.Malloc(bytes + kPageSize, name);
  Addr aligned = PageBaseOf(raw.addr + kPageSize - 1);
  return Ptr(aligned, raw.unit);
}

// Emits the timed region's fast-path counter deltas into the benchmark
// JSON. Call with the counter snapshot taken just before the timing loop.
void EmitTranslationCounters(benchmark::State& state, const Memory& memory, uint64_t hits_before,
                             uint64_t misses_before) {
  double hits = static_cast<double>(memory.translation_hits() - hits_before);
  double misses = static_cast<double>(memory.translation_misses() - misses_before);
  state.counters["translation_hits"] = hits;
  state.counters["translation_misses"] = misses;
  state.counters["hit_rate"] = hits + misses > 0 ? hits / (hits + misses) : 0.0;
}

// Shared sequential loop: scalar byte reads over a page-aligned hot window
// against a resident heap of state.range(0) live blocks; only the Memory's
// policy spec differs per benchmark.
void RunByteReads(benchmark::State& state, Memory& memory, const std::string& label) {
  size_t blocks = static_cast<size_t>(state.range(0));
  std::vector<Ptr> resident = PopulateResidentHeap(memory, blocks, 48, "resident");
  Ptr buf = PageAlignedWindow(memory, kAccesses, "hot");
  uint64_t sink = 0;
  uint64_t hits_before = memory.translation_hits();
  uint64_t misses_before = memory.translation_misses();
  for (auto _ : state) {
    for (int i = 0; i < kAccesses; ++i) {
      sink += memory.ReadU8(buf + i);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kAccesses);
  EmitTranslationCounters(state, memory, hits_before, misses_before);
  std::string full_label = label;
  full_label.append(", ").append(std::to_string(blocks)).append(" live");
  state.SetLabel(full_label);
}

void BM_CheckCostStandard(benchmark::State& state) {
  Memory memory(AccessPolicy::kStandard);
  RunByteReads(state, memory, PolicyName(AccessPolicy::kStandard));
}

void BM_CheckCostFailureOblivious(benchmark::State& state) {
  Memory memory(AccessPolicy::kFailureOblivious);
  RunByteReads(state, memory, PolicyName(AccessPolicy::kFailureOblivious));
}

// The same curve through the per-site dispatch path: a mixed spec always
// runs the check, so this measures what context-aware per-site resolution
// adds on top of the uniform checked cost (it should be ~nothing for
// in-bounds traffic — sites are only resolved for invalid accesses).
void BM_CheckCostMixedSpec(benchmark::State& state) {
  PolicySpec spec(AccessPolicy::kFailureOblivious);
  spec.Set(MakeSiteId("resident", "", AccessKind::kWrite), AccessPolicy::kBoundsCheck);
  Memory memory(spec);
  RunByteReads(state, memory, "mixed spec");
}

// Shared random loop: u32 reads at random offsets inside a 1 MiB arena,
// with state.range(0) resident blocks as background population (the arena's
// pages stay sole-owned regardless, so checked cost should be flat in the
// population). dist = state.range(1): 0 uniform chase, 1 Zipf stream.
void RunRandomReads(benchmark::State& state, Memory& memory, const std::string& label) {
  constexpr size_t kArenaBytes = 1 << 20;
  size_t blocks = static_cast<size_t>(state.range(0));
  bool zipf = state.range(1) != 0;
  std::vector<Ptr> resident = PopulateResidentHeap(memory, blocks, 48, "resident");
  Ptr arena = PageAlignedWindow(memory, kArenaBytes, "arena");

  uint64_t sink = 0;
  uint64_t hits_before = 0;
  uint64_t misses_before = 0;
  if (!zipf) {
    // Uniform: a data-dependent pointer chase. Each u32 slot holds the index
    // of the next slot; Sattolo's algorithm builds one cycle covering every
    // slot, so the chase visits the arena uniformly with no fixed stride.
    constexpr uint32_t kSlots = kArenaBytes / 4;
    std::vector<uint32_t> next(kSlots);
    for (uint32_t i = 0; i < kSlots; ++i) {
      next[i] = i;
    }
    uint64_t seed = 0x5eedc0de;
    for (uint32_t i = kSlots - 1; i > 0; --i) {
      uint32_t j = static_cast<uint32_t>(SplitMix64(seed) % i);
      uint32_t tmp = next[i];
      next[i] = next[j];
      next[j] = tmp;
    }
    for (uint32_t i = 0; i < kSlots; ++i) {
      memory.WriteU32(arena + static_cast<int64_t>(i) * 4, next[i]);
    }
    uint32_t cursor = 0;
    hits_before = memory.translation_hits();
    misses_before = memory.translation_misses();
    for (auto _ : state) {
      for (int i = 0; i < kAccesses; ++i) {
        cursor = memory.ReadU32(arena + static_cast<int64_t>(cursor) * 4);
      }
    }
    sink = cursor;
  } else {
    // Zipf(s = 1.2) over 16 K cache-line-strided slots: sample ranks from
    // the harmonic CDF, scatter rank -> slot with a multiplicative hash so
    // the hot ranks are spread across the arena's pages.
    constexpr size_t kSlots = kArenaBytes / 64;
    std::vector<double> cdf(kSlots);
    double total = 0;
    for (size_t r = 0; r < kSlots; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), 1.2);
      cdf[r] = total;
    }
    std::vector<int64_t> offsets(kAccesses);
    uint64_t seed = 0x2af5c0de;
    for (int i = 0; i < kAccesses; ++i) {
      double u = static_cast<double>(SplitMix64(seed) >> 11) * (1.0 / 9007199254740992.0) * total;
      size_t rank = static_cast<size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      size_t slot = (rank * 2654435761ull) % kSlots;
      offsets[i] = static_cast<int64_t>(slot * 64);
    }
    hits_before = memory.translation_hits();
    misses_before = memory.translation_misses();
    for (auto _ : state) {
      for (int i = 0; i < kAccesses; ++i) {
        sink += memory.ReadU32(arena + offsets[i]);
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kAccesses);
  EmitTranslationCounters(state, memory, hits_before, misses_before);
  std::string full_label = label;
  full_label.append(zipf ? ", zipf" : ", uniform chase")
      .append(", ")
      .append(std::to_string(blocks))
      .append(" live");
  state.SetLabel(full_label);
}

void BM_CheckCostRandomStandard(benchmark::State& state) {
  Memory memory(AccessPolicy::kStandard);
  RunRandomReads(state, memory, PolicyName(AccessPolicy::kStandard));
}

void BM_CheckCostRandomFailureOblivious(benchmark::State& state) {
  Memory memory(AccessPolicy::kFailureOblivious);
  RunRandomReads(state, memory, PolicyName(AccessPolicy::kFailureOblivious));
}

// Slow-tier pin: scalar reads scattered across the packed resident blocks
// themselves. Every touched page holds ~85 live 48-byte units, so the page
// map classifies them mixed and each access runs the full interval search —
// the pre-fast-path cost model, still tracked per push. (Named outside the
// BM_CheckCost{Standard,FailureOblivious} pairing so the perf-smoke ratio
// gate does not apply; this regime is allowed to scale with the table.)
void BM_ResidentProbeFailureOblivious(benchmark::State& state) {
  Memory memory(AccessPolicy::kFailureOblivious);
  size_t blocks = static_cast<size_t>(state.range(0));
  std::vector<Ptr> resident = PopulateResidentHeap(memory, blocks, 48, "resident");
  uint64_t seed = 0xb10c5;
  std::vector<size_t> order(kAccesses);
  for (int i = 0; i < kAccesses; ++i) {
    order[i] = static_cast<size_t>(SplitMix64(seed) % resident.size());
  }
  uint64_t sink = 0;
  uint64_t hits_before = memory.translation_hits();
  uint64_t misses_before = memory.translation_misses();
  for (auto _ : state) {
    for (int i = 0; i < kAccesses; ++i) {
      sink += memory.ReadU8(resident[order[i]] + (i % 48));
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kAccesses);
  EmitTranslationCounters(state, memory, hits_before, misses_before);
  state.SetLabel("resident probe, " + std::to_string(blocks) + " live");
}

BENCHMARK(BM_CheckCostStandard)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_CheckCostFailureOblivious)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_CheckCostMixedSpec)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_CheckCostRandomStandard)
    ->Args({16, 0})
    ->Args({256, 0})
    ->Args({4096, 0})
    ->Args({16, 1})
    ->Args({256, 1})
    ->Args({4096, 1});
BENCHMARK(BM_CheckCostRandomFailureOblivious)
    ->Args({16, 0})
    ->Args({256, 0})
    ->Args({4096, 0})
    ->Args({16, 1})
    ->Args({256, 1})
    ->Args({4096, 1});
BENCHMARK(BM_ResidentProbeFailureOblivious)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace fob

BENCHMARK_MAIN();
