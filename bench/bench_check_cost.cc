// Checked-access cost vs live-object population (google-benchmark; CI
// records BENCH_check_cost.json in the perf trajectory).
//
// The Jones-Kelly checker searches the object table on every access, so the
// checked policies' per-access cost depends on the table search — now a
// binary search over a sorted interval vector (src/softmem/object_table.cc)
// — and grows with the program's live-object population, while the Standard
// (unchecked) cost does not. This curve explains why the interactive,
// allocation-heavy servers (Pine, Sendmail, Mutt) see the paper's largest
// slowdowns while block-I/O servers (Apache, MC) see almost none; tracking
// it per push is how table-search changes (map -> interval vector -> ...)
// land in the measured trajectory.
//
// Args: {policy-checked?, live-blocks}. Output unit: ns per byte access.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/apps/resident.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

constexpr int kAccesses = 4096;

// Shared measurement loop: hot-buffer byte reads against a resident heap of
// state.range(0) live blocks; only the Memory's policy spec differs per
// benchmark.
void RunByteReads(benchmark::State& state, Memory& memory, const std::string& label) {
  size_t blocks = static_cast<size_t>(state.range(0));
  std::vector<Ptr> resident = PopulateResidentHeap(memory, blocks, 48, "resident");
  Ptr buf = memory.Malloc(4096, "hot");
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < kAccesses; ++i) {
      sink += memory.ReadU8(buf + i);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kAccesses);
  std::string full_label = label;
  full_label.append(", ").append(std::to_string(blocks)).append(" live");
  state.SetLabel(full_label);
}

void BM_CheckCostStandard(benchmark::State& state) {
  Memory memory(AccessPolicy::kStandard);
  RunByteReads(state, memory, PolicyName(AccessPolicy::kStandard));
}

void BM_CheckCostFailureOblivious(benchmark::State& state) {
  Memory memory(AccessPolicy::kFailureOblivious);
  RunByteReads(state, memory, PolicyName(AccessPolicy::kFailureOblivious));
}

// The same curve through the per-site dispatch path: a mixed spec always
// runs the check, so this measures what context-aware per-site resolution
// adds on top of the uniform checked cost (it should be ~nothing for
// in-bounds traffic — sites are only resolved for invalid accesses).
void BM_CheckCostMixedSpec(benchmark::State& state) {
  PolicySpec spec(AccessPolicy::kFailureOblivious);
  spec.Set(MakeSiteId("resident", "", AccessKind::kWrite), AccessPolicy::kBoundsCheck);
  Memory memory(spec);
  RunByteReads(state, memory, "mixed spec");
}

BENCHMARK(BM_CheckCostStandard)->Arg(16)->Arg(256)->Arg(1024)->Arg(8192);
BENCHMARK(BM_CheckCostFailureOblivious)->Arg(16)->Arg(256)->Arg(1024)->Arg(8192);
BENCHMARK(BM_CheckCostMixedSpec)->Arg(16)->Arg(256)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace fob

BENCHMARK_MAIN();
