// Ablation: what drives the cost of the dynamic checks (DESIGN.md §5).
//
// The Jones-Kelly checker searches the object table on every access, so the
// checked policies' per-access cost grows with the program's live-object
// population while the Standard (unchecked) cost does not. This bench
// sweeps the resident heap size and reports ns/access for byte reads —
// explaining why the interactive, allocation-heavy servers (Pine, Sendmail,
// Mutt) see the paper's largest slowdowns while block-I/O servers (Apache,
// MC) see almost none.

#include <cstdio>
#include <vector>

#include "src/apps/resident.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

double NsPerAccess(AccessPolicy policy, size_t resident_blocks) {
  Memory memory(policy);
  std::vector<Ptr> resident = PopulateResidentHeap(memory, resident_blocks, 48, "resident");
  Ptr buf = memory.Malloc(4096, "hot");
  uint64_t sink = 0;
  constexpr int kAccesses = 4096;
  TimingStats stats = MeasureMs(
      [&] {
        for (int i = 0; i < kAccesses; ++i) {
          sink += memory.ReadU8(buf + i);
        }
      },
      15);
  if (sink == 0xdeadbeef) {
    std::printf("impossible\n");
  }
  return stats.mean_ms * 1e6 / kAccesses;
}

void Run() {
  std::printf("Ablation: checked-access cost vs live-object population (ns per byte read)\n");
  Table table({"Live objects", "Standard", "Failure Oblivious", "Check overhead"});
  for (size_t blocks : {16u, 256u, 1024u, 8192u}) {
    double standard = NsPerAccess(AccessPolicy::kStandard, blocks);
    double oblivious = NsPerAccess(AccessPolicy::kFailureOblivious, blocks);
    table.AddRow({std::to_string(blocks), Table::Num(standard), Table::Num(oblivious),
                  Table::Num(oblivious / standard) + "x"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Standard stays flat (no table search); checked cost grows with the live\n"
              "set — the reproduction analog of CRED's splay-tree lookup per access.\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
