// §3 ablation: the manufactured-value sequence design.
//
// "Midnight Commander contains a loop that, for some inputs, searches past
//  the end of a buffer looking for the '/' character. If the sequence of
//  generated values does not include this character, the loop never
//  terminates and Midnight Commander hangs."
//
// This bench runs the MC attack browse under three read-continuation
// sequences: the paper's 0,1,k design, a zeros-only baseline (hangs), and a
// uniform random stream (terminates, but without the cheap 0/1 bias).

#include <cstdio>

#include "src/apps/mc.h"
#include "src/harness/experiment.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

void Run() {
  std::printf("Section 3 ablation: manufactured-value sequences on the MC attack archive\n");
  Table table({"Sequence", "Outcome", "Manufactured reads", "Memory errors"});
  for (SequenceKind kind : {SequenceKind::kPaper, SequenceKind::kZeros, SequenceKind::kRandom}) {
    McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false), kind);
    mc.memory().set_access_budget(3'000'000);
    McApp::ArchiveListing listing;
    RunResult result = RunAsProcess([&] { listing = mc.BrowseTgz(MakeMcAttackTgz()); });
    Outcome outcome = ClassifyOutcome(result, listing.ok);
    table.AddRow({SequenceKindName(kind), OutcomeName(outcome),
                  std::to_string(mc.memory().sequence().values_produced()),
                  std::to_string(mc.memory().log().total_errors())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Expected: paper sequence and random continue; zeros-only hangs the\n"
              "'/'-search loop exactly as Section 3 describes.\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
