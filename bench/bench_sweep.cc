// Search-space sweep driver: enumerates per-site policy assignments over
// one §4 server's attack workload — or its multi-attack stream, where
// assignments interact with stream composition — and prints the ranked
// table (src/harness/sweep.h). CI runs this as the sweep smoke job and
// uploads the tables next to the BENCH_*.json perf artifacts.
//
//   bench_sweep [server] [max_combinations] [max_sites] [single|multi] [adaptive]
//   bench_sweep sites [out.json]
//
// server: pine | apache | sendmail | mc | mutt | archive | codec
// (default apache)
// multi sweeps over MakeMultiAttackStream(server) instead of the §4
// single-attack stream.
//
// When SITES_static.json (or $FOB_SITES_STATIC) is present, every sweep
// additionally prints a one-line coverage summary scoring the exercised
// error sites against the statically constructible universe enumerated by
// fob_analyze pass 3 (src/harness/site_coverage.h).
//
// `sites` runs the baseline workload of every server over both the §4
// single-attack stream and the multi-attack stream, and dumps the union of
// exercised sites as dynamic-dump JSON for `fob_analyze --check-dynamic`.
// It exits nonzero if any exercised site is a phantom (absent from the
// static universe) — the dynamic half of the superset proof.
//
// adaptive additionally runs the online learner (RunAdaptiveExperiment over
// the same stream and candidate set), prints its convergence trace, and
// compares the learned assignment against the sweep's best ranked one: the
// run fails unless the learner's validated continuation is acceptable and
// logs within an order of magnitude of the exhaustive-search winner — the
// Rigger-style online selection reaching the Durieux-style offline oracle.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/harness/site_coverage.h"
#include "src/harness/sweep.h"

namespace fob {
namespace {

bool ParseServer(const char* name, Server* server) {
  for (Server candidate : kAllServers) {
    if (std::strcmp(name, ServerShortName(candidate)) == 0) {
      *server = candidate;
      return true;
    }
  }
  return false;
}

// Every site the sweep touched: the baseline discovery run plus every
// enumerated assignment (fallback policies can surface sites the baseline
// never reached).
std::vector<MemSiteStat> ExercisedSites(const SweepResult& result) {
  std::vector<MemSiteStat> all = result.baseline_report.error_sites;
  for (const SweepEntry& entry : result.entries) {
    all.insert(all.end(), entry.report.error_sites.begin(), entry.report.error_sites.end());
  }
  return all;
}

// Prints the coverage line (or a note when no universe file is around).
// Returns the number of phantom sites observed.
size_t PrintCoverage(const std::vector<MemSiteStat>& exercised) {
  const std::string path = DefaultUniversePath();
  if (path.empty()) {
    std::printf("site coverage: no static universe (set FOB_SITES_STATIC or run "
                "tools/fob_analyze to emit SITES_static.json)\n");
    return 0;
  }
  auto universe = LoadStaticSiteUniverse(path);
  if (!universe.has_value()) {
    std::printf("site coverage: unreadable static universe at %s\n", path.c_str());
    return 0;
  }
  SiteCoverage coverage = ComputeSiteCoverage(exercised, *universe);
  std::printf("%s\n", coverage.Summary().c_str());
  for (const MemSiteStat& phantom : coverage.phantoms) {
    std::printf("  PHANTOM %s %s @ %s (site 0x%016llx)\n", phantom.is_write ? "write" : "read",
                phantom.unit_name.c_str(), phantom.function.c_str(),
                static_cast<unsigned long long>(phantom.site));
  }
  return coverage.phantoms.size();
}

// `sites` mode: exercise every server's baseline workload over both stream
// shapes and dump the union of observed sites for fob_analyze.
int DumpSites(const char* out_path) {
  std::vector<MemSiteStat> all;
  for (Server server : kAllServers) {
    for (bool multi : {false, true}) {
      SweepOptions options;
      options.max_combinations = 0;  // baseline discovery only
      if (multi) {
        options.stream = MakeMultiAttackStream(server);
      }
      SweepResult result = RunPolicySweep(server, options);
      const std::vector<MemSiteStat>& sites = result.baseline_report.error_sites;
      all.insert(all.end(), sites.begin(), sites.end());
    }
  }
  const std::string json = DynamicSitesJson(all);
  if (out_path != nullptr) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 2;
    }
    out << json;
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("%s", json.c_str());
  }
  return PrintCoverage(all) == 0 ? 0 : 1;
}

// The learned assignment must reach within this factor of the exhaustive
// winner's logged error count (and be acceptable) for the comparison to
// pass — "same order of magnitude" as the offline oracle.
constexpr uint64_t kAdaptiveFactor = 10;

int CompareAdaptive(Server server, const SweepResult& sweep) {
  AdaptiveExperimentOptions options;
  options.controller.candidates = sweep.options.candidates;
  options.controller.max_sites = sweep.options.max_sites;
  // One baseline epoch + a full arm pass per site + slack to settle.
  options.epochs =
      1 + sweep.sites.size() * sweep.options.candidates.size() + 2 * sweep.sites.size() + 2;
  AdaptiveReport adaptive = RunAdaptiveExperiment(server, sweep.options.stream, options);
  std::printf("\n%s", adaptive.ToTraceString().c_str());

  const SweepEntry* best = nullptr;
  for (const SweepEntry& entry : sweep.entries) {
    if (entry.acceptable()) {
      best = &entry;
      break;  // entries are ranked; the first acceptable one is the winner
    }
  }
  if (best == nullptr) {
    std::printf("adaptive-vs-exhaustive: sweep found no acceptable assignment to compare\n");
    return 1;
  }
  uint64_t oracle = best->report.memory_errors_logged;
  uint64_t learned = adaptive.validation.memory_errors_logged;
  bool learned_acceptable = adaptive.validation.outcome == Outcome::kContinued &&
                            adaptive.validation.subsequent_requests_ok;
  bool within = learned <= std::max<uint64_t>(oracle, 1) * kAdaptiveFactor;
  std::printf(
      "adaptive-vs-exhaustive: learned %llu errors (%s) vs exhaustive best %llu errors — %s\n",
      static_cast<unsigned long long>(learned), learned_acceptable ? "acceptable" : "UNACCEPTABLE",
      static_cast<unsigned long long>(oracle),
      learned_acceptable && within ? "within factor" : "FAILED");
  return learned_acceptable && within ? 0 : 1;
}

int Run(int argc, char** argv) {
  Server server = Server::kApache;
  SweepOptions options;
  options.max_combinations = 64;
  bool adaptive = false;
  if (argc > 1 && std::strcmp(argv[1], "sites") == 0) {
    return DumpSites(argc > 2 ? argv[2] : nullptr);
  }
  if (argc > 1 && !ParseServer(argv[1], &server)) {
    std::fprintf(stderr, "unknown server '%s' (pine|apache|sendmail|mc|mutt|archive|codec)\n",
                 argv[1]);
    return 2;
  }
  if (argc > 2) {
    options.max_combinations = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
  }
  if (argc > 3) {
    options.max_sites = static_cast<size_t>(std::strtoull(argv[3], nullptr, 10));
  }
  if (argc > 4) {
    if (std::strcmp(argv[4], "multi") == 0) {
      options.stream = MakeMultiAttackStream(server);
    } else if (std::strcmp(argv[4], "single") != 0) {
      std::fprintf(stderr, "unknown stream mode '%s' (single|multi)\n", argv[4]);
      return 2;
    }
  }
  if (argc > 5) {
    if (std::strcmp(argv[5], "adaptive") == 0) {
      adaptive = true;
    } else {
      std::fprintf(stderr, "unknown mode '%s' (adaptive)\n", argv[5]);
      return 2;
    }
  }
  SweepResult result = RunPolicySweep(server, options);
  std::printf("%s", result.ToTableString().c_str());
  PrintCoverage(ExercisedSites(result));
  if (adaptive) {
    return CompareAdaptive(server, result);
  }
  // Exit nonzero when no assignment achieved acceptable continuation — the
  // smoke job's pass criterion.
  return result.acceptable_count() > 0 ? 0 : 1;
}

}  // namespace
}  // namespace fob

int main(int argc, char** argv) { return fob::Run(argc, argv); }
