// Search-space sweep driver: enumerates per-site policy assignments over
// one §4 server's attack workload — or its multi-attack stream, where
// assignments interact with stream composition — and prints the ranked
// table (src/harness/sweep.h). CI runs this as the sweep smoke job and
// uploads the tables next to the BENCH_*.json perf artifacts.
//
//   bench_sweep [server] [max_combinations] [max_sites] [single|multi]
//
// server: pine | apache | sendmail | mc | mutt (default apache)
// multi sweeps over MakeMultiAttackStream(server) instead of the §4
// single-attack stream.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/harness/sweep.h"

namespace fob {
namespace {

bool ParseServer(const char* name, Server* server) {
  struct Entry {
    const char* name;
    Server server;
  };
  static constexpr Entry kEntries[] = {
      {"pine", Server::kPine}, {"apache", Server::kApache},   {"sendmail", Server::kSendmail},
      {"mc", Server::kMc},     {"mutt", Server::kMutt},
  };
  for (const Entry& entry : kEntries) {
    if (std::strcmp(name, entry.name) == 0) {
      *server = entry.server;
      return true;
    }
  }
  return false;
}

int Run(int argc, char** argv) {
  Server server = Server::kApache;
  SweepOptions options;
  options.max_combinations = 64;
  if (argc > 1 && !ParseServer(argv[1], &server)) {
    std::fprintf(stderr, "unknown server '%s' (pine|apache|sendmail|mc|mutt)\n", argv[1]);
    return 2;
  }
  if (argc > 2) {
    options.max_combinations = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
  }
  if (argc > 3) {
    options.max_sites = static_cast<size_t>(std::strtoull(argv[3], nullptr, 10));
  }
  if (argc > 4) {
    if (std::strcmp(argv[4], "multi") == 0) {
      options.stream = MakeMultiAttackStream(server);
    } else if (std::strcmp(argv[4], "single") != 0) {
      std::fprintf(stderr, "unknown stream mode '%s' (single|multi)\n", argv[4]);
      return 2;
    }
  }
  SweepResult result = RunPolicySweep(server, options);
  std::printf("%s", result.ToTableString().c_str());
  // Exit nonzero when no assignment achieved acceptable continuation — the
  // smoke job's pass criterion.
  return result.acceptable_count() > 0 ? 0 : 1;
}

}  // namespace
}  // namespace fob

int main(int argc, char** argv) { return fob::Run(argc, argv); }
