// Parallel-Frontend serving throughput: requests/sec vs worker-thread count
// x batch size, per policy.
//
// The scale-layer counterpart of bench_apache_throughput: a 3:1
// attack:legit Apache traffic mix from eight multiplexed clients is pushed
// through the Frontend and served by a WorkerPool whose lanes dispatch on
// real std::threads — the workers axis IS the thread axis (workers=1 is the
// single-threaded baseline), so the FO rows show near-linear scaling with
// worker count while the crashing policies stay restart-bound. Batch size
// amortizes the per-request process-entry cost; under crashing policies it
// also sets how much work an attack aborts (the batch remainder re-queues
// after the restart), so the FO : crashing gap widens with batch size.
//
// Args: (policy index into kAllPolicies, worker threads, batch).
// run_bench.sh folds the JSON output into BENCH_throughput.json and CI
// uploads it with the other perf artifacts. The JSON context records the
// worker-thread axis and the machine's hardware concurrency so trajectory
// comparisons across machines stay honest.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "src/harness/workloads.h"
#include "src/net/frontend.h"

namespace fob {
namespace {

AccessPolicy PolicyArg(const benchmark::State& state) {
  return kAllPolicies[static_cast<size_t>(state.range(0))];
}

// One serving round: 8 clients (6 attackers + 2 legitimate), 32 requests,
// already serialized. Sticky affinity spreads the 8 clients round robin
// over the worker lanes, so every lane has work at up to 8 workers.
struct Round {
  std::vector<std::pair<uint64_t, std::string>> lines;  // client id, wire line
  size_t requests = 0;
};

constexpr uint64_t kClients = 8;

Round MakeRound() {
  Round round;
  ServerRequest attack = MakeRequest(RequestTag::kAttack, "get", MakeApacheAttackUrl());
  ServerRequest legit = MakeRequest(RequestTag::kLegit, "get", "/index.html");
  for (int rep = 0; rep < 4; ++rep) {
    for (uint64_t client = 1; client <= kClients; ++client) {
      // Clients 4 and 8 are the legitimate users; the other six attack.
      const ServerRequest& request = (client % 4 == 0) ? legit : attack;
      round.lines.emplace_back(client, request.Serialize());
    }
  }
  round.requests = round.lines.size();
  return round;
}

void BM_FrontendThroughput(benchmark::State& state) {
  AccessPolicy policy = PolicyArg(state);
  state.SetLabel(std::string(PolicyName(policy)) + "/threads:" +
                 std::to_string(state.range(1)) + "/batch:" + std::to_string(state.range(2)));
  Frontend frontend(MakeServerAppFactory(Server::kApache, policy),
                    Frontend::Options{.workers = static_cast<size_t>(state.range(1)),
                                      .batch = static_cast<size_t>(state.range(2))});
  for (uint64_t client = 1; client <= kClients; ++client) {
    frontend.Connect(client);
  }
  Round round = MakeRound();
  uint64_t served = 0;
  for (auto _ : state) {
    for (const auto& [client, line] : round.lines) {
      frontend.Connect(client).ClientSend(line);
    }
    served += frontend.Pump();
    for (uint64_t client = 1; client <= kClients; ++client) {
      frontend.Connect(client).ClientReceiveAll();  // drain responses
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  state.counters["restarts"] =
      benchmark::Counter(static_cast<double>(frontend.restarts()));
  state.counters["worker_threads"] =
      benchmark::Counter(static_cast<double>(state.range(1)));
}

// Policies: FailureOblivious (2), BoundsCheck (1), Standard (0) — the three
// paper configurations; worker threads {1,2,4,8} x batch {1,4,16}. Real
// time, not main-thread CPU time: the lanes run on worker threads.
BENCHMARK(BM_FrontendThroughput)
    ->ArgsProduct({{2, 1, 0}, {1, 2, 4, 8}, {1, 4, 16}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fob

int main(int argc, char** argv) {
  benchmark::AddCustomContext("worker_threads_axis", "1,2,4,8");
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
