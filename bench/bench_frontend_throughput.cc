// Batched-Frontend serving throughput: requests/sec vs worker count x
// batch size, per policy.
//
// The scale-layer counterpart of bench_apache_throughput: a 3:1
// attack:legit Apache traffic mix from four multiplexed clients is pushed
// through the Frontend and served by a WorkerPool in batches. Batch size
// amortizes the per-request process-entry cost; under crashing policies it
// also sets how much work an attack aborts (the batch remainder re-queues
// after the restart), so the FO : crashing gap widens with batch size.
//
// Args: (policy index into kAllPolicies, workers, batch). run_bench.sh
// folds the JSON output into BENCH_throughput.json and CI uploads it with
// the other perf artifacts.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/harness/workloads.h"
#include "src/net/frontend.h"

namespace fob {
namespace {

AccessPolicy PolicyArg(const benchmark::State& state) {
  return kAllPolicies[static_cast<size_t>(state.range(0))];
}

// One serving round: 4 clients (3 attackers + 1 legitimate), 16 requests,
// already serialized.
struct Round {
  std::vector<std::pair<uint64_t, std::string>> lines;  // client id, wire line
  size_t requests = 0;
};

Round MakeRound() {
  Round round;
  ServerRequest attack = MakeRequest(RequestTag::kAttack, "get", MakeApacheAttackUrl());
  ServerRequest legit = MakeRequest(RequestTag::kLegit, "get", "/index.html");
  for (int rep = 0; rep < 4; ++rep) {
    for (uint64_t attacker = 1; attacker <= 3; ++attacker) {
      round.lines.emplace_back(attacker, attack.Serialize());
    }
    round.lines.emplace_back(4, legit.Serialize());
  }
  round.requests = round.lines.size();
  return round;
}

void BM_FrontendThroughput(benchmark::State& state) {
  AccessPolicy policy = PolicyArg(state);
  state.SetLabel(std::string(PolicyName(policy)) + "/workers:" +
                 std::to_string(state.range(1)) + "/batch:" + std::to_string(state.range(2)));
  Frontend frontend([policy] { return MakeServerApp(Server::kApache, policy); },
                    Frontend::Options{.workers = static_cast<size_t>(state.range(1)),
                                      .batch = static_cast<size_t>(state.range(2))});
  for (uint64_t client = 1; client <= 4; ++client) {
    frontend.Connect(client);
  }
  Round round = MakeRound();
  uint64_t served = 0;
  for (auto _ : state) {
    for (const auto& [client, line] : round.lines) {
      frontend.Connect(client).ClientSend(line);
    }
    served += frontend.Pump();
    for (uint64_t client = 1; client <= 4; ++client) {
      frontend.Connect(client).ClientReceiveAll();  // drain responses
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  state.counters["restarts"] =
      benchmark::Counter(static_cast<double>(frontend.restarts()));
}

// Policies: FailureOblivious (2), BoundsCheck (1), Standard (0) — the three
// paper configurations; workers {1,2,4} x batch {1,4,16}.
BENCHMARK(BM_FrontendThroughput)
    ->ArgsProduct({{2, 1, 0}, {1, 2, 4}, {1, 4, 16}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fob

BENCHMARK_MAIN();
