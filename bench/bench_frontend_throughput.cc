// Parallel-Frontend serving throughput: requests/sec vs worker-thread count
// x batch size, per policy — plus per-request latency percentiles, the
// persistent-executor vs legacy fork/join pump-overhead pair, and the
// imbalanced-stream stealing pair.
//
// The scale-layer counterpart of bench_apache_throughput: a 3:1
// attack:legit Apache traffic mix from eight multiplexed clients is pushed
// through the Frontend and served by a WorkerPool whose lanes dispatch on
// persistent executor threads — the workers axis IS the thread axis
// (workers=1 is the single-threaded baseline), so the FO rows show
// near-linear scaling with worker count while the crashing policies stay
// restart-bound. Batch size amortizes the per-request process-entry cost;
// under crashing policies it also sets how much work an attack aborts (the
// batch remainder re-queues after the restart), so the FO : crashing gap
// widens with batch size.
//
// Latency: each pump is timed on a steady clock and its duration is
// attributed to every request it served; p50_ns/p99_ns counters report the
// per-request percentiles across the run. That is queueing + service time
// as a client experiences it, and it is what bench_capacity consumes to
// project workers-for-SLO curves (docs/BENCHMARKS.md).
//
// BM_FrontendPumpOverhead{Persistent,Legacy}: batch=1 x 8 workers x one
// request per client per pump — the round-trip-dominated regime where the
// old fork/join's N thread spawns per pump were the fixed cost the
// persistent executor removes. tools/check_perf_smoke.py gates
// persistent >= 1.3x legacy on multi-core runners (skipped when
// hardware_concurrency==1; the pair is meaningless without parallelism).
//
// BM_FrontendImbalanced{Steal,Sticky}: one hot client's backlog on a
// 4-worker pool — sticky-only dispatch serializes it on one lane while
// three sit idle; the steal plan spreads whole batches across them.
//
// Args: (policy index into kAllPolicies, worker threads, batch).
// run_bench.sh folds the JSON output into BENCH_throughput.json and CI
// uploads it with the other perf artifacts. The JSON context records the
// worker-thread axis and the machine's hardware concurrency so trajectory
// comparisons across machines stay honest.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/harness/workloads.h"
#include "src/net/frontend.h"

namespace fob {
namespace {

AccessPolicy PolicyArg(const benchmark::State& state) {
  return kAllPolicies[static_cast<size_t>(state.range(0))];
}

// One serving round: 8 clients (6 attackers + 2 legitimate), 32 requests,
// already serialized. Sticky affinity spreads the 8 clients round robin
// over the worker lanes, so every lane has work at up to 8 workers.
struct Round {
  std::vector<std::pair<uint64_t, std::string>> lines;  // client id, wire line
  size_t requests = 0;
};

constexpr uint64_t kClients = 8;

Round MakeRound() {
  Round round;
  ServerRequest attack = MakeRequest(RequestTag::kAttack, "get", MakeApacheAttackUrl());
  ServerRequest legit = MakeRequest(RequestTag::kLegit, "get", "/index.html");
  for (int rep = 0; rep < 4; ++rep) {
    for (uint64_t client = 1; client <= kClients; ++client) {
      // Clients 4 and 8 are the legitimate users; the other six attack.
      const ServerRequest& request = (client % 4 == 0) ? legit : attack;
      round.lines.emplace_back(client, request.Serialize());
    }
  }
  round.requests = round.lines.size();
  return round;
}

// Per-pump durations weighted by the requests each pump served, folded into
// per-request latency percentiles: sort by duration, walk the cumulative
// request weight to the percentile boundary. A request's "latency" is its
// pump's wall time — ingest to response write, queueing included.
class LatencyTrack {
 public:
  void Add(std::chrono::steady_clock::duration elapsed, uint64_t requests) {
    if (requests > 0) {
      samples_.emplace_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(), requests);
    }
  }

  double Percentile(double fraction) const {
    if (samples_.empty()) {
      return 0.0;
    }
    std::vector<std::pair<int64_t, uint64_t>> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    uint64_t total = 0;
    for (const auto& [ns, weight] : sorted) {
      total += weight;
    }
    const double target = fraction * static_cast<double>(total);
    uint64_t seen = 0;
    for (const auto& [ns, weight] : sorted) {
      seen += weight;
      if (static_cast<double>(seen) >= target) {
        return static_cast<double>(ns);
      }
    }
    return static_cast<double>(sorted.back().first);
  }

  void Report(benchmark::State& state) const {
    state.counters["p50_ns"] = benchmark::Counter(Percentile(0.50));
    state.counters["p99_ns"] = benchmark::Counter(Percentile(0.99));
  }

 private:
  std::vector<std::pair<int64_t, uint64_t>> samples_;  // (pump ns, requests)
};

void BM_FrontendThroughput(benchmark::State& state) {
  AccessPolicy policy = PolicyArg(state);
  state.SetLabel(std::string(PolicyName(policy)) + "/threads:" +
                 std::to_string(state.range(1)) + "/batch:" + std::to_string(state.range(2)));
  Frontend frontend(MakeServerAppFactory(Server::kApache, policy),
                    Frontend::Options{.workers = static_cast<size_t>(state.range(1)),
                                      .batch = static_cast<size_t>(state.range(2))});
  for (uint64_t client = 1; client <= kClients; ++client) {
    frontend.Connect(client);
  }
  Round round = MakeRound();
  uint64_t served = 0;
  LatencyTrack latency;
  for (auto _ : state) {
    for (const auto& [client, line] : round.lines) {
      frontend.Connect(client).ClientSend(line);
    }
    auto start = std::chrono::steady_clock::now();
    size_t this_pump = frontend.Pump();
    latency.Add(std::chrono::steady_clock::now() - start, this_pump);
    served += this_pump;
    for (uint64_t client = 1; client <= kClients; ++client) {
      frontend.Connect(client).ClientReceiveAll();  // drain responses
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  latency.Report(state);
  state.counters["served"] = benchmark::Counter(static_cast<double>(served));
  state.counters["restarts"] =
      benchmark::Counter(static_cast<double>(frontend.restarts()));
  state.counters["worker_threads"] =
      benchmark::Counter(static_cast<double>(state.range(1)));
}

// Policies: FailureOblivious (2), BoundsCheck (1), Standard (0) — the three
// paper configurations; worker threads {1,2,4,8} x batch {1,4,16}. Real
// time, not main-thread CPU time: the lanes run on worker threads.
BENCHMARK(BM_FrontendThroughput)
    ->ArgsProduct({{2, 1, 0}, {1, 2, 4, 8}, {1, 4, 16}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- Pump overhead: persistent executor vs legacy fork/join -----------------

// The round-trip-dominated regime: 8 lanes, one tiny request each, batch 1.
// Dispatch cost per pump is all fixed overhead — under legacy dispatch that
// includes 8 thread spawns + joins; under the executor it is one
// condvar-wakeup round on already-running threads.
void RunPumpOverhead(benchmark::State& state, bool legacy) {
  Frontend frontend(
      MakeServerAppFactory(Server::kApache, AccessPolicy::kFailureOblivious),
      Frontend::Options{.workers = 8, .batch = 1, .legacy_dispatch = legacy});
  std::string line = MakeRequest(RequestTag::kLegit, "get", "/index.html").Serialize();
  for (uint64_t client = 1; client <= kClients; ++client) {
    frontend.Connect(client);
  }
  uint64_t served = 0;
  for (auto _ : state) {
    for (uint64_t client = 1; client <= kClients; ++client) {
      frontend.Connect(client).ClientSend(line);
    }
    served += frontend.Pump();
    for (uint64_t client = 1; client <= kClients; ++client) {
      frontend.Connect(client).ClientReceiveAll();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  // Zero-churn evidence: lifetime executor thread creations, flat across
  // however many pumps the benchmark ran (0 on the legacy path).
  state.counters["executor_threads_started"] =
      benchmark::Counter(static_cast<double>(frontend.executor_threads_started()));
}

void BM_FrontendPumpOverheadPersistent(benchmark::State& state) {
  RunPumpOverhead(state, /*legacy=*/false);
}

void BM_FrontendPumpOverheadLegacy(benchmark::State& state) {
  RunPumpOverhead(state, /*legacy=*/true);
}

BENCHMARK(BM_FrontendPumpOverheadPersistent)->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FrontendPumpOverheadLegacy)->UseRealTime()->Unit(benchmark::kMicrosecond);

// ---- Imbalanced stream: stealing vs sticky-only -----------------------------

// One hot client sends 32 requests per pump at a 4-worker pool. Sticky-only
// dispatch serializes the whole backlog on the client's one lane; the steal
// plan hands whole batches to the three idle lanes.
void RunImbalanced(benchmark::State& state, bool steal) {
  Frontend frontend(
      MakeServerAppFactory(Server::kApache, AccessPolicy::kFailureOblivious),
      Frontend::Options{.workers = 4, .batch = 4, .steal = steal});
  std::string line = MakeRequest(RequestTag::kLegit, "get", "/index.html").Serialize();
  LineChannel& hot = frontend.Connect(1);
  uint64_t served = 0;
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      hot.ClientSend(line);
    }
    served += frontend.Pump();
    hot.ClientReceiveAll();
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  state.counters["stolen_batches"] =
      benchmark::Counter(static_cast<double>(frontend.stats().stolen_batches));
}

void BM_FrontendImbalancedSteal(benchmark::State& state) {
  RunImbalanced(state, /*steal=*/true);
}

void BM_FrontendImbalancedSticky(benchmark::State& state) {
  RunImbalanced(state, /*steal=*/false);
}

BENCHMARK(BM_FrontendImbalancedSteal)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontendImbalancedSticky)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fob

int main(int argc, char** argv) {
  benchmark::AddCustomContext("worker_threads_axis", "1,2,4,8");
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
