// §4.2.4 / §4.3.4 / §4.4.4 / §4.5.4 / §4.6.4 "Stability": sustained
// operation of the Failure Oblivious versions with attacks interleaved
// into the legitimate workload.
//
// Scaled-down equivalents of the paper's deployments (months of mail /
// web / file management): every server processes a long seeded
// TrafficStream with every Nth request an attack, driven through the
// uniform ServerApp session API — one loop for all five servers, no
// per-server glue — and must finish with zero crashes, zero hangs, and
// every legitimate request served.

#include <cstdio>
#include <memory>
#include <string>

#include "src/harness/experiment.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

struct StabilityConfig {
  Server server;
  StreamOptions stream;
  ServerSetup setup;
  // Non-empty: run this stream instead of MakeTrafficStream(stream) — the
  // hook for scaled one-off passes like Pine's large folder.
  TrafficStream explicit_stream;
  const char* label = nullptr;  // row label override (default: ServerName)
};

struct StabilityRow {
  std::string server;
  uint64_t legit_ok = 0;
  uint64_t legit_total = 0;
  uint64_t attacks = 0;
  uint64_t errors_logged = 0;
  bool crashed = false;
};

StabilityRow RunServer(const StabilityConfig& config) {
  StabilityRow row{.server = config.label != nullptr ? config.label
                                                     : ServerName(config.server)};
  TrafficStream stream = config.explicit_stream.requests.empty()
                             ? MakeTrafficStream(config.server, config.stream)
                             : config.explicit_stream;
  std::unique_ptr<ServerApp> app;
  RunResult result = RunAsProcess([&] {
    app = MakeServerApp(config.server, AccessPolicy::kFailureOblivious, config.setup);
    app->memory().set_access_budget(2'000'000'000ull);
    for (const ServerRequest& request : stream.requests) {
      ServerResponse response = app->Handle(request);
      if (request.tag == RequestTag::kAttack) {
        ++row.attacks;
      } else if (request.tag == RequestTag::kLegit) {
        ++row.legit_total;
        row.legit_ok += response.acceptable ? 1 : 0;
      }
    }
  });
  row.crashed = result.crashed();
  if (app != nullptr) {
    row.errors_logged = app->memory().log().total_errors();
  }
  return row;
}

void Run() {
  std::printf("Stability: Failure Oblivious versions under sustained attack-laced load\n");
  // Per-server scale knobs only — the request construction itself is the
  // shared TrafficStream machinery. Startup configs keep the paper's
  // everyday triggers in place (Pine's attack mail in the mailbox, MC's
  // blank config line).
  // The large-folder pass (paper: >100,000 messages; scaled to 20,000):
  // startup with the attack mail in the big mailbox is itself the attack;
  // the one legit-tagged request checks the index lists every message.
  TrafficStream pine_large;
  pine_large.server = Server::kPine;
  ServerRequest big_index = MakeRequest(RequestTag::kLegit, "index");
  big_index.expect = "20001";
  pine_large.requests.push_back(std::move(big_index));

  const StabilityConfig kConfigs[] = {
      {Server::kPine,
       {.requests = 300, .attack_period = 4, .seed = 11},
       {.pine_mbox_legit = 40, .pine_mbox_attack = true},
       {},
       nullptr},
      {Server::kPine,
       {},
       {.pine_mbox_legit = 20'000, .pine_mbox_attack = true},
       pine_large,
       "Pine (large folder)"},
      {Server::kApache, {.requests = 400, .attack_period = 10, .seed = 12}, {}, {}, nullptr},
      {Server::kSendmail, {.requests = 300, .attack_period = 8, .seed = 13}, {}, {}, nullptr},
      {Server::kMc, {.requests = 120, .attack_period = 6, .seed = 14}, {}, {}, nullptr},
      {Server::kMutt,
       {.requests = 200, .attack_period = 5, .seed = 15},
       {.mutt_inbox_messages = 200},
       {},
       nullptr},
  };
  Table table({"Server", "Legit OK", "Attacks absorbed", "Errors logged", "Crash/hang"});
  for (const StabilityConfig& config : kConfigs) {
    StabilityRow row = RunServer(config);
    table.AddRow({row.server,
                  std::to_string(row.legit_ok) + "/" + std::to_string(row.legit_total),
                  std::to_string(row.attacks), std::to_string(row.errors_logged),
                  row.crashed ? "CRASHED" : "none"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper: months of deployment, all requests served, no anomalies.\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
