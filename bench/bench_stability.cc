// §4.2.4 / §4.3.4 / §4.4.4 / §4.5.4 / §4.6.4 "Stability": sustained
// operation of the Failure Oblivious versions with attacks interleaved
// into the legitimate workload.
//
// Scaled-down equivalents of the paper's deployments (months of mail /
// web / file management): each server processes a long request stream with
// every Nth request an attack, and must finish with zero crashes, zero
// hangs, and every legitimate request served. Pine and Mutt also process a
// large folder (the paper used one with over 100,000 messages).

#include <cstdio>
#include <memory>

#include "src/apps/apache.h"
#include "src/apps/mc.h"
#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/mail/mbox.h"
#include "src/net/imap.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

struct StabilityRow {
  std::string server;
  uint64_t legit_ok = 0;
  uint64_t legit_total = 0;
  uint64_t attacks = 0;
  uint64_t errors_logged = 0;
  bool crashed = false;
};

StabilityRow RunPine() {
  StabilityRow row{.server = "Pine"};
  RunResult result = RunAsProcess([&] {
    PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(40, /*include_attack=*/true));
    pine.memory().set_access_budget(500'000'000);
    for (int round = 0; round < 150; ++round) {
      ++row.legit_total;
      bool ok = pine.ReadMessage(static_cast<size_t>(round) % 20).ok &&
                pine.Compose("peer@example.org", "ping", "pong\n").ok;
      row.legit_ok += ok ? 1 : 0;
    }
    // The large-folder pass (paper: >100,000 messages; scaled to 20,000).
    std::string large = MakePineMbox(20'000, /*include_attack=*/true);
    PineApp big(AccessPolicy::kFailureOblivious, large);
    ++row.legit_total;
    row.legit_ok += big.IndexLines().size() == 20'001 ? 1 : 0;
    row.attacks = 151;
    row.errors_logged = pine.memory().log().total_errors() + big.memory().log().total_errors();
  });
  row.crashed = result.crashed();
  return row;
}

StabilityRow RunApache() {
  StabilityRow row{.server = "Apache"};
  RunResult outer = RunAsProcess([&] {
    Vfs docroot = MakeApacheDocroot();
    ApacheApp apache(AccessPolicy::kFailureOblivious, &docroot,
                     ApacheApp::DefaultConfigText());
    apache.memory().set_access_budget(2'000'000'000ull);
    HttpRequest attack = MakeHttpGet(MakeApacheAttackUrl());
    for (int round = 0; round < 400; ++round) {
      if (round % 10 == 0) {
        ++row.attacks;
        apache.Handle(attack);
        continue;
      }
      ++row.legit_total;
      HttpResponse response = apache.Handle(
          MakeHttpGet(round % 3 == 0 ? "/files/big.bin" : "/index.html"));
      row.legit_ok += response.status == 200 ? 1 : 0;
    }
    row.errors_logged = apache.memory().log().total_errors();
  });
  row.crashed = outer.crashed();
  return row;
}

StabilityRow RunSendmail() {
  StabilityRow row{.server = "Sendmail"};
  RunResult outer = RunAsProcess([&] {
    SendmailApp daemon(AccessPolicy::kFailureOblivious);
    daemon.memory().set_access_budget(2'000'000'000ull);
    auto legit = MakeSendmailSession("user@localhost", 512);
    auto attack = MakeSendmailAttackSession();
    for (int round = 0; round < 300; ++round) {
      daemon.DaemonWakeup();  // the everyday error, every round
      if (round % 8 == 0) {
        ++row.attacks;
        daemon.HandleSession(attack);
        continue;
      }
      ++row.legit_total;
      auto responses = daemon.HandleSession(legit);
      row.legit_ok += responses.back().substr(0, 3) == "221" ? 1 : 0;
    }
    row.errors_logged = daemon.memory().log().total_errors();
  });
  row.crashed = outer.crashed();
  return row;
}

StabilityRow RunMc() {
  StabilityRow row{.server = "Midnight Commander"};
  RunResult outer = RunAsProcess([&] {
    McApp mc(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(true));
    mc.memory().set_access_budget(2'000'000'000ull);
    MakeMcTree(mc.fs(), "/home/files", 1 << 20);
    std::string attack_tgz = MakeMcAttackTgz();
    for (int round = 0; round < 120; ++round) {
      if (round % 6 == 0) {
        ++row.attacks;
        mc.BrowseTgz(attack_tgz);
        continue;
      }
      ++row.legit_total;
      std::string dst = "/home/copy" + std::to_string(round);
      bool ok = mc.Copy("/home/files", dst) && mc.Delete(dst);
      row.legit_ok += ok ? 1 : 0;
    }
    row.errors_logged = mc.memory().log().total_errors();
  });
  row.crashed = outer.crashed();
  return row;
}

StabilityRow RunMutt() {
  StabilityRow row{.server = "Mutt"};
  RunResult outer = RunAsProcess([&] {
    ImapServer imap;
    std::vector<MailMessage> inbox;
    for (int i = 0; i < 200; ++i) {
      inbox.push_back(MailMessage::Make("peer@example.org", "me@here", "m", "b\n"));
    }
    imap.AddFolderUtf8("INBOX", inbox);
    imap.AddFolderUtf8("archive", {});
    MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
    mutt.memory().set_access_budget(2'000'000'000ull);
    std::string attack = MakeMuttAttackFolderName();
    for (int round = 0; round < 200; ++round) {
      if (round % 5 == 0) {
        ++row.attacks;
        mutt.OpenFolder(attack);  // the configured trigger (§4.6.4)
        continue;
      }
      ++row.legit_total;
      bool ok = mutt.OpenFolder("INBOX").ok && mutt.ReadMessage("INBOX", 1).ok;
      row.legit_ok += ok ? 1 : 0;
    }
    row.errors_logged = mutt.memory().log().total_errors();
  });
  row.crashed = outer.crashed();
  return row;
}

void Run() {
  std::printf("Stability: Failure Oblivious versions under sustained attack-laced load\n");
  Table table({"Server", "Legit OK", "Attacks absorbed", "Errors logged", "Crash/hang"});
  for (StabilityRow row : {RunPine(), RunApache(), RunSendmail(), RunMc(), RunMutt()}) {
    table.AddRow({row.server,
                  std::to_string(row.legit_ok) + "/" + std::to_string(row.legit_total),
                  std::to_string(row.attacks), std::to_string(row.errors_logged),
                  row.crashed ? "CRASHED" : "none"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper: months of deployment, all requests served, no anomalies.\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
