// Figure 6: Request Processing Times for Mutt (milliseconds).
//
// Read reads a selected message; Move moves a message from one folder to
// another. Both involve the UTF-8 -> UTF-7 folder-name conversion (the
// checked-memory-heavy path). Paper slowdowns: Read 3.6x, Move 1.4x.

#include <cstdio>

#include "src/apps/mutt.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/mail/message.h"
#include "src/net/imap.h"

namespace fob {
namespace {

ImapServer MakeImap() {
  ImapServer imap;
  std::vector<MailMessage> inbox;
  std::string body(1024, 'm');
  for (int i = 0; i < 50; ++i) {
    inbox.push_back(
        MailMessage::Make("peer@example.org", "me@here", "msg " + std::to_string(i), body));
  }
  imap.AddFolderUtf8("INBOX", inbox);
  imap.AddFolderUtf8("archive", {});
  return imap;
}

void Run() {
  std::printf("Figure 6: Request Processing Times for Mutt (milliseconds)\n");
  ImapServer imap_std = MakeImap();
  ImapServer imap_fo = MakeImap();
  MuttApp standard(AccessPolicy::kStandard, &imap_std);
  MuttApp oblivious(AccessPolicy::kFailureOblivious, &imap_fo);

  Table table({"Request", "Standard", "Failure Oblivious", "Slowdown"});
  PairStats read = MeasurePairMs([&] { standard.ReadMessage("INBOX", 1); },
                                 [&] { oblivious.ReadMessage("INBOX", 1); },
                                 /*batch=*/8, /*reps=*/25);
  table.AddRow({"Read", Table::Cell(read.a.mean_ms, read.a.stddev_pct),
                Table::Cell(read.b.mean_ms, read.b.stddev_pct),
                Table::Num(read.b.mean_ms / read.a.mean_ms)});
  PairStats move = MeasurePairMsWithCleanup(
      [&] { standard.MoveMessage("INBOX", 1, "archive"); },
      [&] { imap_std.MoveMessage("archive", 1, "INBOX"); },
      [&] { oblivious.MoveMessage("INBOX", 1, "archive"); },
      [&] { imap_fo.MoveMessage("archive", 1, "INBOX"); }, /*reps=*/25);
  table.AddRow({"Move", Table::Cell(move.a.mean_ms, move.a.stddev_pct),
                Table::Cell(move.b.mean_ms, move.b.stddev_pct),
                Table::Num(move.b.mean_ms / move.a.mean_ms)});
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper reported slowdowns: Read 3.6x, Move 1.4x\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
