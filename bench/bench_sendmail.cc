// Figure 4: Request Processing Times for Sendmail (milliseconds).
//
// Recv = an inbound SMTP session delivering locally; Send = a submission
// relayed onward. Small = 4-byte body, Large = 4 KB body. The paper
// reports 3.6x-3.9x slowdowns — Sendmail's byte-at-a-time address and
// message processing pays the checking cost on nearly every access.

#include <cstdio>

#include "src/apps/sendmail.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"

namespace fob {
namespace {

void Run() {
  std::printf("Figure 4: Request Processing Times for Sendmail (milliseconds)\n");
  SendmailApp standard(AccessPolicy::kStandard);
  SendmailApp oblivious(AccessPolicy::kFailureOblivious);
  auto recv_small = MakeSendmailSession("user@localhost", 4);
  auto recv_large = MakeSendmailSession("user@localhost", 4096);
  auto send_small = MakeSendmailSession("peer@remote.example", 4);
  auto send_large = MakeSendmailSession("peer@remote.example", 4096);

  Table table({"Request", "Standard", "Failure Oblivious", "Slowdown"});
  auto row = [&](const char* name, const std::vector<std::string>& session, size_t batch) {
    PairStats pair = MeasurePairMs([&] { standard.HandleSession(session); },
                                   [&] { oblivious.HandleSession(session); }, batch, 25);
    table.AddRow({name, Table::Cell(pair.a.mean_ms, pair.a.stddev_pct),
                  Table::Cell(pair.b.mean_ms, pair.b.stddev_pct),
                  Table::Num(pair.b.mean_ms / pair.a.mean_ms)});
  };
  row("Recv Small", recv_small, 16);
  row("Recv Large", recv_large, 4);
  row("Send Small", send_small, 16);
  row("Send Large", send_large, 4);
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper reported slowdowns: 3.9x / 3.9x / 3.7x / 3.6x\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
