// Figure 2: Request Processing Times for Pine (milliseconds).
//
// Read displays a selected message, Compose brings up the compose screen,
// Move moves a message between folders. Standard vs Failure Oblivious plus
// the slowdown ratio; the paper reports 6.9x / 8.1x / 1.34x — parse-heavy
// interactive requests carry the largest checking overhead, but all stay
// far below the ~100 ms pause perceptibility threshold.
//
// Measurements interleave the two versions sample by sample (no ordering
// bias) and batch calls per sample to stay above timer noise.

#include <cstdio>
#include <string>

#include "src/apps/pine.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"

namespace fob {
namespace {

void AddRow(Table& table, const char* name, const PairStats& pair) {
  table.AddRow({name, Table::Cell(pair.a.mean_ms, pair.a.stddev_pct),
                Table::Cell(pair.b.mean_ms, pair.b.stddev_pct),
                Table::Num(pair.b.mean_ms / pair.a.mean_ms)});
}

void Run() {
  std::printf("Figure 2: Request Processing Times for Pine (milliseconds)\n");
  std::string mbox = MakePineMbox(64, /*include_attack=*/false, /*body_bytes=*/4096);
  PineApp standard(AccessPolicy::kStandard, mbox);
  PineApp oblivious(AccessPolicy::kFailureOblivious, mbox);

  Table table({"Request", "Standard", "Failure Oblivious", "Slowdown"});
  AddRow(table, "Read",
         MeasurePairMs([&] { standard.ReadMessage(1); }, [&] { oblivious.ReadMessage(1); },
                       /*batch=*/8, /*reps=*/25));
  std::string body(2048, 'b');
  AddRow(table, "Compose",
         MeasurePairMs([&] { standard.Compose("friend@example.org", "hello", body); },
                       [&] { oblivious.Compose("friend@example.org", "hello", body); },
                       /*batch=*/8, /*reps=*/25));
  AddRow(table, "Move",
         MeasurePairMs([&] { standard.MoveMessage(0, "saved"); },
                       [&] { oblivious.MoveMessage(0, "saved"); },
                       /*batch=*/1, /*reps=*/25));
  std::printf("%s", table.ToString().c_str());
  std::printf("Paper reported slowdowns: Read 6.9x, Compose 8.1x, Move 1.34x\n");
  std::printf("(interactive pause perceptibility threshold: ~100 ms)\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
