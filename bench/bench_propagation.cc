// §1.2: error propagation distances.
//
// "servers tend to have short error propagation distances — an error in the
//  computation for one request tends to have little or no effect on the
//  computation for subsequent requests."
//
// Method: run each Failure Oblivious server through a fixed stream of
// legitimate requests twice — once clean, once with an attack injected
// mid-stream — and count how many *subsequent* legitimate responses differ
// from the clean run. That count is the (data) error propagation distance.

#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/apache.h"
#include "src/apps/mutt.h"
#include "src/apps/pine.h"
#include "src/apps/sendmail.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/mail/message.h"
#include "src/net/imap.h"

namespace fob {
namespace {

size_t CountDivergence(const std::vector<std::string>& clean,
                       const std::vector<std::string>& attacked) {
  size_t diverged = 0;
  size_t n = std::min(clean.size(), attacked.size());
  for (size_t i = 0; i < n; ++i) {
    if (clean[i] != attacked[i]) {
      ++diverged;
    }
  }
  return diverged + (clean.size() > n ? clean.size() - n : attacked.size() - n);
}

std::vector<std::string> ApacheStream(bool with_attack) {
  Vfs docroot = MakeApacheDocroot();
  ApacheApp apache(AccessPolicy::kFailureOblivious, &docroot, ApacheApp::DefaultConfigText());
  std::vector<std::string> outputs;
  for (int i = 0; i < 40; ++i) {
    if (with_attack && i == 20) {
      apache.Handle(MakeHttpGet(MakeApacheAttackUrl()));  // not recorded
    }
    outputs.push_back(apache.Handle(MakeHttpGet("/index.html")).Serialize());
  }
  return outputs;
}

std::vector<std::string> SendmailStream(bool with_attack) {
  SendmailApp daemon(AccessPolicy::kFailureOblivious);
  std::vector<std::string> outputs;
  auto legit = MakeSendmailSession("user@localhost", 64);
  for (int i = 0; i < 40; ++i) {
    if (with_attack && i == 20) {
      daemon.HandleSession(MakeSendmailAttackSession());
    }
    std::string joined;
    for (const std::string& response : daemon.HandleSession(legit)) {
      joined += response + "\n";
    }
    outputs.push_back(joined);
  }
  return outputs;
}

std::vector<std::string> PineStream(bool with_attack) {
  // The attack lives in the mailbox; the "attacked" stream loads the
  // attack mailbox, the clean stream the same mailbox without the trigger
  // message's side effects — subsequent *request* outputs must agree for
  // the shared messages.
  PineApp pine(AccessPolicy::kFailureOblivious, MakePineMbox(20, with_attack));
  std::vector<std::string> outputs;
  for (int i = 0; i < 40; ++i) {
    // Read messages by stable identity (skip the injected attack message at
    // index 10 in the attacked run).
    size_t index = static_cast<size_t>(i) % 10;
    size_t adjusted = with_attack && index >= 10 ? index + 1 : index;
    outputs.push_back(pine.ReadMessage(adjusted).display);
  }
  return outputs;
}

std::vector<std::string> MuttStream(bool with_attack) {
  ImapServer imap;
  std::vector<MailMessage> inbox;
  for (int i = 0; i < 10; ++i) {
    inbox.push_back(MailMessage::Make("peer" + std::to_string(i) + "@x", "me@here",
                                      "subject " + std::to_string(i), "body\n"));
  }
  imap.AddFolderUtf8("INBOX", inbox);
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  std::vector<std::string> outputs;
  for (int i = 0; i < 40; ++i) {
    if (with_attack && i == 20) {
      mutt.OpenFolder(MakeMuttAttackFolderName());
    }
    outputs.push_back(mutt.ReadMessage("INBOX", 1 + static_cast<size_t>(i) % 10).display);
  }
  return outputs;
}

void Run() {
  std::printf("Section 1.2: data error propagation distance (requests diverging after attack)\n");
  Table table({"Server", "Requests compared", "Diverged after attack"});
  table.AddRow({"Apache", "40", std::to_string(CountDivergence(ApacheStream(false),
                                                               ApacheStream(true)))});
  table.AddRow({"Sendmail", "40", std::to_string(CountDivergence(SendmailStream(false),
                                                                 SendmailStream(true)))});
  table.AddRow({"Pine", "40", std::to_string(CountDivergence(PineStream(false),
                                                             PineStream(true)))});
  table.AddRow({"Mutt", "40", std::to_string(CountDivergence(MuttStream(false),
                                                             MuttStream(true)))});
  std::printf("%s", table.ToString().c_str());
  std::printf("Expected: 0 everywhere — discarding invalid writes confines the attack's\n"
              "effects to the request that carried it.\n");
}

}  // namespace
}  // namespace fob

int main() {
  fob::Run();
  return 0;
}
