#!/usr/bin/env bash
# Runs the perf-trajectory microbenchmarks and records their JSON output.
#
#   bench/run_bench.sh [build_dir] [out_dir]
#
# build_dir defaults to ./build (the tier-1 configure location), out_dir to
# the repository root. Produces:
#   BENCH_overhead.json    — checked-access primitives, Standard vs FO,
#                            byte loops vs cursor/span fast path
#   BENCH_span_path.json   — strcpy/memcpy/UTF-8 decode, byte loop vs span,
#                            under all seven policies
#   BENCH_check_cost.json  — access-resolution cost vs live-object
#                            population (Standard vs checked vs mixed
#                            spec), sequential + random axes, with
#                            page-map fast-path hit-rate counters; CI's
#                            perf-smoke gate (tools/check_perf_smoke.py)
#                            runs over this file
#   BENCH_boundless.json   — boundless OOB store scaling, flat byte-map vs
#                            paged store, on the dense-overflow /
#                            sparse-spray / unit-churn axes; the perf-smoke
#                            gate bounds the paged/flat ratio on the
#                            sparse-spray axis
#   BENCH_throughput.json  — parallel-Frontend serving throughput,
#                            requests/sec vs worker-thread count x batch
#                            size, per policy (FO vs Bounds Check vs
#                            Standard), with per-request p50/p99 latency
#                            counters; worker lanes run on the Frontend's
#                            persistent executor threads, and the
#                            pump-overhead pair (persistent vs legacy
#                            fork/join) plus the imbalanced-stream stealing
#                            pair ride along for the perf-smoke gate
#   BENCH_capacity.json    — workers-for-SLO capacity curves per policy,
#                            derived from BENCH_throughput.json by
#                            bench_capacity (rate/worker, crash rate,
#                            restart overhead, workers needed at 70%
#                            utilization per offered load)
#
# All files are google-benchmark JSON; compare runs with
# benchmark/tools/compare.py or by diffing real_time per benchmark name.
# Every file's "context" object records the machine's hardware concurrency
# (and, for the throughput bench, the worker-thread axis) so per-machine
# trajectory comparisons stay honest: a 1-core container cannot show
# multi-threaded scaling that a 4-core CI runner will.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"

if [[ ! -x "$build_dir/bench_overhead" ]]; then
  echo "bench binaries not found in $build_dir; configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

min_time="${BENCH_MIN_TIME:-0.05}"
hw_threads="$(nproc)"

run() {
  local binary="$1" out="$2"
  shift 2
  echo "== $binary -> $out"
  "$build_dir/$binary" \
    --benchmark_format=json \
    --benchmark_min_time="$min_time" \
    "$@" \
    >"$out_dir/$out"
}

run bench_overhead BENCH_overhead.json --benchmark_context=hardware_concurrency="$hw_threads"
run bench_span_path BENCH_span_path.json --benchmark_context=hardware_concurrency="$hw_threads"
run bench_check_cost BENCH_check_cost.json --benchmark_context=hardware_concurrency="$hw_threads"
run bench_boundless BENCH_boundless.json --benchmark_context=hardware_concurrency="$hw_threads"
# bench_frontend_throughput bakes worker_threads_axis + hardware_concurrency
# into its JSON context itself (see its main), so direct runs are covered too.
run bench_frontend_throughput BENCH_throughput.json

# Derive the capacity curves from the throughput run (plain binary, not a
# google-benchmark harness: it reads one JSON and writes another).
echo "== bench_capacity -> BENCH_capacity.json"
"$build_dir/bench_capacity" "$out_dir/BENCH_throughput.json" "$out_dir/BENCH_capacity.json"

echo "done; wrote $out_dir/BENCH_overhead.json, $out_dir/BENCH_span_path.json,"
echo "$out_dir/BENCH_check_cost.json, $out_dir/BENCH_boundless.json,"
echo "$out_dir/BENCH_throughput.json and $out_dir/BENCH_capacity.json"
