// Span fast path vs byte-at-a-time loops, per policy.
//
// Measures the tentpole claim of the handler/cursor refactor: a sequential
// workload that resolves its data unit once (AccessCursor / ReadSpan) should
// pay close to the Standard policy's per-access cost, while the same
// workload through per-byte Memory::ReadU8/WriteU8 pays the Jones-Kelly
// table search on every byte. Three representative loops: strcpy, memcpy,
// and UTF-8 decode. Arg(0) selects the policy (index into kAllPolicies);
// run_bench.sh folds the JSON output into the perf trajectory.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/codec/utf8.h"
#include "src/libc/cstring.h"
#include "src/runtime/access_cursor.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

constexpr size_t kLen = 2048;

AccessPolicy PolicyArg(const benchmark::State& state) {
  return kAllPolicies[static_cast<size_t>(state.range(0))];
}

void SetPolicyLabel(benchmark::State& state) {
  state.SetLabel(PolicyName(PolicyArg(state)));
}

std::string MakeAscii() { return std::string(kLen - 1, 'a'); }

// Multi-byte-heavy input: alternating ASCII and 3-byte CJK-style sequences.
std::string MakeUtf8() {
  std::string out;
  while (out.size() + 4 < kLen) {
    out += "x\xe6\x97\xa5";
  }
  return out;
}

// The pre-refactor client idiom: one checked access per byte.
void BM_StrCpyByteLoop(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr src = memory.NewCString(MakeAscii(), "src");
  Ptr dst = memory.Malloc(kLen, "dst");
  for (auto _ : state) {
    for (int64_t i = 0;; ++i) {
      uint8_t c = memory.ReadU8(src + i);
      memory.WriteU8(dst + i, c);
      if (c == 0) {
        break;
      }
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}
BENCHMARK(BM_StrCpyByteLoop)->DenseRange(0, 6);

void BM_StrCpySpanPath(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr src = memory.NewCString(MakeAscii(), "src");
  Ptr dst = memory.Malloc(kLen, "dst");
  for (auto _ : state) {
    StrCpy(memory, dst, src);  // cursor-based since the refactor
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}
BENCHMARK(BM_StrCpySpanPath)->DenseRange(0, 6);

void BM_MemCpyByteLoop(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr src = memory.Malloc(kLen, "src");
  Ptr dst = memory.Malloc(kLen, "dst");
  for (auto _ : state) {
    for (size_t i = 0; i < kLen; ++i) {
      memory.WriteU8(dst + static_cast<int64_t>(i),
                     memory.ReadU8(src + static_cast<int64_t>(i)));
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}
BENCHMARK(BM_MemCpyByteLoop)->DenseRange(0, 6);

void BM_MemCpySpanPath(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  Ptr src = memory.Malloc(kLen, "src");
  Ptr dst = memory.Malloc(kLen, "dst");
  uint8_t staged[kLen];
  for (auto _ : state) {
    memory.ReadSpan(src, staged, kLen);
    memory.WriteSpan(dst, staged, kLen);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}
BENCHMARK(BM_MemCpySpanPath)->DenseRange(0, 6);

// Per-byte UTF-8 decode, the shape of the Figure 1 loop.
void BM_Utf8DecodeByteLoop(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  std::string text = MakeUtf8();
  Ptr buf = memory.NewBytes(text, "utf8");
  uint64_t sink = 0;
  for (auto _ : state) {
    size_t i = 0;
    while (i < text.size()) {
      uint8_t c = memory.ReadU8(buf + static_cast<int64_t>(i));
      uint32_t ch;
      int n;
      if (c < 0x80) {
        ch = c;
        n = 0;
      } else if (c < 0xe0) {
        ch = c & 0x1f;
        n = 1;
      } else if (c < 0xf0) {
        ch = c & 0x0f;
        n = 2;
      } else {
        ch = c & 0x07;
        n = 3;
      }
      ++i;
      for (int k = 0; k < n && i < text.size(); ++k, ++i) {
        ch = (ch << 6) | (memory.ReadU8(buf + static_cast<int64_t>(i)) & 0x3f);
      }
      sink += ch;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Utf8DecodeByteLoop)->DenseRange(0, 6);

void BM_Utf8DecodeSpanPath(benchmark::State& state) {
  Memory memory(PolicyArg(state));
  SetPolicyLabel(state);
  std::string text = MakeUtf8();
  Ptr buf = memory.NewBytes(text, "utf8");
  uint64_t sink = 0;
  for (auto _ : state) {
    AccessCursor cursor(memory);
    size_t i = 0;
    while (i < text.size()) {
      auto cp = Utf8DecodeNext(cursor, buf, text.size(), i);
      if (!cp) {
        break;
      }
      sink += *cp;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Utf8DecodeSpanPath)->DenseRange(0, 6);

}  // namespace
}  // namespace fob

BENCHMARK_MAIN();
