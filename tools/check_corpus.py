#!/usr/bin/env python3
"""Structural validator for the checked-in fuzz corpus (tests/corpus/).

Walks every per-server corpus directory and checks the invariants the
replay test assumes before it ever runs a request:

  - MANIFEST.tsv parses: four tab-separated fields per non-comment line
    (<file> <seed> <generation> <0xsite,...>), decimal seed/generation,
    hex site ids with an 0x prefix, no 0x0 (the invalid site id), at least
    one site per case.
  - Every manifest entry's case file exists, is exactly one line, and that
    line is a well-formed wire request (REQ, 10 tab fields).
  - Every case_*.req file is covered by a manifest entry (no orphans: an
    unlisted case is a case CI silently stopped replaying).
  - File names stay within the corpus directory (no separators, no '..').

This is the cheap static half of the corpus contract; the dynamic half
(recorded sites still fire) is tests/test_corpus_replay.cc.

Usage: tools/check_corpus.py [corpus_root]   (default: tests/corpus)
Exit status: 0 corpus is structurally sound; 1 an invariant is violated;
2 the corpus root is missing or unreadable (config error, never a
traceback).
"""

import os
import sys

REQUEST_FIELDS = 10


def parse_manifest_line(line):
    """Returns (file, seed, generation, [site, ...]) or an error string."""
    fields = line.split("\t")
    if len(fields) != 4:
        return "expected 4 tab-separated fields, got %d" % len(fields)
    name, seed, generation, sites = fields
    if not name:
        return "empty case file name"
    if "/" in name or "\\" in name or ".." in name:
        return "case file name '%s' escapes the corpus directory" % name
    if not seed.isdigit():
        return "seed '%s' is not a decimal integer" % seed
    if not generation.isdigit():
        return "generation '%s' is not a decimal integer" % generation
    if not sites:
        return "empty site list"
    parsed = []
    for token in sites.split(","):
        if not token.startswith(("0x", "0X")) or len(token) <= 2:
            return "site '%s' lacks the 0x prefix" % token
        try:
            value = int(token[2:], 16)
        except ValueError:
            return "site '%s' is not hex" % token
        if value == 0:
            return "site 0x0 is the invalid site id"
        parsed.append(value)
    return (name, int(seed), int(generation), parsed)


def check_case_file(path):
    """Returns None if the case file holds exactly one wire request."""
    try:
        with open(path, encoding="utf-8", errors="surrogateescape") as f:
            lines = f.read().split("\n")
    except OSError as err:
        return "unreadable: %s" % err
    # A trailing newline yields one empty trailing element; anything more is
    # a multi-line case the replayer would silently truncate.
    if len(lines) < 1 or (len(lines) > 2 or (len(lines) == 2 and lines[1] != "")):
        return "expected exactly one line"
    wire = lines[0]
    fields = wire.split("\t")
    if len(fields) != REQUEST_FIELDS or fields[0] != "REQ":
        return "not a wire request (want %d tab fields starting with REQ)" % REQUEST_FIELDS
    return None


def check_server_dir(dir_path):
    """Validates one per-server corpus directory. Returns a list of errors."""
    errors = []
    manifest_path = os.path.join(dir_path, "MANIFEST.tsv")
    if not os.path.isfile(manifest_path):
        return ["%s: missing MANIFEST.tsv" % dir_path]
    listed = set()
    with open(manifest_path, encoding="utf-8") as f:
        for number, raw in enumerate(f, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parsed = parse_manifest_line(line)
            if isinstance(parsed, str):
                errors.append("%s:%d: %s" % (manifest_path, number, parsed))
                continue
            name = parsed[0]
            if name in listed:
                errors.append("%s:%d: duplicate entry for %s" % (manifest_path, number, name))
            listed.add(name)
            case_error = check_case_file(os.path.join(dir_path, name))
            if case_error:
                errors.append("%s: %s" % (os.path.join(dir_path, name), case_error))
    for entry in sorted(os.listdir(dir_path)):
        if entry.endswith(".req") and entry not in listed:
            errors.append("%s: orphan case file (not in MANIFEST.tsv)" %
                          os.path.join(dir_path, entry))
    if not listed and not errors:
        errors.append("%s: manifest lists no cases" % manifest_path)
    return errors


def main(argv):
    root = argv[1] if len(argv) > 1 else "tests/corpus"
    if not os.path.isdir(root):
        print("check_corpus: corpus root '%s' is not a directory" % root, file=sys.stderr)
        return 2
    server_dirs = [
        os.path.join(root, entry)
        for entry in sorted(os.listdir(root))
        if os.path.isdir(os.path.join(root, entry))
    ]
    if not server_dirs:
        print("check_corpus: no per-server directories under '%s'" % root, file=sys.stderr)
        return 2
    errors = []
    cases = 0
    for dir_path in server_dirs:
        dir_errors = check_server_dir(dir_path)
        errors.extend(dir_errors)
        if not dir_errors:
            with open(os.path.join(dir_path, "MANIFEST.tsv"), encoding="utf-8") as f:
                cases += sum(1 for line in f if line.strip() and not line.startswith("#"))
    for error in errors:
        print("check_corpus: %s" % error, file=sys.stderr)
    if errors:
        return 1
    print("check_corpus: %d case(s) across %d server(s) — OK" % (cases, len(server_dirs)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
