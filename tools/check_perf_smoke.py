#!/usr/bin/env python3
"""Perf-smoke gate over the perf-trajectory benchmark JSON files.

Over BENCH_check_cost.json: pairs each checked benchmark
(BM_CheckCost*FailureOblivious*) with its raw counterpart (same name with
Standard in place of FailureOblivious, same args) and fails if the
checked/raw slowdown exceeds --max-ratio. With the page-granular fast path
in place, checked scalar reads should sit within a small constant of raw
ones on the fast-path regimes; a ratio past the bound means the fast path
regressed (map incoherence, a miss-everything bug, or a slow tier leak into
the hot loop).

The slow-tier pin (BM_ResidentProbe*) is deliberately named outside the
pairing: mixed-page probes are allowed to scale with the table.

With --boundless BENCH_boundless.json: additionally pairs each
BM_BoundlessSparseSprayPaged/N with BM_BoundlessSparseSprayFlat/N and fails
if the paged store exceeds --max-boundless-ratio times the flat baseline on
that axis. The paged store's whole point is to beat the flat byte-map on
sprayed stores; paged/flat drifting past the bound means a paged-store
regression (per-byte work crept back into the span path, or page
materialization got pathological).

With --throughput BENCH_throughput.json: additionally gates pump dispatch
overhead — BM_FrontendPumpOverheadPersistent (the parked persistent-
executor path) must beat BM_FrontendPumpOverheadLegacy (fork/join a thread
per lane per pump) by at least --min-pump-speedup on the small-batch
8-worker round-trip regime. The pair is only meaningful with real
parallelism, so when the report's context says hardware_concurrency <= 1
the gate is skipped (a 1-core container cannot show it; a multi-core CI
runner must).

Usage: tools/check_perf_smoke.py [BENCH_check_cost.json] [--max-ratio 6.0]
           [--boundless BENCH_boundless.json] [--max-boundless-ratio 2.0]
           [--throughput BENCH_throughput.json] [--min-pump-speedup 1.3]
Exit status: 0 all pairs within their bounds; 1 a pair exceeded its bound
or no pairs were found (a vacuous gate is a failing gate); 2 an input file
is missing or not a benchmark JSON report (config error, never a
traceback).
"""

import argparse
import json
import sys


def per_item_ns(entry):
    """Nanoseconds per processed item, from items_per_second."""
    ips = entry.get("items_per_second")
    if isinstance(ips, (int, float)) and ips > 0:
        return 1e9 / ips
    return None


def load_runs(json_path):
    """(runs, context): real benchmark runs (no aggregates) keyed by full
    name plus the report's context object, or an int exit status on config
    error."""
    try:
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    except OSError as err:
        print(f"error: cannot read {json_path}: {err.strerror or err}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as err:
        print(f"error: {json_path} is not valid JSON: {err}", file=sys.stderr)
        return 2

    benchmarks = report.get("benchmarks") if isinstance(report, dict) else None
    if not isinstance(benchmarks, list):
        print(f"error: {json_path} has no 'benchmarks' array "
              "(not a google-benchmark JSON report?)", file=sys.stderr)
        return 2

    context = report.get("context") if isinstance(report.get("context"), dict) else {}
    runs = {}
    for entry in benchmarks:
        if not isinstance(entry, dict) or "name" not in entry:
            continue
        if entry.get("run_type", "iteration") != "iteration":
            continue
        ns = per_item_ns(entry)
        if ns is not None:
            runs[entry["name"]] = (ns, entry)
    return runs, context


def hardware_concurrency(context):
    """The report's recorded core count, or None when absent/garbled."""
    value = context.get("hardware_concurrency")
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


def check_pairs(runs, select, to_baseline, max_ratio, what):
    """Generic paired gate: each selected run vs its baseline counterpart.

    Returns (pairs, failures): the number of pairs checked and the list of
    (name, ratio) pairs over the bound.
    """
    failures = []
    pairs = 0
    for name, (test_ns, entry) in sorted(runs.items()):
        if not select(name):
            continue
        base_name = to_baseline(name)
        if base_name not in runs:
            print(f"warning: no {what} baseline for {name}", file=sys.stderr)
            continue
        base_ns = runs[base_name][0]
        ratio = test_ns / base_ns if base_ns > 0 else float("inf")
        pairs += 1
        hit_rate = entry.get("hit_rate")
        hit = f", hit_rate {hit_rate:.3f}" if hit_rate is not None else ""
        verdict = "ok" if ratio <= max_ratio else "FAIL"
        print(f"{verdict}: {name}: {test_ns:.1f} ns vs {base_name} {base_ns:.1f} ns "
              f"-> {ratio:.2f}x (bound {max_ratio:g}x{hit})")
        if ratio > max_ratio:
            failures.append((name, ratio))
    return pairs, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", nargs="?", default="BENCH_check_cost.json")
    parser.add_argument("--max-ratio", type=float, default=6.0,
                        help="maximum allowed checked/raw per-item time ratio")
    parser.add_argument("--boundless", metavar="BENCH_boundless.json", default=None,
                        help="also gate the paged/flat boundless sparse-spray pairs "
                             "from this report")
    parser.add_argument("--max-boundless-ratio", type=float, default=2.0,
                        help="maximum allowed paged/flat per-byte time ratio on the "
                             "sparse-spray axis")
    parser.add_argument("--throughput", metavar="BENCH_throughput.json", default=None,
                        help="also gate the persistent-executor vs legacy fork/join "
                             "pump-overhead pair from this report")
    parser.add_argument("--min-pump-speedup", type=float, default=1.3,
                        help="minimum persistent-over-legacy pump speedup on "
                             "multi-core machines (skipped at hardware_concurrency<=1)")
    args = parser.parse_args()

    loaded = load_runs(args.json_path)
    if isinstance(loaded, int):
        return loaded
    runs, _ = loaded

    pairs, failures = check_pairs(
        runs,
        select=lambda n: n.startswith("BM_CheckCost") and "FailureOblivious" in n,
        to_baseline=lambda n: n.replace("FailureOblivious", "Standard"),
        max_ratio=args.max_ratio,
        what="raw")

    if args.boundless is not None:
        loaded = load_runs(args.boundless)
        if isinstance(loaded, int):
            return loaded
        boundless_runs, _ = loaded
        spray_pairs, spray_failures = check_pairs(
            boundless_runs,
            select=lambda n: n.startswith("BM_BoundlessSparseSprayPaged"),
            to_baseline=lambda n: n.replace("SparseSprayPaged", "SparseSprayFlat"),
            max_ratio=args.max_boundless_ratio,
            what="flat-store")
        pairs += spray_pairs
        failures += spray_failures
        if spray_pairs == 0:
            print("error: no paged/flat sparse-spray pairs found; boundless gate is vacuous",
                  file=sys.stderr)
            return 1

    if args.throughput is not None:
        loaded = load_runs(args.throughput)
        if isinstance(loaded, int):
            return loaded
        throughput_runs, context = loaded
        cores = hardware_concurrency(context)
        if cores is not None and cores <= 1:
            # One core cannot overlap lanes: fork/join vs parked threads is
            # pure scheduler noise there, so the gate would only flake.
            print(f"skip: pump-overhead gate (hardware_concurrency={cores}; "
                  "pair needs real parallelism)")
        else:
            # persistent/legacy per-item time <= 1/speedup <=> persistent is
            # at least `speedup` times faster.
            pump_pairs, pump_failures = check_pairs(
                throughput_runs,
                select=lambda n: n.startswith("BM_FrontendPumpOverheadPersistent"),
                to_baseline=lambda n: n.replace("Persistent", "Legacy"),
                max_ratio=1.0 / args.min_pump_speedup,
                what="legacy fork/join")
            pairs += pump_pairs
            failures += pump_failures
            if pump_pairs == 0:
                print("error: no persistent/legacy pump-overhead pair found; "
                      "pump gate is vacuous", file=sys.stderr)
                return 1

    if pairs == 0:
        print("error: no checked/raw benchmark pairs found; gate is vacuous", file=sys.stderr)
        return 1
    if failures:
        print(f"\nperf smoke FAILED: {len(failures)} pair(s) over bound", file=sys.stderr)
        return 1
    print(f"\nperf smoke ok: {pairs} pair(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
