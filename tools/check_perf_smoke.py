#!/usr/bin/env python3
"""Perf-smoke gate over BENCH_check_cost.json.

Pairs each checked benchmark (BM_CheckCost*FailureOblivious*) with its raw
counterpart (same name with Standard in place of FailureOblivious, same
args) and fails if the checked/raw slowdown exceeds the bound. With the
page-granular fast path in place, checked scalar reads should sit within a
small constant of raw ones on the fast-path regimes; a ratio past the bound
means the fast path regressed (map incoherence, a miss-everything bug, or a
slow tier leak into the hot loop).

The slow-tier pin (BM_ResidentProbe*) is deliberately named outside the
pairing: mixed-page probes are allowed to scale with the table.

Usage: tools/check_perf_smoke.py [BENCH_check_cost.json] [--max-ratio 6.0]
Exit status: 0 all pairs within the bound; 1 a pair exceeded it or no
pairs were found (a vacuous gate is a failing gate); 2 the input file is
missing or not a benchmark JSON report (config error, never a traceback).
"""

import argparse
import json
import sys


def per_item_ns(entry):
    """Nanoseconds per processed item, from items_per_second."""
    ips = entry.get("items_per_second")
    if isinstance(ips, (int, float)) and ips > 0:
        return 1e9 / ips
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", nargs="?", default="BENCH_check_cost.json")
    parser.add_argument("--max-ratio", type=float, default=6.0,
                        help="maximum allowed checked/raw per-item time ratio")
    args = parser.parse_args()

    try:
        with open(args.json_path, encoding="utf-8") as f:
            report = json.load(f)
    except OSError as err:
        print(f"error: cannot read {args.json_path}: {err.strerror or err}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as err:
        print(f"error: {args.json_path} is not valid JSON: {err}", file=sys.stderr)
        return 2

    benchmarks = report.get("benchmarks") if isinstance(report, dict) else None
    if not isinstance(benchmarks, list):
        print(f"error: {args.json_path} has no 'benchmarks' array "
              "(not a google-benchmark JSON report?)", file=sys.stderr)
        return 2

    # Real runs only (no aggregates), keyed by full name including args.
    runs = {}
    for entry in benchmarks:
        if not isinstance(entry, dict) or "name" not in entry:
            continue
        if entry.get("run_type", "iteration") != "iteration":
            continue
        ns = per_item_ns(entry)
        if ns is not None:
            runs[entry["name"]] = (ns, entry)

    failures = []
    pairs = 0
    for name, (checked_ns, entry) in sorted(runs.items()):
        if "FailureOblivious" not in name or not name.startswith("BM_CheckCost"):
            continue
        raw_name = name.replace("FailureOblivious", "Standard")
        if raw_name not in runs:
            print(f"warning: no raw counterpart for {name}", file=sys.stderr)
            continue
        raw_ns = runs[raw_name][0]
        ratio = checked_ns / raw_ns if raw_ns > 0 else float("inf")
        pairs += 1
        hit_rate = entry.get("hit_rate")
        hit = f", hit_rate {hit_rate:.3f}" if hit_rate is not None else ""
        verdict = "ok" if ratio <= args.max_ratio else "FAIL"
        print(f"{verdict}: {name}: checked {checked_ns:.1f} ns vs raw {raw_ns:.1f} ns "
              f"-> {ratio:.2f}x (bound {args.max_ratio:g}x{hit})")
        if ratio > args.max_ratio:
            failures.append((name, ratio))

    if pairs == 0:
        print("error: no checked/raw benchmark pairs found; gate is vacuous", file=sys.stderr)
        return 1
    if failures:
        print(f"\nperf smoke FAILED: {len(failures)} pair(s) over {args.max_ratio:g}x",
              file=sys.stderr)
        return 1
    print(f"\nperf smoke ok: {pairs} pair(s) within {args.max_ratio:g}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
