"""Pass 3 — static site-universe extraction.

A SiteId (src/runtime/policy_spec.h) is FNV-1a over (unit name, frame
function, access kind). The sweep and the adaptive learner search over the
sites a *workload happens to exercise*; until now the universe of
statically constructible sites was unknown, so "exhaustive exploration" had
no denominator. This pass enumerates it:

  frame functions   string literals bound by `Memory::Frame f(mem, "...")`
                    plus the runtime's "<no frame>" (empty stack);
  unit names        heap/global names: the name-position literal of
                    Malloc / NewCString / NewBytes / AllocGlobal calls and
                    their documented defaults ("alloc", "cstring", "bytes",
                    "global"); stack locals registered by Frame::Local get
                    frame-qualified names ("<frame>::<local>", default
                    local name "local") exactly as src/softmem/stack.cc
                    builds them; plus "" — the null unit a wild pointer
                    resolves to;
  access kinds      read, write.

Name arguments that are not literals are resolved one call level deep:
when a function forwards one of its parameters into an allocator's name
position (PopulateResidentHeap, StrDup), its call sites contribute their
literal at that position. Anything still unresolved is reported in the
JSON (`unresolved`) rather than silently dropped — the denominator must
not be quietly wrong.

The universe is the cross product units x frames x kinds: a sound
over-approximation (every dynamically observable site is statically
constructible; which pairs actually co-occur is a dynamic property). The
companion check mode verifies the dynamic direction: every site a real run
observed must be in the static universe — a "phantom site" means the
extractor missed a name source and the denominator is wrong.

The emitted SITES_static.json carries ids as hex strings ("0x%016x"):
SiteIds use all 64 bits and JSON numbers do not survive a double
round-trip up there.
"""

from __future__ import annotations

import json

from cpp_lexer import IDENT, PUNCT, STRING, string_value
from frontend import Violation, iter_calls, split_call_args

PASS_NAME = "site-universe"

# Allocator -> (name argument index, default name) from the Memory API
# declarations in src/runtime/memory.h.
_ALLOCATORS = {
    "Malloc": (1, "alloc"),
    "NewCString": (1, "cstring"),
    "NewBytes": (1, "bytes"),
    "AllocGlobal": (1, "global"),
}
_LOCAL_DEFAULT = "local"
_NO_FRAME = "<no frame>"

_FNV_OFFSET = 14695981039346656037
_FNV_PRIME = 1099511628211
_MASK = (1 << 64) - 1


def make_site_id(unit_name: str, function: str, kind: str) -> int:
    """Replicates fob::MakeSiteId (src/runtime/policy_spec.cc) bit-for-bit;
    pinned against the C++ side by tests/test_site_coverage.cc."""
    h = _FNV_OFFSET
    for b in unit_name.encode():
        h = ((h ^ b) * _FNV_PRIME) & _MASK
    h = ((h ^ 0xFF) * _FNV_PRIME) & _MASK
    for b in function.encode():
        h = ((h ^ b) * _FNV_PRIME) & _MASK
    kind_byte = {"read": 1, "write": 2}[kind]
    h = ((h ^ kind_byte) * _FNV_PRIME) & _MASK
    return h if h != 0 else 1


def _single_string(arg_tokens):
    if len(arg_tokens) == 1 and arg_tokens[0].kind == STRING:
        return string_value(arg_tokens[0])
    return None


def _single_ident(arg_tokens):
    """The identifier of a bare-name or std::move(name) argument."""
    idents = [t for t in arg_tokens if t.kind == IDENT and t.text not in {"std", "move"}]
    if len(idents) == 1:
        return idents[0].text
    return None


def _param_index(src, func_short_name: str, param: str):
    """Index of `param` in the parameter list of `func_short_name`'s
    definition within `src` (first match wins)."""
    for i, args in iter_calls(src, func_short_name):
        if not src.in_function(i):  # a definition/declaration head
            for idx, arg in enumerate(args):
                if any(t.kind == IDENT and t.text == param for t in arg):
                    return idx
    return None


class Universe:
    def __init__(self):
        self.unit_names = {""}
        self.frames = {_NO_FRAME}
        self.unresolved = []
        # forwarders: callee short name -> name-argument index
        self.forwarders = {}

    def sites(self):
        out = []
        for unit in sorted(self.unit_names):
            for frame in sorted(self.frames):
                for kind in ("read", "write"):
                    out.append({
                        "id": f"0x{make_site_id(unit, frame, kind):016x}",
                        "unit": unit,
                        "frame": frame,
                        "kind": kind,
                    })
        return out

    def to_json(self):
        return {
            "schema": 1,
            "generated_by": "fob_analyze pass 3 (site-universe)",
            # Scalar counts first: the C++ loader (src/harness/site_coverage)
            # reads these without a full JSON parser.
            "unit_count": len(self.unit_names),
            "frame_count": len(self.frames),
            "units": sorted(self.unit_names),
            "frames": sorted(self.frames),
            "unresolved": self.unresolved,
            "sites": self.sites(),
        }


def _scan_frames_and_locals(src, universe):
    """`Memory::Frame f(mem, "name")` declarations and `f.Local(n, "name")`
    calls; Local units are frame-qualified like stack.cc registers them."""
    tokens = src.tokens
    frame_vars = {}  # var name -> frame literal, in lexical order
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind == IDENT and tok.text == "Frame":
            # Memory::Frame <var>( <mem> , "name" )
            if i + 2 < n and tokens[i + 1].kind == IDENT \
                    and tokens[i + 2].kind == PUNCT and tokens[i + 2].text == "(":
                args, _ = split_call_args(tokens, i + 2)
                if len(args) == 2:
                    name = _single_string(args[1])
                    if name is not None:
                        universe.frames.add(name)
                        frame_vars[tokens[i + 1].text] = name
                    else:
                        universe.unresolved.append({
                            "file": src.path, "line": tok.line,
                            "what": "frame name",
                            "expr": " ".join(t.text for t in args[1]),
                        })
        if tok.kind == IDENT and tok.text == "Local":
            if i >= 2 and tokens[i - 1].kind == PUNCT and tokens[i - 1].text == "." \
                    and tokens[i - 2].kind == IDENT \
                    and i + 1 < n and tokens[i + 1].kind == PUNCT and tokens[i + 1].text == "(":
                var = tokens[i - 2].text
                args, _ = split_call_args(tokens, i + 1)
                local_name = _LOCAL_DEFAULT
                if len(args) >= 2:
                    lit = _single_string(args[1])
                    if lit is None:
                        universe.unresolved.append({
                            "file": src.path, "line": tok.line,
                            "what": "local name",
                            "expr": " ".join(t.text for t in args[1]),
                        })
                        continue
                    local_name = lit
                frames = [frame_vars[var]] if var in frame_vars else sorted(universe.frames)
                if var not in frame_vars:
                    universe.unresolved.append({
                        "file": src.path, "line": tok.line,
                        "what": "frame variable (over-approximated to all frames)",
                        "expr": var,
                    })
                for frame in frames:
                    universe.unit_names.add(f"{frame}::{local_name}")


def _scan_allocators(frontend, src, universe, allocators):
    for callee, (name_idx, default) in allocators.items():
        for i, args in iter_calls(src, callee):
            if not src.in_function(i):
                continue  # declaration / definition head, not a call
            universe.unit_names.add(default)
            if len(args) <= name_idx:
                continue
            lit = _single_string(args[name_idx])
            if lit is not None:
                universe.unit_names.add(lit)
                continue
            param = _single_ident(args[name_idx])
            enclosing = src.enclosing_function(i).split("::")[-1]
            idx = _param_index(src, enclosing, param) if param and enclosing else None
            if idx is not None:
                universe.forwarders.setdefault(enclosing, idx)
            else:
                universe.unresolved.append({
                    "file": src.path, "line": src.tokens[i].line,
                    "what": f"{callee} name",
                    "expr": " ".join(t.text for t in args[name_idx]),
                })


def extract(frontend, files=None):
    universe = Universe()
    paths = files if files is not None else frontend.files
    for path in paths:
        src = frontend.source(path)
        _scan_frames_and_locals(src, universe)
        _scan_allocators(frontend, src, universe, _ALLOCATORS)
    # One level of name forwarding: literals at the forwarded position of
    # the forwarder's call sites.
    if universe.forwarders:
        forwarded = {name: (idx, None) for name, idx in universe.forwarders.items()
                     if name not in _ALLOCATORS}
        for path in paths:
            src = frontend.source(path)
            for callee, (idx, _default) in forwarded.items():
                for i, args in iter_calls(src, callee):
                    if not src.in_function(i) or len(args) <= idx:
                        continue
                    lit = _single_string(args[idx])
                    if lit is not None:
                        universe.unit_names.add(lit)
    return universe


def check_dynamic(universe_json, dynamic_json, dynamic_path):
    """Verifies every dynamically observed site is in the static universe.
    Returns Violations for phantom sites."""
    static_ids = {site["id"] for site in universe_json["sites"]}
    out = []
    for site in dynamic_json.get("sites", []):
        if site["id"] not in static_ids:
            label = f"{site.get('kind', '?')} {site.get('unit', '?')} @ {site.get('frame', '?')}"
            out.append(Violation(
                PASS_NAME, "phantom-site", dynamic_path, 0,
                f"dynamically observed site {site['id']} ({label}) is not in "
                "the static universe — the extractor missed a name source",
                site["id"]))
    return out


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)
