#!/usr/bin/env python3
"""fob-analyze — static-analysis suite for the failure-oblivious runtime.

Three passes prove the conventions the reproduction's claims rest on
(docs/STATIC_ANALYSIS.md):

  access-escape    every simulated-memory access in the app layer routes
                   through Memory::Read/Write/*Span or AccessCursor — the
                   static analogue of the paper's compiler-inserted checks;
  shard-isolation  no mutable namespace-scope / static-local / class-static
                   state in src/{softmem,runtime,net,apps}, and no symbol
                   in a writable data section of the built archive — the
                   PR 4 "N workers, N disjoint shards" claim as a proved
                   build-time property;
  site-universe    every statically constructible SiteId, emitted to
                   SITES_static.json so sweep/adaptive coverage has an
                   honest denominator; --check-dynamic verifies an observed
                   site dump is a subset (no phantom sites).

Exit status: 0 clean, 1 violations (or a stale allowlist), 2 usage/config
error.

Typical invocations:
  python3 tools/fob_analyze/fob_analyze.py                      # all passes
  python3 tools/fob_analyze/fob_analyze.py --passes shard-isolation \
      --objects build/libfob.a
  python3 tools/fob_analyze/fob_analyze.py --sites-out SITES_static.json \
      --check-dynamic SITES_dynamic.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import access_escape  # noqa: E402
import shard_isolation  # noqa: E402
import site_universe  # noqa: E402
from allowlist import Allowlist, partition  # noqa: E402
from frontend import HAVE_LIBCLANG, Frontend  # noqa: E402

PASSES = ("access-escape", "shard-isolation", "site-universe")


def parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="fob_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo", default=None,
                        help="repository root (default: two levels up from this file)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json export (default: build/compile_commands.json "
                             "when present; headers are always discovered from src/)")
    parser.add_argument("--passes", default="all",
                        help=f"comma-separated subset of {','.join(PASSES)} (default all)")
    parser.add_argument("--objects", default=None,
                        help="built archive for the writable-data-section scan "
                             "(default: <repo>/build/libfob.a)")
    parser.add_argument("--no-objects", action="store_true",
                        help="skip the nm scan (source-only shard-isolation)")
    parser.add_argument("--require-objects", action="store_true",
                        help="fail (exit 2) if the nm scan cannot run — CI mode")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist JSON (default: allowlist.json next to this script)")
    parser.add_argument("--sites-out", default=None, metavar="SITES_static.json",
                        help="write the static site universe JSON here")
    parser.add_argument("--check-dynamic", default=None, metavar="DYNAMIC.json",
                        help="verify a dynamic site dump (bench_sweep sites mode) is a "
                             "subset of the static universe")
    parser.add_argument("--json", dest="json_out", default=None, metavar="REPORT.json",
                        help="write the machine-readable violation report here")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.passes == "all":
        args.pass_list = list(PASSES)
    else:
        args.pass_list = [p.strip() for p in args.passes.split(",") if p.strip()]
        unknown = [p for p in args.pass_list if p not in PASSES]
        if unknown:
            parser.error(f"unknown pass(es): {', '.join(unknown)}")
    return args


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.abspath(args.repo or os.path.join(here, "..", ".."))
    if not os.path.isdir(os.path.join(repo, "src")):
        print(f"fob_analyze: {repo} has no src/ directory", file=sys.stderr)
        return 2

    frontend = Frontend(repo, args.compile_commands)
    allowlist = Allowlist.load(args.allowlist or os.path.join(here, "allowlist.json"))

    say = (lambda *a, **k: None) if args.quiet else print
    say(f"fob_analyze: {len(frontend.files)} files "
        f"({'libclang available' if HAVE_LIBCLANG else 'token front end; no libclang on this toolchain'})")

    all_violations = []
    notes = []
    config_errors = []

    if "access-escape" in args.pass_list:
        all_violations += access_escape.run(frontend)

    if "shard-isolation" in args.pass_list:
        objects = None
        if not args.no_objects:
            objects = args.objects or os.path.join(repo, "build", "libfob.a")
        violations, nm_error = shard_isolation.run(frontend, objects)
        all_violations += violations
        if nm_error:
            if args.require_objects:
                config_errors.append(f"shard-isolation object scan: {nm_error}")
            else:
                notes.append(f"shard-isolation object scan skipped: {nm_error}")

    universe = None
    if "site-universe" in args.pass_list:
        universe = site_universe.extract(frontend)
        universe_json = universe.to_json()
        if args.sites_out:
            with open(args.sites_out, "w", encoding="utf-8") as f:
                json.dump(universe_json, f, indent=1)
            say(f"fob_analyze: wrote {args.sites_out}: "
                f"{len(universe_json['sites'])} sites "
                f"({len(universe_json['units'])} units x "
                f"{len(universe_json['frames'])} frames x 2 kinds)")
        for item in universe_json["unresolved"]:
            notes.append(
                f"site-universe: unresolved {item['what']} at "
                f"{item['file']}:{item['line']} ({item['expr']})")
        if args.check_dynamic:
            try:
                dynamic = site_universe.load_json(args.check_dynamic)
            except (OSError, json.JSONDecodeError) as err:
                config_errors.append(f"unreadable dynamic site dump: {err}")
            else:
                all_violations += site_universe.check_dynamic(
                    universe_json, dynamic, args.check_dynamic)

    reported, suppressed = partition(all_violations, allowlist)
    stale = allowlist.stale_entries()

    for violation in reported:
        print(violation.render())
    for note in notes:
        say(f"note: {note}")
    for entry in stale:
        print(f"stale allowlist entry (nothing matches it — delete it): "
              f"{entry['rule']} {entry['file']} ({entry.get('snippet', '*')})",
              file=sys.stderr)
    for err in config_errors:
        print(f"fob_analyze: config error: {err}", file=sys.stderr)

    if args.json_out:
        report = {
            "passes": args.pass_list,
            "violations": [vars(v) for v in reported],
            "suppressed": [vars(v) for v in suppressed],
            "stale_allowlist_entries": stale,
            "notes": notes,
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=1)

    by_pass = {}
    for v in reported:
        by_pass[v.pass_name] = by_pass.get(v.pass_name, 0) + 1
    summary = ", ".join(f"{p}: {by_pass.get(p, 0)}" for p in args.pass_list)
    say(f"fob_analyze: {len(reported)} violation(s) [{summary}], "
        f"{len(suppressed)} suppressed by allowlist, {len(stale)} stale entries")

    if config_errors:
        return 2
    return 1 if reported or stale else 0


if __name__ == "__main__":
    sys.exit(main())
