"""Pass 1 — access-escape analyzer.

The paper's safety argument assumes the compiler inserted a check at every
memory access. In this reproduction the "compiled" code is the app layer
(src/{apps,libc,codec,mail,regex,archive,vfs}), and the check insertion is
the convention that all simulated-memory access routes through
Memory::Read/Write/ReadSpan/WriteSpan (and their typed wrappers) or an
AccessCursor. This pass turns the convention into a machine-checked
invariant by flagging, in every *mediated* boundary file (one that names
Memory / Ptr / AccessCursor and therefore handles simulated memory):

  backing-introspection  calls that reach the shard's backing storage or
                         internals (.space()/.shard()/.heap()/.stack()/
                         .objects()/.oob()/.boundless()/.sequence(),
                         Translate(...)) — the only routes by which a raw
                         host pointer into simulated memory can be obtained;
  memcpy-family          libc block/string primitives (memcpy, strcpy,
                         strlen, ...) which, applied to backing storage,
                         would be exactly the unchecked access the paper's
                         compiler never emits — boundary code must use the
                         src/libc checked ports (StrLen, StrCpy, ...) or
                         host std::string operations;
  raw-byte-pointer       declarations of mutable byte pointers (char*,
                         unsigned char*, uint8_t*, void*, std::byte*) — the
                         types backing storage leaks as. Const-qualified
                         byte pointers (host string literals, name tables)
                         are the sanctioned host-side idiom and are not
                         flagged;
  reinterpret-cast       reinterpret_cast, the laundering route between
                         pointer families.

Boundary files that never name Memory/Ptr/AccessCursor are host-side
support code (e.g. the tar/gzip wire-format codecs operate on host
std::string bytes); they sit outside the simulated process the same way a
separate, uninstrumented binary would, and only the backing-introspection
rule applies to them.

The runtime layer itself (src/{runtime,softmem}, plus src/net and
src/harness) implements the mediation and is exempt by scope — that
exemption *is* the reviewed allowlist's largest entry, and anything else
must be listed in allowlist.json with a reason.
"""

from __future__ import annotations

from cpp_lexer import IDENT, PUNCT
from frontend import Violation

PASS_NAME = "access-escape"

BOUNDARY_DIRS = [
    "src/apps", "src/libc", "src/codec", "src/mail", "src/regex",
    "src/archive", "src/vfs",
]

_MEDIATED_MARKERS = {"Memory", "Ptr", "AccessCursor"}

_INTROSPECTION_MEMBERS = {
    "space", "shard", "heap", "stack", "objects", "oob", "boundless",
    "sequence",
}

_BARE_BACKING_CALLS = {"Translate"}

_MEMCPY_FAMILY = {
    "memcpy", "memmove", "memset", "memchr", "memcmp", "strcpy", "strncpy",
    "stpcpy", "strcat", "strncat", "strlen", "strnlen", "strchr", "strrchr",
    "strstr", "strcmp", "strncmp", "sprintf", "vsprintf", "bcopy", "bzero",
}

_BYTE_TYPE_SINGLE = {"char", "void", "uint8_t", "int8_t", "byte"}

# Tokens that may legitimately precede a declaration's type.
_DECL_LEAD = {";", "{", "}", "(", ","}
_DECL_LEAD_IDENTS = {"static", "inline", "constexpr", "mutable", "register"}


def _is_mediated(src) -> bool:
    return any(t.kind == IDENT and t.text in _MEDIATED_MARKERS for t in src.tokens)


def _scan_introspection(src, out):
    tokens = src.tokens
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != PUNCT or tok.text not in {".", "->"}:
            continue
        if i + 2 >= n:
            continue
        name = tokens[i + 1]
        if name.kind != IDENT or name.text not in _INTROSPECTION_MEMBERS:
            continue
        if not (tokens[i + 2].kind == PUNCT and tokens[i + 2].text == "("):
            continue
        snippet = f"{tok.text}{name.text}()"
        out.append(Violation(
            PASS_NAME, "backing-introspection", src.path, name.line,
            f"`{snippet}` exposes shard internals / backing storage outside "
            "the mediated Read/Write/AccessCursor API", snippet))
    for i, tok in enumerate(tokens):
        if tok.kind == IDENT and tok.text in _BARE_BACKING_CALLS:
            if i + 1 < n and tokens[i + 1].kind == PUNCT and tokens[i + 1].text == "(":
                # Skip the definition/declaration context (runtime headers
                # are out of scope anyway; boundary dirs should never even
                # name it).
                out.append(Violation(
                    PASS_NAME, "backing-introspection", src.path, tok.line,
                    f"`{tok.text}(...)` resolves a simulated address to a raw "
                    "host pointer", f"{tok.text}("))


def _scan_memcpy_family(src, out):
    tokens = src.tokens
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != IDENT or tok.text not in _MEMCPY_FAMILY:
            continue
        if not (i + 1 < n and tokens[i + 1].kind == PUNCT and tokens[i + 1].text == "("):
            continue
        # Member calls named like libc primitives (x.memcmp is not libc).
        if i > 0 and tokens[i - 1].kind == PUNCT and tokens[i - 1].text in {".", "->"}:
            continue
        out.append(Violation(
            PASS_NAME, "memcpy-family", src.path, tok.line,
            f"libc primitive `{tok.text}` bypasses the checked access path; "
            "use the src/libc checked port or host std::string operations",
            f"{tok.text}("))


def _byte_type_at(tokens, i):
    """If a byte-ish type spelling starts at tokens[i], returns the index
    one past the type words, else None.  Handles `unsigned char`,
    `signed char`, `std::byte` and the single-word spellings."""
    t = tokens[i]
    if t.kind != IDENT:
        return None
    if t.text in {"unsigned", "signed"}:
        if i + 1 < len(tokens) and tokens[i + 1].kind == IDENT and tokens[i + 1].text == "char":
            return i + 2
        return None
    if t.text == "std":
        if (i + 2 < len(tokens) and tokens[i + 1].text == "::"
                and tokens[i + 2].kind == IDENT and tokens[i + 2].text == "byte"):
            return i + 3
        return None
    if t.text in _BYTE_TYPE_SINGLE:
        return i + 1
    return None


def _scan_byte_pointers(src, out):
    tokens = src.tokens
    n = len(tokens)
    for i, tok in enumerate(tokens):
        prev = tokens[i - 1] if i > 0 else None
        lead_ok = (
            prev is None
            or (prev.kind == PUNCT and prev.text in _DECL_LEAD)
            or (prev.kind == IDENT and prev.text in _DECL_LEAD_IDENTS)
        )
        if not lead_ok:
            continue
        # A `const` immediately before the type marks the sanctioned
        # host-side read-only idiom; `T const*` post-qualification too.
        after_type = _byte_type_at(tokens, i)
        if after_type is None:
            continue
        j = after_type
        if j < n and tokens[j].kind == IDENT and tokens[j].text == "const":
            continue
        stars = 0
        while j < n and tokens[j].kind == PUNCT and tokens[j].text == "*":
            stars += 1
            j += 1
        if stars == 0:
            continue
        if not (j < n and tokens[j].kind == IDENT):
            continue
        name = tokens[j]
        if name.text in {"const", "Ptr"}:
            continue
        type_words = " ".join(t.text for t in tokens[i:after_type])
        snippet = f"{type_words}{'*' * stars} {name.text}"
        out.append(Violation(
            PASS_NAME, "raw-byte-pointer", src.path, tok.line,
            f"mutable byte-pointer declaration `{snippet}` in mediated code; "
            "simulated memory must be held as fob::Ptr and accessed through "
            "Memory/AccessCursor", snippet))


def _scan_reinterpret_cast(src, out):
    for tok in src.tokens:
        if tok.kind == IDENT and tok.text == "reinterpret_cast":
            out.append(Violation(
                PASS_NAME, "reinterpret-cast", src.path, tok.line,
                "reinterpret_cast in mediated boundary code can launder a "
                "backing-storage pointer past the checked access path",
                "reinterpret_cast"))


def run(frontend, dirs=None):
    """Returns the pass's violations over the boundary dirs."""
    out = []
    for path in frontend.files_under(dirs or BOUNDARY_DIRS):
        src = frontend.source(path)
        _scan_introspection(src, out)
        if _is_mediated(src):
            _scan_memcpy_family(src, out)
            _scan_byte_pointers(src, out)
            _scan_reinterpret_cast(src, out)
    return out
