"""Minimal C++ lexer shared by the fob_analyze passes.

Produces a flat token stream with line numbers; comments and preprocessor
directives are dropped, string/char literals are kept as single tokens (so
unit-name literals survive while their contents never confuse the scanners).

This is deliberately not a full C++ front end: the passes that consume it
(tools/fob_analyze/*.py) only need call-expression shapes, declaration
shapes at known scopes, and brace/paren nesting — all of which a token
stream models faithfully for the subset of C++ this repository is written
in. When a real libclang is available the same passes can be driven from a
clang AST instead (see frontend.py); the lexer is the fallback that keeps
the suite runnable on toolchains that ship no clang frontend.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"  # "..." including raw strings; text keeps the quotes
CHAR = "char"  # '...'
PUNCT = "punct"  # one operator / punctuator per token (maximal munch)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


# Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", ".*",
]


def _is_ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_ident_char(c: str) -> bool:
    return c.isalnum() or c == "_"


def tokenize(text: str):
    """Yields Tokens for `text`; never raises on malformed input (the tail
    of an unterminated literal is consumed to end-of-line)."""
    tokens = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Line comment.
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        # Block comment.
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                break
            line += text.count("\n", i, end + 2)
            i = end + 2
            continue
        # Preprocessor directive: drop the whole (continued) line.
        if c == "#" and (not tokens or tokens[-1].line != line):
            while i < n:
                end = text.find("\n", i)
                if end == -1:
                    i = n
                    break
                if text[end - 1] == "\\" if end > 0 else False:
                    line += 1
                    i = end + 1
                    continue
                i = end  # leave the newline for the main loop
                break
            continue
        # Raw string literal.
        if c == 'R' and text.startswith('R"', i):
            delim_end = text.find("(", i + 2)
            if delim_end != -1:
                delim = text[i + 2:delim_end]
                close = ')' + delim + '"'
                end = text.find(close, delim_end)
                if end != -1:
                    lit = text[i:end + len(close)]
                    tokens.append(Token(STRING, lit, line))
                    line += lit.count("\n")
                    i = end + len(close)
                    continue
        # String / char literal (with escape handling).
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; stop at end of line
                j += 1
            lit = text[i:j + 1] if j < n else text[i:]
            tokens.append(Token(STRING if quote == '"' else CHAR, lit, line))
            i = j + 1
            continue
        if _is_ident_start(c):
            j = i + 1
            while j < n and _is_ident_char(text[j]):
                j += 1
            tokens.append(Token(IDENT, text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (_is_ident_char(text[j]) or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token(NUMBER, text[i:j], line))
            i = j
            continue
        for punct in _PUNCTUATORS:
            if text.startswith(punct, i):
                tokens.append(Token(PUNCT, punct, line))
                i += len(punct)
                break
        else:
            tokens.append(Token(PUNCT, c, line))
            i += 1
    return tokens


def string_value(token: Token) -> str:
    """The contents of a plain "..." literal (no escape decoding beyond the
    common cases; unit names in this codebase use none)."""
    text = token.text
    if text.startswith('R"'):
        open_paren = text.find("(")
        return text[open_paren + 1:text.rfind(")")]
    body = text[1:-1] if len(text) >= 2 else ""
    return (body.replace("\\\\", "\\").replace('\\"', '"')
            .replace("\\n", "\n").replace("\\t", "\t").replace("\\r", "\r"))
