// Golden fixture for pass 3 (site-universe): a miniature app whose
// statically constructible sites are exactly {real_unit, alloc, "",
// real_frame::real_local} x {real_frame, "<no frame>"} x {read, write}.
// The golden test extracts this universe, then checks a dynamic dump
// containing one legitimate site and one *phantom* site (a unit name no
// static allocation ever creates) — the phantom must be caught: it means
// the extractor's denominator is wrong. NEVER part of the real build.

#include "src/runtime/memory.h"

namespace fob {

void TinyWorkload(Memory& memory) {
  Memory::Frame frame(memory, "real_frame");
  Ptr buf = memory.Malloc(32, "real_unit");
  Ptr local = frame.Local(16, "real_local");
  Ptr anon = memory.Malloc(8);  // default unit name "alloc"
  memory.WriteU8(buf, memory.ReadU8(local));
  memory.Free(anon);
  memory.Free(buf);
}

}  // namespace fob
