// Golden fixture for pass 1 (access-escape): a mediated boundary file that
// commits one violation of every rule. The golden test copies this file to
// <tmp-repo>/src/apps/ and asserts each seeded violation is reported.
// NEVER compiled or linked into the real tree.

#include <cstring>

#include "src/runtime/memory.h"

namespace fob {

// Uses Memory and Ptr, so the file is "mediated": it handles simulated
// memory and must route every access through the checked API.
int BrokenHandler(Memory& memory, Ptr request) {
  Memory::Frame frame(memory, "broken_handler");

  // VIOLATION(backing-introspection): reaching the shard's address space.
  auto& space = memory.space();
  (void)space;

  // VIOLATION(backing-introspection): resolving a raw host pointer.
  void* host = Translate(request);

  // VIOLATION(raw-byte-pointer): simulated bytes held as a raw pointer.
  char* bytes = static_cast<char*>(host);

  // VIOLATION(reinterpret-cast): laundering between pointer families.
  unsigned long cookie = reinterpret_cast<unsigned long>(bytes);

  // VIOLATION(memcpy-family): the unchecked access the paper's compiler
  // would never emit.
  std::memcpy(bytes, &cookie, sizeof(cookie));

  // VIOLATION(memcpy-family): unchecked scan.
  return static_cast<int>(strlen(bytes));
}

// Sanctioned idioms that must NOT be flagged:
const char* HandlerName() { return "broken"; }  // const byte pointer (host)
int Checked(Memory& memory, Ptr p) { return memory.ReadU8(p); }

}  // namespace fob
