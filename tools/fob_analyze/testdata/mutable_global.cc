// Golden fixture for pass 2 (shard-isolation): deliberate shared mutable
// state of every flavor the pass must catch. The golden test copies this
// file to <tmp-repo>/src/runtime/ for the source scan, and compiles it
// stand-alone for the nm writable-data-section scan. NEVER part of the
// real tree's build.

#include <cstdint>
#include <string>

namespace fob {

// VIOLATION(mutable-namespace-state): one counter shared by every shard.
uint64_t g_request_count = 0;

// VIOLATION(mutable-namespace-state): dynamic init in anonymous namespace.
namespace {
std::string g_last_error = "none";
}  // namespace

// NOT a violation: immutable namespace-scope state.
constexpr uint64_t kLimit = 4096;
const int kTableSize = 256;

struct Telemetry {
  // VIOLATION(mutable-class-static): process-wide mutable member.
  static uint64_t total_faults;

  // NOT a violation: per-instance state is shard-owned.
  uint64_t local_faults = 0;

  // NOT a violation: immutable class constant.
  static constexpr int kChannels = 4;
};

uint64_t Telemetry::total_faults = 0;

uint64_t CountCall() {
  // VIOLATION(mutable-static-local): shared by every shard calling this.
  static uint64_t calls = 0;
  return ++calls + g_request_count + Telemetry::total_faults +
         static_cast<uint64_t>(g_last_error.size());
}

}  // namespace fob
