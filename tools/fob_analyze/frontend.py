"""Source-model front end for the fob_analyze passes.

The suite is designed around a libclang AST (``clang.cindex`` over the
project's ``compile_commands.json``); when those bindings are importable
they are used to sanity-check the translation-unit list. The analysis
passes themselves run on a token-level source model (cpp_lexer) that is
sufficient for the shapes they match — call expressions, declarations at a
known scope, literal arguments — and that keeps the suite runnable on the
pinned CI toolchain, which ships no clang frontend. The two models see the
same files: the translation units named by compile_commands.json plus every
header under src/.

Scope classification: every ``{`` is classified as namespace / class /
function / block / initializer by looking at the tokens before it, so the
passes can ask "is this token at namespace scope?" or "which function body
am I in?" without a full parse.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from cpp_lexer import IDENT, PUNCT, STRING, Token, tokenize

try:  # pragma: no cover - exercised only where libclang exists
    import clang.cindex  # type: ignore

    HAVE_LIBCLANG = True
except ImportError:
    HAVE_LIBCLANG = False

# Scope kinds.
NAMESPACE = "namespace"
CLASS = "class"
FUNCTION = "function"
BLOCK = "block"
INIT = "init"  # braced initializer / lambda introducer fallout

_CLASS_KEYS = {"class", "struct", "union", "enum"}
_CONTROL_KEYS = {"if", "for", "while", "switch", "do", "else", "try", "catch"}


@dataclass
class Scope:
    kind: str
    name: str = ""


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    tokens: list = field(default_factory=list)
    # scopes[i] is the scope stack *containing* token i (innermost last);
    # parallel to tokens.
    scopes: list = field(default_factory=list)

    def namespace_scope(self, i: int) -> bool:
        """True when token i sits directly at namespace (or file) scope."""
        return all(s.kind == NAMESPACE for s in self.scopes[i])

    def enclosing_function(self, i: int) -> str:
        for scope in reversed(self.scopes[i]):
            if scope.kind == FUNCTION:
                return scope.name
        return ""

    def in_function(self, i: int) -> bool:
        return any(s.kind == FUNCTION for s in self.scopes[i])

    def class_scope(self, i: int) -> bool:
        """True when the innermost non-namespace scope is a class body."""
        for scope in reversed(self.scopes[i]):
            if scope.kind != NAMESPACE:
                return scope.kind == CLASS
        return False


def _function_name_before(tokens, open_paren: int) -> str:
    """Best-effort name of the function whose parameter list opens at
    tokens[open_paren]; handles qualified names (A::B::f) and operators."""
    i = open_paren - 1
    if i < 0 or tokens[i].kind != IDENT:
        return ""
    parts = [tokens[i].text]
    # Prepend qualifiers only across `::`; a directly adjacent identifier is
    # the return type, not part of the name.
    while i >= 2 and tokens[i - 1].kind == PUNCT and tokens[i - 1].text == "::" \
            and tokens[i - 2].kind == IDENT:
        parts.insert(0, tokens[i - 2].text)
        parts.insert(1, "::")
        i -= 2
    return "".join(parts)


def _close_of(tokens, i: int, open_c: str, close_c: str) -> int:
    """Index of the matching close for the open at tokens[i]; len(tokens)
    if unbalanced."""
    depth = 0
    j = i
    n = len(tokens)
    while j < n:
        text = tokens[j].text
        if tokens[j].kind == PUNCT:
            if text == open_c:
                depth += 1
            elif text == close_c:
                depth -= 1
                if depth == 0:
                    return j
        j += 1
    return n


def _classify_brace(tokens, i: int, stack) -> Scope:
    """Classify the `{` at tokens[i] from its left context."""
    # Walk back over tokens that may sit between a ')' and the body.
    j = i - 1
    while j >= 0 and (
        (tokens[j].kind == IDENT and tokens[j].text in
         {"const", "noexcept", "override", "final", "mutable", "constexpr",
          "try"})
        or (tokens[j].kind == PUNCT and tokens[j].text in {"->", "::", "&", "&&", "*", "<", ">", ",", ")"}
            and tokens[j].text != ")")
        or tokens[j].kind == IDENT and j >= 1 and tokens[j - 1].kind == PUNCT and tokens[j - 1].text == "->"
    ):
        if tokens[j].kind == IDENT and tokens[j].text == "try":
            j -= 1
            break
        j -= 1
    if j >= 0 and tokens[j].kind == PUNCT and tokens[j].text == ")":
        open_paren = None
        depth = 0
        k = j
        while k >= 0:
            if tokens[k].kind == PUNCT:
                if tokens[k].text == ")":
                    depth += 1
                elif tokens[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        open_paren = k
                        break
            k -= 1
        if open_paren is not None:
            head = open_paren - 1
            if head >= 0 and tokens[head].kind == IDENT:
                if tokens[head].text in _CONTROL_KEYS:
                    return Scope(BLOCK)
                inside_fn = any(s.kind == FUNCTION for s in stack)
                if inside_fn:
                    # A parenthesized call/condition inside a function is a
                    # plain block (or lambda); nesting is all that matters.
                    return Scope(BLOCK)
                return Scope(FUNCTION, _function_name_before(tokens, open_paren))
        return Scope(BLOCK)
    if j >= 0 and tokens[j].kind == IDENT:
        # `namespace X {`, `class X ... {`, `do {`, `else {`, `X x = Y {`.
        k = j
        while k >= 0 and not (tokens[k].kind == PUNCT and tokens[k].text in ";}{"):
            if tokens[k].kind == IDENT and tokens[k].text == "namespace":
                return Scope(NAMESPACE, tokens[j].text if tokens[j].text != "namespace" else "")
            if tokens[k].kind == IDENT and tokens[k].text in _CLASS_KEYS:
                return Scope(CLASS, tokens[j].text)
            if tokens[k].kind == PUNCT and tokens[k].text in {"=", "(", ","}:
                return Scope(INIT)
            k -= 1
        if tokens[j].text in _CONTROL_KEYS:
            return Scope(BLOCK)
        return Scope(BLOCK if any(s.kind == FUNCTION for s in stack) else INIT)
    if j >= 0 and tokens[j].kind == PUNCT and tokens[j].text == "{" or j < 0:
        return Scope(BLOCK if any(s.kind == FUNCTION for s in stack) else NAMESPACE)
    return Scope(INIT)


def build_source_file(path: str, text: str) -> SourceFile:
    tokens = tokenize(text)
    scopes = []
    stack: list[Scope] = []
    for i, tok in enumerate(tokens):
        if tok.kind == PUNCT and tok.text == "}":
            if stack:
                stack.pop()
        scopes.append(list(stack))
        if tok.kind == PUNCT and tok.text == "{":
            stack.append(_classify_brace(tokens, i, stack))
    return SourceFile(path=path, tokens=tokens, scopes=scopes)


def split_call_args(tokens, open_paren: int):
    """Token slices of the arguments of the call whose '(' is at
    tokens[open_paren]; returns (args, index_of_close_paren)."""
    close = _close_of(tokens, open_paren, "(", ")")
    args = []
    depth = 0
    start = open_paren + 1
    for j in range(open_paren + 1, close):
        t = tokens[j]
        if t.kind == PUNCT:
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text == "," and depth == 0:
                args.append(tokens[start:j])
                start = j + 1
    if close > start:
        args.append(tokens[start:close])
    elif close == start and args:
        args.append([])
    return args, close


def iter_calls(src: SourceFile, callee: str):
    """Yields (index_of_name_token, args) for every call `X(...)` where the
    identifier immediately before '(' is `callee`."""
    tokens = src.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != IDENT or tok.text != callee:
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].kind == PUNCT and tokens[j].text == "(":
            args, _ = split_call_args(tokens, j)
            yield i, args


class Frontend:
    """File discovery + parsed-source cache for one repository checkout."""

    SRC_EXTS = (".cc", ".h")

    def __init__(self, repo_root: str, compile_commands: str | None = None):
        self.repo_root = os.path.abspath(repo_root)
        self.compile_commands = compile_commands
        self._cache: dict[str, SourceFile] = {}
        self.files = self._discover()

    def _discover(self):
        found = set()
        cc_path = self.compile_commands
        if cc_path is None:
            default = os.path.join(self.repo_root, "build", "compile_commands.json")
            cc_path = default if os.path.exists(default) else None
        if cc_path and os.path.exists(cc_path):
            try:
                with open(cc_path, encoding="utf-8") as f:
                    for entry in json.load(f):
                        rel = os.path.relpath(
                            os.path.normpath(os.path.join(entry.get("directory", "."),
                                                          entry["file"])),
                            self.repo_root)
                        rel = rel.replace(os.sep, "/")
                        if rel.startswith("src/"):
                            found.add(rel)
            except (json.JSONDecodeError, KeyError, OSError) as err:
                raise SystemExit(
                    f"fob_analyze: unreadable compile_commands at {cc_path}: {err}")
        # Headers never appear in compile_commands; walk src/ for them (and
        # for sources, when no export exists yet).
        src_root = os.path.join(self.repo_root, "src")
        for dirpath, _dirnames, filenames in os.walk(src_root):
            for name in filenames:
                if name.endswith(self.SRC_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), self.repo_root)
                    found.add(rel.replace(os.sep, "/"))
        return sorted(found)

    def source(self, rel_path: str) -> SourceFile:
        if rel_path not in self._cache:
            with open(os.path.join(self.repo_root, rel_path), encoding="utf-8") as f:
                text = f.read()
            self._cache[rel_path] = build_source_file(rel_path, text)
        return self._cache[rel_path]

    def files_under(self, dirs):
        prefixes = tuple(d.rstrip("/") + "/" for d in dirs)
        return [f for f in self.files if f.startswith(prefixes)]


@dataclass
class Violation:
    pass_name: str
    rule: str
    file: str
    line: int
    message: str
    snippet: str = ""

    def key(self):
        return (self.rule, self.file, self.snippet)

    def render(self) -> str:
        where = f"{self.file}:{self.line}"
        return f"[{self.pass_name}/{self.rule}] {where}: {self.message}"
