"""Pass 2 — shard-isolation checker.

PR 4's scaling claim is "N workers, N disjoint shards, no shared mutable
state": every worker owns one fob::Shard and nothing mutable is reachable
from two threads. That was audited by hand once and is sampled dynamically
by the tsan CI job; this pass makes it a proved build-time property from
two directions:

  AST side — flags, in src/{softmem,runtime,net,apps}:
    mutable-namespace-state  namespace-scope variable definitions that are
                             not const/constexpr/constinit;
    mutable-class-static     static data members without const/constexpr;
    mutable-static-local     function-local `static` state without const —
                             one mutable static local is shared by every
                             shard that calls the function.

  Object side — runs `nm` over the built archive (build/libfob.a) and flags
    writable-data-symbol     any symbol the linker placed in a writable
                             section (.data/.bss and friends). Compiler RTTI
                             infrastructure (vtables, typeinfo, VTTs) lands
                             in .data.rel.ro under PIE — immutable after
                             relocation — and is excluded by pattern;
                             everything else (including guard variables,
                             which mark a lazily-initialized static) must be
                             allowlisted with a reason or eliminated.

The object side is the ground truth (it sees through macros, templates and
headers the token scan might misclassify); the AST side names the exact
source line to fix and also catches state that never reaches the archive
(header-only, inline)."""

from __future__ import annotations

import os
import re
import shutil
import subprocess

from cpp_lexer import IDENT, PUNCT
from frontend import Violation

PASS_NAME = "shard-isolation"

ISOLATION_DIRS = ["src/softmem", "src/runtime", "src/net", "src/apps"]

_SKIP_STATEMENT_HEADS = {
    "using", "typedef", "friend", "template", "static_assert", "extern",
    "namespace", "class", "struct", "union", "enum", "concept", "asm",
    "public", "private", "protected", "case", "default", "goto", "return",
    "if", "for", "while", "switch", "do", "else", "try", "catch", "break",
    "continue", "throw", "co_return", "co_yield",
}

_IMMUTABLE_QUALIFIERS = {"const", "constexpr", "constinit", "consteval"}

# Writable-section symbol types as reported by nm (uppercase = global,
# lowercase = local): data, BSS, small-data, and their variants.
_WRITABLE_NM_TYPES = set("DdBbGgSs")

# RTTI/vtable infrastructure: emitted into .data.rel.ro (read-only after
# dynamic relocation), reported by nm as 'd'/'D' but not mutable state.
# Sanitizer builds add their own bookkeeping globals (ASan's __odr_asan.*
# ODR markers, coverage counters) — compiler instrumentation, not program
# state, so the scan's verdict matches across plain and sanitized archives.
_RELRO_INFRA = re.compile(
    r"^(vtable for |typeinfo for |typeinfo name for |VTT for |"
    r"construction vtable for |__odr_asan\.|__asan_|__sancov_|__msan_|__tsan_)")


def _statement_is_function(stmt_tokens) -> bool:
    """A '(' at top nesting depth before any '=' marks a function
    declaration/definition (no namespace-scope variable in this codebase
    uses parenthesized direct-init)."""
    depth = 0
    for t in stmt_tokens:
        if t.kind == PUNCT:
            if t.text in "<[":
                depth += 1
            elif t.text in ">]":
                depth -= 1
            elif t.text == "=" and depth == 0:
                return False
            elif t.text == "(" and depth == 0:
                return True
    return False


def _declared_name(stmt_tokens):
    """The identifier being declared: the last identifier before the first
    top-level '=', '{', '[' or the terminating ';'."""
    depth = 0
    name = None
    for t in stmt_tokens:
        if t.kind == PUNCT:
            if t.text in "<[(":
                depth += 1
                if t.text in "[(" and name is not None:
                    break
            elif t.text in ">])":
                depth -= 1
            elif depth == 0 and t.text in {"=", "{", ";"}:
                break
        elif t.kind == IDENT and depth == 0:
            if t.text not in _IMMUTABLE_QUALIFIERS:
                name = t
    return name


def _is_immutable(stmt_tokens) -> bool:
    depth = 0
    for t in stmt_tokens:
        if t.kind == PUNCT:
            if t.text in "<([{":
                depth += 1
            elif t.text in ">)]}":
                depth -= 1
        elif t.kind == IDENT and depth == 0 and t.text in _IMMUTABLE_QUALIFIERS:
            return True
    return False


def _check_variable_statement(src, stmt, rule, message, out):
    if not stmt:
        return
    head = stmt[0]
    if head.kind == IDENT and head.text in _SKIP_STATEMENT_HEADS:
        return
    if _statement_is_function(stmt):
        return
    name = _declared_name(stmt)
    if name is None:
        return
    if _is_immutable(stmt):
        return
    out.append(Violation(
        PASS_NAME, rule, src.path, name.line,
        message.format(name=name.text), name.text))


def _scan_namespace_scope(src, out):
    """Namespace-scope statements: tokens whose enclosing scopes are all
    namespaces, split on ';' and on non-namespace brace groups."""
    stmt = []
    skip_close = None  # index of '}' closing a skipped brace group
    for i, tok in enumerate(src.tokens):
        if skip_close is not None:
            if i < skip_close:
                continue
            skip_close = None
            # The brace group was a body (class/function/init); its close
            # also ends any `X x{...}`-style statement at the next ';'.
        if not src.namespace_scope(i):
            continue
        if tok.kind == PUNCT and tok.text == "{":
            # Entering a nested scope: namespace braces continue the walk,
            # anything else is an initializer-or-body to skip over.
            inner = src.scopes[i + 1] if i + 1 < len(src.scopes) else []
            if inner and inner[-1].kind == "namespace":
                stmt = []
                continue
            depth = 0
            j = i
            while j < len(src.tokens):
                t = src.tokens[j]
                if t.kind == PUNCT:
                    if t.text == "{":
                        depth += 1
                    elif t.text == "}":
                        depth -= 1
                        if depth == 0:
                            break
                j += 1
            skip_close = j
            # A skipped body belonging to a braced initializer keeps the
            # statement alive (`Type x = {...};`); a function body ends it.
            if _statement_is_function(stmt):
                stmt = []
            continue
        if tok.kind == PUNCT and tok.text in {";", "}"}:
            _check_variable_statement(
                src, stmt, "mutable-namespace-state",
                "namespace-scope mutable state `{name}` is shared by every "
                "shard in the process", out)
            stmt = []
            continue
        stmt.append(tok)


def _scan_class_statics(src, out):
    """Statements at class scope beginning with `static` that declare data."""
    stmt = []
    collecting = False
    for i, tok in enumerate(src.tokens):
        scopes = src.scopes[i]
        at_class = bool(scopes) and scopes[-1].kind == "class"
        if not at_class:
            if not collecting:
                continue
        if tok.kind == PUNCT and tok.text in {";", "{", "}"}:
            if collecting and tok.text == ";":
                _check_variable_statement(
                    src, stmt, "mutable-class-static",
                    "static data member `{name}` is process-wide mutable "
                    "state", out)
            if collecting and tok.text == "{" and _statement_is_function(stmt):
                pass  # static member function with inline body
            stmt = []
            collecting = False
            continue
        if not collecting and at_class:
            prev = src.tokens[i - 1] if i > 0 else None
            stmt_start = prev is None or (prev.kind == PUNCT and prev.text in ";{}") \
                or (prev.kind == IDENT and prev.text in {"public", "private", "protected"}) \
                or (prev.kind == PUNCT and prev.text == ":")
            if tok.kind == IDENT and tok.text == "static" and stmt_start:
                collecting = True
                stmt = [tok]
            continue
        if collecting:
            stmt.append(tok)


def _scan_static_locals(src, out):
    stmt = []
    collecting = False
    for i, tok in enumerate(src.tokens):
        if not src.in_function(i):
            collecting = False
            stmt = []
            continue
        if tok.kind == PUNCT and tok.text in {";", "{", "}"}:
            if collecting:
                _check_variable_statement(
                    src, stmt, "mutable-static-local",
                    "function-local `static {name}` is shared by every shard "
                    "that calls this function", out)
            stmt = []
            collecting = False
            continue
        if not collecting:
            prev = src.tokens[i - 1] if i > 0 else None
            stmt_start = prev is not None and prev.kind == PUNCT and prev.text in ";{}"
            if tok.kind == IDENT and tok.text == "static" and stmt_start:
                collecting = True
                stmt = [tok]
            continue
        stmt.append(tok)


def scan_sources(frontend, dirs=None):
    out = []
    for path in frontend.files_under(dirs or ISOLATION_DIRS):
        src = frontend.source(path)
        _scan_namespace_scope(src, out)
        _scan_class_statics(src, out)
        _scan_static_locals(src, out)
    return out


def scan_objects(objects_path, nm_tool=None):
    """Writable-data-section scan of a built archive / object file.

    Returns (violations, error): `error` is a human-readable string when the
    scan could not run at all (missing tool or file)."""
    if not os.path.exists(objects_path):
        return [], f"object archive not found: {objects_path} (build first)"
    tool = nm_tool or shutil.which("nm") or shutil.which("llvm-nm")
    if tool is None:
        return [], "no `nm` tool on PATH"
    try:
        proc = subprocess.run(
            [tool, "-C", objects_path], capture_output=True, text=True,
            check=True)
    except subprocess.CalledProcessError as err:
        return [], f"nm failed on {objects_path}: {err.stderr.strip()}"
    out = []
    member = os.path.basename(objects_path)
    for line in proc.stdout.splitlines():
        line = line.rstrip()
        if line.endswith(":") and " " not in line:
            member = line[:-1]
            continue
        fields = line.split(maxsplit=2)
        if len(fields) == 3:
            _addr, sym_type, symbol = fields
        elif len(fields) == 2 and fields[0] in _WRITABLE_NM_TYPES:
            sym_type, symbol = fields
        else:
            continue
        if sym_type not in _WRITABLE_NM_TYPES:
            continue
        if _RELRO_INFRA.match(symbol):
            continue
        out.append(Violation(
            PASS_NAME, "writable-data-symbol", member, 0,
            f"symbol `{symbol}` lives in a writable data section "
            f"(nm type '{sym_type}') — shared mutable state across shards",
            symbol))
    return out, None


def run(frontend, objects_path=None, dirs=None):
    """Full pass: source scan plus (when an archive is given) object scan.
    Returns (violations, object_scan_error)."""
    violations = scan_sources(frontend, dirs)
    error = None
    if objects_path is not None:
        object_violations, error = scan_objects(objects_path)
        violations.extend(object_violations)
    return violations, error
