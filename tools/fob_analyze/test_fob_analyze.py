#!/usr/bin/env python3
"""Golden-fixture tests for the fob_analyze passes (registered in ctest).

Each pass is run over a temporary mini-repo seeded with the deliberate
violations under testdata/; every seeded violation must be caught and the
sanctioned idioms must not be flagged. The suite then runs all passes over
the *real* tree and asserts a clean report — the analyzer gate itself.

Environment:
  FOB_ARCHIVE  path to the built libfob archive for the nm scan of the
               real tree (set by CMake; defaults to <repo>/build/libfob.a,
               skipped when absent).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", ".."))
TESTDATA = os.path.join(HERE, "testdata")
sys.path.insert(0, HERE)

import access_escape  # noqa: E402
import shard_isolation  # noqa: E402
import site_universe  # noqa: E402
from allowlist import Allowlist, partition  # noqa: E402
from frontend import Frontend  # noqa: E402


def make_mini_repo(tmp, mapping):
    """Creates tmp/src/... from {repo-relative dest: testdata file}."""
    for dest, fixture in mapping.items():
        full = os.path.join(tmp, dest)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        shutil.copyfile(os.path.join(TESTDATA, fixture), full)
    # The mini-repo needs a src/ dir even if empty elsewhere.
    os.makedirs(os.path.join(tmp, "src"), exist_ok=True)
    return Frontend(tmp)


def rules_of(violations):
    return sorted({v.rule for v in violations})


class AccessEscapeGolden(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="fob_analyze_")
        self.addCleanup(shutil.rmtree, self.tmp)

    def test_catches_every_seeded_violation(self):
        frontend = make_mini_repo(
            self.tmp, {"src/apps/raw_deref.cc": "raw_deref.cc"})
        violations = access_escape.run(frontend)
        self.assertEqual(
            rules_of(violations),
            ["backing-introspection", "memcpy-family", "raw-byte-pointer",
             "reinterpret-cast"])
        by_rule = {}
        for v in violations:
            by_rule.setdefault(v.rule, []).append(v)
        # Two introspection escapes (.space() and Translate), two libc
        # primitives (memcpy and strlen), one raw pointer, one cast.
        self.assertEqual(len(by_rule["backing-introspection"]), 2)
        self.assertEqual(len(by_rule["memcpy-family"]), 2)
        self.assertEqual(
            sorted(v.snippet for v in by_rule["raw-byte-pointer"]),
            ["char* bytes", "void* host"])
        self.assertEqual(len(by_rule["reinterpret-cast"]), 1)
        # The sanctioned const-char* host idiom is not flagged.
        for v in violations:
            self.assertNotIn("HandlerName", v.snippet)

    def test_unmediated_host_codec_is_exempt(self):
        # The same libc primitives in a file that never names Memory/Ptr
        # (host-side wire-format code) are out of scope for every rule but
        # backing-introspection.
        host = os.path.join(self.tmp, "src/archive/host_codec.cc")
        os.makedirs(os.path.dirname(host), exist_ok=True)
        with open(host, "w", encoding="utf-8") as f:
            f.write("#include <cstring>\n"
                    "int HostChecksum(const char* s) {"
                    " return (int)strlen(s); }\n")
        frontend = Frontend(self.tmp)
        self.assertEqual(access_escape.run(frontend), [])


class ShardIsolationGolden(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="fob_analyze_")
        self.addCleanup(shutil.rmtree, self.tmp)

    def test_source_scan_catches_every_seeded_violation(self):
        frontend = make_mini_repo(
            self.tmp, {"src/runtime/mutable_global.cc": "mutable_global.cc"})
        violations = shard_isolation.scan_sources(frontend)
        by_rule = {}
        for v in violations:
            by_rule.setdefault(v.rule, set()).add(v.snippet)
        self.assertEqual(by_rule.get("mutable-namespace-state"),
                         {"g_request_count", "g_last_error", "total_faults"})
        self.assertEqual(by_rule.get("mutable-class-static"), {"total_faults"})
        self.assertEqual(by_rule.get("mutable-static-local"), {"calls"})
        # Immutable state is not flagged.
        for v in violations:
            self.assertNotIn(v.snippet, {"kLimit", "kTableSize", "kChannels"})

    def test_object_scan_catches_writable_data(self):
        compiler = shutil.which("g++") or shutil.which("c++")
        if compiler is None:
            self.skipTest("no C++ compiler on PATH")
        obj = os.path.join(self.tmp, "mutable_global.o")
        subprocess.run(
            [compiler, "-std=c++20", "-c",
             os.path.join(TESTDATA, "mutable_global.cc"), "-o", obj],
            check=True, capture_output=True)
        violations, error = shard_isolation.scan_objects(obj)
        self.assertIsNone(error)
        symbols = " | ".join(v.snippet for v in violations)
        self.assertIn("g_request_count", symbols)
        self.assertIn("total_faults", symbols)
        self.assertIn("g_last_error", symbols)
        self.assertIn("calls", symbols)

    def test_object_scan_reports_missing_archive(self):
        violations, error = shard_isolation.scan_objects(
            os.path.join(self.tmp, "nope.a"))
        self.assertEqual(violations, [])
        self.assertIn("not found", error)


class SiteUniverseGolden(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="fob_analyze_")
        self.addCleanup(shutil.rmtree, self.tmp)
        self.frontend = make_mini_repo(
            self.tmp, {"src/apps/phantom_site.cc": "phantom_site.cc"})

    def test_extracts_frames_units_and_qualified_locals(self):
        universe = site_universe.extract(self.frontend)
        self.assertEqual(universe.frames, {"<no frame>", "real_frame"})
        self.assertEqual(
            universe.unit_names,
            {"", "real_unit", "alloc", "real_frame::real_local"})
        json_doc = universe.to_json()
        # 4 units x 2 frames x 2 kinds.
        self.assertEqual(len(json_doc["sites"]), 16)
        self.assertEqual(json_doc["unresolved"], [])

    def test_phantom_site_is_caught_and_real_site_is_not(self):
        universe_json = site_universe.extract(self.frontend).to_json()
        real = {
            "id": f"0x{site_universe.make_site_id('real_unit', 'real_frame', 'write'):016x}",
            "unit": "real_unit", "frame": "real_frame", "kind": "write",
        }
        phantom = {
            "id": f"0x{site_universe.make_site_id('ghost_unit', 'real_frame', 'write'):016x}",
            "unit": "ghost_unit", "frame": "real_frame", "kind": "write",
        }
        dynamic = {"sites": [real, phantom]}
        violations = site_universe.check_dynamic(universe_json, dynamic, "dyn.json")
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].rule, "phantom-site")
        self.assertIn("ghost_unit", violations[0].message)

    def test_fnv_replica_matches_known_vector(self):
        # Pinned independently by tests/test_site_coverage.cc on the C++
        # side; the two pins must agree on these exact values.
        self.assertEqual(
            site_universe.make_site_id("config_line", "load_setup", "read"),
            0x7F7A68C74487F124)
        self.assertEqual(site_universe.make_site_id("", "<no frame>", "write"),
                         0x53986E3666FD06C4)


class RealTreeIsClean(unittest.TestCase):
    """The gate: the analyzer must run clean on the actual repository."""

    def _frontend(self):
        return Frontend(REPO)

    def _allowlist(self):
        return Allowlist.load(os.path.join(HERE, "allowlist.json"))

    def test_access_escape_clean(self):
        reported, _ = partition(
            access_escape.run(self._frontend()), self._allowlist())
        self.assertEqual([v.render() for v in reported], [])

    def test_shard_isolation_clean(self):
        archive = os.environ.get(
            "FOB_ARCHIVE", os.path.join(REPO, "build", "libfob.a"))
        objects = archive if os.path.exists(archive) else None
        violations, error = shard_isolation.run(self._frontend(), objects)
        reported, _ = partition(violations, self._allowlist())
        self.assertEqual([v.render() for v in reported], [])
        if objects is None:
            sys.stderr.write("note: no archive; nm scan skipped\n")
        else:
            self.assertIsNone(error)

    def test_site_universe_covers_section4_sites(self):
        # Sites the §4 attack matrix is known to exercise (ROADMAP/PR 2)
        # must be in the static universe.
        universe = site_universe.extract(self._frontend())
        self.assertIn("load_setup", universe.frames)
        self.assertIn("config_line", universe.unit_names)
        self.assertIn("vfs_tarfs_resolve::linkname_buf", universe.unit_names)
        self.assertIn("", universe.unit_names)
        self.assertIn("<no frame>", universe.frames)


if __name__ == "__main__":
    unittest.main(verbosity=2)
