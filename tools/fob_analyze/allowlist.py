"""Reviewed allowlist for fob_analyze.

Every suppression is an explicit, reviewed record: rule + file (+ optional
snippet to pin one construct) + a mandatory human reason. Unused entries
are themselves a failure — a stale allowlist is an unreviewed hole in the
invariant, so entries must be deleted when the code they excuse goes away.
"""

from __future__ import annotations

import json


class AllowlistError(SystemExit):
    pass


class Allowlist:
    def __init__(self, entries):
        self.entries = entries
        self.used = [False] * len(entries)

    @classmethod
    def load(cls, path):
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except FileNotFoundError:
            return cls([])
        except json.JSONDecodeError as err:
            raise AllowlistError(f"fob_analyze: malformed allowlist {path}: {err}")
        entries = data.get("entries", [])
        for i, entry in enumerate(entries):
            for key in ("rule", "file", "reason"):
                if not entry.get(key):
                    raise AllowlistError(
                        f"fob_analyze: allowlist entry #{i} in {path} lacks a "
                        f"non-empty `{key}` — suppressions must be reviewed "
                        "and justified")
        return cls(entries)

    def suppresses(self, violation) -> bool:
        for i, entry in enumerate(self.entries):
            if entry["rule"] != violation.rule:
                continue
            if entry["file"] != violation.file:
                continue
            if "snippet" in entry and entry["snippet"] != violation.snippet:
                continue
            self.used[i] = True
            return True
        return False

    def stale_entries(self):
        return [e for e, used in zip(self.entries, self.used) if not used]


def partition(violations, allowlist):
    """Splits into (reported, suppressed)."""
    reported, suppressed = [], []
    for v in violations:
        (suppressed if allowlist.suppresses(v) else reported).append(v)
    return reported, suppressed
