#!/usr/bin/env python3
"""Documentation link checker.

Verifies, for every markdown file passed on the command line (or the
default doc set when none is given):

  * every relative markdown link ``[text](target)`` resolves to an existing
    file or directory (anchors are stripped; http/https/mailto links are
    skipped);
  * every backticked repo path — a token starting with ``src/``, ``docs/``,
    ``tests/``, ``bench/``, ``examples/``, ``tools/`` or ``.github/`` —
    names a file or directory that exists, so prose references cannot go
    stale silently. Brace alternation (``foo.{h,cc}``) is expanded; tokens
    containing ``*`` are treated as globs and must match something.

Exit status: 0 everything resolves; 1 a link or path reference is broken
(each problem printed as ``file: broken reference``); 2 a document passed
on the command line does not exist or cannot be read (config error).
"""

import glob
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = [
    "README.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/BENCHMARKS.md",
    "docs/STATIC_ANALYSIS.md",
    "src/net/README.md",
    "src/runtime/handlers/README.md",
    "tools/README.md",
]

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")
PATH_PREFIXES = ("src/", "docs/", "tests/", "bench/", "examples/", "tools/", ".github/")


def expand_braces(token: str):
    """foo.{h,cc} -> [foo.h, foo.cc]; at most one brace group is expected."""
    match = re.search(r"\{([^}]*)\}", token)
    if not match:
        return [token]
    prefix, suffix = token[: match.start()], token[match.end():]
    return [prefix + alt + suffix for alt in match.group(1).split(",")]


def display_name(doc: Path) -> str:
    try:
        return str(doc.relative_to(REPO_ROOT))
    except ValueError:
        return str(doc)


def check_file(doc: Path) -> list:
    problems = []
    try:
        text = doc.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [f"{display_name(doc)}: unreadable ({err})"]

    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (doc.parent / path).exists():
            problems.append(f"{display_name(doc)}: broken link ({target})")

    for token in BACKTICK.findall(text):
        if not token.startswith(PATH_PREFIXES):
            continue
        # Prose like `src/harness/sweep.h, bench_sweep, ...` is not a path.
        if any(c in token for c in " ,;`"):
            continue
        for candidate in expand_braces(token):
            if "*" in candidate:
                if not glob.glob(str(REPO_ROOT / candidate)):
                    problems.append(
                        f"{display_name(doc)}: stale glob reference ({candidate})")
                continue
            if not (REPO_ROOT / candidate).exists():
                problems.append(
                    f"{display_name(doc)}: stale file reference ({candidate})")
    return problems


def main(argv: list) -> int:
    docs = [Path(a).resolve() for a in argv] if argv else [REPO_ROOT / d for d in DEFAULT_DOCS]
    missing = [doc for doc in docs if not doc.exists()]
    for doc in missing:
        print(f"error: document itself is missing: {display_name(doc)}", file=sys.stderr)
    if missing:
        # A misspelled argument (or a DEFAULT_DOCS entry that was deleted
        # without updating this list) is a config error, not a broken link.
        return 2
    problems = []
    for doc in docs:
        problems.extend(check_file(doc))
    for problem in problems:
        print(problem)
    if not problems:
        print(f"ok: {len(docs)} documents, all links and file references resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
