# Empty compiler generated dependencies file for apache_survival.
# This may be replaced when dependencies are built.
