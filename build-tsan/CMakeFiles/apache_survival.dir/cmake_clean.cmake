file(REMOVE_RECURSE
  "CMakeFiles/apache_survival.dir/examples/apache_survival.cpp.o"
  "CMakeFiles/apache_survival.dir/examples/apache_survival.cpp.o.d"
  "apache_survival"
  "apache_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apache_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
