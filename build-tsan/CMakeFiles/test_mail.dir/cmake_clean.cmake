file(REMOVE_RECURSE
  "CMakeFiles/test_mail.dir/tests/test_mail.cc.o"
  "CMakeFiles/test_mail.dir/tests/test_mail.cc.o.d"
  "test_mail"
  "test_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
