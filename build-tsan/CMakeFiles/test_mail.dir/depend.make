# Empty dependencies file for test_mail.
# This may be replaced when dependencies are built.
