file(REMOVE_RECURSE
  "CMakeFiles/test_property_heap.dir/tests/test_property_heap.cc.o"
  "CMakeFiles/test_property_heap.dir/tests/test_property_heap.cc.o.d"
  "test_property_heap"
  "test_property_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
