# Empty dependencies file for test_property_heap.
# This may be replaced when dependencies are built.
