file(REMOVE_RECURSE
  "CMakeFiles/test_process.dir/tests/test_process.cc.o"
  "CMakeFiles/test_process.dir/tests/test_process.cc.o.d"
  "test_process"
  "test_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
