file(REMOVE_RECURSE
  "CMakeFiles/test_attack_sweeps.dir/tests/test_attack_sweeps.cc.o"
  "CMakeFiles/test_attack_sweeps.dir/tests/test_attack_sweeps.cc.o.d"
  "test_attack_sweeps"
  "test_attack_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
