# Empty dependencies file for test_app_pine.
# This may be replaced when dependencies are built.
