file(REMOVE_RECURSE
  "CMakeFiles/test_app_pine.dir/tests/test_app_pine.cc.o"
  "CMakeFiles/test_app_pine.dir/tests/test_app_pine.cc.o.d"
  "test_app_pine"
  "test_app_pine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_pine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
