file(REMOVE_RECURSE
  "CMakeFiles/bench_manufacture.dir/bench/bench_manufacture.cc.o"
  "CMakeFiles/bench_manufacture.dir/bench/bench_manufacture.cc.o.d"
  "bench_manufacture"
  "bench_manufacture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_manufacture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
