# Empty compiler generated dependencies file for bench_manufacture.
# This may be replaced when dependencies are built.
