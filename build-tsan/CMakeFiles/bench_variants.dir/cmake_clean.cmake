file(REMOVE_RECURSE
  "CMakeFiles/bench_variants.dir/bench/bench_variants.cc.o"
  "CMakeFiles/bench_variants.dir/bench/bench_variants.cc.o.d"
  "bench_variants"
  "bench_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
