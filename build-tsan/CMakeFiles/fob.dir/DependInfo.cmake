
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apache.cc" "CMakeFiles/fob.dir/src/apps/apache.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/apache.cc.o.d"
  "/root/repo/src/apps/mc.cc" "CMakeFiles/fob.dir/src/apps/mc.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/mc.cc.o.d"
  "/root/repo/src/apps/mutt.cc" "CMakeFiles/fob.dir/src/apps/mutt.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/mutt.cc.o.d"
  "/root/repo/src/apps/pine.cc" "CMakeFiles/fob.dir/src/apps/pine.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/pine.cc.o.d"
  "/root/repo/src/apps/resident.cc" "CMakeFiles/fob.dir/src/apps/resident.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/resident.cc.o.d"
  "/root/repo/src/apps/sendmail.cc" "CMakeFiles/fob.dir/src/apps/sendmail.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/sendmail.cc.o.d"
  "/root/repo/src/apps/server_adapters.cc" "CMakeFiles/fob.dir/src/apps/server_adapters.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/server_adapters.cc.o.d"
  "/root/repo/src/apps/server_app.cc" "CMakeFiles/fob.dir/src/apps/server_app.cc.o" "gcc" "CMakeFiles/fob.dir/src/apps/server_app.cc.o.d"
  "/root/repo/src/archive/gzip.cc" "CMakeFiles/fob.dir/src/archive/gzip.cc.o" "gcc" "CMakeFiles/fob.dir/src/archive/gzip.cc.o.d"
  "/root/repo/src/archive/tar.cc" "CMakeFiles/fob.dir/src/archive/tar.cc.o" "gcc" "CMakeFiles/fob.dir/src/archive/tar.cc.o.d"
  "/root/repo/src/codec/base64.cc" "CMakeFiles/fob.dir/src/codec/base64.cc.o" "gcc" "CMakeFiles/fob.dir/src/codec/base64.cc.o.d"
  "/root/repo/src/codec/utf7.cc" "CMakeFiles/fob.dir/src/codec/utf7.cc.o" "gcc" "CMakeFiles/fob.dir/src/codec/utf7.cc.o.d"
  "/root/repo/src/codec/utf8.cc" "CMakeFiles/fob.dir/src/codec/utf8.cc.o" "gcc" "CMakeFiles/fob.dir/src/codec/utf8.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "CMakeFiles/fob.dir/src/harness/experiment.cc.o" "gcc" "CMakeFiles/fob.dir/src/harness/experiment.cc.o.d"
  "/root/repo/src/harness/stats.cc" "CMakeFiles/fob.dir/src/harness/stats.cc.o" "gcc" "CMakeFiles/fob.dir/src/harness/stats.cc.o.d"
  "/root/repo/src/harness/sweep.cc" "CMakeFiles/fob.dir/src/harness/sweep.cc.o" "gcc" "CMakeFiles/fob.dir/src/harness/sweep.cc.o.d"
  "/root/repo/src/harness/table.cc" "CMakeFiles/fob.dir/src/harness/table.cc.o" "gcc" "CMakeFiles/fob.dir/src/harness/table.cc.o.d"
  "/root/repo/src/harness/workloads.cc" "CMakeFiles/fob.dir/src/harness/workloads.cc.o" "gcc" "CMakeFiles/fob.dir/src/harness/workloads.cc.o.d"
  "/root/repo/src/libc/cstring.cc" "CMakeFiles/fob.dir/src/libc/cstring.cc.o" "gcc" "CMakeFiles/fob.dir/src/libc/cstring.cc.o.d"
  "/root/repo/src/mail/mbox.cc" "CMakeFiles/fob.dir/src/mail/mbox.cc.o" "gcc" "CMakeFiles/fob.dir/src/mail/mbox.cc.o.d"
  "/root/repo/src/mail/message.cc" "CMakeFiles/fob.dir/src/mail/message.cc.o" "gcc" "CMakeFiles/fob.dir/src/mail/message.cc.o.d"
  "/root/repo/src/net/frontend.cc" "CMakeFiles/fob.dir/src/net/frontend.cc.o" "gcc" "CMakeFiles/fob.dir/src/net/frontend.cc.o.d"
  "/root/repo/src/net/http.cc" "CMakeFiles/fob.dir/src/net/http.cc.o" "gcc" "CMakeFiles/fob.dir/src/net/http.cc.o.d"
  "/root/repo/src/net/imap.cc" "CMakeFiles/fob.dir/src/net/imap.cc.o" "gcc" "CMakeFiles/fob.dir/src/net/imap.cc.o.d"
  "/root/repo/src/net/smtp.cc" "CMakeFiles/fob.dir/src/net/smtp.cc.o" "gcc" "CMakeFiles/fob.dir/src/net/smtp.cc.o.d"
  "/root/repo/src/regex/regex.cc" "CMakeFiles/fob.dir/src/regex/regex.cc.o" "gcc" "CMakeFiles/fob.dir/src/regex/regex.cc.o.d"
  "/root/repo/src/regex/rewrite.cc" "CMakeFiles/fob.dir/src/regex/rewrite.cc.o" "gcc" "CMakeFiles/fob.dir/src/regex/rewrite.cc.o.d"
  "/root/repo/src/runtime/access_cursor.cc" "CMakeFiles/fob.dir/src/runtime/access_cursor.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/access_cursor.cc.o.d"
  "/root/repo/src/runtime/boundless.cc" "CMakeFiles/fob.dir/src/runtime/boundless.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/boundless.cc.o.d"
  "/root/repo/src/runtime/handlers/boundless.cc" "CMakeFiles/fob.dir/src/runtime/handlers/boundless.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/boundless.cc.o.d"
  "/root/repo/src/runtime/handlers/bounds_check.cc" "CMakeFiles/fob.dir/src/runtime/handlers/bounds_check.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/bounds_check.cc.o.d"
  "/root/repo/src/runtime/handlers/failure_oblivious.cc" "CMakeFiles/fob.dir/src/runtime/handlers/failure_oblivious.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/failure_oblivious.cc.o.d"
  "/root/repo/src/runtime/handlers/policy_handler.cc" "CMakeFiles/fob.dir/src/runtime/handlers/policy_handler.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/policy_handler.cc.o.d"
  "/root/repo/src/runtime/handlers/standard.cc" "CMakeFiles/fob.dir/src/runtime/handlers/standard.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/standard.cc.o.d"
  "/root/repo/src/runtime/handlers/threshold.cc" "CMakeFiles/fob.dir/src/runtime/handlers/threshold.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/threshold.cc.o.d"
  "/root/repo/src/runtime/handlers/wrap.cc" "CMakeFiles/fob.dir/src/runtime/handlers/wrap.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/wrap.cc.o.d"
  "/root/repo/src/runtime/handlers/zero_manufacture.cc" "CMakeFiles/fob.dir/src/runtime/handlers/zero_manufacture.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/handlers/zero_manufacture.cc.o.d"
  "/root/repo/src/runtime/manufactured.cc" "CMakeFiles/fob.dir/src/runtime/manufactured.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/manufactured.cc.o.d"
  "/root/repo/src/runtime/memlog.cc" "CMakeFiles/fob.dir/src/runtime/memlog.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/memlog.cc.o.d"
  "/root/repo/src/runtime/memory.cc" "CMakeFiles/fob.dir/src/runtime/memory.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/memory.cc.o.d"
  "/root/repo/src/runtime/policy.cc" "CMakeFiles/fob.dir/src/runtime/policy.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/policy.cc.o.d"
  "/root/repo/src/runtime/policy_spec.cc" "CMakeFiles/fob.dir/src/runtime/policy_spec.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/policy_spec.cc.o.d"
  "/root/repo/src/runtime/process.cc" "CMakeFiles/fob.dir/src/runtime/process.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/process.cc.o.d"
  "/root/repo/src/runtime/shard.cc" "CMakeFiles/fob.dir/src/runtime/shard.cc.o" "gcc" "CMakeFiles/fob.dir/src/runtime/shard.cc.o.d"
  "/root/repo/src/softmem/address_space.cc" "CMakeFiles/fob.dir/src/softmem/address_space.cc.o" "gcc" "CMakeFiles/fob.dir/src/softmem/address_space.cc.o.d"
  "/root/repo/src/softmem/fault.cc" "CMakeFiles/fob.dir/src/softmem/fault.cc.o" "gcc" "CMakeFiles/fob.dir/src/softmem/fault.cc.o.d"
  "/root/repo/src/softmem/heap.cc" "CMakeFiles/fob.dir/src/softmem/heap.cc.o" "gcc" "CMakeFiles/fob.dir/src/softmem/heap.cc.o.d"
  "/root/repo/src/softmem/object_table.cc" "CMakeFiles/fob.dir/src/softmem/object_table.cc.o" "gcc" "CMakeFiles/fob.dir/src/softmem/object_table.cc.o.d"
  "/root/repo/src/softmem/oob_registry.cc" "CMakeFiles/fob.dir/src/softmem/oob_registry.cc.o" "gcc" "CMakeFiles/fob.dir/src/softmem/oob_registry.cc.o.d"
  "/root/repo/src/softmem/stack.cc" "CMakeFiles/fob.dir/src/softmem/stack.cc.o" "gcc" "CMakeFiles/fob.dir/src/softmem/stack.cc.o.d"
  "/root/repo/src/vfs/vfs.cc" "CMakeFiles/fob.dir/src/vfs/vfs.cc.o" "gcc" "CMakeFiles/fob.dir/src/vfs/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
