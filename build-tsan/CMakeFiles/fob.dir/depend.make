# Empty dependencies file for fob.
# This may be replaced when dependencies are built.
