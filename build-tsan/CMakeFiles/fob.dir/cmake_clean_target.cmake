file(REMOVE_RECURSE
  "libfob.a"
)
