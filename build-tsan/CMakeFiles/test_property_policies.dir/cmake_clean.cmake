file(REMOVE_RECURSE
  "CMakeFiles/test_property_policies.dir/tests/test_property_policies.cc.o"
  "CMakeFiles/test_property_policies.dir/tests/test_property_policies.cc.o.d"
  "test_property_policies"
  "test_property_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
