# Empty compiler generated dependencies file for test_property_policies.
# This may be replaced when dependencies are built.
