# Empty compiler generated dependencies file for test_regex.
# This may be replaced when dependencies are built.
