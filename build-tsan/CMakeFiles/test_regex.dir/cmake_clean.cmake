file(REMOVE_RECURSE
  "CMakeFiles/test_regex.dir/tests/test_regex.cc.o"
  "CMakeFiles/test_regex.dir/tests/test_regex.cc.o.d"
  "test_regex"
  "test_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
