# Empty dependencies file for bench_mc.
# This may be replaced when dependencies are built.
