file(REMOVE_RECURSE
  "CMakeFiles/bench_mc.dir/bench/bench_mc.cc.o"
  "CMakeFiles/bench_mc.dir/bench/bench_mc.cc.o.d"
  "bench_mc"
  "bench_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
