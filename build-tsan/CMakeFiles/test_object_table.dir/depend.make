# Empty dependencies file for test_object_table.
# This may be replaced when dependencies are built.
