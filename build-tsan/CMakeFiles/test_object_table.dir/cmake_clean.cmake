file(REMOVE_RECURSE
  "CMakeFiles/test_object_table.dir/tests/test_object_table.cc.o"
  "CMakeFiles/test_object_table.dir/tests/test_object_table.cc.o.d"
  "test_object_table"
  "test_object_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_object_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
