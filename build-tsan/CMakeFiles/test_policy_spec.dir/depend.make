# Empty dependencies file for test_policy_spec.
# This may be replaced when dependencies are built.
