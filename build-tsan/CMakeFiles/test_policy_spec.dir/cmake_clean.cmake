file(REMOVE_RECURSE
  "CMakeFiles/test_policy_spec.dir/tests/test_policy_spec.cc.o"
  "CMakeFiles/test_policy_spec.dir/tests/test_policy_spec.cc.o.d"
  "test_policy_spec"
  "test_policy_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
