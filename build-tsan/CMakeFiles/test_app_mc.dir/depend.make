# Empty dependencies file for test_app_mc.
# This may be replaced when dependencies are built.
