file(REMOVE_RECURSE
  "CMakeFiles/test_app_mc.dir/tests/test_app_mc.cc.o"
  "CMakeFiles/test_app_mc.dir/tests/test_app_mc.cc.o.d"
  "test_app_mc"
  "test_app_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
