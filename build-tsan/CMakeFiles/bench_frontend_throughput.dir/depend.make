# Empty dependencies file for bench_frontend_throughput.
# This may be replaced when dependencies are built.
