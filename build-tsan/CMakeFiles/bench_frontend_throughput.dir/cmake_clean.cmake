file(REMOVE_RECURSE
  "CMakeFiles/bench_frontend_throughput.dir/bench/bench_frontend_throughput.cc.o"
  "CMakeFiles/bench_frontend_throughput.dir/bench/bench_frontend_throughput.cc.o.d"
  "bench_frontend_throughput"
  "bench_frontend_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontend_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
