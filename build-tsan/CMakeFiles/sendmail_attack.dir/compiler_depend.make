# Empty compiler generated dependencies file for sendmail_attack.
# This may be replaced when dependencies are built.
