file(REMOVE_RECURSE
  "CMakeFiles/sendmail_attack.dir/examples/sendmail_attack.cpp.o"
  "CMakeFiles/sendmail_attack.dir/examples/sendmail_attack.cpp.o.d"
  "sendmail_attack"
  "sendmail_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sendmail_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
