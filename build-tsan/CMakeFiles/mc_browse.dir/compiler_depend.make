# Empty compiler generated dependencies file for mc_browse.
# This may be replaced when dependencies are built.
