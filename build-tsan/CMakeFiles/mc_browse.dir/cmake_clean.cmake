file(REMOVE_RECURSE
  "CMakeFiles/mc_browse.dir/examples/mc_browse.cpp.o"
  "CMakeFiles/mc_browse.dir/examples/mc_browse.cpp.o.d"
  "mc_browse"
  "mc_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
