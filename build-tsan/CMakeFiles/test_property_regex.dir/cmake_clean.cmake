file(REMOVE_RECURSE
  "CMakeFiles/test_property_regex.dir/tests/test_property_regex.cc.o"
  "CMakeFiles/test_property_regex.dir/tests/test_property_regex.cc.o.d"
  "test_property_regex"
  "test_property_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
