# Empty compiler generated dependencies file for test_property_regex.
# This may be replaced when dependencies are built.
