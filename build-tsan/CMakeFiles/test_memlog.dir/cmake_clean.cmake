file(REMOVE_RECURSE
  "CMakeFiles/test_memlog.dir/tests/test_memlog.cc.o"
  "CMakeFiles/test_memlog.dir/tests/test_memlog.cc.o.d"
  "test_memlog"
  "test_memlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
