# Empty dependencies file for test_memlog.
# This may be replaced when dependencies are built.
