file(REMOVE_RECURSE
  "CMakeFiles/test_address_space.dir/tests/test_address_space.cc.o"
  "CMakeFiles/test_address_space.dir/tests/test_address_space.cc.o.d"
  "test_address_space"
  "test_address_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_address_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
