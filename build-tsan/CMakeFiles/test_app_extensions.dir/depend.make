# Empty dependencies file for test_app_extensions.
# This may be replaced when dependencies are built.
