file(REMOVE_RECURSE
  "CMakeFiles/test_app_extensions.dir/tests/test_app_extensions.cc.o"
  "CMakeFiles/test_app_extensions.dir/tests/test_app_extensions.cc.o.d"
  "test_app_extensions"
  "test_app_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
