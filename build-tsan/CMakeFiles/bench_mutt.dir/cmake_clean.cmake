file(REMOVE_RECURSE
  "CMakeFiles/bench_mutt.dir/bench/bench_mutt.cc.o"
  "CMakeFiles/bench_mutt.dir/bench/bench_mutt.cc.o.d"
  "bench_mutt"
  "bench_mutt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
