# Empty compiler generated dependencies file for bench_mutt.
# This may be replaced when dependencies are built.
