file(REMOVE_RECURSE
  "CMakeFiles/bench_check_cost.dir/bench/bench_check_cost.cc.o"
  "CMakeFiles/bench_check_cost.dir/bench/bench_check_cost.cc.o.d"
  "bench_check_cost"
  "bench_check_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_check_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
