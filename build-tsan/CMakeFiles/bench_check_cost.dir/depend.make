# Empty dependencies file for bench_check_cost.
# This may be replaced when dependencies are built.
