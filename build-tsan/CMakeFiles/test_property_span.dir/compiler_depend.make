# Empty compiler generated dependencies file for test_property_span.
# This may be replaced when dependencies are built.
