file(REMOVE_RECURSE
  "CMakeFiles/test_property_span.dir/tests/test_property_span.cc.o"
  "CMakeFiles/test_property_span.dir/tests/test_property_span.cc.o.d"
  "test_property_span"
  "test_property_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
