# Empty compiler generated dependencies file for bench_span_path.
# This may be replaced when dependencies are built.
