file(REMOVE_RECURSE
  "CMakeFiles/bench_span_path.dir/bench/bench_span_path.cc.o"
  "CMakeFiles/bench_span_path.dir/bench/bench_span_path.cc.o.d"
  "bench_span_path"
  "bench_span_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_span_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
