# Empty compiler generated dependencies file for mutt_utf7_demo.
# This may be replaced when dependencies are built.
