# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mutt_utf7_demo.
