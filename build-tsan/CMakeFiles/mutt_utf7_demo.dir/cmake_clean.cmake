file(REMOVE_RECURSE
  "CMakeFiles/mutt_utf7_demo.dir/examples/mutt_utf7_demo.cpp.o"
  "CMakeFiles/mutt_utf7_demo.dir/examples/mutt_utf7_demo.cpp.o.d"
  "mutt_utf7_demo"
  "mutt_utf7_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutt_utf7_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
