file(REMOVE_RECURSE
  "CMakeFiles/bench_apache.dir/bench/bench_apache.cc.o"
  "CMakeFiles/bench_apache.dir/bench/bench_apache.cc.o.d"
  "bench_apache"
  "bench_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
