# Empty dependencies file for bench_apache.
# This may be replaced when dependencies are built.
