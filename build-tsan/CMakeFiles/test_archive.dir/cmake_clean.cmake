file(REMOVE_RECURSE
  "CMakeFiles/test_archive.dir/tests/test_archive.cc.o"
  "CMakeFiles/test_archive.dir/tests/test_archive.cc.o.d"
  "test_archive"
  "test_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
