file(REMOVE_RECURSE
  "CMakeFiles/bench_security_matrix.dir/bench/bench_security_matrix.cc.o"
  "CMakeFiles/bench_security_matrix.dir/bench/bench_security_matrix.cc.o.d"
  "bench_security_matrix"
  "bench_security_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
