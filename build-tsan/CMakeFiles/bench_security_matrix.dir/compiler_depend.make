# Empty compiler generated dependencies file for bench_security_matrix.
# This may be replaced when dependencies are built.
