# Empty compiler generated dependencies file for test_libc.
# This may be replaced when dependencies are built.
