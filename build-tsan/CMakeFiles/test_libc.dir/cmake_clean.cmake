file(REMOVE_RECURSE
  "CMakeFiles/test_libc.dir/tests/test_libc.cc.o"
  "CMakeFiles/test_libc.dir/tests/test_libc.cc.o.d"
  "test_libc"
  "test_libc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
