file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep.dir/bench/bench_sweep.cc.o"
  "CMakeFiles/bench_sweep.dir/bench/bench_sweep.cc.o.d"
  "bench_sweep"
  "bench_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
