file(REMOVE_RECURSE
  "CMakeFiles/test_memory_policies.dir/tests/test_memory_policies.cc.o"
  "CMakeFiles/test_memory_policies.dir/tests/test_memory_policies.cc.o.d"
  "test_memory_policies"
  "test_memory_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
