# Empty dependencies file for bench_apache_throughput.
# This may be replaced when dependencies are built.
