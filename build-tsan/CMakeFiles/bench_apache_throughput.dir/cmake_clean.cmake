file(REMOVE_RECURSE
  "CMakeFiles/bench_apache_throughput.dir/bench/bench_apache_throughput.cc.o"
  "CMakeFiles/bench_apache_throughput.dir/bench/bench_apache_throughput.cc.o.d"
  "bench_apache_throughput"
  "bench_apache_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apache_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
