file(REMOVE_RECURSE
  "CMakeFiles/test_manufactured.dir/tests/test_manufactured.cc.o"
  "CMakeFiles/test_manufactured.dir/tests/test_manufactured.cc.o.d"
  "test_manufactured"
  "test_manufactured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manufactured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
