# Empty compiler generated dependencies file for test_manufactured.
# This may be replaced when dependencies are built.
