# Empty dependencies file for test_app_apache.
# This may be replaced when dependencies are built.
