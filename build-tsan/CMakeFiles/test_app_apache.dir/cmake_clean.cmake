file(REMOVE_RECURSE
  "CMakeFiles/test_app_apache.dir/tests/test_app_apache.cc.o"
  "CMakeFiles/test_app_apache.dir/tests/test_app_apache.cc.o.d"
  "test_app_apache"
  "test_app_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
