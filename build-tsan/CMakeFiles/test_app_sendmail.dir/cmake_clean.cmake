file(REMOVE_RECURSE
  "CMakeFiles/test_app_sendmail.dir/tests/test_app_sendmail.cc.o"
  "CMakeFiles/test_app_sendmail.dir/tests/test_app_sendmail.cc.o.d"
  "test_app_sendmail"
  "test_app_sendmail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_sendmail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
