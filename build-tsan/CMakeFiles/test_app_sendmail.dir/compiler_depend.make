# Empty compiler generated dependencies file for test_app_sendmail.
# This may be replaced when dependencies are built.
