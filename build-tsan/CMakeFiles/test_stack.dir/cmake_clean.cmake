file(REMOVE_RECURSE
  "CMakeFiles/test_stack.dir/tests/test_stack.cc.o"
  "CMakeFiles/test_stack.dir/tests/test_stack.cc.o.d"
  "test_stack"
  "test_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
