# Empty compiler generated dependencies file for test_server_app.
# This may be replaced when dependencies are built.
