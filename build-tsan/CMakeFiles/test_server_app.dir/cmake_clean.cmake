file(REMOVE_RECURSE
  "CMakeFiles/test_server_app.dir/tests/test_server_app.cc.o"
  "CMakeFiles/test_server_app.dir/tests/test_server_app.cc.o.d"
  "test_server_app"
  "test_server_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
