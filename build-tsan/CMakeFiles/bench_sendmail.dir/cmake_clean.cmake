file(REMOVE_RECURSE
  "CMakeFiles/bench_sendmail.dir/bench/bench_sendmail.cc.o"
  "CMakeFiles/bench_sendmail.dir/bench/bench_sendmail.cc.o.d"
  "bench_sendmail"
  "bench_sendmail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sendmail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
