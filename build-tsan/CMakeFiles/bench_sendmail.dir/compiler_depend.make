# Empty compiler generated dependencies file for bench_sendmail.
# This may be replaced when dependencies are built.
