file(REMOVE_RECURSE
  "CMakeFiles/test_app_mutt.dir/tests/test_app_mutt.cc.o"
  "CMakeFiles/test_app_mutt.dir/tests/test_app_mutt.cc.o.d"
  "test_app_mutt"
  "test_app_mutt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_mutt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
