# Empty dependencies file for test_app_mutt.
# This may be replaced when dependencies are built.
