# Empty dependencies file for bench_pine.
# This may be replaced when dependencies are built.
