file(REMOVE_RECURSE
  "CMakeFiles/bench_pine.dir/bench/bench_pine.cc.o"
  "CMakeFiles/bench_pine.dir/bench/bench_pine.cc.o.d"
  "bench_pine"
  "bench_pine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
