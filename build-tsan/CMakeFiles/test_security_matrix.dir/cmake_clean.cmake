file(REMOVE_RECURSE
  "CMakeFiles/test_security_matrix.dir/tests/test_security_matrix.cc.o"
  "CMakeFiles/test_security_matrix.dir/tests/test_security_matrix.cc.o.d"
  "test_security_matrix"
  "test_security_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
