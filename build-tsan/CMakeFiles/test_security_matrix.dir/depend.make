# Empty dependencies file for test_security_matrix.
# This may be replaced when dependencies are built.
