// Quickstart: the failure-oblivious runtime in 80 lines.
//
// Allocates a buffer that is too small, overflows it under each of the
// three compilations the paper compares, and shows what happens:
//   Standard          -> heap corruption, the process dies;
//   Bounds Check      -> the checker terminates the process;
//   Failure Oblivious -> writes discarded, reads manufactured, execution
//                        continues — with every error in the log.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "src/libc/cstring.h"
#include "src/runtime/memory.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s compilation ===\n", PolicyName(policy));
    Memory memory(policy);

    RunResult result = RunAsProcess([&] {
      // A classic size miscalculation: 16 bytes for a 24-byte string.
      Ptr small = memory.Malloc(16, "greeting_buf");
      Ptr neighbor = memory.NewCString("precious data", "neighbor");
      Ptr text = memory.NewCString("a string of 24 characters");

      StrCpy(memory, small, text);  // overflows by 10 bytes

      std::printf("  after overflow: buf=\"%s\"\n",
                  memory.ReadBytesAsString(small, 16).c_str());
      std::printf("  neighbor intact? \"%s\"\n", memory.ReadCString(neighbor).c_str());

      // Reading past the end: under failure-oblivious execution these are
      // manufactured values (0, 1, 2, 0, 1, 3, ...).
      std::printf("  reads past the end:");
      for (int i = 0; i < 6; ++i) {
        std::printf(" %d", memory.ReadU8(small + 16 + i));
      }
      std::printf("\n");

      memory.Free(small);  // Standard compilation notices the corruption here
      std::printf("  free(buf) returned normally\n");
    });

    if (result.crashed()) {
      std::printf("  >>> process died: %s\n", ExitStatusName(result.status));
    } else {
      std::printf("  >>> process survived\n");
    }
    std::printf("  memory-error log: %llu entries\n",
                static_cast<unsigned long long>(memory.log().total_errors()));
    for (const MemErrorRecord& record : memory.log().recent()) {
      std::printf("    %s\n", record.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("Failure-oblivious computing: the program is oblivious to its failure\n"
              "to correctly access memory — and keeps serving its users.\n");
  return 0;
}
