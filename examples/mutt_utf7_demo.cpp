// The paper's running example (Section 2, Figure 1): Mutt's utf8_to_utf7.
//
// Drives the §4.6 attack stream — open a folder whose UTF-8 name expands by
// more than 2x in the undersized conversion buffer, then keep reading mail
// — through the uniform ServerApp session API. Under failure-oblivious
// compilation the writes beyond the buffer are discarded, the truncated
// name is sent to the IMAP server, the server answers "NO Mailbox does not
// exist", Mutt's standard error handling reports it — and the user goes on
// reading mail from legitimate folders.
//
// Build & run:  ./build/examples/mutt_utf7_demo

#include <cstdio>
#include <memory>

#include "src/codec/utf7.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  TrafficStream stream = MakeAttackStream(Server::kMutt);
  const std::string& attack = stream.requests[0].target;
  std::printf("attack folder name: %zu UTF-8 bytes\n", attack.size());
  std::printf("correct UTF-7 form: %zu bytes (Mutt allocates only %zu)\n\n",
              Utf8ToUtf7(attack)->size(), attack.size() * 2 + 1);

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    std::unique_ptr<ServerApp> mutt = MakeServerApp(Server::kMutt, policy);
    bool died = false;
    for (const ServerRequest& request : stream.requests) {
      ServerResponse response;
      RunResult result = RunAsProcess([&] { response = mutt->Handle(request); });
      if (result.crashed()) {
        std::printf("  mutt died before the UI came up: %s\n", ExitStatusName(result.status));
        std::printf("  (the user cannot read any mail at all)\n\n");
        died = true;
        break;
      }
      if (request.tag == RequestTag::kAttack) {
        std::printf("  folder open failed gracefully: %s\n", response.error.c_str());
      } else if (request.op == "read") {
        std::printf("  reading message %s:\n    %.60s...\n", request.arg.c_str(),
                    response.body.c_str());
      } else {
        std::printf("  %s %s: %s\n", request.op.c_str(), request.target.c_str(),
                    response.ok ? response.body.c_str() : response.error.c_str());
      }
    }
    if (!died) {
      std::printf("  memory errors executed through: %llu\n\n",
                  static_cast<unsigned long long>(mutt->memory().log().total_errors()));
    }
  }
  return 0;
}
