// The paper's running example (Section 2, Figure 1): Mutt's utf8_to_utf7.
//
// Walks the exact scenario of the paper: a mail folder whose UTF-8 name
// expands by more than 2x when converted to modified UTF-7 overflows the
// undersized conversion buffer. Under failure-oblivious compilation the
// writes beyond the buffer are discarded, the truncated name is sent to the
// IMAP server, the server answers "NO Mailbox does not exist", Mutt's
// standard error handling reports it — and the user goes on reading mail
// from legitimate folders.
//
// Build & run:  ./build/examples/mutt_utf7_demo

#include <cstdio>

#include "src/apps/mutt.h"
#include "src/codec/utf7.h"
#include "src/harness/workloads.h"
#include "src/mail/message.h"
#include "src/net/imap.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("alice@example.org", "me", "status",
                                                 "the deployment is green\n"),
                               MailMessage::Make("bob@example.org", "me", "lunch?", "noon?\n")});
  imap.AddFolderUtf8("archive", {});

  std::string attack = MakeMuttAttackFolderName();
  std::printf("attack folder name: %zu UTF-8 bytes\n", attack.size());
  std::printf("correct UTF-7 form: %zu bytes (Mutt allocates only %zu)\n\n",
              Utf8ToUtf7(attack)->size(), attack.size() * 2 + 1);

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    MuttApp mutt(policy, &imap);
    MuttApp::Result open;
    RunResult result = RunAsProcess([&] { open = mutt.OpenFolder(attack); });
    if (result.crashed()) {
      std::printf("  mutt died before the UI came up: %s\n", ExitStatusName(result.status));
      std::printf("  (the user cannot read any mail at all)\n\n");
      continue;
    }
    std::printf("  folder open failed gracefully: %s\n", open.error.c_str());
    auto inbox = mutt.OpenFolder("INBOX");
    std::printf("  subsequent request: %s\n", inbox.display.c_str());
    auto read = mutt.ReadMessage("INBOX", 1);
    std::printf("  reading message 1:\n    %.60s...\n", read.display.c_str());
    auto move = mutt.MoveMessage("INBOX", 1, "archive");
    std::printf("  moving it to archive: %s\n", move.display.c_str());
    std::printf("  memory errors executed through: %llu\n\n",
                static_cast<unsigned long long>(mutt.memory().log().total_errors()));
  }
  return 0;
}
