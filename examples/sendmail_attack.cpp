// Sendmail's prescan bug (Section 4.4): an SMTP transcript.
//
// Replays the attack session against the three compilations and prints the
// actual SMTP dialogue. Under failure-oblivious execution the crafted
// address turns into an *anticipated* error — "553 address too long" — and
// the session, and the daemon, keep going.
//
// Build & run:  ./build/examples/sendmail_attack

#include <cstdio>
#include <memory>

#include "src/apps/sendmail.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  auto attack_session = MakeSendmailAttackSession(/*pairs=*/24);
  std::printf("attack MAIL FROM address: %zu bytes of filler + \\ \\ 0xff triples\n\n",
              attack_session[1].size());

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    std::unique_ptr<SendmailApp> daemon;
    RunResult boot = RunAsProcess([&] { daemon = std::make_unique<SendmailApp>(policy); });
    if (boot.crashed()) {
      // §4.4.4: the daemon's own wakeup path has a memory error on every
      // run — the Bounds Check version never even starts.
      std::printf("  daemon died during initialization: %s\n", ExitStatusName(boot.status));
      std::printf("  (the queue-scan memory error fires on every wakeup)\n\n");
      continue;
    }
    std::vector<std::string> responses;
    RunResult session =
        RunAsProcess([&] { responses = daemon->HandleSession(attack_session); });
    if (session.crashed()) {
      std::printf("  session crashed the daemon: %s%s\n", ExitStatusName(session.status),
                  session.possible_code_injection ? " [attacker bytes reached the return address]"
                                                  : "");
    } else {
      for (size_t i = 0; i < responses.size(); ++i) {
        std::printf("  S: %s\n", responses[i].c_str());
      }
    }
    if (!session.crashed()) {
      auto delivery = daemon->HandleSession(MakeSendmailSession("user@localhost", 64));
      std::printf("  follow-up delivery: %s (mailbox now %zu messages)\n",
                  delivery.back().c_str(), daemon->local_mailbox().size());
    }
    std::printf("\n");
  }
  return 0;
}
