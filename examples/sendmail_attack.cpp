// Sendmail's prescan bug (Section 4.4): an SMTP transcript.
//
// Replays the §4.4 attack stream through the uniform ServerApp session API
// against the three compilations and prints the actual SMTP dialogue.
// Under failure-oblivious execution the crafted address turns into an
// *anticipated* error — "553 address too long" — and the session, and the
// daemon, keep going.
//
// Build & run:  ./build/examples/sendmail_attack

#include <cstdio>
#include <memory>

#include "src/harness/workloads.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  TrafficStream stream = MakeAttackStream(Server::kSendmail);
  std::printf("attack MAIL FROM address: %zu bytes of filler + \\ \\ 0xff triples\n\n",
              stream.requests[0].lines[1].size());

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    std::unique_ptr<ServerApp> daemon;
    RunResult boot =
        RunAsProcess([&] { daemon = MakeServerApp(Server::kSendmail, policy); });
    if (boot.crashed()) {
      // §4.4.4: the daemon's own wakeup path has a memory error on every
      // run — the Bounds Check version never even starts.
      std::printf("  daemon died during initialization: %s\n", ExitStatusName(boot.status));
      std::printf("  (the queue-scan memory error fires on every wakeup)\n\n");
      continue;
    }
    for (const ServerRequest& request : stream.requests) {
      ServerResponse response;
      RunResult step = RunAsProcess([&] { response = daemon->Handle(request); });
      if (step.crashed()) {
        std::printf("  %s request crashed the daemon: %s%s\n", RequestTagName(request.tag),
                    ExitStatusName(step.status),
                    step.possible_code_injection
                        ? " [attacker bytes reached the return address]"
                        : "");
        break;
      }
      if (request.op == "session") {
        std::printf("  [%s session]\n", RequestTagName(request.tag));
        for (const std::string& line : response.lines) {
          std::printf("  S: %s\n", line.c_str());
        }
        if (request.tag == RequestTag::kLegit) {
          std::printf("  follow-up delivery %s\n",
                      response.acceptable ? "delivered to the mailbox" : "FAILED");
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
