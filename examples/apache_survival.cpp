// Apache under attack (Section 4.3): three compilations, one attack URL.
//
// Shows the worker-pool dynamics: Standard and Bounds Check children die on
// every attack request and get re-forked (paying initialization each time);
// the Failure Oblivious server discards the out-of-bounds offset writes and
// serves the exact same response a correct server would.
//
// Build & run:  ./build/examples/apache_survival

#include <cstdio>

#include "src/apps/apache.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  Vfs docroot = MakeApacheDocroot();
  HttpRequest attack = MakeHttpGet(MakeApacheAttackUrl());
  HttpRequest legit = MakeHttpGet("/index.html");
  std::printf("attack URL: %s\n", attack.path.c_str());
  std::printf("(matches a rewrite rule with 12 captures; the offsets buffer holds 10)\n\n");

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    WorkerPool<ApacheApp> pool(2, [&] {
      return std::make_unique<ApacheApp>(policy, &docroot, ApacheApp::DefaultConfigText());
    });
    int attack_ok = 0;
    int legit_ok = 0;
    for (int round = 0; round < 5; ++round) {
      HttpResponse response;
      RunResult a = pool.Dispatch([&](ApacheApp& app) { response = app.Handle(attack); });
      if (a.ok()) {
        ++attack_ok;
        std::printf("  attack request -> %d, body \"%s\"\n", response.status,
                    response.body.c_str());
      } else {
        std::printf("  attack request -> child died (%s)%s\n", ExitStatusName(a.status),
                    a.possible_code_injection ? " [code-injection risk]" : "");
      }
      RunResult l = pool.Dispatch([&](ApacheApp& app) { response = app.Handle(legit); });
      if (l.ok() && response.status == 200) {
        ++legit_ok;
      }
    }
    std::printf("  attacks answered: %d/5, legit served: %d/5, child restarts: %llu\n\n",
                attack_ok, legit_ok, static_cast<unsigned long long>(pool.restarts()));
  }
  std::printf("The regenerating pool keeps the crashing versions alive, but every\n"
              "attack costs a re-fork — the throughput experiment (bench_apache_throughput)\n"
              "quantifies what that does under load.\n");
  return 0;
}
