// Apache under attack (Section 4.3): three compilations, one attack URL,
// served through the multiplexed Frontend.
//
// Two clients — an attacker and a legitimate user — write serialized
// ServerRequests onto their LineChannels; the Frontend batches them onto a
// regenerating WorkerPool. Standard and Bounds Check children die on every
// attack request and get re-forked (paying initialization each time, plus
// the re-queue of whatever shared their batch); the Failure Oblivious
// server discards the out-of-bounds offset writes and serves the exact
// same response a correct server would.
//
// Build & run:  ./build/examples/apache_survival

#include <cstdio>

#include "src/harness/workloads.h"
#include "src/net/frontend.h"

int main() {
  using namespace fob;

  ServerRequest attack = MakeRequest(RequestTag::kAttack, "get", MakeApacheAttackUrl());
  ServerRequest legit = MakeRequest(RequestTag::kLegit, "get", "/index.html");
  std::printf("attack URL: %s\n", attack.target.c_str());
  std::printf("(matches a rewrite rule with 12 captures; the offsets buffer holds 10)\n\n");

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    Frontend frontend([policy] { return MakeServerApp(Server::kApache, policy); },
                      Frontend::Options{.workers = 2, .batch = 2});
    LineChannel& attacker = frontend.Connect(1);
    LineChannel& user = frontend.Connect(2);
    for (int round = 0; round < 5; ++round) {
      attacker.ClientSend(attack.Serialize());
      user.ClientSend(legit.Serialize());
    }
    attacker.ClientClose();
    user.ClientClose();
    frontend.Run();

    int attack_ok = 0;
    for (const std::string& line : attacker.ClientReceiveAll()) {
      auto response = ServerResponse::Deserialize(line);
      if (response && response->status == 200) {
        ++attack_ok;
        std::printf("  attack request -> %d, body \"%s\"\n", response->status,
                    response->body.c_str());
      } else if (response) {
        std::printf("  attack request -> child died (%s)\n", response->error.c_str());
      }
    }
    int legit_ok = 0;
    for (const std::string& line : user.ClientReceiveAll()) {
      auto response = ServerResponse::Deserialize(line);
      if (response && response->status == 200) {
        ++legit_ok;
      }
    }
    std::printf("  attacks answered: %d/5, legit served: %d/5, child restarts: %llu, "
                "batch remainders re-queued: %llu\n\n",
                attack_ok, legit_ok, static_cast<unsigned long long>(frontend.restarts()),
                static_cast<unsigned long long>(frontend.stats().requeued));
  }
  std::printf("The regenerating pool keeps the crashing versions alive, but every\n"
              "attack costs a re-fork plus its batch's re-queue — the throughput\n"
              "experiments (bench_apache_throughput, bench_frontend_throughput)\n"
              "quantify what that does under load.\n");
  return 0;
}
