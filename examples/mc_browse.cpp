// Midnight Commander's malicious archive (Section 4.5) and the
// manufactured-value sequence (Section 3).
//
// Browses a crafted .tgz whose absolute symlinks overflow the link-name
// buffer, under the three compilations — and then repeats the
// failure-oblivious browse with a zeros-only manufactured sequence to show
// the hang the paper's 0,1,k sequence is designed to avoid.
//
// Build & run:  ./build/examples/mc_browse

#include <cstdio>

#include "src/apps/mc.h"
#include "src/harness/workloads.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  std::string tgz = MakeMcAttackTgz();
  std::printf("malicious archive: %zu bytes (tar.gz, 4 absolute symlinks)\n\n", tgz.size());

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    McApp mc(policy, McApp::DefaultConfigText(/*with_blank_lines=*/false));
    mc.memory().set_access_budget(5'000'000);
    McApp::ArchiveListing listing;
    RunResult result = RunAsProcess([&] { listing = mc.BrowseTgz(tgz); });
    if (result.crashed()) {
      std::printf("  mc died opening the archive: %s\n\n", ExitStatusName(result.status));
      continue;
    }
    for (const std::string& row : listing.rows) {
      std::printf("  %s\n", row.c_str());
    }
    MakeMcTree(mc.fs(), "/home/me/project", 64 << 10);
    bool ok = mc.Copy("/home/me/project", "/home/me/backup");
    std::printf("  back to work: copy project -> backup: %s\n\n", ok ? "done" : "FAILED");
  }

  std::printf("=== Failure Oblivious, zeros-only manufactured values (Section 3 ablation) ===\n");
  McApp naive(AccessPolicy::kFailureOblivious, McApp::DefaultConfigText(false),
              SequenceKind::kZeros);
  naive.memory().set_access_budget(2'000'000);
  RunResult result = RunAsProcess([&] { naive.BrowseTgz(tgz); });
  std::printf("  outcome: %s\n", ExitStatusName(result.status));
  std::printf("  (the '/'-search loop never sees a '/', exactly the hang the paper's\n"
              "   0,1,2,0,1,3,... sequence exists to prevent)\n");
  return 0;
}
