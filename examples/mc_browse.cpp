// Midnight Commander's malicious archive (Section 4.5) and the
// manufactured-value sequence (Section 3).
//
// Drives the §4.5 attack stream — browse the crafted .tgz whose absolute
// symlinks overflow the link-name buffer, then go back to file management —
// through the uniform ServerApp session API under the three compilations,
// and then repeats the failure-oblivious browse with a zeros-only
// manufactured sequence to show the hang the paper's 0,1,k sequence is
// designed to avoid.
//
// Build & run:  ./build/examples/mc_browse

#include <cstdio>
#include <memory>

#include "src/harness/workloads.h"
#include "src/runtime/process.h"

int main() {
  using namespace fob;

  TrafficStream stream = MakeAttackStream(Server::kMc);
  std::printf("malicious archive: %zu bytes (tar.gz, 4 absolute symlinks)\n\n",
              stream.requests[0].payload.size());

  // The legacy demo used a clean config; keep that here so only the archive
  // is the attack (the blank-line startup bug is §4.5.4's story).
  ServerSetup setup;
  setup.mc_config_blank_lines = false;

  for (AccessPolicy policy : kPaperPolicies) {
    std::printf("=== %s ===\n", PolicyName(policy));
    std::unique_ptr<ServerApp> mc = MakeServerApp(Server::kMc, policy, setup);
    mc->memory().set_access_budget(5'000'000);
    bool died = false;
    for (const ServerRequest& request : stream.requests) {
      ServerResponse response;
      RunResult result = RunAsProcess([&] { response = mc->Handle(request); });
      if (result.crashed()) {
        std::printf("  mc died on %s %s: %s\n\n", RequestTagName(request.tag),
                    request.op.c_str(), ExitStatusName(result.status));
        died = true;
        break;
      }
      if (request.op == "browse") {
        for (const std::string& row : response.lines) {
          std::printf("  %s\n", row.c_str());
        }
      } else if (request.tag == RequestTag::kLegit) {
        std::printf("  back to work: %s %s -> %s\n", request.op.c_str(),
                    request.target.c_str(), response.ok ? "done" : "FAILED");
      }
    }
    if (!died) {
      std::printf("\n");
    }
  }

  std::printf("=== Failure Oblivious, zeros-only manufactured values (Section 3 ablation) ===\n");
  ServerSetup zeros = setup;
  zeros.mc_sequence = SequenceKind::kZeros;
  std::unique_ptr<ServerApp> naive =
      MakeServerApp(Server::kMc, AccessPolicy::kFailureOblivious, zeros);
  naive->memory().set_access_budget(2'000'000);
  RunResult result = RunAsProcess([&] { naive->Handle(stream.requests[0]); });
  std::printf("  outcome: %s\n", ExitStatusName(result.status));
  std::printf("  (the '/'-search loop never sees a '/', exactly the hang the paper's\n"
              "   0,1,2,0,1,3,... sequence exists to prevent)\n");
  return 0;
}
