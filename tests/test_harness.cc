#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "src/harness/experiment.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/workloads.h"
#include "src/mail/mbox.h"
#include "src/net/http.h"

namespace fob {
namespace {

// ---- stats -----------------------------------------------------------------

TEST(StatsTest, MeanAndRelativeStddev) {
  TimingStats stats = ComputeStats({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.mean_ms, 2.0);
  EXPECT_NEAR(stats.stddev_pct, 50.0, 0.01);  // stddev 1.0 over mean 2.0
  EXPECT_EQ(stats.samples, 3u);
}

TEST(StatsTest, SingleSampleHasZeroSpread) {
  TimingStats stats = ComputeStats({5.0});
  EXPECT_DOUBLE_EQ(stats.mean_ms, 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev_pct, 0.0);
}

TEST(StatsTest, EmptyIsZero) {
  TimingStats stats = ComputeStats({});
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 0.0);
}

TEST(StatsTest, MeasureRunsTheRequestedRepetitions) {
  int calls = 0;
  TimingStats stats = MeasureMs([&] { ++calls; }, 10);
  EXPECT_EQ(calls, 11);  // warmup + 10
  EXPECT_EQ(stats.samples, 10u);
}

TEST(StatsTest, MeasurePairInterleavesAndBatches) {
  int a = 0;
  int b = 0;
  PairStats pair = MeasurePairMs([&] { ++a; }, [&] { ++b; }, /*batch=*/4, /*reps=*/5);
  EXPECT_EQ(a, 1 + 4 * 5);  // warmup + batch*reps
  EXPECT_EQ(b, 1 + 4 * 5);
  EXPECT_EQ(pair.a.samples, 5u);
  EXPECT_EQ(pair.b.samples, 5u);
}

TEST(StatsTest, CleanupRunsBetweenSamples) {
  int work = 0;
  int undo = 0;
  MeasureMsWithCleanup([&] { ++work; }, [&] { ++undo; }, 5);
  EXPECT_EQ(work, 6);
  EXPECT_EQ(undo, 6);
}

TEST(StatsTest, StopwatchAdvances) {
  Stopwatch watch;
  // The sum of 0..99999 overflows int; 64 bits keeps the busy-loop defined.
  volatile int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  EXPECT_GT(watch.ElapsedMs(), 0.0);
}

// ---- table -------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  Table table({"Name", "Value"});
  table.AddRow({"x", "1"});
  table.AddRow({"long name", "23"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Name      | Value |"), std::string::npos);
  EXPECT_NE(out.find("| long name | 23    |"), std::string::npos);
  // Frame lines above/below header and at the bottom.
  EXPECT_EQ(std::count(out.begin(), out.end(), '+') % 3, 0);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"A", "B", "C"});
  table.AddRow({"only one"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("only one"), std::string::npos);
}

TEST(TableTest, CellFormatsLikeThePaper) {
  EXPECT_EQ(Table::Cell(0.287, 7.1), "0.287 +/- 7.1%");
  EXPECT_EQ(Table::Num(6.94), "6.94");
  EXPECT_EQ(Table::Num(1.25, 3), "1.25");
}

// ---- workloads ----------------------------------------------------------------

TEST(WorkloadTest, PineAttackMboxContainsTheTrigger) {
  auto messages = ParseMbox(MakePineMbox(4, true));
  ASSERT_EQ(messages.size(), 5u);
  bool found = false;
  for (const auto& message : messages) {
    if (message.From() == MakePineAttackFrom()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadTest, PineMboxBodySizing) {
  auto messages = ParseMbox(MakePineMbox(2, false, 4096));
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_GE(messages[0].body.size(), 4096u);
}

TEST(WorkloadTest, ApacheAttackUrlMatchesTheVulnerableRule) {
  std::string url = MakeApacheAttackUrl();
  EXPECT_EQ(url.substr(0, 10), "/captures/");
  // 12 '-'-separated segments
  EXPECT_EQ(std::count(url.begin(), url.end(), '-'), 11);
}

TEST(WorkloadTest, ApacheDocrootHasTheFigure3Pages) {
  Vfs docroot = MakeApacheDocroot();
  ASSERT_TRUE(docroot.FileSize("/index.html").has_value());
  EXPECT_NEAR(static_cast<double>(*docroot.FileSize("/index.html")), 5 * 1024, 64);
  EXPECT_EQ(docroot.FileSize("/files/big.bin"), 830 * 1024u);
}

TEST(WorkloadTest, SendmailSessionsHaveRequestedBodySize) {
  auto session = MakeSendmailSession("a@localhost", 4096);
  size_t body_bytes = 0;
  bool in_data = false;
  for (const std::string& line : session) {
    if (line == ".") {
      break;
    }
    if (in_data) {
      body_bytes += line.size();
    }
    if (line == "DATA") {
      in_data = true;
    }
  }
  EXPECT_EQ(body_bytes, 4096u);
}

TEST(WorkloadTest, McTreeHasRequestedBytes) {
  Vfs fs;
  uint64_t made = MakeMcTree(fs, "/t", 1 << 20);
  EXPECT_EQ(made, 1u << 20);
  EXPECT_EQ(fs.TreeBytes("/t"), 1u << 20);
}

TEST(WorkloadTest, MuttAttackNameExpandsPastTwoX) {
  std::string name = MakeMuttAttackFolderName();
  // Verified indirectly by the apps; here just the structural property.
  size_t controls = 0;
  for (char c : name) {
    if (static_cast<unsigned char>(c) < 0x20) {
      ++controls;
    }
  }
  EXPECT_GT(controls, name.size() / 4);
}

// ---- traffic streams -------------------------------------------------------------

TEST(TrafficStreamTest, AttackStreamsCarryTheSection4Shape) {
  for (Server server : kAllServers) {
    TrafficStream stream = MakeAttackStream(server);
    EXPECT_EQ(stream.server, server);
    ASSERT_FALSE(stream.requests.empty()) << ServerName(server);
    // Every §4 stream opens with the attack and follows with legitimate
    // requests (the availability criterion needs both).
    EXPECT_EQ(stream.requests.front().tag, RequestTag::kAttack) << ServerName(server);
    EXPECT_GT(stream.CountTag(RequestTag::kLegit), 0u) << ServerName(server);
  }
}

TEST(TrafficStreamTest, MultiAttackStreamsHitMoreThanOneAttack) {
  for (Server server : kAllServers) {
    TrafficStream stream = MakeMultiAttackStream(server);
    EXPECT_GT(stream.CountTag(RequestTag::kAttack), 1u) << ServerName(server);
  }
}

TEST(TrafficStreamTest, SameSeedSameStreamByteForByte) {
  StreamOptions options;
  options.requests = 60;
  options.clients = 4;
  options.attack_period = 5;
  options.seed = 77;
  for (Server server : kAllServers) {
    TrafficStream a = MakeTrafficStream(server, options);
    TrafficStream b = MakeTrafficStream(server, options);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (size_t i = 0; i < a.requests.size(); ++i) {
      EXPECT_EQ(a.requests[i].Serialize(), b.requests[i].Serialize())
          << ServerName(server) << " request " << i;
    }
  }
}

TEST(TrafficStreamTest, DifferentSeedsDiffer) {
  StreamOptions a_options{.requests = 40, .clients = 4, .seed = 1};
  StreamOptions b_options{.requests = 40, .clients = 4, .seed = 2};
  TrafficStream a = MakeTrafficStream(Server::kMutt, a_options);
  TrafficStream b = MakeTrafficStream(Server::kMutt, b_options);
  bool any_difference = false;
  for (size_t i = 0; i < a.requests.size(); ++i) {
    if (a.requests[i].Serialize() != b.requests[i].Serialize()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(TrafficStreamTest, AttackPeriodTagsTheRequestedMix) {
  StreamOptions options{.requests = 40, .attack_period = 4, .attacks_per_period = 3};
  TrafficStream stream = MakeTrafficStream(Server::kApache, options);
  EXPECT_EQ(stream.CountTag(RequestTag::kAttack), 30u);
  EXPECT_EQ(stream.CountTag(RequestTag::kLegit), 10u);
}

TEST(TrafficStreamTest, ClientIdsStayWithinTheRequestedCount) {
  StreamOptions options{.requests = 50, .clients = 3, .seed = 9};
  TrafficStream stream = MakeTrafficStream(Server::kPine, options);
  for (const ServerRequest& request : stream.requests) {
    EXPECT_LT(request.client_id, 3u);
  }
}

// ---- experiment classification ---------------------------------------------------

TEST(OutcomeTest, Classification) {
  RunResult ok{ExitStatus::kOk, "", false};
  EXPECT_EQ(ClassifyOutcome(ok, true), Outcome::kContinued);
  EXPECT_EQ(ClassifyOutcome(ok, false), Outcome::kWrongOutput);
  RunResult seg{ExitStatus::kSegfault, "", false};
  EXPECT_EQ(ClassifyOutcome(seg, true), Outcome::kCrashed);
  RunResult term{ExitStatus::kBoundsTerminated, "", false};
  EXPECT_EQ(ClassifyOutcome(term, true), Outcome::kTerminated);
  RunResult hang{ExitStatus::kBudgetExhausted, "", false};
  EXPECT_EQ(ClassifyOutcome(hang, true), Outcome::kHang);
}

TEST(OutcomeTest, NamesAreReadable) {
  EXPECT_STREQ(OutcomeName(Outcome::kContinued), "continued (acceptable)");
  EXPECT_STREQ(OutcomeName(Outcome::kCrashed), "crashed (segfault)");
  EXPECT_STREQ(ServerName(Server::kMc), "Midnight Commander");
}

}  // namespace
}  // namespace fob
