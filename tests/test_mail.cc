#include <gtest/gtest.h>

#include <string>

#include "src/mail/mbox.h"
#include "src/mail/message.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

TEST(MessageTest, ParseHeadersAndBody) {
  MailMessage m = MailMessage::Parse("From: alice@example.org\nTo: bob@example.org\n"
                                     "Subject: hello\n\nbody line 1\nbody line 2\n");
  EXPECT_EQ(m.From(), "alice@example.org");
  EXPECT_EQ(m.To(), "bob@example.org");
  EXPECT_EQ(m.Subject(), "hello");
  EXPECT_EQ(m.body, "body line 1\nbody line 2\n");
}

TEST(MessageTest, HeaderLookupIsCaseInsensitive) {
  MailMessage m = MailMessage::Parse("FROM: x\n\n");
  EXPECT_EQ(m.Header("from"), "x");
  EXPECT_EQ(m.Header("From"), "x");
}

TEST(MessageTest, FoldedHeaderContinuation) {
  MailMessage m = MailMessage::Parse("Subject: part one\n\tpart two\n\n");
  EXPECT_EQ(m.Subject(), "part one part two");
}

TEST(MessageTest, CrLfTolerated) {
  MailMessage m = MailMessage::Parse("From: a\r\n\r\nbody\r\n");
  EXPECT_EQ(m.From(), "a");
}

TEST(MessageTest, SerializeParseRoundTrip) {
  MailMessage m = MailMessage::Make("a@b", "c@d", "subject here", "the body\n");
  MailMessage r = MailMessage::Parse(m.Serialize());
  EXPECT_EQ(r.From(), "a@b");
  EXPECT_EQ(r.To(), "c@d");
  EXPECT_EQ(r.Subject(), "subject here");
  EXPECT_EQ(r.body, "the body\n");
}

TEST(MessageTest, SetHeaderReplacesOrAppends) {
  MailMessage m;
  m.SetHeader("From", "first");
  m.SetHeader("From", "second");
  EXPECT_EQ(m.From(), "second");
  EXPECT_EQ(m.headers.size(), 1u);
  m.SetHeader("X-New", "v");
  EXPECT_EQ(m.headers.size(), 2u);
}

TEST(MessageTest, MissingHeaderIsEmpty) {
  MailMessage m = MailMessage::Parse("\njust body\n");
  EXPECT_EQ(m.From(), "");
  EXPECT_EQ(m.body, "just body\n");
}

TEST(MboxTest, EmptyInputYieldsNoMessages) {
  EXPECT_TRUE(ParseMbox("").empty());
}

TEST(MboxTest, SingleMessageRoundTrip) {
  std::vector<MailMessage> in = {MailMessage::Make("a@b", "c@d", "s", "hello\n")};
  std::vector<MailMessage> out = ParseMbox(SerializeMbox(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].From(), "a@b");
  EXPECT_EQ(out[0].Subject(), "s");
  EXPECT_EQ(out[0].body, "hello\n");
}

TEST(MboxTest, MultipleMessagesRoundTrip) {
  std::vector<MailMessage> in;
  for (int i = 0; i < 5; ++i) {
    in.push_back(MailMessage::Make("sender" + std::to_string(i) + "@x", "rcpt@x",
                                   "subject " + std::to_string(i),
                                   "body " + std::to_string(i) + "\n"));
  }
  std::vector<MailMessage> out = ParseMbox(SerializeMbox(in));
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].From(), "sender" + std::to_string(i) + "@x");
    EXPECT_EQ(out[static_cast<size_t>(i)].body, "body " + std::to_string(i) + "\n");
  }
}

TEST(MboxTest, FromStuffingInBody) {
  std::vector<MailMessage> in = {
      MailMessage::Make("a@b", "c@d", "s", "line\nFrom here it looks fine\nend\n")};
  std::string mbox = SerializeMbox(in);
  // The body's "From " line must be quoted in the container...
  EXPECT_NE(mbox.find(">From here"), std::string::npos);
  // ...and restored on parse.
  std::vector<MailMessage> out = ParseMbox(mbox);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].body, "line\nFrom here it looks fine\nend\n");
}

TEST(MboxTest, LargeFolder) {
  // The paper processed folders with over 100,000 messages; keep the unit
  // test at a size that still exercises scale (the stability bench goes
  // bigger).
  std::vector<MailMessage> in;
  for (int i = 0; i < 2000; ++i) {
    in.push_back(MailMessage::Make("bulk@x", "me@y", "n" + std::to_string(i), "b\n"));
  }
  std::vector<MailMessage> out = ParseMbox(SerializeMbox(in));
  EXPECT_EQ(out.size(), 2000u);
}

TEST(MboxTest, GarbageBeforeFirstFromIgnored) {
  std::vector<MailMessage> out = ParseMbox("junk preamble\nFrom x\nFrom: a@b\n\nbody\n");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].From(), "a@b");
}

TEST(MboxTest, ParsesFromCheckedMemorySpool) {
  Memory memory(AccessPolicy::kFailureOblivious);
  std::vector<MailMessage> folder = {MailMessage::Make("a@b", "c@d", "one", "first\n"),
                                     MailMessage::Make("e@f", "g@h", "two", "second\n")};
  std::string spool = SerializeMbox(folder);
  Ptr p = memory.NewBytes(spool, "spool");
  std::vector<MailMessage> out = ParseMbox(memory, p, spool.size());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].Subject(), "one");
  EXPECT_EQ(out[1].Subject(), "two");
  EXPECT_EQ(memory.log().total_errors(), 0u);
}

TEST(MboxTest, SpoolOverreadContinuesUnderFailureOblivious) {
  Memory memory(AccessPolicy::kFailureOblivious);
  std::string spool = SerializeMbox({MailMessage::Make("a@b", "c@d", "s", "body\n")});
  Ptr p = memory.NewBytes(spool, "spool");
  // A size-calculation bug reads past the spool: the parse consumes
  // manufactured bytes instead of crashing the mail server.
  std::vector<MailMessage> out = ParseMbox(memory, p, spool.size() + 64);
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out[0].Subject(), "s");
  EXPECT_GT(memory.log().total_errors(), 0u);
}

}  // namespace
}  // namespace fob
