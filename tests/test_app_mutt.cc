// mini-Mutt under the five policies (§2, §4.6).

#include "src/apps/mutt.h"

#include <gtest/gtest.h>

#include "src/codec/utf7.h"
#include "src/harness/workloads.h"
#include "src/mail/message.h"
#include "src/net/imap.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

ImapServer MakeImap() {
  ImapServer imap;
  imap.AddFolderUtf8("INBOX", {MailMessage::Make("alice@example.org", "me@here", "hi", "one\n"),
                               MailMessage::Make("bob@example.org", "me@here", "yo", "two\n")});
  imap.AddFolderUtf8("archive", {});
  imap.AddFolderUtf8(MakeMuttBenignFolderName(), {});
  return imap;
}

TEST(MuttConversionTest, PortMatchesReferenceOnAsciiNames) {
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  for (const char* raw_name : {"INBOX", "archive", "a&b", "work.2004"}) {
    std::string name = raw_name;
    Ptr u8 = mutt.memory().NewCString(name);
    Ptr out = mutt.Utf8ToUtf7Port(u8, name.size());
    ASSERT_FALSE(out.IsNull()) << name;
    EXPECT_EQ(mutt.memory().ReadCString(out), *Utf8ToUtf7(name)) << name;
    mutt.memory().Free(out);
    mutt.memory().Free(u8);
  }
}

TEST(MuttConversionTest, PortMatchesReferenceOnSafeWideNames) {
  // Expansion < 2x: the undersized buffer happens to suffice.
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  std::string name = MakeMuttBenignFolderName();
  Ptr u8 = mutt.memory().NewCString(name);
  Ptr out = mutt.Utf8ToUtf7Port(u8, name.size());
  ASSERT_FALSE(out.IsNull());
  EXPECT_EQ(mutt.memory().ReadCString(out), *Utf8ToUtf7(name));
  mutt.memory().Free(out);
  mutt.memory().Free(u8);
}

TEST(MuttConversionTest, PortBailsOnInvalidUtf8LikeFigure1) {
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  for (const std::string& bad : {std::string("\xff"), std::string("abc\x80"),
                                 std::string("\xc3")}) {
    Ptr u8 = mutt.memory().NewCString(bad);
    Ptr out = mutt.Utf8ToUtf7Port(u8, bad.size());
    EXPECT_TRUE(out.IsNull());
    mutt.memory().Free(u8);
  }
}

TEST(MuttConversionTest, FailureObliviousTruncatesAtAllocationBoundary) {
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  std::string name = MakeMuttAttackFolderName();
  Ptr u8 = mutt.memory().NewCString(name);
  Ptr out = mutt.Utf8ToUtf7Port(u8, name.size());
  ASSERT_FALSE(out.IsNull());
  std::string truncated = mutt.memory().ReadCString(out);
  std::string reference = *Utf8ToUtf7(name);
  EXPECT_LT(truncated.size(), reference.size());
  // What survived is a clean prefix of the correct conversion.
  EXPECT_EQ(truncated, reference.substr(0, truncated.size()));
  EXPECT_GT(mutt.memory().log().write_errors(), 0u);
  mutt.memory().Free(out);
  mutt.memory().Free(u8);
}

TEST(MuttConversionTest, BoundlessRecoversTheFullConversion) {
  // §5.1: boundless memory blocks eliminate the size calculation error.
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kBoundless, &imap);
  std::string name = MakeMuttAttackFolderName();
  Ptr u8 = mutt.memory().NewCString(name);
  Ptr out = mutt.Utf8ToUtf7Port(u8, name.size());
  ASSERT_FALSE(out.IsNull());
  EXPECT_EQ(mutt.memory().ReadCString(out, 1 << 14), *Utf8ToUtf7(name));
  mutt.memory().Free(out);
  mutt.memory().Free(u8);
}

TEST(MuttAttackTest, StandardCompilationCorruptsHeapAndDies) {
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kStandard, &imap);
  RunResult result = RunAsProcess([&] { mutt.OpenFolder(MakeMuttAttackFolderName()); });
  EXPECT_EQ(result.status, ExitStatus::kHeapCorruption);
}

TEST(MuttAttackTest, BoundsCheckTerminatesBeforeUiComesUp) {
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kBoundsCheck, &imap);
  RunResult result = RunAsProcess([&] { mutt.OpenFolder(MakeMuttAttackFolderName()); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST(MuttAttackTest, FailureObliviousGetsAnticipatedImapError) {
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  MuttApp::Result open;
  RunResult result = RunAsProcess([&] { open = mutt.OpenFolder(MakeMuttAttackFolderName()); });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(open.ok);
  EXPECT_NE(open.error.find("does not exist"), std::string::npos);
  // ...and the user can keep working with legitimate folders (§4.6.4).
  auto inbox = mutt.OpenFolder("INBOX");
  EXPECT_TRUE(inbox.ok);
  auto read = mutt.ReadMessage("INBOX", 1);
  EXPECT_TRUE(read.ok);
  EXPECT_NE(read.display.find("alice@example.org"), std::string::npos);
  auto move = mutt.MoveMessage("INBOX", 1, "archive");
  EXPECT_TRUE(move.ok);
}

TEST(MuttBenignTest, AllPoliciesServeLegitimateFoldersIdentically) {
  for (AccessPolicy policy : kAllPolicies) {
    ImapServer imap = MakeImap();
    MuttApp mutt(policy, &imap);
    auto open = mutt.OpenFolder("INBOX");
    EXPECT_TRUE(open.ok) << PolicyName(policy);
    auto wide = mutt.OpenFolder(MakeMuttBenignFolderName());
    EXPECT_TRUE(wide.ok) << PolicyName(policy);
    auto read = mutt.ReadMessage("INBOX", 2);
    EXPECT_TRUE(read.ok) << PolicyName(policy);
    EXPECT_NE(read.display.find("bob@example.org"), std::string::npos);
  }
}

TEST(MuttBenignTest, NoMemoryErrorsOnLegitimateWorkload) {
  ImapServer imap = MakeImap();
  MuttApp mutt(AccessPolicy::kFailureOblivious, &imap);
  mutt.OpenFolder("INBOX");
  mutt.ReadMessage("INBOX", 1);
  EXPECT_EQ(mutt.memory().log().total_errors(), 0u);
}

}  // namespace
}  // namespace fob
