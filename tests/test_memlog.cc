#include "src/runtime/memlog.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/runtime/memory.h"

namespace fob {
namespace {

MemErrorRecord MakeRecord(bool is_write, const std::string& unit_name) {
  MemErrorRecord record;
  record.is_write = is_write;
  record.addr = 0x1000;
  record.size = 1;
  record.unit_name = unit_name;
  record.status = PointerStatus::kOobAbove;
  record.function = "handler";
  record.access_index = 42;
  return record;
}

TEST(MemLogTest, CountsReadsAndWritesSeparately) {
  MemLog log;
  log.Record(MakeRecord(true, "a"));
  log.Record(MakeRecord(true, "a"));
  log.Record(MakeRecord(false, "b"));
  EXPECT_EQ(log.total_errors(), 3u);
  EXPECT_EQ(log.write_errors(), 2u);
  EXPECT_EQ(log.read_errors(), 1u);
}

TEST(MemLogTest, PerUnitHistogram) {
  MemLog log;
  log.Record(MakeRecord(true, "prescan::buf"));
  log.Record(MakeRecord(true, "prescan::buf"));
  log.Record(MakeRecord(false, "utf7_buf"));
  EXPECT_EQ(log.errors_by_unit().at("prescan::buf"), 2u);
  EXPECT_EQ(log.errors_by_unit().at("utf7_buf"), 1u);
}

TEST(MemLogTest, RingBufferDropsOldest) {
  MemLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(MakeRecord(true, "u" + std::to_string(i)));
  }
  EXPECT_EQ(log.total_errors(), 10u);  // counters unbounded
  EXPECT_EQ(log.recent().size(), 4u);  // records capped
  EXPECT_EQ(log.recent().front().unit_name, "u6");
  EXPECT_EQ(log.recent().back().unit_name, "u9");
}

TEST(MemLogTest, OverflowCounterAccountsForEveryEvictedRecord) {
  MemLog log(4);
  for (int i = 0; i < 3; ++i) {
    log.Record(MakeRecord(true, "early"));
  }
  EXPECT_EQ(log.dropped(), 0u);  // under the cap: nothing evicted
  for (int i = 0; i < 6000; ++i) {
    log.Record(MakeRecord(true, "attack_flood"));
  }
  // A multi-attack flood stores only `capacity` records; everything else is
  // counted, not kept — stored + dropped always equals total.
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.recent().size(), 4u);
  EXPECT_EQ(log.dropped(), 5999u);
  EXPECT_EQ(log.recent().size() + log.dropped(), log.total_errors());
  // The aggregates stay exact despite the bounded ring.
  EXPECT_EQ(log.errors_by_unit().at("attack_flood"), 6000u);
  EXPECT_EQ(log.errors_by_unit().at("early"), 3u);
  log.Clear();
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(MemLogTest, LogCapacityIsConfigurablePerShard) {
  Memory::Config config;
  config.log_capacity = 2;
  Memory memory(config);
  Ptr p = memory.Malloc(4, "buf");
  for (int i = 0; i < 5; ++i) {
    (void)memory.ReadU8(p + 10);
  }
  EXPECT_EQ(memory.log().total_errors(), 5u);
  EXPECT_EQ(memory.log().recent().size(), 2u);
  EXPECT_EQ(memory.log().dropped(), 3u);
  // sites() aggregation is exact: one site, all five errors.
  ASSERT_EQ(memory.log().sites().size(), 1u);
  EXPECT_EQ(memory.log().sites().begin()->second.count, 5u);
}

TEST(MemLogTest, MergeSumsAggregatesAndKeepsSiteMetadata) {
  MemLog a;
  MemLog b;
  MemErrorRecord shared = MakeRecord(true, "hot_buf");
  shared.site = MakeSiteId("hot_buf", "handler", AccessKind::kWrite);
  a.Record(shared);
  a.Record(shared);
  MemErrorRecord reads = MakeRecord(false, "cold_buf");
  reads.site = MakeSiteId("cold_buf", "reader", AccessKind::kRead);
  b.Record(shared);
  b.Record(reads);

  MemLog merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.total_errors(), 4u);
  EXPECT_EQ(merged.write_errors(), 3u);
  EXPECT_EQ(merged.read_errors(), 1u);
  EXPECT_EQ(merged.errors_by_unit().at("hot_buf"), 3u);
  EXPECT_EQ(merged.errors_by_unit().at("cold_buf"), 1u);
  ASSERT_EQ(merged.sites().size(), 2u);
  EXPECT_EQ(merged.sites().at(shared.site).count, 3u);
  EXPECT_EQ(merged.sites().at(shared.site).unit_name, "hot_buf");
  EXPECT_EQ(merged.sites().at(reads.site).count, 1u);
  // The ring holds both logs' records, first-merged first (the caller's
  // shard-id order is the ordering rule).
  EXPECT_EQ(merged.recent().size(), 4u);
  EXPECT_EQ(merged.recent().front().unit_name, "hot_buf");
  EXPECT_EQ(merged.recent().back().unit_name, "cold_buf");
}

TEST(MemLogTest, MergeRespectsCapacityAndCountsEvictions) {
  MemLog big;  // default capacity
  for (int i = 0; i < 3; ++i) {
    big.Record(MakeRecord(true, "shard0"));
  }
  MemLog merged(2);
  merged.Merge(big);
  EXPECT_EQ(merged.total_errors(), 3u);
  EXPECT_EQ(merged.recent().size(), 2u);
  EXPECT_EQ(merged.dropped(), 1u);
}

TEST(MemLogTest, SchedulerStatsSumCountersAndMaxPeakDepth) {
  MemLog a;
  a.AddSchedulerStats(/*shed=*/3, /*stolen_batches=*/2, /*peak_lane_depth=*/7);
  MemLog b;
  b.AddSchedulerStats(/*shed=*/1, /*stolen_batches=*/0, /*peak_lane_depth=*/4);

  MemLog merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.shed_requests(), 4u);
  EXPECT_EQ(merged.stolen_batches(), 2u);
  // Peak depth is a high-water mark, not a sum: merging takes the max.
  EXPECT_EQ(merged.peak_lane_depth(), 7u);
  std::string summary = merged.Summary();
  EXPECT_NE(summary.find("4 requests shed"), std::string::npos);
  EXPECT_NE(summary.find("2 batches stolen"), std::string::npos);
  EXPECT_NE(summary.find("peak lane depth 7"), std::string::npos);

  merged.Clear();
  EXPECT_EQ(merged.shed_requests(), 0u);
  EXPECT_EQ(merged.stolen_batches(), 0u);
  EXPECT_EQ(merged.peak_lane_depth(), 0u);
  // A quiet scheduler stays out of the digest.
  EXPECT_EQ(merged.Summary().find("scheduler"), std::string::npos);
}

TEST(MemLogTest, EchoStreamsRecordsAsTheyHappen) {
  MemLog log;
  std::ostringstream echo;
  log.set_echo(&echo);
  log.Record(MakeRecord(true, "victim"));
  EXPECT_NE(echo.str().find("invalid write"), std::string::npos);
  EXPECT_NE(echo.str().find("victim"), std::string::npos);
  log.set_echo(nullptr);
  log.Record(MakeRecord(true, "quiet"));
  EXPECT_EQ(echo.str().find("quiet"), std::string::npos);
}

TEST(MemLogTest, RecordToStringMentionsEverything) {
  std::string text = MakeRecord(false, "buf").ToString();
  EXPECT_NE(text.find("invalid read"), std::string::npos);
  EXPECT_NE(text.find("0x1000"), std::string::npos);
  EXPECT_NE(text.find("out-of-bounds (above)"), std::string::npos);
  EXPECT_NE(text.find("handler"), std::string::npos);
  EXPECT_NE(text.find("#42"), std::string::npos);
}

TEST(MemLogTest, ClearResetsEverything) {
  MemLog log;
  log.Record(MakeRecord(true, "x"));
  log.Clear();
  EXPECT_EQ(log.total_errors(), 0u);
  EXPECT_TRUE(log.recent().empty());
  EXPECT_TRUE(log.errors_by_unit().empty());
}

TEST(MemLogIntegrationTest, LogIdentifiesTheGuiltyBufferAndFunction) {
  // §3: "a log containing information about the program's attempts to
  // commit memory errors" — the record names the data unit and the
  // function, which is what an administrator reads.
  Memory memory(AccessPolicy::kFailureOblivious);
  {
    Memory::Frame frame(memory, "parse_request");
    Ptr buf = frame.Local(8, "reqbuf");
    memory.WriteU8(buf + 9, 'X');
  }
  ASSERT_EQ(memory.log().recent().size(), 1u);
  const MemErrorRecord& record = memory.log().recent().front();
  EXPECT_EQ(record.unit_name, "parse_request::reqbuf");
  EXPECT_EQ(record.function, "parse_request");
  EXPECT_TRUE(record.is_write);
  EXPECT_EQ(record.status, PointerStatus::kOobAbove);
}

TEST(OobStatsTest, RegistryCountsByStatus) {
  Memory memory(AccessPolicy::kFailureOblivious);
  Ptr p = memory.Malloc(8, "b");
  (void)memory.ReadU8(p + 100);   // above
  (void)memory.ReadU8(p - 100);   // below (may hit another unit's range; still OOB of referent)
  memory.Free(p);
  (void)memory.ReadU8(p);         // dangling
  EXPECT_EQ(memory.oob().total(), 3u);
  EXPECT_GE(memory.oob().count(PointerStatus::kOobAbove), 1u);
  EXPECT_GE(memory.oob().count(PointerStatus::kDangling), 1u);
}

}  // namespace
}  // namespace fob
