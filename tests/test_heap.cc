#include "src/softmem/heap.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/softmem/address_space.h"
#include "src/softmem/fault.h"
#include "src/softmem/object_table.h"

namespace fob {
namespace {

constexpr Addr kBase = 0x10000000;
constexpr size_t kHeapSize = 1 << 20;

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : heap_(space_, table_, kBase, kHeapSize) {}

  AddressSpace space_;
  ObjectTable table_;
  Heap heap_;
};

TEST_F(HeapTest, MallocReturnsUsableBlock) {
  Addr p = heap_.Malloc(100, "buf");
  ASSERT_NE(p, 0u);
  EXPECT_EQ(heap_.BlockSize(p), 100u);
  EXPECT_TRUE(heap_.BlockIntact(p));
  std::string data(100, 'z');
  EXPECT_TRUE(space_.Write(p, data.data(), data.size()));
}

TEST_F(HeapTest, MallocRegistersDataUnit) {
  Addr p = heap_.Malloc(64, "named");
  const DataUnit* unit = table_.LookupByAddress(p + 10);
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->name, "named");
  EXPECT_EQ(unit->kind, UnitKind::kHeap);
  EXPECT_EQ(unit->base, p);
  EXPECT_EQ(unit->size, 64u);
}

TEST_F(HeapTest, MallocZeroBytesStillDistinct) {
  Addr a = heap_.Malloc(0, "a");
  Addr b = heap_.Malloc(0, "b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(HeapTest, FreshBlocksAreZeroed) {
  Addr p = heap_.Malloc(32, "buf");
  uint8_t bytes[32];
  ASSERT_TRUE(space_.Read(p, bytes, sizeof(bytes)));
  for (uint8_t b : bytes) {
    EXPECT_EQ(b, 0);
  }
}

TEST_F(HeapTest, FreeRetiresUnitAndAllowsReuse) {
  Addr p = heap_.Malloc(64, "buf");
  UnitId unit = heap_.BlockUnit(p);
  heap_.Free(p);
  EXPECT_FALSE(table_.Lookup(unit)->live);
  Addr q = heap_.Malloc(64, "again");
  EXPECT_EQ(q, p);  // first fit reuses the space
}

TEST_F(HeapTest, DoubleFreeFaults) {
  Addr p = heap_.Malloc(64, "buf");
  heap_.Free(p);
  try {
    heap_.Free(p);
    FAIL() << "expected fault";
  } catch (const Fault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kDoubleFree);
  }
}

TEST_F(HeapTest, InvalidFreeFaults) {
  Addr p = heap_.Malloc(64, "buf");
  try {
    heap_.Free(p + 8);  // interior pointer
    FAIL() << "expected fault";
  } catch (const Fault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kInvalidFree);
  }
  heap_.Free(p);
}

TEST_F(HeapTest, OverrunPastPayloadCorruptsFooterAndFaultsAtFree) {
  Addr p = heap_.Malloc(40, "victim");
  // Write past the end of the payload — this is what an unchecked program's
  // buffer overrun does physically.
  std::string spill(8, 'A');
  ASSERT_TRUE(space_.Write(p + 40, spill.data(), spill.size()));
  EXPECT_FALSE(heap_.BlockIntact(p));
  try {
    heap_.Free(p);
    FAIL() << "expected heap corruption fault";
  } catch (const Fault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kHeapCorruption);
  }
}

TEST_F(HeapTest, OverrunIntoNextHeaderFaultsWhenNeighborFreed) {
  Addr a = heap_.Malloc(32, "a");
  Addr b = heap_.Malloc(32, "b");
  ASSERT_GT(b, a);
  // Overrun from a's payload all the way over b's header.
  std::string spill(static_cast<size_t>(b - a), 'B');
  ASSERT_TRUE(space_.Write(a, spill.data(), spill.size()));
  try {
    heap_.Free(b);
    FAIL() << "expected heap corruption fault";
  } catch (const Fault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kHeapCorruption);
  }
}

TEST_F(HeapTest, ReallocGrowPreservesContents) {
  Addr p = heap_.Malloc(16, "grow");
  std::string data = "0123456789abcdef";
  ASSERT_TRUE(space_.Write(p, data.data(), 16));
  Addr q = heap_.Realloc(p, 64);
  ASSERT_NE(q, 0u);
  std::string readback(16, '\0');
  ASSERT_TRUE(space_.Read(q, readback.data(), 16));
  EXPECT_EQ(readback, data);
  EXPECT_EQ(heap_.BlockSize(q), 64u);
  EXPECT_EQ(heap_.BlockSize(p), 0u);  // old block gone
}

TEST_F(HeapTest, ReallocShrinkPreservesPrefix) {
  Addr p = heap_.Malloc(64, "shrink");
  std::string data(64, 'q');
  ASSERT_TRUE(space_.Write(p, data.data(), 64));
  Addr q = heap_.Realloc(p, 8);
  ASSERT_NE(q, 0u);
  std::string readback(8, '\0');
  ASSERT_TRUE(space_.Read(q, readback.data(), 8));
  EXPECT_EQ(readback, std::string(8, 'q'));
}

TEST_F(HeapTest, OutOfMemoryReturnsZero) {
  Addr p = heap_.Malloc(kHeapSize * 2, "too big");
  EXPECT_EQ(p, 0u);
}

TEST_F(HeapTest, ExhaustAndRecover) {
  std::vector<Addr> blocks;
  for (;;) {
    Addr p = heap_.Malloc(4096, "chunk");
    if (p == 0) {
      break;
    }
    blocks.push_back(p);
  }
  EXPECT_GT(blocks.size(), 100u);
  for (Addr p : blocks) {
    heap_.Free(p);
  }
  EXPECT_EQ(heap_.live_blocks(), 0u);
  // Coalescing restored one big range: a large allocation succeeds again.
  Addr big = heap_.Malloc(kHeapSize / 2, "big");
  EXPECT_NE(big, 0u);
}

TEST_F(HeapTest, AccountingCounters) {
  Addr a = heap_.Malloc(10, "a");
  Addr b = heap_.Malloc(20, "b");
  EXPECT_EQ(heap_.malloc_count(), 2u);
  EXPECT_EQ(heap_.bytes_in_use(), 30u);
  heap_.Free(a);
  EXPECT_EQ(heap_.free_count(), 1u);
  EXPECT_EQ(heap_.bytes_in_use(), 20u);
  heap_.Free(b);
}

TEST_F(HeapTest, BlocksDoNotOverlap) {
  std::vector<std::pair<Addr, size_t>> blocks;
  for (size_t size : {1u, 7u, 16u, 100u, 4000u, 3u, 64u}) {
    Addr p = heap_.Malloc(size, "b");
    ASSERT_NE(p, 0u);
    for (const auto& [base, len] : blocks) {
      EXPECT_TRUE(p + size <= base || base + len <= p)
          << "block at " << p << " overlaps block at " << base;
    }
    blocks.emplace_back(p, size);
  }
}

}  // namespace
}  // namespace fob
