#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/codec/base64.h"
#include "src/codec/utf7.h"
#include "src/codec/utf8.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

// ---- base64 ------------------------------------------------------------

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(Base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodeInvertsEncode) {
  for (const std::string& s : {std::string(""), std::string("x"), std::string("hello world"),
                               std::string(100, '\xff'), std::string("\x00\x01\x02", 3)}) {
    auto decoded = Base64Decode(Base64Encode(s));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, s);
  }
}

TEST(Base64Test, DecodeRejectsGarbage) {
  EXPECT_FALSE(Base64Decode("a").has_value());        // bad length
  EXPECT_FALSE(Base64Decode("!@#$").has_value());     // bad alphabet
  EXPECT_FALSE(Base64Decode("=aaa").has_value());     // premature padding
  EXPECT_FALSE(Base64Decode("Zg==Zg==").has_value()); // data after padding
}

TEST(Base64Test, Utf7AlphabetUsesCommaNotSlash) {
  EXPECT_EQ(kB64Chars[63], ',');
  EXPECT_EQ(kBase64Std[63], '/');
  EXPECT_EQ(Base64Index(',', kB64Chars), 63);
  EXPECT_EQ(Base64Index('/', kB64Chars), -1);
}

// ---- UTF-8 ---------------------------------------------------------------

TEST(Utf8Test, AsciiRoundTrip) {
  std::string s = "plain ascii";
  auto cps = Utf8DecodeAll(s);
  ASSERT_TRUE(cps.has_value());
  EXPECT_EQ(cps->size(), s.size());
  EXPECT_EQ(Utf8EncodeAll(*cps), s);
}

TEST(Utf8Test, MultibyteRoundTrip) {
  for (uint32_t cp : {0x80u, 0x7ffu, 0x800u, 0xffffu, 0x10000u, 0x10ffffu, 0x1fffffu}) {
    std::string encoded = Utf8Encode(cp);
    size_t i = 0;
    auto decoded = Utf8DecodeNext(encoded, i);
    ASSERT_TRUE(decoded.has_value()) << cp;
    EXPECT_EQ(*decoded, cp);
    EXPECT_EQ(i, encoded.size());
  }
}

TEST(Utf8Test, EncodedLengths) {
  EXPECT_EQ(Utf8Encode(0x41).size(), 1u);
  EXPECT_EQ(Utf8Encode(0xe9).size(), 2u);       // é
  EXPECT_EQ(Utf8Encode(0x20ac).size(), 3u);     // €
  EXPECT_EQ(Utf8Encode(0x1f600).size(), 4u);    // emoji
}

TEST(Utf8Test, RejectsBareContinuationByte) {
  size_t i = 0;
  EXPECT_FALSE(Utf8DecodeNext("\x80", i).has_value());
}

TEST(Utf8Test, RejectsOverlongTwoByte) {
  // 0xC0 0x80 is overlong NUL; 0xC1 0xBF overlong 0x7F.
  EXPECT_FALSE(Utf8Valid("\xc0\x80"));
  EXPECT_FALSE(Utf8Valid("\xc1\xbf"));
}

TEST(Utf8Test, RejectsOverlongThreeByte) {
  // 0xE0 0x81 0x81 encodes 0x41 in three bytes.
  EXPECT_FALSE(Utf8Valid("\xe0\x81\x81"));
}

TEST(Utf8Test, RejectsTruncatedSequence) {
  EXPECT_FALSE(Utf8Valid("\xe2\x82"));  // € missing the last byte
  EXPECT_FALSE(Utf8Valid("\xc3"));
}

TEST(Utf8Test, RejectsBadContinuation) {
  EXPECT_FALSE(Utf8Valid("\xc3\x41"));  // second byte not 10xxxxxx
}

TEST(Utf8Test, RejectsFeFf) {
  EXPECT_FALSE(Utf8Valid("\xfe"));
  EXPECT_FALSE(Utf8Valid("\xff"));
}

// ---- modified UTF-7 --------------------------------------------------------

TEST(Utf7Test, AsciiPassesThrough) {
  EXPECT_EQ(Utf8ToUtf7("INBOX"), "INBOX");
  EXPECT_EQ(Utf8ToUtf7("a b.c-d"), "a b.c-d");
}

TEST(Utf7Test, AmpersandEscapes) {
  EXPECT_EQ(Utf8ToUtf7("a&b"), "a&-b");
  EXPECT_EQ(Utf7ToUtf8("a&-b"), "a&b");
}

TEST(Utf7Test, Rfc3501Example) {
  // RFC 3501: "~peter/mail/台北/日本語" -> "~peter/mail/&U,BTFw-/&ZeVnLIqe-"
  std::string utf8 = "~peter/mail/\xe5\x8f\xb0\xe5\x8c\x97/\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e";
  auto utf7 = Utf8ToUtf7(utf8);
  ASSERT_TRUE(utf7.has_value());
  EXPECT_EQ(*utf7, "~peter/mail/&U,BTFw-/&ZeVnLIqe-");
  EXPECT_EQ(Utf7ToUtf8(*utf7), utf8);
}

TEST(Utf7Test, ControlCharactersShift) {
  auto utf7 = Utf8ToUtf7(std::string("\x01", 1));
  ASSERT_TRUE(utf7.has_value());
  EXPECT_EQ(utf7->front(), '&');
  EXPECT_EQ(utf7->back(), '-');
  EXPECT_EQ(Utf7ToUtf8(*utf7), std::string("\x01", 1));
}

TEST(Utf7Test, InvalidUtf8Bails) {
  EXPECT_FALSE(Utf8ToUtf7("\xff").has_value());
  EXPECT_FALSE(Utf8ToUtf7("\xc3").has_value());
  EXPECT_FALSE(Utf8ToUtf7("abc\x80xyz").has_value());
}

TEST(Utf7Test, RoundTripBmpCodepoints) {
  // Deterministic sweep over BMP codepoints (excluding the surrogate range
  // and the 0xfffe fold target).
  for (uint32_t cp = 0x20; cp < 0xfffe; cp += 97) {
    if (cp >= 0xd800 && cp <= 0xdfff) {
      continue;
    }
    std::string utf8 = Utf8Encode(cp);
    auto utf7 = Utf8ToUtf7(utf8);
    ASSERT_TRUE(utf7.has_value()) << "cp=" << cp;
    auto back = Utf7ToUtf8(*utf7);
    ASSERT_TRUE(back.has_value()) << "cp=" << cp << " utf7=" << *utf7;
    EXPECT_EQ(*back, utf8) << "cp=" << cp;
  }
}

TEST(Utf7Test, AstralCodepointsFoldToFffe) {
  // Figure 1: `if (ch & ~0xffff) ch = 0xfffe;`
  auto utf7 = Utf8ToUtf7(Utf8Encode(0x1f600));
  ASSERT_TRUE(utf7.has_value());
  auto back = Utf7ToUtf8(*utf7);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, Utf8Encode(0xfffe));
}

TEST(Utf7Test, ExpansionExceedsMuttsFactorOfTwo) {
  // §4.6.1: Mutt sizes the output buffer at 2x, but the conversion can
  // expand more than that. Each isolated shifted character costs
  // '&' + 3 base64 chars + '-' = 5 output bytes; alternating a control
  // character with a printable gives ratio 3 > 2.
  std::string utf8;
  for (int i = 0; i < 100; ++i) {
    utf8 += '\x01';
    utf8 += 'a';
  }
  auto utf7 = Utf8ToUtf7(utf8);
  ASSERT_TRUE(utf7.has_value());
  double ratio = static_cast<double>(utf7->size()) / static_cast<double>(utf8.size());
  EXPECT_GT(ratio, 2.0);  // the paper's point: 2x is not enough
  EXPECT_LE(utf7->size(), Utf7MaxOutputBytes(utf8.size()));
}

TEST(Utf7Test, MaxOutputBoundHoldsForAdversarialMixes) {
  // The nastiest mix: shifted one-byte chars alternating with literal '&'
  // (2x each) reaches 3.5x — still under the Figure 1 bound of 4x+1.
  std::string utf8;
  for (int i = 0; i < 64; ++i) {
    utf8 += '\x02';
    utf8 += '&';
  }
  auto utf7 = Utf8ToUtf7(utf8);
  ASSERT_TRUE(utf7.has_value());
  EXPECT_GE(utf7->size() * 2, utf8.size() * 7);  // ratio >= 3.5
  EXPECT_LE(utf7->size(), Utf7MaxOutputBytes(utf8.size()));
}

TEST(Utf7Test, ExpansionNeverExceedsBound) {
  for (uint32_t cp = 0x20; cp < 0x4000; cp += 131) {
    std::string utf8;
    for (int i = 0; i < 17; ++i) {
      utf8 += Utf8Encode(cp);
    }
    auto utf7 = Utf8ToUtf7(utf8);
    ASSERT_TRUE(utf7.has_value());
    EXPECT_LE(utf7->size(), Utf7MaxOutputBytes(utf8.size())) << "cp=" << cp;
  }
}

TEST(Utf7Test, DecoderRejectsMalformed) {
  EXPECT_FALSE(Utf7ToUtf8("&").has_value());          // unterminated shift
  EXPECT_FALSE(Utf7ToUtf8("&!!-").has_value());       // bad base64
  EXPECT_FALSE(Utf7ToUtf8("&AA-").has_value());       // 12 bits: no full unit
  EXPECT_FALSE(Utf7ToUtf8(std::string("\x07", 1)).has_value());  // raw control
}

TEST(Utf7Test, ConsecutiveWideCharsShareOneShift) {
  std::string utf8 = Utf8Encode(0x3042) + Utf8Encode(0x3044);
  auto utf7 = Utf8ToUtf7(utf8);
  ASSERT_TRUE(utf7.has_value());
  // Only one '&' and one '-'.
  EXPECT_EQ(std::count(utf7->begin(), utf7->end(), '&'), 1);
  EXPECT_EQ(utf7->back(), '-');
  EXPECT_EQ(Utf7ToUtf8(*utf7), utf8);
}

// ---- checked-memory (span path) entry points ----------------------------

TEST(CodecMemoryTest, Base64RoundTripsThroughCheckedMemory) {
  Memory memory(AccessPolicy::kFailureOblivious);
  const std::string data = "span-path base64 payload \x01\x02\xff";
  Ptr p = memory.NewBytes(data, "b64_input");
  std::string encoded = Base64Encode(memory, p, data.size());
  EXPECT_EQ(encoded, Base64Encode(data));
  Ptr q = memory.NewBytes(encoded, "b64_text");
  auto decoded = Base64Decode(memory, q, encoded.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
  EXPECT_EQ(memory.log().total_errors(), 0u);
}

TEST(CodecMemoryTest, Utf8DecodeAllMatchesHostDecoder) {
  Memory memory(AccessPolicy::kFailureOblivious);
  const std::string utf8 = "caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e!";
  Ptr p = memory.NewBytes(utf8, "utf8_buf");
  auto mem_cps = Utf8DecodeAll(memory, p, utf8.size());
  auto host_cps = Utf8DecodeAll(utf8);
  ASSERT_TRUE(mem_cps.has_value());
  ASSERT_TRUE(host_cps.has_value());
  EXPECT_EQ(*mem_cps, *host_cps);
}

TEST(CodecMemoryTest, CheckedUtf8ToUtf7MatchesReferenceAndStaysInBounds) {
  Memory memory(AccessPolicy::kFailureOblivious);
  const std::string utf8 = "Entw\xc3\xbcrfe & notes";
  Ptr in = memory.NewBytes(utf8, "folder_name");
  Ptr out = Utf8ToUtf7(memory, in, utf8.size());
  ASSERT_FALSE(out.IsNull());
  auto reference = Utf8ToUtf7(std::string_view(utf8));
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(memory.ReadCString(out), *reference);
  // Unlike the Figure 1 port, the correctly sized conversion commits no
  // memory errors.
  EXPECT_EQ(memory.log().total_errors(), 0u);
  memory.Free(out);
}

TEST(CodecMemoryTest, CheckedUtf8ToUtf7BailsOnInvalidInput) {
  Memory memory(AccessPolicy::kFailureOblivious);
  const std::string bad = "ok\xfe_then_bad";
  Ptr in = memory.NewBytes(bad, "folder_name");
  EXPECT_TRUE(Utf8ToUtf7(memory, in, bad.size()).IsNull());
}

}  // namespace
}  // namespace fob
