// PagedBoundlessStore (src/runtime/boundless_paged.h): the paged store must
// be observably equivalent to the flat reference store byte-for-byte, keep
// recycled units isolated, dedup all-zero pages with copy-on-write, fall
// back to manufactured values after eviction under every sequence kind, and
// surface its accounting deterministically through merged MemLogs. Also
// pins the flat store's DropUnit FIFO reclamation (the ghost-entry
// regression) since the flat store remains the equivalence baseline.

#include "src/runtime/boundless_paged.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/workloads.h"
#include "src/net/frontend.h"
#include "src/runtime/boundless_flat.h"
#include "src/runtime/manufactured.h"
#include "src/runtime/memory.h"

namespace fob {
namespace {

// ---- randomized equivalence with the flat reference -------------------------

// Replays one seeded stream of stores (byte and span), loads, and unit drops
// against both stores and demands byte-for-byte agreement on every load.
// Both stores run unbounded: capacity semantics legitimately differ (FIFO
// bytes vs clock pages) and are pinned by their own tests.
void RunEquivalenceStream(uint64_t seed) {
  std::mt19937_64 rng(seed);
  FlatBoundlessStore flat;
  PagedBoundlessStore paged;
  std::uniform_int_distribution<int> op_dist(0, 99);
  std::uniform_int_distribution<uint32_t> unit_dist(1, 6);
  // Offsets cluster around page boundaries (negative included) with
  // occasional far-spray outliers.
  auto next_offset = [&]() -> int64_t {
    int64_t base = static_cast<int64_t>(rng() % 2048) - 1024;
    if (rng() % 8 == 0) {
      base += static_cast<int64_t>(rng() % (1 << 20)) - (1 << 19);
    }
    return base;
  };
  // Zero-heavy values so the zero-dedup path is exercised constantly.
  auto next_value = [&]() -> uint8_t {
    return rng() % 3 == 0 ? 0 : static_cast<uint8_t>(rng());
  };

  for (int step = 0; step < 4000; ++step) {
    int op = op_dist(rng);
    UnitId unit = unit_dist(rng);
    int64_t offset = next_offset();
    if (op < 40) {
      uint8_t value = next_value();
      flat.StoreByte(unit, offset, value);
      paged.StoreByte(unit, offset, value);
    } else if (op < 60) {
      // Span store straddling page boundaries.
      size_t n = 1 + rng() % 700;
      std::vector<uint8_t> data(n);
      for (auto& b : data) {
        b = next_value();
      }
      for (size_t i = 0; i < n; ++i) {
        flat.StoreByte(unit, offset + static_cast<int64_t>(i), data[i]);
      }
      paged.StoreSpan(unit, offset, data.data(), n);
    } else if (op < 90) {
      size_t n = 1 + rng() % 700;
      std::vector<uint8_t> got(n, 0xcd);
      std::vector<uint8_t> present(n, 0xcd);
      size_t found = paged.LoadSpan(unit, offset, n, got.data(), present.data());
      size_t expected_found = 0;
      for (size_t i = 0; i < n; ++i) {
        auto expected = flat.LoadByte(unit, offset + static_cast<int64_t>(i));
        ASSERT_EQ(present[i] != 0, expected.has_value())
            << "seed " << seed << " step " << step << " byte " << i;
        if (expected.has_value()) {
          ++expected_found;
          ASSERT_EQ(got[i], *expected) << "seed " << seed << " step " << step << " byte " << i;
        }
      }
      ASSERT_EQ(found, expected_found);
      // Single-byte loads agree too.
      auto flat_byte = flat.LoadByte(unit, offset);
      auto paged_byte = paged.LoadByte(unit, offset);
      ASSERT_EQ(paged_byte, flat_byte) << "seed " << seed << " step " << step;
    } else if (op < 95) {
      flat.DropUnit(unit);
      paged.DropUnit(unit);
    }
    ASSERT_EQ(paged.stored_bytes(), flat.stored_bytes())
        << "seed " << seed << " step " << step;
  }
}

TEST(PagedBoundlessEquivalence, MatchesFlatStoreOverSeededStreams) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    RunEquivalenceStream(seed);
  }
}

// ---- recycled-unit isolation -------------------------------------------------

TEST(PagedBoundlessStoreTest, DropUnitIsolatesRecycledUnitIds) {
  PagedBoundlessStore store;
  store.StoreByte(7, 300, 0xaa);
  store.StoreByte(7, -12, 0xbb);
  std::vector<uint8_t> span(700, 0x11);
  store.StoreSpan(7, 1000, span.data(), span.size());
  store.StoreByte(8, 300, 0xcc);  // another unit's state must survive
  ASSERT_TRUE(store.LoadByte(7, 300).has_value());

  store.DropUnit(7);

  EXPECT_FALSE(store.LoadByte(7, 300).has_value());
  EXPECT_FALSE(store.LoadByte(7, -12).has_value());
  uint8_t dst[700];
  uint8_t present[700];
  EXPECT_EQ(store.LoadSpan(7, 1000, 700, dst, present), 0u);
  EXPECT_EQ(store.LoadByte(8, 300), std::optional<uint8_t>(0xcc));
  EXPECT_EQ(store.stored_bytes(), 1u);

  // A fresh store through the same (recycled) id starts from nothing.
  store.StoreByte(7, 300, 0x5a);
  EXPECT_EQ(store.LoadByte(7, 300), std::optional<uint8_t>(0x5a));
  EXPECT_FALSE(store.LoadByte(7, 301).has_value());
}

// ---- zero-page dedup + copy-on-write ----------------------------------------

TEST(PagedBoundlessStoreTest, AllZeroPagesShareTheZeroPageUntilFirstNonzeroStore) {
  PagedBoundlessStore store;
  for (int i = 0; i < 64; ++i) {
    store.StoreByte(3, 512 + i, 0);
  }
  BoundlessStoreStats stats = store.stats();
  EXPECT_EQ(stats.pages_live, 1u);
  EXPECT_EQ(stats.zero_pages_live, 1u);  // no 256-byte backing yet
  EXPECT_EQ(stats.zero_dedup_hits, 64u);
  EXPECT_EQ(stats.bytes_materialized, 64u);
  EXPECT_EQ(store.LoadByte(3, 512), std::optional<uint8_t>(0));
  EXPECT_FALSE(store.LoadByte(3, 512 + 64).has_value());  // unstored stays absent

  // First nonzero store copies the page out of the shared zero page; the
  // previously stored zeros keep reading back as zeros.
  store.StoreByte(3, 512 + 64, 0x7f);
  stats = store.stats();
  EXPECT_EQ(stats.pages_live, 1u);
  EXPECT_EQ(stats.zero_pages_live, 0u);
  EXPECT_EQ(store.LoadByte(3, 512), std::optional<uint8_t>(0));
  EXPECT_EQ(store.LoadByte(3, 512 + 63), std::optional<uint8_t>(0));
  EXPECT_EQ(store.LoadByte(3, 512 + 64), std::optional<uint8_t>(0x7f));
}

TEST(PagedBoundlessStoreTest, SpanOfZerosThenNonzeroBreaksSharingExactlyOnce) {
  PagedBoundlessStore store;
  // One span: 100 zeros then 0xff, all within one page.
  std::vector<uint8_t> data(101, 0);
  data[100] = 0xff;
  store.StoreSpan(5, 0, data.data(), data.size());
  BoundlessStoreStats stats = store.stats();
  EXPECT_EQ(stats.pages_live, 1u);
  EXPECT_EQ(stats.zero_pages_live, 0u);
  EXPECT_EQ(stats.zero_dedup_hits, 100u);  // the zero prefix hit the shared page
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(store.LoadByte(5, i), std::optional<uint8_t>(0));
  }
  EXPECT_EQ(store.LoadByte(5, 100), std::optional<uint8_t>(0xff));
}

// ---- memory proportional to touched pages ------------------------------------

TEST(PagedBoundlessStoreTest, SparseSprayCostsTouchedPagesNotRange) {
  PagedBoundlessStore store;
  // One byte every 16 KiB across a 1 GiB simulated range: 65536 touched
  // pages out of the 4M pages the range spans.
  constexpr int64_t kStride = 16 * 1024;
  constexpr int64_t kStores = (1ll << 30) / kStride;
  for (int64_t i = 0; i < kStores; ++i) {
    store.StoreByte(2, i * kStride, static_cast<uint8_t>(i | 1));
  }
  EXPECT_EQ(store.stored_bytes(), static_cast<size_t>(kStores));
  EXPECT_EQ(store.pages_live(), static_cast<size_t>(kStores));  // 1 page per touched byte
  EXPECT_EQ(store.LoadByte(2, 0), std::optional<uint8_t>(1));
  EXPECT_FALSE(store.LoadByte(2, kStride / 2).has_value());
}

// ---- eviction then manufactured-read fallback --------------------------------

// After capacity pressure evicts a page, reads of its bytes must fall back
// to the policy's manufactured-value sequence — under every sequence kind,
// byte-for-byte predictable from a replayed ValueSequence.
TEST(PagedBoundlessStoreTest, EvictedPageReadsFallBackToManufacturedSequence) {
  for (SequenceKind kind : {SequenceKind::kPaper, SequenceKind::kZeros, SequenceKind::kRandom}) {
    Memory::Config config;
    config.policy = AccessPolicy::kBoundless;
    config.sequence = kind;
    config.boundless_capacity = 2 * PagedBoundlessStore::kPageBytes;
    Memory memory(config);
    Ptr unit = memory.Malloc(8, "victim");
    // One OOB byte in each of 12 distinct pages: far more pages than the
    // two the capacity admits, so the earliest pages are gone.
    for (int i = 0; i < 12; ++i) {
      memory.WriteU8(unit + 64 + static_cast<int64_t>(i) * 4096, static_cast<uint8_t>(0xe0 + i));
    }
    ASSERT_GT(memory.boundless().evictions(), 0u) << SequenceKindName(kind);
    ASSERT_FALSE(memory.shard().boundless.LoadByte(unit.unit, 64).has_value());

    // Predict the manufactured byte: a single-byte invalid read consumes
    // exactly one sequence value (truncated), starting from wherever this
    // shard's sequence already is.
    ValueSequence replay(kind);
    for (uint64_t i = 0; i < memory.sequence().values_produced(); ++i) {
      replay.Next();
    }
    uint8_t expected = static_cast<uint8_t>(replay.Next());
    EXPECT_EQ(memory.ReadU8(unit + 64), expected) << SequenceKindName(kind);

    // The newest page survived eviction and still returns the stored byte.
    EXPECT_EQ(memory.ReadU8(unit + 64 + 11 * 4096), 0xe0 + 11) << SequenceKindName(kind);
  }
}

// ---- flat-store FIFO ghost-entry regression ----------------------------------

// DropUnit must reclaim the dropped unit's FIFO bookkeeping entries.
// Historically it only erased the byte map, so a bounded store under unit
// churn (store a little, retire the unit, repeat) accumulated one deque
// entry per dropped byte forever without ever reaching the eviction sweep.
TEST(FlatBoundlessStoreTest, DropUnitReclaimsEvictionQueueEntries) {
  FlatBoundlessStore store(/*capacity=*/64);
  for (uint32_t round = 1; round <= 500; ++round) {
    for (int64_t offset = 0; offset < 32; ++offset) {
      store.StoreByte(round, offset, static_cast<uint8_t>(offset));
    }
    store.DropUnit(round);
    ASSERT_EQ(store.stored_bytes(), 0u);
    ASSERT_LE(store.eviction_queue_size(), 64u)
        << "FIFO ghost entries accumulating at round " << round;
  }
  EXPECT_EQ(store.eviction_queue_size(), 0u);
}

// ---- merged accounting across worker counts ----------------------------------

// The boundless counters ride the same deterministic merge rule as the
// translation counters: identical stream + seed + worker count twice over
// must produce identical merged boundless stats, at every worker count, and
// the counters must actually be visible in the merged Summary.
TEST(PagedBoundlessDeterminismTest, MergedCountersAreDeterministicAcrossWorkerCounts) {
  StreamOptions stream_options;
  stream_options.requests = 48;
  stream_options.clients = 6;
  stream_options.attack_period = 4;
  stream_options.attacks_per_period = 1;
  stream_options.seed = 7;
  TrafficStream stream = MakeTrafficStream(Server::kApache, stream_options);
  ServerFactory factory = MakeServerAppFactory(Server::kApache, AccessPolicy::kBoundless);

  for (size_t workers : {1u, 2u, 8u}) {
    Frontend::Options options{.workers = workers, .batch = 4};
    FrontendReport first = RunFrontendExperiment(factory, stream, options);
    FrontendReport second = RunFrontendExperiment(factory, stream, options);
    const BoundlessStoreStats& a = first.merged_log.boundless_stats();
    const BoundlessStoreStats& b = second.merged_log.boundless_stats();
    ASSERT_GT(a.bytes_materialized, 0u)
        << "attack stream stored no OOB bytes at workers=" << workers;
    EXPECT_EQ(a.pages_live, b.pages_live) << "workers=" << workers;
    EXPECT_EQ(a.zero_pages_live, b.zero_pages_live) << "workers=" << workers;
    EXPECT_EQ(a.compressed_pages, b.compressed_pages) << "workers=" << workers;
    EXPECT_EQ(a.bytes_materialized, b.bytes_materialized) << "workers=" << workers;
    EXPECT_EQ(a.pages_evicted, b.pages_evicted) << "workers=" << workers;
    EXPECT_EQ(a.zero_dedup_hits, b.zero_dedup_hits) << "workers=" << workers;
    EXPECT_NE(first.merged_log.Summary().find("boundless store:"), std::string::npos)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace fob
