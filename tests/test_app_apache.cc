// mini-Apache under the five policies (§4.3).

#include "src/apps/apache.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/harness/workloads.h"
#include "src/runtime/process.h"

namespace fob {
namespace {

class ApacheTest : public ::testing::Test {
 protected:
  ApacheTest() : docroot_(MakeApacheDocroot()) {}

  std::unique_ptr<ApacheApp> MakeServer(AccessPolicy policy) {
    return std::make_unique<ApacheApp>(policy, &docroot_, ApacheApp::DefaultConfigText());
  }

  Vfs docroot_;
};

TEST_F(ApacheTest, ServesStaticPagesEverywhere) {
  for (AccessPolicy policy : kAllPolicies) {
    auto apache = MakeServer(policy);
    HttpResponse response = apache->Handle(MakeHttpGet("/index.html"));
    EXPECT_EQ(response.status, 200) << PolicyName(policy);
    EXPECT_GT(response.body.size(), 4000u) << PolicyName(policy);
    HttpResponse big = apache->Handle(MakeHttpGet("/files/big.bin"));
    EXPECT_EQ(big.status, 200) << PolicyName(policy);
    EXPECT_EQ(big.body.size(), 830 * 1024u) << PolicyName(policy);
  }
}

TEST_F(ApacheTest, BenignRewriteWorksEverywhere) {
  for (AccessPolicy policy : kAllPolicies) {
    auto apache = MakeServer(policy);
    HttpResponse response = apache->Handle(MakeHttpGet("/project/flexc/docs"));
    EXPECT_EQ(response.status, 200) << PolicyName(policy);
    EXPECT_EQ(response.body, "<html><body>docs</body></html>") << PolicyName(policy);
  }
}

TEST_F(ApacheTest, MissingFileIs404) {
  auto apache = MakeServer(AccessPolicy::kFailureOblivious);
  EXPECT_EQ(apache->Handle(MakeHttpGet("/no/such/file")).status, 404);
}

TEST_F(ApacheTest, NonGetRejected) {
  auto apache = MakeServer(AccessPolicy::kFailureOblivious);
  HttpRequest post = MakeHttpGet("/index.html");
  post.method = "POST";
  EXPECT_EQ(apache->Handle(post).status, 400);
}

TEST_F(ApacheTest, AttackUrlCrashesStandardChild) {
  auto apache = MakeServer(AccessPolicy::kStandard);
  RunResult result = RunAsProcess([&] { apache->Handle(MakeHttpGet(MakeApacheAttackUrl())); });
  EXPECT_EQ(result.status, ExitStatus::kStackSmash);
  EXPECT_TRUE(result.possible_code_injection);
}

TEST_F(ApacheTest, AttackUrlTerminatesBoundsCheckChild) {
  auto apache = MakeServer(AccessPolicy::kBoundsCheck);
  RunResult result = RunAsProcess([&] { apache->Handle(MakeHttpGet(MakeApacheAttackUrl())); });
  EXPECT_EQ(result.status, ExitStatus::kBoundsTerminated);
}

TEST_F(ApacheTest, AttackUrlServedCorrectlyUnderFailureOblivious) {
  // §4.3.2: "the memory errors occur in irrelevant data structures and
  // computations [so FO] eliminates the memory error without affecting the
  // results of the computation at all."
  auto apache = MakeServer(AccessPolicy::kFailureOblivious);
  HttpResponse response;
  RunResult result = RunAsProcess([&] { response = apache->Handle(MakeHttpGet(MakeApacheAttackUrl())); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "capture target page");
  EXPECT_GT(apache->memory().log().write_errors(), 0u);
  // Subsequent requests unaffected.
  EXPECT_EQ(apache->Handle(MakeHttpGet("/index.html")).status, 200);
}

TEST_F(ApacheTest, WorkerPoolRestartsCrashedChildren) {
  // §4.3.2: the pool keeps Standard/BoundsCheck serving despite crashes.
  for (AccessPolicy policy : {AccessPolicy::kStandard, AccessPolicy::kBoundsCheck}) {
    WorkerPool<ApacheApp> pool(2, [&] { return MakeServer(policy); });
    RunResult attack = pool.Dispatch(
        [&](ApacheApp& app) { app.Handle(MakeHttpGet(MakeApacheAttackUrl())); });
    EXPECT_TRUE(attack.crashed()) << PolicyName(policy);
    EXPECT_EQ(pool.restarts(), 1u) << PolicyName(policy);
    HttpResponse response;
    RunResult legit = pool.Dispatch(
        [&](ApacheApp& app) { response = app.Handle(MakeHttpGet("/index.html")); });
    EXPECT_TRUE(legit.ok()) << PolicyName(policy);
    EXPECT_EQ(response.status, 200) << PolicyName(policy);
  }
}

TEST_F(ApacheTest, FailureObliviousPoolNeverRestarts) {
  WorkerPool<ApacheApp> pool(2, [&] { return MakeServer(AccessPolicy::kFailureOblivious); });
  for (int i = 0; i < 10; ++i) {
    RunResult result = pool.Dispatch(
        [&](ApacheApp& app) { app.Handle(MakeHttpGet(MakeApacheAttackUrl())); });
    EXPECT_TRUE(result.ok());
  }
  EXPECT_EQ(pool.restarts(), 0u);
}

TEST_F(ApacheTest, ConfigCompilesAllRules) {
  auto apache = MakeServer(AccessPolicy::kFailureOblivious);
  // 3 named rules + 40 filler rules.
  EXPECT_EQ(apache->rule_count(), 43u);
}

TEST_F(ApacheTest, QueryStringStripped) {
  auto apache = MakeServer(AccessPolicy::kFailureOblivious);
  EXPECT_EQ(apache->Handle(MakeHttpGet("/index.html?version=2")).status, 200);
}

}  // namespace
}  // namespace fob
