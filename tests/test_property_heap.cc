// Property/stress tests: the heap allocator against a shadow model.
//
// A deterministic pseudo-random workload of malloc/free/realloc is mirrored
// in a host-side model; invariants checked throughout:
//   * allocator never hands out overlapping blocks,
//   * block contents survive until freed (and across realloc),
//   * freed space is reusable (no leak of address space),
//   * metadata stays intact as long as nobody writes out of bounds.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/softmem/address_space.h"
#include "src/softmem/heap.h"
#include "src/softmem/object_table.h"

namespace fob {
namespace {

class Xorshift {
 public:
  explicit Xorshift(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 2685821657736338717ull;
  }
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

std::string PatternFor(Addr payload, size_t size) {
  std::string pattern(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    pattern[i] = static_cast<char>((payload + i * 31) & 0xff);
  }
  return pattern;
}

class HeapStressTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HeapStressTest, ::testing::Values(1, 7, 42, 1234, 99999));

TEST_P(HeapStressTest, RandomWorkloadKeepsInvariants) {
  AddressSpace space;
  ObjectTable table;
  Heap heap(space, table, 0x10000000, 4 << 20);
  Xorshift rng(GetParam());

  std::map<Addr, std::string> live;  // payload -> expected contents
  for (int step = 0; step < 3000; ++step) {
    uint64_t action = rng.Below(100);
    if (action < 55 || live.empty()) {
      // malloc
      size_t size = 1 + rng.Below(700);
      Addr p = heap.Malloc(size, "stress");
      if (p == 0) {
        continue;  // OOM under churn is legal
      }
      // No overlap with any live block.
      for (const auto& [base, contents] : live) {
        ASSERT_TRUE(p + size <= base || base + contents.size() <= p)
            << "overlap at step " << step;
      }
      std::string pattern = PatternFor(p, size);
      ASSERT_TRUE(space.Write(p, pattern.data(), pattern.size()));
      live.emplace(p, std::move(pattern));
    } else if (action < 80) {
      // free a random live block
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      ASSERT_TRUE(heap.BlockIntact(it->first)) << "metadata died at step " << step;
      heap.Free(it->first);
      live.erase(it);
    } else {
      // realloc a random live block
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      size_t new_size = 1 + rng.Below(900);
      Addr fresh = heap.Realloc(it->first, new_size);
      if (fresh == 0) {
        continue;
      }
      std::string expected = it->second;
      expected.resize(new_size, '\0');  // grown area is zeroed
      if (new_size < it->second.size()) {
        expected = it->second.substr(0, new_size);
      }
      // Contents preserved up to min(old,new).
      std::string actual(new_size, '\0');
      ASSERT_TRUE(space.Read(fresh, actual.data(), new_size));
      size_t check = std::min(new_size, it->second.size());
      EXPECT_EQ(actual.substr(0, check), it->second.substr(0, check))
          << "realloc lost data at step " << step;
      live.erase(it);
      // Rewrite with a fresh pattern for continued checking.
      std::string pattern = PatternFor(fresh, new_size);
      ASSERT_TRUE(space.Write(fresh, pattern.data(), pattern.size()));
      live.emplace(fresh, std::move(pattern));
    }
    // Periodically verify all live contents.
    if (step % 500 == 0) {
      for (const auto& [base, contents] : live) {
        std::string actual(contents.size(), '\0');
        ASSERT_TRUE(space.Read(base, actual.data(), actual.size()));
        ASSERT_EQ(actual, contents) << "contents corrupted at step " << step;
      }
    }
  }
  // Drain and confirm full reuse.
  for (const auto& [base, contents] : live) {
    (void)contents;
    heap.Free(base);
  }
  EXPECT_EQ(heap.live_blocks(), 0u);
  EXPECT_NE(heap.Malloc(2 << 20, "big after drain"), 0u);
}

TEST_P(HeapStressTest, ObjectTableMirrorsLiveBlocks) {
  AddressSpace space;
  ObjectTable table;
  Heap heap(space, table, 0x10000000, 1 << 20);
  Xorshift rng(GetParam() * 31);
  std::vector<Addr> live;
  for (int step = 0; step < 1000; ++step) {
    if (rng.Below(2) == 0 || live.empty()) {
      Addr p = heap.Malloc(1 + rng.Below(256), "t");
      if (p != 0) {
        live.push_back(p);
      }
    } else {
      size_t index = rng.Below(live.size());
      heap.Free(live[index]);
      live.erase(live.begin() + static_cast<long>(index));
    }
    ASSERT_EQ(table.live_count(), live.size());
    for (Addr p : live) {
      const DataUnit* unit = table.LookupByAddress(p);
      ASSERT_NE(unit, nullptr);
      ASSERT_EQ(unit->base, p);
    }
  }
}

}  // namespace
}  // namespace fob
